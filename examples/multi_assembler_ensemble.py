"""Multi-Assembler Multi-Parameter (MAMP) ensemble assembly.

The paper's Table V compares single assemblers against combinations
("the latter approach ... is indeed the Multi-assembler Multi-parameter
(MAMP) method").  This example runs Ray, ABySS and Contrail over two k
values each on the same reads, merges every option with the
Minimus2-style post-processing stage, and scores each option against the
known ground truth — a miniature Table V.

Run:  python examples/multi_assembler_ensemble.py
"""

from repro.assembly.base import AssemblyParams
from repro.assembly.registry import get_assembler
from repro.core.merge import merge_contigs
from repro.core.preprocess import preprocess
from repro.evaluation.detonate import evaluate
from repro.seq.datasets import tiny_dataset

KS = (31, 37)
OPTIONS = {
    "ray": ("ray",),
    "abyss": ("abyss",),
    "contrail": ("contrail",),
    "ray+contrail": ("ray", "contrail"),
    "ray+contrail+abyss": ("ray", "contrail", "abyss"),
}


def main() -> None:
    dataset = tiny_dataset(paired=False, seed=7)
    pre = preprocess(dataset.run.all_reads())
    print(
        f"pre-processing: {pre.input_reads} -> {pre.output_reads} reads "
        f"(dedup {pre.dropped_duplicate}, N {pre.dropped_n})"
    )

    # One real assembly per (assembler, k).
    assemblies = {}
    for name in ("ray", "abyss", "contrail"):
        for k in KS:
            params = AssemblyParams(k=k, min_contig_length=100)
            result = get_assembler(name).assemble(pre.reads, params, n_ranks=8)
            assemblies[(name, k)] = result.contigs
            print(f"  {name:9s} k={k}: {len(result.contigs)} contigs")

    print(f"\n{'option':20s} {'contigs':>7s} {'P':>6s} {'R':>6s} "
          f"{'F1':>6s} {'wkr':>6s} {'kc':>6s}")
    for option, members in OPTIONS.items():
        contig_sets = [assemblies[(m, k)] for m in members for k in KS]
        merged = merge_contigs(contig_sets)
        s = evaluate(merged.transcripts, dataset.transcriptome)
        print(
            f"{option:20s} {len(merged.transcripts):7d} {s.precision:6.2f} "
            f"{s.recall:6.2f} {s.f1:6.2f} {s.weighted_kmer_recall:6.2f} "
            f"{s.kc_score:6.2f}"
        )

    print(
        "\nAs in the paper's Table V, the ensemble (MAMP) options land "
        "near the single-assembler scores — the default Rnnotator merge "
        "is tuned for multi-k merging, not cross-assembler validation."
    )


if __name__ == "__main__":
    main()
