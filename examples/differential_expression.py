"""Differential gene expression across two conditions (optional stage).

Rnnotator's last stage computes differential expression "only optional
for cases when multiple sample conditions are provided" (Fig. 1).  This
example simulates two conditions from the same transcriptome — with a
few transcripts up-regulated in condition B — assembles a reference from
the pooled reads, quantifies each condition against it, and runs the
exact-test DE analysis.

Run:  python examples/differential_expression.py
"""

from dataclasses import replace

import numpy as np

from repro.assembly.base import AssemblyParams
from repro.assembly.velvet import VelvetAssembler
from repro.core.diffexpr import differential_expression
from repro.core.preprocess import preprocess
from repro.core.quantify import quantify
from repro.seq.datasets import tiny_dataset
from repro.seq.reads import ReadSimulator, ReadSimSpec
from repro.seq.transcriptome import Transcript, Transcriptome


def perturbed_transcriptome(base: Transcriptome, factor: float, n_up: int,
                            rng: np.random.Generator) -> Transcriptome:
    """Up-regulate ``n_up`` random transcripts by ``factor``."""
    idx = set(rng.choice(len(base.transcripts), size=n_up, replace=False))
    changed = [
        Transcript(t.transcript_id, t.codes,
                   t.abundance * (factor if i in idx else 1.0))
        for i, t in enumerate(base.transcripts)
    ]
    total = sum(t.abundance for t in changed)
    return Transcriptome(
        base.name + "_B",
        [Transcript(t.transcript_id, t.codes, t.abundance / total)
         for t in changed],
    ), idx


def main() -> None:
    rng = np.random.default_rng(0)
    ds = tiny_dataset(seed=9, coverage_boost=4.0)
    txome_a = ds.transcriptome
    txome_b, up_idx = perturbed_transcriptome(txome_a, 6.0, 3, rng)
    up_names = {txome_a.transcripts[i].transcript_id for i in up_idx}
    print(f"condition B up-regulates {sorted(up_names)} by 6x\n")

    spec = ReadSimSpec(read_length=50, n_reads=16_000, seed=1)
    run_a = ReadSimulator(txome_a, spec).run()
    run_b = ReadSimulator(txome_b, replace(spec, seed=2)).run()

    # Assemble a reference from the pooled, pre-processed reads.
    pooled = preprocess(run_a.reads + run_b.reads)
    assembly = VelvetAssembler().assemble(
        pooled.reads, AssemblyParams(k=31, min_contig_length=150)
    )
    print(f"reference: {len(assembly.contigs)} contigs "
          f"({assembly.total_bp} bp) from pooled reads")

    # Quantify each condition against the assembled reference.
    qa = quantify(preprocess(run_a.reads).reads, assembly.contigs)
    qb = quantify(preprocess(run_b.reads).reads, assembly.contigs)

    de = differential_expression(qa.transcript_ids, qa.counts, qb.counts)
    print(f"\n{de.n_significant} transcripts significant at "
          f"alpha={de.alpha}:")
    for row in sorted(de.significant_rows(),
                      key=lambda r: r.log2_fold_change)[:10]:
        print(
            f"  {row.transcript_id:22s} A={row.count_a:5d} B={row.count_b:5d}"
            f" log2FC={row.log2_fold_change:+.2f} p={row.p_value:.2e}"
        )
    print(
        "\n(negative log2FC = higher in condition B; the significant set "
        "should correspond to the up-regulated transcripts' contigs)"
    )


if __name__ == "__main__":
    main()
