"""The dynamically adaptive workflow: avoiding single-node OOM failures.

Large inputs are the paper's core motivation: "avoiding failures due to a
limited resource of a single node".  A paired-end (P. crispa-like) data
set declares a ~40 GB pre-processing footprint; a static workflow pinned
to c3.2xlarge (16 GB) fails, while the dynamic workflow reads the
footprint estimate from the pre-stage plan and provisions r3.2xlarge.

The second half shows the pilot layer's restart machinery directly: a
unit that OOMs on a small pilot is restarted by the memory-aware
scheduler on a bigger one.

Run:  python examples/dynamic_workflow.py
"""

from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.ec2 import EC2Region
from repro.cloud.instances import GiB
from repro.core.rnnotator import PipelineConfig, PipelineError, RnnotatorPipeline
from repro.core.workflow import WorkflowPattern
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.pilot import (
    MemoryAwareScheduler,
    PilotDescription,
    PilotManager,
    StateStore,
    UnitDescription,
    UnitManager,
)
from repro.seq.datasets import tiny_dataset


def pipeline_level() -> None:
    dataset = tiny_dataset(paired=True, seed=5)
    print(f"paired data set declaring "
          f"{dataset.spec.preprocess_memory_bytes / GiB:.0f} GiB "
          "pre-processing footprint (P. crispa-like)\n")

    try:
        RnnotatorPipeline().run(
            dataset,
            PipelineConfig(
                assemblers=("ray",), kmer_list=(51,),
                workflow=WorkflowPattern.DISTRIBUTED_STATIC,
                instance_type="c3.2xlarge",
            ),
        )
    except PipelineError as exc:
        print(f"static workflow on c3.2xlarge: FAILED\n  -> {exc}\n")

    result = RnnotatorPipeline().run(
        dataset,
        PipelineConfig(
            assemblers=("ray",), kmer_list=(51,),
            workflow=WorkflowPattern.DISTRIBUTED_DYNAMIC,
        ),
    )
    chosen = result.stages[1].instance_type
    print(f"dynamic workflow: SUCCEEDED on {chosen} "
          f"(TTC {result.total_ttc:.0f} s, cost ${result.total_cost:.2f})")


def unit_restart_level() -> None:
    print("\n-- pilot-level restart-on-OOM --")
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    db = StateStore(clock)
    pm = PilotManager(region, events, db)
    small = pm.launch(pm.submit(PilotDescription("small", "c3.2xlarge", 1)))
    big = pm.launch(pm.submit(PilotDescription("big", "r3.2xlarge", 1)))

    def heavy_work():
        usage = ResourceUsage(n_ranks=1)
        usage.add_phase(PhaseUsage("load", "generic", critical_compute=1e6))
        usage.peak_rank_memory_bytes = 40 * GiB  # too big for c3.2xlarge
        return "done", usage

    um = UnitManager(db, events, scheduler=MemoryAwareScheduler())
    um.add_pilot(small)
    um.add_pilot(big)
    (unit,) = um.submit_units(
        [UnitDescription(name="big-task", work=heavy_work, cores=8,
                         memory_bytes=40 * GiB, max_restarts=1)]
    )
    um.run([unit])
    print(f"unit {unit.description.name!r}: state={unit.state.value}, "
          f"ran on pilot {unit.pilot_id} "
          f"({'r3' if unit.pilot_id == big.pilot_id else 'c3'}) "
          f"after {unit.restarts} restarts")
    history = [r.value for r in db.history_of(unit.unit_id, "state")]
    print("state history:", " -> ".join(history))


if __name__ == "__main__":
    pipeline_level()
    unit_restart_level()
