"""Workload-execution backends: the same fan-out, three ways.

The paper's sample run submits "the total 6 jobs, corresponding to two
k-mer assemblies for each assembler" concurrently.  The virtual cluster
has always modelled that concurrency; the executor backends make the
*real* Python assemblies exploit it too, spreading the workloads over
the host's cores.

This example runs an identical multi-k, multi-assembler fan-out under
the serial, thread-pool and process-pool backends and prints:

* the virtual TTC (identical across backends, by construction), and
* the real host wall-time (lower on parallel backends when the machine
  has cores to spare — the process pool is the one that beats the GIL
  for pure-Python assembly work).

Run:  python examples/executor_backends.py
"""

import os
import time

from repro.assembly.base import AssemblyParams
from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.ec2 import EC2Region
from repro.core.multikmer import make_assembly_workload
from repro.core.preprocess import preprocess
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.manager import PilotManager, UnitManager
from repro.seq.datasets import tiny_dataset

ASSEMBLERS = ("ray", "abyss", "velvet")
KS = (31, 37)


def run_fanout(dataset, reads, executor: str):
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    db = StateStore(clock)
    pm = PilotManager(region, events, db)
    pilot = pm.launch(pm.submit(PilotDescription("P_B", "c3.2xlarge", 6)))

    descs = [
        UnitDescription(
            name=f"{name}_k{k}",
            # use_cache=False: this example compares backends on *real*
            # work — the assembly cache would turn runs 2 and 3 into
            # lookups and hide the backend's wall-time.
            work=make_assembly_workload(
                name, reads, AssemblyParams(k=k, min_contig_length=100),
                n_ranks=8, dataset=dataset, use_cache=False,
            ),
            cores=8,
            scale=1.0,
            tags={"assembler": name, "k": k},
        )
        for name in ASSEMBLERS
        for k in KS
    ]

    um = UnitManager(db, events, executor=executor)
    um.add_pilot(pilot)
    units = um.submit_units(descs)
    t0 = time.perf_counter()
    um.run(units)
    wall = time.perf_counter() - t0
    um.close()
    return units, clock.now, wall


def main() -> None:
    dataset = tiny_dataset(paired=False, seed=7)
    reads = preprocess(dataset.run.all_reads()).reads
    print(
        f"6-job fan-out ({'+'.join(ASSEMBLERS)} x k={list(KS)}) "
        f"on a {os.cpu_count()}-core host\n"
    )

    baseline = None
    for backend in ("serial", "thread", "process"):
        units, vtime, wall = run_fanout(dataset, reads, backend)
        contigs = sum(len(u.result.contigs) for u in units)
        if baseline is None:
            baseline = (vtime, [u.result.contigs for u in units])
        same_vtime = vtime == baseline[0]
        same_contigs = [u.result.contigs for u in units] == baseline[1]
        print(
            f"  {backend:8s} virtual TTC {vtime:8.0f} s "
            f"(identical: {same_vtime})  real {wall:6.2f} s  "
            f"{contigs} contigs (identical: {same_contigs})"
        )

    print(
        "\nVirtual TTC and assembly output never change with the backend; "
        "only the real wall-time does."
    )


if __name__ == "__main__":
    main()
