"""Observability: trace a pipeline run and render its report.

Runs the quickstart pipeline with a :class:`repro.obs.Tracer` injected,
with virtual-clock-stamped logging on, then writes the trace twice —
archival JSONL and Chrome ``trace_event`` JSON (open the latter in
Perfetto or ``chrome://tracing``) — and prints the same report the CLI
(``python -m repro.obs.report run.jsonl``) produces.

Run:  python examples/tracing_report.py
"""

import logging

from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.obs import Tracer, logging_setup, write_chrome, write_jsonl
from repro.obs.report import build_report, stage_ttcs
from repro.seq.datasets import tiny_dataset


def main() -> None:
    # 1. Logging first: every record gets a [v=...s] virtual timestamp
    #    once the pipeline binds its clock to the tracer.
    logging_setup(level=logging.INFO)

    # 2. Run the pipeline with a tracer injected.  The tracer is installed
    #    process-wide for the duration of run(), so every layer records
    #    into it; afterwards the no-op default is restored.
    tracer = Tracer()
    dataset = tiny_dataset(paired=False, seed=42, coverage_boost=4.0)
    result = RnnotatorPipeline(tracer=tracer).run(
        dataset, PipelineConfig(assemblers=("ray",), kmer_list=(35, 41))
    )

    # 3. Export.  The JSONL file is what the report CLI reads; the Chrome
    #    file loads in Perfetto with one process row per pilot/VM pool
    #    and one thread row per unit/VM/job, on the virtual timeline.
    jsonl = write_jsonl(tracer, "run.jsonl")
    chrome = write_chrome(tracer, "run_trace.json")
    print(f"trace written: {jsonl} (report CLI) and {chrome} (Perfetto)\n")

    # 4. The report — identical to `python -m repro.obs.report run.jsonl`.
    print(build_report(tracer.records()))

    # 5. The trace and the pipeline agree exactly on the stage TTCs.
    assert stage_ttcs(tracer.records()) == {
        s.name: s.ttc for s in result.stages
    }
    print("\nper-stage TTCs from the trace match StageReport exactly.")


if __name__ == "__main__":
    main()
