"""Kill/resume on durable checkpoints, and surviving spot preemption.

Part one kills a checkpointed pipeline right after the assembly fan-out
(the simulated analog of losing the submit host to a spot reclaim) and
re-runs it against the same checkpoint directory: the completed units
replay through the regular dispatch path, so the resumed run's contigs,
virtual TTC and cost are bit-identical to an uninterrupted baseline.

Part two injects a spot reclaim one virtual second into the assembly
fan-out under the S3 elastic scheme: the preempted unit fails
*transiently* (no pilot exclusion), the elastic pool replaces the lost
node, the retry succeeds, and the output still matches the baseline.

Run:  python examples/spot_checkpoint_resume.py
"""

import tempfile

from repro.core.rnnotator import (
    PipelineConfig,
    PipelineKilled,
    RnnotatorPipeline,
)
from repro.core.schemes import MatchingScheme
from repro.obs import Tracer
from repro.seq.datasets import tiny_dataset

CONFIG = dict(assemblers=("ray",), kmer_list=(35, 41))


def kill_and_resume(dataset, baseline) -> None:
    print("-- kill after assembly, resume from checkpoints --")
    with tempfile.TemporaryDirectory() as ckdir:
        try:
            RnnotatorPipeline().run(
                dataset,
                PipelineConfig(
                    checkpoint_dir=ckdir,
                    abort_after_stage="transcript-assembly",
                    **CONFIG,
                ),
            )
        except PipelineKilled as exc:
            print(f"first run killed as requested: {exc}")

        resumed = RnnotatorPipeline().run(
            dataset, PipelineConfig(checkpoint_dir=ckdir, **CONFIG)
        )
        stats = resumed.checkpoint_stats
        print(
            f"resumed: {stats['unit_hits']} unit(s) replayed from "
            f"checkpoints, {stats['unit_puts']} new record(s) written"
        )
        identical = (
            [t.seq for t in resumed.transcripts]
            == [t.seq for t in baseline.transcripts]
            and resumed.total_ttc == baseline.total_ttc
            and resumed.total_cost == baseline.total_cost
        )
        print(
            f"bit-identical to uninterrupted run: {identical} "
            f"(TTC {resumed.total_ttc:.0f} s, cost ${resumed.total_cost:.2f})"
        )


def survive_preemption(dataset, baseline) -> None:
    print("\n-- spot reclaim under the S3 elastic scheme --")
    tracer = Tracer()
    chaos = RnnotatorPipeline(tracer=tracer).run(
        dataset,
        PipelineConfig(
            scheme=MatchingScheme.S3,
            preempt_at=(1.0,),
            unit_max_restarts=2,
            **CONFIG,
        ),
    )
    counters = tracer.metrics.counters
    print(
        f"preemptions {int(counters['vms_preempted'].value)}, "
        f"units preempted {int(counters['units_preempted'].value)}, "
        f"units restarted {int(counters['units_restarted'].value)}"
    )
    identical = [t.seq for t in chaos.transcripts] == [
        t.seq for t in baseline.transcripts
    ]
    print(f"output identical to calm run: {identical} "
          f"(TTC {chaos.total_ttc:.0f} s)")


if __name__ == "__main__":
    dataset = tiny_dataset(seed=1)
    baseline = RnnotatorPipeline().run(dataset, PipelineConfig(**CONFIG))
    print(f"baseline: {len(baseline.transcripts)} transcripts, "
          f"TTC {baseline.total_ttc:.0f} s, cost ${baseline.total_cost:.2f}\n")
    kill_and_resume(dataset, baseline)
    survive_preemption(dataset, baseline)
