"""Pilot-VM matching schemes: the S1 vs S2 cost/TTC trade-off (Fig. 5).

On-demand clouds make the user responsible for VM lifetimes.  The paper
defines two matching schemes:

* S1 couples each pilot to freshly provisioned VMs — per-stage instance
  optimization, but extra provisioning and inter-pilot data transfers;
* S2 reuses one VM pool across pilots — no transfer overhead, but the
  pool's type must satisfy the most demanding stage.

This example runs the same workload under both schemes (and under S2 on
the expensive memory-optimized type) and prints the trade-off table.

Run:  python examples/cloud_cost_optimization.py
"""

from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.core.schemes import MatchingScheme
from repro.seq.datasets import tiny_dataset

CONFIGS = {
    "S2 on c3.2xlarge": PipelineConfig(
        assemblers=("ray", "abyss"), kmer_list=(35, 41),
        scheme=MatchingScheme.S2, instance_type="c3.2xlarge",
    ),
    "S1 on c3.2xlarge": PipelineConfig(
        assemblers=("ray", "abyss"), kmer_list=(35, 41),
        scheme=MatchingScheme.S1, instance_type="c3.2xlarge",
    ),
    "S2 on r3.2xlarge": PipelineConfig(
        assemblers=("ray", "abyss"), kmer_list=(35, 41),
        scheme=MatchingScheme.S2, instance_type="r3.2xlarge",
    ),
}


def main() -> None:
    dataset = tiny_dataset(paired=False, seed=3)
    print(f"{'configuration':20s} {'TTC (s)':>9s} {'cost $':>8s} "
          f"{'transfer (s)':>13s}")
    results = {}
    for name, config in CONFIGS.items():
        r = RnnotatorPipeline().run(dataset, config)
        results[name] = r
        print(
            f"{name:20s} {r.total_ttc:9.0f} {r.total_cost:8.2f} "
            f"{r.transfer_seconds:13.0f}"
        )

    s1 = results["S1 on c3.2xlarge"]
    s2 = results["S2 on c3.2xlarge"]
    r3 = results["S2 on r3.2xlarge"]
    print(
        f"\nS1 pays {s1.transfer_seconds - s2.transfer_seconds:.0f} s of "
        "extra staging plus re-provisioning on every pilot boundary;\n"
        "S2 reuses the same VMs for all three pilots (the paper's sample "
        "run choice)."
    )
    print(
        f"Memory-optimized r3.2xlarge costs "
        f"{r3.total_cost / s2.total_cost:.1f}x more here — worth it only "
        "when the data cannot fit c3.2xlarge (Table IV)."
    )
    # Functional results are identical regardless of the scheme.
    assert [t.seq for t in s1.transcripts] == [t.seq for t in s2.transcripts]


if __name__ == "__main__":
    main()
