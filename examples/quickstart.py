"""Quickstart: run the full pilot-based RNA-seq pipeline end to end.

Generates a small synthetic RNA-seq data set (a scaled-down analog of the
paper's B. glumae run), executes the four Rnnotator stages on the
simulated EC2 cloud under the S2 pilot-VM matching scheme, and prints the
per-stage timing/cost report plus the assembled transcripts.

Run:  python examples/quickstart.py
"""

from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.core.schemes import MatchingScheme
from repro.evaluation.detonate import evaluate
from repro.seq.datasets import tiny_dataset


def main() -> None:
    # 1. A small single-end bacterial data set (ground truth included).
    dataset = tiny_dataset(paired=False, seed=42, coverage_boost=4.0)
    print(
        f"data set: {dataset.spec.name} | "
        f"{len(dataset.run.reads)} reads x {dataset.run.spec.read_length} bp, "
        f"{len(dataset.transcriptome)} true transcripts"
    )

    # 2. Configure and run the pipeline.  With kmer_list=None the k list
    #    is chosen from the post-trim read length, as in the paper.
    #    executor= picks the workload backend for the assembly fan-out:
    #    "process" runs the real assemblies over the host's cores
    #    ("serial" and "thread" also available; virtual TTCs and results
    #    are identical across backends).
    config = PipelineConfig(
        assemblers=("ray",),
        scheme=MatchingScheme.S2,
        kmer_list=(35, 41, 47),
        executor="process",
    )
    result = RnnotatorPipeline().run(dataset, config)

    # 3. The paper-style report: stage TTCs, fleet sizes, dollar cost.
    print()
    print(result.summary())

    # 4. Assembled transcripts and their expression estimates.
    print(f"\nassembled {len(result.transcripts)} transcripts "
          f"({sum(len(t) for t in result.transcripts)} bp):")
    for tid, count, tpm in result.quantification.as_table()[:10]:
        print(f"  {tid:22s} reads={count:6d} tpm={tpm:10.1f}")

    # 5. Score against the known ground truth (DETONATE-style metrics).
    scores = evaluate(result.transcripts, dataset.transcriptome)
    print(
        f"\nDETONATE vs ground truth: precision={scores.precision:.2f} "
        f"recall={scores.recall:.2f} F1={scores.f1:.2f} "
        f"weighted-kmer-recall={scores.weighted_kmer_recall:.2f}"
    )


if __name__ == "__main__":
    main()
