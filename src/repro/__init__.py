"""repro — a scalable pilot-based RNA-seq transcriptome profiling pipeline
for (simulated) on-demand computing clouds.

Reproduction of Shams et al., "A Scalable Pipeline for Transcriptome
Profiling Tasks with On-Demand Computing Clouds", IPDPSW 2016.

Subpackages
-----------
seq
    Sequence substrate: synthetic genomes/transcriptomes, read simulation,
    FASTA/FASTQ I/O, the paper's two data-set analogs.
parallel
    Functional simulated distributed runtimes: a BSP-executed MPI-like
    communicator and a multi-round MapReduce engine, with traffic
    accounting and the calibrated cost model.
cloud
    Discrete-event IaaS simulator: EC2-style instances, VM lifecycle and
    billing, StarCluster-style clusters, an SGE-like scheduler.
pilot
    RADICAL-Pilot analog: pilots, compute units, state machines, managers,
    schedulers and the backend state store.
assembly
    De novo de Bruijn graph assemblers: serial (Velvet-like), MPI-style
    (Ray/ABySS-like), MapReduce (Contrail-like) and the Trinity-like
    baseline, plus the assembler registry (Table I).
core
    The paper's contribution: the Rnnotator-style pipeline re-architected
    on pilots — pre-processing, multi-k multi-assembler transcript
    assembly, contig merging, quantification, differential expression,
    workflow patterns and the S1/S2 pilot-VM matching schemes.
evaluation
    DETONATE-style reference-based transcript assembly evaluation.
bench
    Experiment harness and cost-model calibration for every table/figure.
obs
    Observability: dual-clock (virtual + real) span/event tracing, a
    metrics registry, JSONL / Chrome-trace / text exporters and the
    ``python -m repro.obs.report`` CLI.
"""

import logging as _logging

__version__ = "1.0.0"

__all__ = [
    "seq",
    "parallel",
    "cloud",
    "pilot",
    "assembly",
    "core",
    "evaluation",
    "bench",
    "obs",
]

# Library logging convention: quiet unless the application configures
# handlers (repro.obs.logging_setup is the batteries-included way).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())
