"""Experiment harness: calibrated cost model, shared bench data sets and
table/figure formatting for the paper-reproduction benchmarks."""

from repro.bench.calibration import TABLE3_TARGETS, calibrated_cost_model
from repro.bench.harness import (
    bench_dataset,
    format_figure,
    format_table,
    machine_for,
    price_assembly,
)

__all__ = [
    "TABLE3_TARGETS",
    "calibrated_cost_model",
    "bench_dataset",
    "machine_for",
    "price_assembly",
    "format_table",
    "format_figure",
]
