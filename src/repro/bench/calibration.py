"""Cost-model calibration against the paper's Table III anchors.

Table III measures the three assemblers on the B. glumae data (k=47, two
c3.2xlarge nodes):

=========  ==========
Assembler  TTC (sec)
=========  ==========
Ray          1,721
ABySS          882
Contrail     6,720
=========  ==========

Calibration runs the *real* bench-scale assemblies once, extrapolates the
measured usage to paper scale, and solves for three constants:

1. the two MPI anchors (ABySS, Ray) form a 2x2 linear system in the joint
   DBG work-rate factor and the MPI message latency — the assemblers
   share rates and latency but differ in probe-message aggregation;
2. the MapReduce record rate follows from the Contrail anchor, given a
   fixed per-job Hadoop startup overhead.

Everything else in the reproduction (Fig. 3/4 scale-out shapes, Table IV,
Fig. 5 stage times and cost) is then a *prediction* of the calibrated
model, not a fit.  The stage rates (``preprocess``/``merge``/``quantify``)
are set once from the §IV.C sample-run stage times and documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

import functools
from dataclasses import replace

import numpy as np

from repro.bench import harness
from repro.core.scaling import paper_usage
from repro.parallel.costmodel import CostModel, MachineConfig

#: Paper Table III anchors (seconds).
TABLE3_TARGETS = {"ray": 1721.0, "abyss": 882.0, "contrail": 6720.0}

#: Table III machine: two c3.2xlarge nodes.
ANCHOR_INSTANCE = "c3.2xlarge"
ANCHOR_NODES = 2
ANCHOR_K = 47
ANCHOR_DATASET = "B_glumae"

#: Fixed Hadoop job startup/teardown overhead (seconds).  Hadoop 1.x-era
#: job latency on small clusters was tens of seconds; 45 s splits the
#: Contrail anchor between overhead floor and record processing.
MR_JOB_OVERHEAD = 45.0

#: Stage rates from the §IV.C sample run (4.4 GB paired input):
#: pre-processing 44 min, post-processing 41 min on one 8-core VM.
PREPROCESS_RATE = 1.0e5   # bases/s per core (Perl + disk passes)
MERGE_RATE = 1.0e6        # merge ops/s per core
QUANTIFY_RATE = 3.0e4     # pseudoalignment ops/s per core


def _anchor_usage(assembler: str):
    ds = harness.bench_dataset(ANCHOR_DATASET)
    result = harness.run_assembly(
        ANCHOR_DATASET,
        assembler,
        ANCHOR_K,
        n_ranks=ANCHOR_NODES * 8,
    )
    return paper_usage(result.usage, ds)


def _priced_parts(cm: CostModel, usage, machine: MachineConfig):
    """(rate-scaled compute seconds, fixed seconds) decomposition."""
    zero_rates = {k: float("inf") for k in cm.rates}
    fixed = replace(cm, rates={**cm.rates, **zero_rates}).task_seconds(
        usage, machine
    )
    total = cm.task_seconds(usage, machine)
    return total - fixed, fixed


@functools.lru_cache(maxsize=1)
def calibrated_cost_model() -> CostModel:
    """The cost model used by every benchmark (memoized)."""
    machine = harness.machine_for(ANCHOR_INSTANCE, ANCHOR_NODES)
    base = CostModel(
        mr_job_overhead=MR_JOB_OVERHEAD,
        message_latency=0.0,
    )

    # --- 1+2. joint solve: DBG rate factor and message latency -------------
    # Both MPI assemblers share the DBG work rates and the MPI message
    # latency; ABySS aggregates probes (~2 messages/step) while Ray sends
    # fine-grained ones (~8/step).  The two Table III anchors give a 2x2
    # linear system in (1/rate_factor, message_latency):
    #     C_a * x + M_a * lam = target_a - F_a
    #     C_r * x + M_r * lam = target_r - F_r
    abyss = _anchor_usage("abyss")
    ray = _anchor_usage("ray")
    C_a, F_a = _priced_parts(base, abyss, machine)
    C_r, F_r = _priced_parts(base, ray, machine)
    A = np.array(
        [[C_a, float(abyss.n_messages)], [C_r, float(ray.n_messages)]]
    )
    b = np.array(
        [TABLE3_TARGETS["abyss"] - F_a, TABLE3_TARGETS["ray"] - F_r]
    )
    x, lam = np.linalg.solve(A, b)
    if x <= 0 or lam <= 0:
        raise RuntimeError(
            f"MPI anchors unsatisfiable: rate scale {x:.3g}, latency {lam:.3g}"
        )
    cm = base.with_rates(
        **{kind: base.rate(kind) / x for kind in ("kmer", "graph", "walk")}
    )
    cm = replace(cm, message_latency=float(lam))

    # --- 3. MapReduce rate from the Contrail anchor ------------------------
    contrail = _anchor_usage("contrail")
    # decompose: total = mr_compute/rate + fixed (job overheads + shuffle)
    mr_compute_s, fixed_contrail = _priced_parts(cm, contrail, machine)
    target_c = TABLE3_TARGETS["contrail"]
    if target_c <= fixed_contrail:
        raise RuntimeError(
            f"Contrail fixed costs ({fixed_contrail:.0f}s) exceed the anchor"
        )
    mr_factor = mr_compute_s / (target_c - fixed_contrail)
    cm = cm.with_rates(mr_job=cm.rate("mr_job") * mr_factor)

    # --- 4. stage rates (sample-run anchors, see module docstring) ---------
    cm = cm.with_rates(
        preprocess=PREPROCESS_RATE,
        merge=MERGE_RATE,
        quantify=QUANTIFY_RATE,
    )
    return cm


def anchor_report() -> list[tuple[str, float, float]]:
    """(assembler, paper target, calibrated model prediction) rows."""
    cm = calibrated_cost_model()
    machine = harness.machine_for(ANCHOR_INSTANCE, ANCHOR_NODES)
    rows = []
    for name, target in TABLE3_TARGETS.items():
        usage = _anchor_usage(name)
        rows.append((name, target, cm.task_seconds(usage, machine)))
    return rows
