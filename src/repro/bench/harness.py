"""Shared machinery for the paper-reproduction benchmarks.

Data sets, assemblies and calibrations are expensive relative to a bench
iteration, so everything here is memoized per process: the benchmarks in
``benchmarks/`` call :func:`bench_dataset` and :func:`run_assembly` and
get cached objects after the first use.
"""

from __future__ import annotations

import functools

from repro.assembly.base import AssemblyParams
from repro.assembly.contigs import AssemblyResult
from repro.assembly.registry import get_assembler
from repro.cloud.instances import get_instance_type
from repro.core.preprocess import PreprocessResult, preprocess
from repro.core.scaling import paper_usage
from repro.parallel.costmodel import CostModel, MachineConfig
from repro.parallel.usage import ResourceUsage
from repro.seq.datasets import B_GLUMAE, P_CRISPA, Dataset, generate_dataset

#: Simulation parameters (scale, coverage_boost) per data set — chosen so
#: each bench assembly runs in seconds while transcriptome size and
#: coverage stay in a sane regime; the exact ``Dataset.read_scale`` makes
#: paper-scale extrapolation independent of these knobs.  Documented in
#: EXPERIMENTS.md.
BENCH_PARAMS = {"B_glumae": (0.004, 1.0), "P_crispa": (0.0015, 0.1)}


@functools.lru_cache(maxsize=None)
def bench_dataset(name: str, fraction: float = 1.0) -> Dataset:
    """The benchmark-scale analog data set, optionally with only a
    fraction of the reads (Fig. 4's 'partial data set')."""
    spec = {"B_glumae": B_GLUMAE, "P_crispa": P_CRISPA}[name]
    scale, boost = BENCH_PARAMS[name]
    return generate_dataset(
        spec, scale=scale, seed=7, coverage_boost=boost * fraction
    )


@functools.lru_cache(maxsize=None)
def bench_preprocessed(name: str) -> PreprocessResult:
    ds = bench_dataset(name)
    return preprocess(ds.run.all_reads())


@functools.lru_cache(maxsize=None)
def run_assembly(
    dataset_name: str,
    assembler: str,
    k: int,
    n_ranks: int,
    preprocessed: bool = False,
    fraction: float = 1.0,
) -> AssemblyResult:
    """Execute one real assembly at bench scale (memoized)."""
    if preprocessed:
        reads = bench_preprocessed(dataset_name).reads
    else:
        reads = bench_dataset(dataset_name, fraction).run.all_reads()
    params = AssemblyParams(k=k, min_contig_length=max(100, k))
    asm = get_assembler(assembler)
    if assembler in ("ray", "abyss", "contrail"):
        kwargs = {"n_ranks": n_ranks}
        if assembler == "contrail" and not preprocessed:
            # The paper had to feed Contrail pre-processed data to avoid
            # the N-failure; mirror that but keep raw sizing semantics.
            reads = [r for r in reads if "N" not in r.seq]
        return asm.assemble(reads, params, **kwargs)
    return asm.assemble(reads, params)


@functools.lru_cache(maxsize=None)
def annotation_reference(name: str, cds_fraction: float = 0.75):
    """CDS-like ground truth, mirroring the paper's Table V caveat.

    The paper scores against predicted *protein gene* sequences, "not the
    entire mRNA transcripts" — so true UTR sequence assembled by any tool
    counts against precision.  The analog keeps the central
    ``cds_fraction`` of every expressed transcript as the reference.
    """
    from repro.seq.transcriptome import Transcript, Transcriptome

    ds = bench_dataset(name)
    trimmed = []
    for t in ds.transcriptome.transcripts:
        margin = int(len(t) * (1 - cds_fraction) / 2)
        codes = t.codes[margin : len(t) - margin]
        if codes.shape[0] >= 60:
            trimmed.append(
                Transcript(
                    transcript_id=t.transcript_id + "_cds",
                    codes=codes,
                    abundance=t.abundance,
                )
            )
    return Transcriptome(name=f"{name}_annotation", transcripts=trimmed)


def machine_for(instance_type: str, n_nodes: int) -> MachineConfig:
    itype = get_instance_type(instance_type)
    return MachineConfig(
        n_nodes=n_nodes,
        cores_per_node=itype.vcpus,
        compute_factor=itype.compute_factor,
        network_bandwidth=itype.network_bandwidth,
    )


def price_assembly(
    cost_model: CostModel,
    result: AssemblyResult,
    dataset: Dataset,
    instance_type: str,
    n_nodes: int,
) -> float:
    """Paper-scale TTC of a measured assembly on the given fleet."""
    usage = paper_usage(result.usage, dataset)
    return cost_model.task_seconds(usage, machine_for(instance_type, n_nodes))


def scaled_usage(result: AssemblyResult, dataset: Dataset) -> ResourceUsage:
    return paper_usage(result.usage, dataset)


# -- output formatting ---------------------------------------------------------


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Fixed-width table matching the style of the paper's tables."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_figure(
    title: str,
    x_label: str,
    series: dict[str, list[tuple[float, float]]],
) -> str:
    """Numeric rendering of a figure: one row per x, one column per series."""
    xs = sorted({x for pts in series.values() for x, _ in pts})
    headers = [x_label] + list(series.keys())
    rows = []
    lookup = {
        name: {x: y for x, y in pts} for name, pts in series.items()
    }
    for x in xs:
        row = [x]
        for name in series:
            y = lookup[name].get(x)
            row.append("-" if y is None else f"{y:.0f}")
        rows.append(row)
    return format_table(title, headers, rows)
