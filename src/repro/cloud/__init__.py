"""Discrete-event IaaS cloud simulation.

Models the parts of Amazon EC2 the paper's experiments depend on:

* an instance-type catalog with the two types the paper uses
  (c3.2xlarge, r3.2xlarge) and their 2016 prices (:mod:`instances`),
* VM lifecycle with provisioning delays and memory capacity
  (:mod:`vm`), region-level run/terminate APIs (:mod:`ec2`),
* per-hour billing (:mod:`billing`),
* a StarCluster-style cluster builder with an SGE-like batch scheduler
  (:mod:`cluster`, :mod:`sge`),
* a virtual clock + event queue driving all of it (:mod:`clock`), and
* a staging/transfer model for moving data in and out (:mod:`storage`).
"""

from repro.cloud.billing import BillingLedger
from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.cluster import Cluster, build_cluster
from repro.cloud.ec2 import EC2Region
from repro.cloud.instances import INSTANCE_TYPES, InstanceType, get_instance_type
from repro.cloud.sge import SGEJob, SGEScheduler
from repro.cloud.storage import TransferModel
from repro.cloud.vm import VM, VMState

__all__ = [
    "SimClock",
    "EventQueue",
    "InstanceType",
    "INSTANCE_TYPES",
    "get_instance_type",
    "VM",
    "VMState",
    "EC2Region",
    "BillingLedger",
    "Cluster",
    "build_cluster",
    "SGEScheduler",
    "SGEJob",
    "TransferModel",
]
