"""EC2 instance-type catalog.

The two types the paper uses (section III.B) with their 2016 on-demand
prices, plus a few neighbours so scheduling policies have real choices:

* **c3.2xlarge** — 8 vCPU, 15 GiB (the paper rounds to 16 GB), $0.42/h
* **r3.2xlarge** — 8 vCPU, 61 GiB, $0.70/h
"""

from __future__ import annotations

from dataclasses import dataclass

GiB = 1024**3


@dataclass(frozen=True)
class InstanceType:
    """One EC2 instance type."""

    name: str
    vcpus: int
    memory_bytes: int
    price_per_hour: float  # USD
    compute_factor: float = 1.0       # per-core speed vs reference
    network_bandwidth: float = 125e6  # bytes/s ("High" ~ 1 Gb/s)

    def __post_init__(self) -> None:
        if self.vcpus < 1 or self.memory_bytes <= 0 or self.price_per_hour < 0:
            raise ValueError(f"invalid instance type {self.name}")

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / GiB


INSTANCE_TYPES: dict[str, InstanceType] = {
    t.name: t
    for t in [
        # The paper's two benchmark types (Table III/IV; prices from §III.B).
        InstanceType("c3.2xlarge", 8, 16 * GiB, 0.42, compute_factor=1.0),
        InstanceType("r3.2xlarge", 8, 61 * GiB, 0.70, compute_factor=1.0),
        # Neighbours for scheduler choice / dynamic workflow experiments.
        InstanceType("c3.xlarge", 4, 8 * GiB, 0.21, compute_factor=1.0),
        InstanceType("c3.4xlarge", 16, 32 * GiB, 0.84, compute_factor=1.0),
        InstanceType("r3.xlarge", 4, 30 * GiB, 0.35, compute_factor=1.0),
        InstanceType("r3.4xlarge", 16, 122 * GiB, 1.40, compute_factor=1.0),
        InstanceType("m3.2xlarge", 8, 30 * GiB, 0.53, compute_factor=0.9),
    ]
}


def get_instance_type(name: str) -> InstanceType:
    """Look up an instance type by name."""
    try:
        return INSTANCE_TYPES[name]
    except KeyError:
        raise KeyError(
            f"unknown instance type {name!r}; available: {sorted(INSTANCE_TYPES)}"
        ) from None


def cheapest_with_memory(min_memory_bytes: int, min_vcpus: int = 1) -> InstanceType:
    """Cheapest catalog type satisfying memory and vCPU floors.

    This is the decision the dynamic workflow makes when the
    pre-processing memory estimate is known (§IV.C: c3.2xlarge is fine
    for B. glumae but P. crispa needs r3.2xlarge).
    """
    candidates = [
        t
        for t in INSTANCE_TYPES.values()
        if t.memory_bytes >= min_memory_bytes and t.vcpus >= min_vcpus
    ]
    if not candidates:
        raise ValueError(
            f"no instance type with >= {min_memory_bytes / GiB:.0f} GiB "
            f"and >= {min_vcpus} vCPUs"
        )
    return min(candidates, key=lambda t: (t.price_per_hour, -t.memory_bytes))
