"""Spot/preemptible instance model: reclaim events on the virtual clock.

On-demand VMs live until the user terminates them; spot VMs can be
reclaimed by the cloud at any moment (cf. the failure economics studied
for serverless/spot genomics pipelines).  This module injects such
reclaims deterministically: a :class:`SpotPreemptor` is armed with a list
of virtual times, and at each time it kills one worker VM of the
attached cluster — billing it up to the kill instant, dropping its SGE
slots, and failing the jobs that were running on it.  The failed jobs
surface as *transient* unit failures that the pilot layer's restart
machinery retries.

The head node is always treated as on-demand (protected): it anchors the
shared filesystem and the SGE qmaster, which the paper's StarCluster
setup cannot survive losing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.cloud.clock import EventQueue
from repro.cloud.cluster import Cluster
from repro.cloud.ec2 import EC2Region
from repro.cloud.vm import VM, VMState
from repro.obs import get_tracer


def preempt_vm(region: EC2Region, cluster: Cluster | None, vm: VM) -> bool:
    """Reclaim one VM: bill to the kill time, then tear its node out of
    the cluster (failing the SGE jobs running on it).

    Idempotent — returns ``False`` when the VM was already terminated
    (e.g. the reclaim raced normal teardown), ``True`` when this call
    killed it.
    """
    if region.preempt(vm) is None:
        return False
    if cluster is not None:
        cluster.lose_vm(vm)
    return True


@dataclass
class SpotPreemptor:
    """Deterministic preemption injector for one cluster.

    ``arm_at``/``arm_in`` schedule reclaim events; each event kills the
    most recently added unprotected worker that is still RUNNING (a
    deterministic choice, so chaos runs replay identically).  Reclaims
    that find no eligible victim are no-ops.
    """

    region: EC2Region
    events: EventQueue
    cluster: Cluster
    #: VM ids never reclaimed (the head node is always protected).
    protect: set[str] = field(default_factory=set)
    #: Called after each successful reclaim — the elastic pool's
    #: replacement hook.
    on_preempt: list[Callable[[VM], None]] = field(default_factory=list)
    preempted: list[VM] = field(default_factory=list)

    def arm_at(self, times: Iterable[float]) -> None:
        """Schedule one reclaim at each absolute virtual time."""
        for t in times:
            self.events.schedule_at(t, self._strike, tag="spot.reclaim")

    def arm_in(self, offsets: Iterable[float]) -> None:
        """Schedule one reclaim at each offset from the current time."""
        now = self.events.clock.now
        self.arm_at(now + dt for dt in offsets)

    def _victim(self) -> VM | None:
        head = self.cluster.head
        for vm in reversed(self.cluster.vms):
            if vm is head or vm.vm_id in self.protect:
                continue
            if vm.state is VMState.RUNNING:
                return vm
        return None

    def _strike(self) -> None:
        vm = self._victim()
        tracer = get_tracer()
        if vm is None:
            tracer.count("spot_reclaims_unfilled")
            return
        if preempt_vm(self.region, self.cluster, vm):
            self.preempted.append(vm)
            if tracer.enabled:
                tracer.event(
                    "spot.reclaim",
                    category="cloud",
                    process="ec2",
                    thread=vm.vm_id,
                    cluster=self.cluster.name,
                    nodes_left=self.cluster.n_nodes,
                )
            for hook in self.on_preempt:
                hook(vm)
