"""Data staging and transfer-time model.

The sample run in §IV.C times the upload of the 4.4 GB input from the
local server to the first VM at ~3 min 35 s (≈20 MB/s WAN); transfers
between VMs inside the region ride the instance network.  The model
prices both, and tracks what data sets exist where so the S1 scheme's
inter-pilot staging costs are visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.clock import SimClock

#: Default WAN bandwidth (local lab -> EC2), bytes/s.
DEFAULT_WAN_BANDWIDTH = 20.5e6
#: Default intra-region VM-to-VM bandwidth, bytes/s.
DEFAULT_LAN_BANDWIDTH = 125e6


@dataclass(frozen=True)
class TransferRecord:
    src: str
    dst: str
    n_bytes: int
    seconds: float
    started_at: float


@dataclass
class TransferModel:
    """Prices and logs data movement on the virtual clock."""

    clock: SimClock
    wan_bandwidth: float = DEFAULT_WAN_BANDWIDTH
    lan_bandwidth: float = DEFAULT_LAN_BANDWIDTH
    log: list[TransferRecord] = field(default_factory=list)

    def upload(self, n_bytes: int, dst: str = "vm") -> float:
        """Local server -> cloud; advances the clock; returns seconds."""
        return self._move("local", dst, n_bytes, self.wan_bandwidth)

    def download(self, n_bytes: int, src: str = "vm") -> float:
        """Cloud -> local server."""
        return self._move(src, "local", n_bytes, self.wan_bandwidth)

    def copy(self, n_bytes: int, src: str, dst: str) -> float:
        """VM -> VM inside the region (the S1 scheme's handoff cost)."""
        if src == dst:
            return 0.0  # same VM: no movement (the S2 scheme's win)
        return self._move(src, dst, n_bytes, self.lan_bandwidth)

    def _move(self, src: str, dst: str, n_bytes: int, bandwidth: float) -> float:
        if n_bytes < 0:
            raise ValueError("negative transfer size")
        seconds = n_bytes / bandwidth
        self.log.append(
            TransferRecord(
                src=src,
                dst=dst,
                n_bytes=n_bytes,
                seconds=seconds,
                started_at=self.clock.now,
            )
        )
        self.clock.advance(seconds)
        return seconds

    @property
    def total_bytes(self) -> int:
        return sum(r.n_bytes for r in self.log)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.log)
