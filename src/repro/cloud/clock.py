"""Virtual time: a monotonic clock plus a discrete-event queue.

Every TTC and cost figure in the reproduction is measured on this clock.
The event queue is a plain heap keyed by (time, sequence) so simultaneous
events fire in submission order — enough for the pipeline's needs and
fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class ClockError(RuntimeError):
    """Illegal clock manipulation (e.g. moving time backwards)."""


class SimClock:
    """A monotonic virtual clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds (must be non-negative)."""
        if dt < 0:
            raise ClockError(f"cannot advance by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump forward to absolute time ``t`` (must not be in the past)."""
        if t < self._now - 1e-9:
            raise ClockError(f"cannot move clock backwards to {t} < {self._now}")
        self._now = max(self._now, t)
        return self._now


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    tag: str = field(compare=False, default="")


class EventQueue:
    """A discrete-event loop bound to a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[_Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule_at(self, t: float, action: Callable[[], Any], tag: str = "") -> None:
        """Schedule ``action`` at absolute time ``t``."""
        if t < self.clock.now - 1e-9:
            raise ClockError(f"cannot schedule in the past ({t} < {self.clock.now})")
        heapq.heappush(self._heap, _Event(t, next(self._seq), action, tag))

    def schedule_in(self, dt: float, action: Callable[[], Any], tag: str = "") -> None:
        """Schedule ``action`` ``dt`` seconds from now."""
        if dt < 0:
            raise ClockError(f"negative delay {dt}")
        self.schedule_at(self.clock.now + dt, action, tag)

    def step(self) -> bool:
        """Fire the next event (advancing the clock); False when empty."""
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        self.clock.advance_to(ev.time)
        ev.action()
        return True

    def run(self, until: float | None = None) -> None:
        """Drain the queue, optionally stopping once ``until`` is reached."""
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.clock.advance_to(until)
                return
            self.step()

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None
