"""Virtual time: a monotonic clock plus a discrete-event queue.

Every TTC and cost figure in the reproduction is measured on this clock.
The event queue is a plain heap keyed by (time, sequence) so simultaneous
events fire in submission order — enough for the pipeline's needs and
fully deterministic.

Every scheduled event carries a ``tag`` naming the action; untagged
submissions default to the action's qualified name, so the tracer (and
tests) can always see which scheduled action fired — :meth:`EventQueue.step`
returns the fired tag and emits an ``eq.fire`` trace event.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import get_tracer


class ClockError(RuntimeError):
    """Illegal clock manipulation (e.g. moving time backwards)."""


class SimClock:
    """A monotonic virtual clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds (must be non-negative)."""
        if dt < 0:
            raise ClockError(f"cannot advance by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump forward to absolute time ``t`` (must not be in the past)."""
        if t < self._now - 1e-9:
            raise ClockError(f"cannot move clock backwards to {t} < {self._now}")
        self._now = max(self._now, t)
        return self._now


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    tag: str = field(compare=False, default="")


class EventQueue:
    """A discrete-event loop bound to a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        #: Tag of the most recently fired event (None before the first).
        self.last_tag: str | None = None

    def __len__(self) -> int:
        return len(self._heap)

    def schedule_at(self, t: float, action: Callable[[], Any], tag: str = "") -> None:
        """Schedule ``action`` at absolute time ``t``.

        ``tag`` names the action for observability; when empty it is
        derived from the action's qualified name so no event is anonymous.
        """
        if t < self.clock.now - 1e-9:
            raise ClockError(f"cannot schedule in the past ({t} < {self.clock.now})")
        if not tag:
            tag = getattr(action, "__qualname__", "") or type(action).__name__
        heapq.heappush(self._heap, _Event(t, next(self._seq), action, tag))

    def schedule_in(self, dt: float, action: Callable[[], Any], tag: str = "") -> None:
        """Schedule ``action`` ``dt`` seconds from now."""
        if dt < 0:
            raise ClockError(f"negative delay {dt}")
        self.schedule_at(self.clock.now + dt, action, tag)

    def step(self) -> str | None:
        """Fire the next event (advancing the clock).

        Returns the fired event's tag, or ``None`` when the queue is
        empty — test emptiness with ``is None``, not truthiness.
        """
        if not self._heap:
            return None
        ev = heapq.heappop(self._heap)
        self.clock.advance_to(ev.time)
        self.last_tag = ev.tag
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("eq.fire", category="events", v=ev.time, tag=ev.tag)
        ev.action()
        return ev.tag

    def run(self, until: float | None = None) -> list[str]:
        """Drain the queue, optionally stopping once ``until`` is reached;
        returns the tags of the events fired, in firing order."""
        fired: list[str] = []
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.clock.advance_to(until)
                return fired
            tag = self.step()
            if tag is not None:
                fired.append(tag)
        return fired

    def peek_time(self) -> float | None:
        return self._heap[0].time if self._heap else None
