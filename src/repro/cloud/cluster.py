"""StarCluster analog: turn a set of VMs into an SGE cluster.

The paper builds its EC2 clusters with a customized StarCluster script
(§IV.A.ii): one head node plus workers, a shared filesystem, and SGE
configured with one slot per core.  ``build_cluster`` reproduces that
step including its setup delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.clock import EventQueue
from repro.cloud.ec2 import EC2Region
from repro.cloud.instances import InstanceType
from repro.cloud.sge import SGEScheduler
from repro.cloud.vm import VM, VMState
from repro.obs import get_tracer
from repro.parallel.costmodel import MachineConfig

#: StarCluster configuration time (NFS export, SGE install, host keys).
DEFAULT_SETUP_SECONDS = 120.0


class ClusterError(RuntimeError):
    pass


@dataclass
class Cluster:
    """A running SGE cluster over a homogeneous set of VMs."""

    name: str
    vms: list[VM]
    scheduler: SGEScheduler
    events: EventQueue

    def __post_init__(self) -> None:
        if not self.vms:
            raise ClusterError("cluster needs at least one VM")
        itypes = {vm.itype.name for vm in self.vms}
        if len(itypes) > 1:
            raise ClusterError(
                f"StarCluster-style clusters are homogeneous; got {itypes}"
            )

    @property
    def head(self) -> VM:
        return self.vms[0]

    @property
    def itype(self) -> InstanceType:
        return self.head.itype

    @property
    def n_nodes(self) -> int:
        return len(self.vms)

    @property
    def total_slots(self) -> int:
        return self.scheduler.total_slots

    def machine_config(self, n_nodes: int | None = None) -> MachineConfig:
        """Cost-model view of (a subset of) this cluster."""
        n = n_nodes if n_nodes is not None else self.n_nodes
        if not 1 <= n <= self.n_nodes:
            raise ClusterError(f"invalid node count {n}")
        return MachineConfig(
            n_nodes=n,
            cores_per_node=self.itype.vcpus,
            compute_factor=self.itype.compute_factor,
            network_bandwidth=self.itype.network_bandwidth,
        )

    def grow(self, region: EC2Region, count: int) -> list[VM]:
        """Add worker nodes (used by the S2 scheme when a later pilot
        needs a bigger cluster than the current one)."""
        new = region.run_instances(self.itype, count)
        for vm in new:
            self.adopt_vm(vm)
        return new

    def adopt_vm(self, vm: VM) -> None:
        """Register an already-RUNNING VM as a worker node (elastic
        growth lands its asynchronously provisioned VMs through here)."""
        if vm.state is not VMState.RUNNING:
            raise ClusterError(f"{vm.vm_id} is not running")
        if vm.itype.name != self.itype.name:
            raise ClusterError(
                f"cluster is {self.itype.name}; cannot adopt {vm.itype.name}"
            )
        vm.label = self.name
        self.vms.append(vm)
        self.scheduler.slots_total[vm.vm_id] = vm.itype.vcpus
        self.scheduler.slots_free[vm.vm_id] = vm.itype.vcpus
        self.scheduler._try_schedule()

    def lose_vm(self, vm: VM) -> list:
        """A worker was reclaimed under us (spot preemption): drop it
        and fail the SGE jobs that were running on it.

        The head node anchors the shared filesystem and the SGE qmaster;
        losing it kills the whole cluster, so it must be kept on-demand
        (a :class:`ClusterError` here is a modelling bug, not a
        recoverable event).  Tolerates VMs already dropped (the
        preemption/teardown race) by returning no failed jobs.
        """
        if vm not in self.vms:
            return []
        if vm is self.head:
            raise ClusterError(
                f"head node {vm.vm_id} lost: cluster {self.name} is down"
            )
        self.vms.remove(vm)
        return self.scheduler.remove_node(vm.vm_id)

    def shrink_to(self, region: EC2Region, keep: int) -> list[VM]:
        """Terminate all but the first ``keep`` nodes (idle ones only)."""
        if keep < 1:
            raise ClusterError("must keep at least the head node")
        doomed = self.vms[keep:]
        busy = [
            vm.vm_id
            for vm in doomed
            if self.scheduler.slots_free.get(vm.vm_id)
            != self.scheduler.slots_total.get(vm.vm_id)
        ]
        if busy:
            raise ClusterError(f"cannot shrink: nodes busy {busy}")
        for vm in doomed:
            self.scheduler.slots_total.pop(vm.vm_id, None)
            self.scheduler.slots_free.pop(vm.vm_id, None)
            region.terminate(vm)
        self.vms = self.vms[:keep]
        return doomed


def build_cluster(
    region: EC2Region,
    events: EventQueue,
    itype: InstanceType | str,
    n_nodes: int,
    name: str = "starcluster",
    setup_seconds: float = DEFAULT_SETUP_SECONDS,
) -> Cluster:
    """Launch VMs and configure them as an SGE cluster (StarCluster)."""
    if n_nodes < 1:
        raise ClusterError("n_nodes must be >= 1")
    t0 = region.clock.now
    vms = region.run_instances(itype, n_nodes)
    for vm in vms:
        vm.label = name
    region.clock.advance(setup_seconds)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.add_span(
            f"cluster.setup:{name}",
            v_start=t0,
            v_end=region.clock.now,
            category="cloud",
            process="ec2",
            cluster=name,
            n_nodes=n_nodes,
            instance_type=vms[0].itype.name,
        )
    scheduler = SGEScheduler(events, {vm.vm_id: vm.itype.vcpus for vm in vms})
    return Cluster(name=name, vms=vms, scheduler=scheduler, events=events)


def cluster_from_vms(
    vms: list[VM], events: EventQueue, name: str = "cluster"
) -> Cluster:
    """Wrap already-running VMs as a cluster (the S2 reuse path)."""
    for vm in vms:
        if vm.state is not VMState.RUNNING:
            raise ClusterError(f"{vm.vm_id} is not running")
        vm.label = name
    scheduler = SGEScheduler(events, {vm.vm_id: vm.itype.vcpus for vm in vms})
    return Cluster(name=name, vms=vms, scheduler=scheduler, events=events)
