"""Region-level EC2-style API: run, track and terminate instances.

On-demand semantics per the paper's §IV.C: the *user* (here, the pilot
layer's S1/S2 matching schemes) decides when VMs start and stop, pays the
provisioning delay on every launch, and is billed whole instance-hours on
termination.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cloud.billing import BillingLedger
from repro.cloud.clock import SimClock
from repro.cloud.instances import InstanceType, get_instance_type
from repro.cloud.vm import VM, VMError, VMState
from repro.obs import get_tracer

#: Time from RunInstances to a usable node (boot + contextualization).
DEFAULT_PROVISION_SECONDS = 90.0


@dataclass
class EC2Region:
    """A simulated region bound to a virtual clock."""

    clock: SimClock
    provision_seconds: float = DEFAULT_PROVISION_SECONDS
    ledger: BillingLedger = field(default_factory=BillingLedger)
    vms: dict[str, VM] = field(default_factory=dict)
    _ids: itertools.count = field(default_factory=itertools.count, repr=False)

    def run_instances(
        self, itype: InstanceType | str, count: int = 1
    ) -> list[VM]:
        """Launch ``count`` VMs; the clock advances past provisioning.

        Returns RUNNING VMs (the paper's pipeline always blocks on
        readiness before submitting work; fleets provision in parallel so
        one delay covers the whole batch).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if isinstance(itype, str):
            itype = get_instance_type(itype)
        launched_at = self.clock.now
        batch = []
        for _ in range(count):
            vm = VM(
                vm_id=f"i-{next(self._ids):06d}",
                itype=itype,
                launched_at=launched_at,
            )
            self.vms[vm.vm_id] = vm
            batch.append(vm)
        self.clock.advance(self.provision_seconds)
        for vm in batch:
            vm.mark_running(self.clock.now)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                "vm.provision",
                v_start=launched_at,
                v_end=self.clock.now,
                category="cloud",
                process="ec2",
                count=count,
                instance_type=itype.name,
                vm_ids=[vm.vm_id for vm in batch],
            )
            tracer.count("vms_launched", count)
            tracer.gauge("vms_running", len(self.running()))
        return batch

    def launch_async(
        self,
        itype: InstanceType | str,
        count: int,
        events,
        on_ready=None,
    ) -> list[VM]:
        """Launch VMs without blocking the clock (elastic replenishment).

        Unlike :meth:`run_instances`, which advances the clock past the
        provisioning window, this schedules readiness as an event
        ``provision_seconds`` in the future — so it is safe to call while
        other events are pending (mid-run growth from an event callback
        would otherwise move the clock past them).  The VMs are returned
        PENDING; ``on_ready(batch)`` fires once they are RUNNING.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if isinstance(itype, str):
            itype = get_instance_type(itype)
        launched_at = self.clock.now
        batch = []
        for _ in range(count):
            vm = VM(
                vm_id=f"i-{next(self._ids):06d}",
                itype=itype,
                launched_at=launched_at,
            )
            self.vms[vm.vm_id] = vm
            batch.append(vm)

        def _ready() -> None:
            for vm in batch:
                vm.mark_running(self.clock.now)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.add_span(
                    "vm.provision",
                    v_start=launched_at,
                    v_end=self.clock.now,
                    category="cloud",
                    process="ec2",
                    count=len(batch),
                    instance_type=batch[0].itype.name,
                    vm_ids=[vm.vm_id for vm in batch],
                    asynchronous=True,
                )
                tracer.count("vms_launched", len(batch))
                tracer.gauge("vms_running", len(self.running()))
            if on_ready is not None:
                on_ready(batch)

        events.schedule_in(self.provision_seconds, _ready, tag="ec2.provision")
        return batch

    def terminate(self, vm: VM) -> None:
        """Terminate and bill one VM."""
        if vm.vm_id not in self.vms:
            raise VMError(f"unknown VM {vm.vm_id}")
        vm.mark_terminated(self.clock.now)
        line = self.ledger.charge_vm(vm, self.clock.now)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                "vm.lifetime",
                v_start=vm.launched_at,
                v_end=self.clock.now,
                category="cloud",
                process="ec2",
                thread=vm.vm_id,
                vm_id=vm.vm_id,
                pilot=vm.label,
                instance_type=vm.itype.name,
                hours_billed=line.hours_billed,
                cost_usd=line.cost,
            )
            tracer.count("vms_terminated")
            tracer.count("billed_usd", line.cost)
            tracer.gauge("vms_running", len(self.running()))

    def preempt(self, vm: VM):
        """The cloud reclaims a spot/preemptible VM.

        Idempotent: racing normal teardown is legal and bills nothing
        twice.  Billing runs up to the preemption time (the kill path),
        not to some later teardown.  Returns the billing line, or
        ``None`` when the VM was already terminated.
        """
        if vm.vm_id not in self.vms:
            raise VMError(f"unknown VM {vm.vm_id}")
        if not vm.kill(self.clock.now, preempted=True):
            return None
        line = self.ledger.charge_vm(vm, self.clock.now)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                "vm.lifetime",
                v_start=vm.launched_at,
                v_end=self.clock.now,
                category="cloud",
                process="ec2",
                thread=vm.vm_id,
                vm_id=vm.vm_id,
                pilot=vm.label,
                instance_type=vm.itype.name,
                hours_billed=line.hours_billed,
                cost_usd=line.cost,
                preempted=True,
            )
            tracer.event(
                "vm.preempt",
                category="cloud",
                process="ec2",
                thread=vm.vm_id,
                instance_type=vm.itype.name,
            )
            tracer.count("vms_preempted")
            tracer.count("billed_usd", line.cost)
            tracer.gauge("vms_running", len(self.running()))
        return line

    def terminate_all(self, vms: list[VM] | None = None) -> None:
        targets = vms if vms is not None else list(self.vms.values())
        for vm in targets:
            if vm.state is not VMState.TERMINATED:
                self.terminate(vm)

    def running(self) -> list[VM]:
        return [v for v in self.vms.values() if v.state is VMState.RUNNING]

    @property
    def total_cost(self) -> float:
        return self.ledger.total_cost
