"""An SGE-like batch scheduler over a fixed set of nodes.

The paper's clusters are StarCluster-built EC2 nodes running Sun Grid
Engine; MPI jobs (Ray/ABySS) and Hadoop jobs (Contrail) are all submitted
to SGE (§IV.C).  This model keeps the parts the experiments exercise:
slot accounting per node, a FIFO queue with parallel-environment
allocation spanning nodes, and event-driven start/finish on the virtual
clock.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.cloud.clock import EventQueue
from repro.obs import get_tracer


class SGEError(RuntimeError):
    pass


class JobState(enum.Enum):
    QUEUED = "qw"
    RUNNING = "r"
    DONE = "done"
    FAILED = "failed"


@dataclass
class SGEJob:
    """One batch job.

    ``duration`` may be a number of virtual seconds or a callable taking
    the slot allocation (``{node: slots}``) and returning seconds — used
    when TTC depends on how many nodes the scheduler actually granted.
    """

    name: str
    slots: int
    duration: float | Callable[[dict[str, int]], float]
    on_complete: Callable[["SGEJob"], None] | None = None
    #: Invoked when the job dies without completing (node loss under
    #: preemption); exactly one of on_complete/on_fail ever fires.
    on_fail: Callable[["SGEJob"], None] | None = None
    job_id: int = -1
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    allocation: dict[str, int] = field(default_factory=dict)
    error: str | None = None

    @property
    def wait_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def run_seconds(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at


class SGEScheduler:
    """FIFO scheduler with fill-up parallel-environment allocation."""

    def __init__(self, events: EventQueue, nodes: dict[str, int]) -> None:
        """``nodes`` maps node name to slot count."""
        if not nodes:
            raise SGEError("scheduler needs at least one node")
        self.events = events
        self.slots_total = dict(nodes)
        self.slots_free = dict(nodes)
        self.queue: list[SGEJob] = []
        self.jobs: dict[int, SGEJob] = {}
        self._ids = itertools.count(1)

    @property
    def total_slots(self) -> int:
        return sum(self.slots_total.values())

    def qsub(self, job: SGEJob) -> int:
        """Submit a job; returns its id."""
        if job.slots < 1:
            raise SGEError("job needs at least one slot")
        if job.slots > self.total_slots:
            raise SGEError(
                f"job {job.name!r} wants {job.slots} slots; cluster has "
                f"{self.total_slots}"
            )
        job.job_id = next(self._ids)
        job.submitted_at = self.events.clock.now
        self.jobs[job.job_id] = job
        self.queue.append(job)
        self._try_schedule()
        return job.job_id

    def qstat(self) -> dict[str, int]:
        """Counts by state, qstat-style."""
        out = {s.value: 0 for s in JobState}
        for j in self.jobs.values():
            out[j.state.value] += 1
        return out

    def run_to_completion(self) -> None:
        """Drain the event queue until all jobs finish."""
        self.events.run()
        stuck = [j for j in self.jobs.values() if j.state is JobState.QUEUED]
        if stuck:
            raise SGEError(f"jobs never scheduled: {[j.name for j in stuck]}")

    # -- internals ---------------------------------------------------------

    def _try_schedule(self) -> None:
        """FIFO: start head-of-queue jobs while they fit (no skip-ahead,
        like SGE's default seqno policy without backfill)."""
        while self.queue:
            job = self.queue[0]
            alloc = self._allocate(job.slots)
            if alloc is None:
                return
            self.queue.pop(0)
            self._start(job, alloc)

    def _allocate(self, slots: int) -> dict[str, int] | None:
        """Fill-up allocation: pack nodes with the most free slots first."""
        free = sorted(
            ((n, s) for n, s in self.slots_free.items() if s > 0),
            key=lambda kv: (-kv[1], kv[0]),
        )
        alloc: dict[str, int] = {}
        need = slots
        for node, avail in free:
            take = min(avail, need)
            alloc[node] = take
            need -= take
            if need == 0:
                return alloc
        return None

    def _start(self, job: SGEJob, alloc: dict[str, int]) -> None:
        for node, n in alloc.items():
            self.slots_free[node] -= n
        job.allocation = alloc
        job.state = JobState.RUNNING
        job.started_at = self.events.clock.now
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "sge.start",
                category="sge",
                process="sge",
                thread=job.name,
                job_id=job.job_id,
                slots=job.slots,
                nodes=len(alloc),
                wait_seconds=job.wait_seconds,
            )
        duration = (
            job.duration(alloc) if callable(job.duration) else float(job.duration)
        )
        if duration < 0:
            raise SGEError(f"negative duration for job {job.name!r}")
        self.events.schedule_in(
            duration, lambda: self._finish(job), tag=f"sge.finish:{job.name}"
        )

    def remove_node(self, node: str) -> list[SGEJob]:
        """A node died (spot preemption): drop its slots, fail the jobs
        running on it, and fail queued jobs that can no longer ever fit.

        Returns the failed jobs.  Running jobs allocated on the dead
        node are not requeued here — recovery is the *pilot* layer's
        job (restart machinery), not the batch scheduler's.
        """
        if node not in self.slots_total:
            return []
        victims = [
            j
            for j in self.jobs.values()
            if j.state is JobState.RUNNING and node in j.allocation
        ]
        del self.slots_total[node]
        del self.slots_free[node]
        for job in victims:
            self._fail(job, f"node {node} lost")
        # Queued jobs sized for the pre-loss cluster may now exceed total
        # capacity; they would sit in the queue forever.
        for job in list(self.queue):
            if job.slots > self.total_slots:
                self.queue.remove(job)
                self._fail(job, f"insufficient slots after losing {node}")
                victims.append(job)
        self._try_schedule()
        return victims

    def _fail(self, job: SGEJob, error: str) -> None:
        """Mark a job FAILED, release its surviving slots, notify."""
        job.state = JobState.FAILED
        job.error = error
        job.finished_at = self.events.clock.now
        for node, n in job.allocation.items():
            if node in self.slots_free:
                self.slots_free[node] += n
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("sge_jobs_failed")
            tracer.event(
                "sge.fail",
                category="sge",
                process="sge",
                thread=job.name,
                job_id=job.job_id,
                error=error,
            )
        if job.on_fail is not None:
            job.on_fail(job)

    def _finish(self, job: SGEJob) -> None:
        if job.state is not JobState.RUNNING:
            # The finish event of a job that already died (node loss)
            # still sits on the heap — events cannot be cancelled.
            return
        job.state = JobState.DONE
        job.finished_at = self.events.clock.now
        for node, n in job.allocation.items():
            self.slots_free[node] += n
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                f"sge:{job.name}",
                v_start=job.started_at,
                v_end=job.finished_at,
                category="sge",
                process="sge",
                thread=job.name,
                job_id=job.job_id,
                slots=job.slots,
                nodes=len(job.allocation),
                wait_seconds=job.wait_seconds,
            )
            tracer.count("sge_jobs_done")
            tracer.observe("sge_wait_seconds", job.wait_seconds)
        if job.on_complete is not None:
            job.on_complete(job)
        self._try_schedule()
