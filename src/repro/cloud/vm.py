"""Virtual machine lifecycle and memory accounting."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cloud.instances import InstanceType


class VMState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    TERMINATED = "terminated"


class VMError(RuntimeError):
    """Illegal VM operation (double terminate, using a dead VM, ...)."""


class OutOfMemoryError(RuntimeError):
    """A task's footprint exceeded the VM's memory — the single-node
    failure mode the paper's Table IV documents."""


@dataclass
class VM:
    """One virtual machine instance."""

    vm_id: str
    itype: InstanceType
    launched_at: float
    state: VMState = VMState.PENDING
    running_at: float | None = None
    terminated_at: float | None = None
    #: True when the cloud reclaimed this VM (spot preemption) rather
    #: than the user terminating it.
    preempted: bool = False
    #: Which cluster/pilot this VM serves (set by the cluster layer so
    #: billing spans can be attributed to a pilot); ``None`` until bound.
    label: str | None = None
    _reserved_bytes: int = field(default=0, repr=False)

    def mark_running(self, now: float) -> None:
        if self.state is not VMState.PENDING:
            raise VMError(f"{self.vm_id}: cannot start from {self.state}")
        self.state = VMState.RUNNING
        self.running_at = now

    def mark_terminated(self, now: float) -> None:
        if self.state is VMState.TERMINATED:
            raise VMError(f"{self.vm_id}: already terminated")
        self.state = VMState.TERMINATED
        self.terminated_at = now

    def kill(self, now: float, preempted: bool = True) -> bool:
        """Forced termination (spot reclaim, crash): legal from any
        state and idempotent, unlike :meth:`mark_terminated` — an
        external kill racing normal teardown must not crash the sim.

        Returns ``True`` if this call terminated the VM, ``False`` if it
        was already dead (the race).  :meth:`billable_seconds` then runs
        up to the kill time only.
        """
        if self.state is VMState.TERMINATED:
            return False
        self.state = VMState.TERMINATED
        self.terminated_at = now
        self.preempted = preempted
        return True

    # -- memory ---------------------------------------------------------------

    @property
    def memory_free(self) -> int:
        return self.itype.memory_bytes - self._reserved_bytes

    def reserve_memory(self, n_bytes: int) -> None:
        """Claim ``n_bytes``; raises :class:`OutOfMemoryError` on overflow."""
        if self.state is not VMState.RUNNING:
            raise VMError(f"{self.vm_id}: not running")
        if n_bytes < 0:
            raise ValueError("cannot reserve negative memory")
        if n_bytes > self.memory_free:
            raise OutOfMemoryError(
                f"{self.vm_id} ({self.itype.name}): task needs "
                f"{n_bytes / 1024**3:.1f} GiB but only "
                f"{self.memory_free / 1024**3:.1f} GiB free"
            )
        self._reserved_bytes += n_bytes

    def release_memory(self, n_bytes: int) -> None:
        if n_bytes < 0 or n_bytes > self._reserved_bytes:
            raise ValueError("releasing memory that was not reserved")
        self._reserved_bytes -= n_bytes

    # -- billing helpers --------------------------------------------------------

    def billable_seconds(self, now: float) -> float:
        """Seconds from launch until termination (or ``now`` if running).

        EC2 bills from launch request, including the provisioning window.
        """
        end = self.terminated_at if self.terminated_at is not None else now
        return max(0.0, end - self.launched_at)
