"""Per-hour billing, as EC2 charged in 2016 (full instance-hours).

The paper reports the sample run's cost ($20.28 for 36 VMs over
~2 h 47 min); the ledger reproduces that arithmetic: every VM is billed
``ceil(uptime / 3600) * price_per_hour``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.vm import VM


@dataclass(frozen=True)
class BillingLine:
    vm_id: str
    instance_type: str
    seconds: float
    hours_billed: int
    cost: float


@dataclass
class BillingLedger:
    """Accumulates VM charges."""

    lines: list[BillingLine] = field(default_factory=list)

    def charge_vm(self, vm: VM, now: float) -> BillingLine:
        """Bill one VM for its lifetime so far (idempotence is the
        caller's responsibility — EC2 bills on termination)."""
        seconds = vm.billable_seconds(now)
        hours = max(1, math.ceil(seconds / 3600.0 - 1e-9)) if seconds > 0 else 0
        line = BillingLine(
            vm_id=vm.vm_id,
            instance_type=vm.itype.name,
            seconds=seconds,
            hours_billed=hours,
            cost=hours * vm.itype.price_per_hour,
        )
        self.lines.append(line)
        return line

    @property
    def total_cost(self) -> float:
        return sum(l.cost for l in self.lines)

    def cost_by_type(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for l in self.lines:
            out[l.instance_type] = out.get(l.instance_type, 0.0) + l.cost
        return out

    def report(self) -> str:
        """Human-readable cost breakdown."""
        rows = [f"{'vm':14s} {'type':12s} {'hours':>5s} {'cost':>8s}"]
        for l in self.lines:
            rows.append(
                f"{l.vm_id:14s} {l.instance_type:12s} {l.hours_billed:5d} "
                f"{l.cost:8.2f}"
            )
        rows.append(f"{'TOTAL':33s}{self.total_cost:8.2f} USD")
        return "\n".join(rows)
