"""Assembler registry — the paper's Table I plus the single-node options.

Maps assembler names to constructors and carries the metadata the paper
tabulates (graph type, distributed implementation, the version of the real
tool each one stands in for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class AssemblerInfo:
    """Metadata for one integrated assembler (Table I row)."""

    name: str
    graph_type: str  # "DBG"
    distributed_impl: str  # "MPI" | "Hadoop MapReduce" | "none"
    analog_of_version: str
    scalable: bool  # can run on multi-node shared-nothing systems
    factory: Callable[[], object]


def _velvet():
    from repro.assembly.velvet import VelvetAssembler

    return VelvetAssembler()


def _ray():
    from repro.assembly.ray import RayAssembler

    return RayAssembler()


def _abyss():
    from repro.assembly.abyss import AbyssAssembler

    return AbyssAssembler()


def _contrail():
    from repro.assembly.contrail import ContrailAssembler

    return ContrailAssembler()


def _trinity():
    from repro.assembly.trinity import TrinityAssembler

    return TrinityAssembler()


ASSEMBLERS: dict[str, AssemblerInfo] = {
    "ray": AssemblerInfo(
        name="ray",
        graph_type="DBG",
        distributed_impl="MPI",
        analog_of_version="Ray 2.3.1",
        scalable=True,
        factory=_ray,
    ),
    "abyss": AssemblerInfo(
        name="abyss",
        graph_type="DBG",
        distributed_impl="MPI",
        analog_of_version="ABySS 1.9.0",
        scalable=True,
        factory=_abyss,
    ),
    "contrail": AssemblerInfo(
        name="contrail",
        graph_type="DBG",
        distributed_impl="Hadoop MapReduce",
        analog_of_version="Contrail 0.8.2",
        scalable=True,
        factory=_contrail,
    ),
    "velvet": AssemblerInfo(
        name="velvet",
        graph_type="DBG",
        distributed_impl="none",
        analog_of_version="Velvet 1.2",
        scalable=False,
        factory=_velvet,
    ),
    "trinity": AssemblerInfo(
        name="trinity",
        graph_type="DBG",
        distributed_impl="none",
        analog_of_version="Trinity 2.1.1",
        scalable=False,
        factory=_trinity,
    ),
}

#: The three multi-node assemblers benchmarked in the paper (Table I).
TABLE1_ASSEMBLERS = ("ray", "abyss", "contrail")


def get_assembler(name: str):
    """Instantiate an assembler by registry name."""
    try:
        return ASSEMBLERS[name].factory()
    except KeyError:
        raise KeyError(
            f"unknown assembler {name!r}; available: {sorted(ASSEMBLERS)}"
        ) from None
