"""Shared assembler plumbing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.assembly.contigs import Contig
from repro.assembly.dbg import Unitig
from repro.seq.alphabet import reverse_complement
from repro.seq.fastq import FastqRecord


@dataclass(frozen=True)
class AssemblyParams:
    """Parameters common to every assembler."""

    k: int
    min_count: int = 2          # coverage threshold for solid k-mers
    min_contig_length: int = 100
    clip_tips: bool = True
    pop_bubbles: bool = True

    def __post_init__(self) -> None:
        if self.k < 3:
            raise ValueError("k must be >= 3")
        if self.min_count < 1:
            raise ValueError("min_count must be >= 1")
        if self.min_contig_length < self.k:
            raise ValueError("min_contig_length must be >= k")


def unitigs_to_contigs(
    unitigs: list[Unitig],
    params: AssemblyParams,
    assembler: str,
) -> list[Contig]:
    """Filter unitigs by length and materialize Contig records.

    Sequences are emitted in canonical strand orientation (lexicographic
    minimum of the two strands) so output is independent of the seed
    order the walk happened to use — serial and distributed assemblies of
    the same spectrum produce byte-identical contigs.
    """
    oriented = [
        (min(u.seq, reverse_complement(u.seq)), u)
        for u in unitigs
        if len(u) >= params.min_contig_length
    ]
    oriented.sort(key=lambda pair: (-len(pair[0]), pair[0]))
    return [
        Contig(
            contig_id=f"{assembler}_k{params.k}_c{i:06d}",
            seq=seq,
            coverage=u.coverage,
            k=params.k,
            assembler=assembler,
        )
        for i, (seq, u) in enumerate(oriented)
    ]


def read_sequences(reads: list[FastqRecord]) -> list[str]:
    return [r.seq for r in reads]


def assemble_encoded(assembler, store, params: AssemblyParams, **kwargs):
    """Run one assembly from a :class:`~repro.seq.readstore.ReadStore`.

    Dispatches to the assembler's array-native ``assemble_encoded``
    entry point when it has one; otherwise adapts through the legacy
    record path by materializing ``FastqRecord`` objects once.  All
    in-tree assemblers implement the native path — the fallback keeps
    third-party/duck-typed assemblers working unchanged.
    """
    native = getattr(assembler, "assemble_encoded", None)
    if native is not None:
        return native(store, params, **kwargs)
    return assembler.assemble(store.records(), params, **kwargs)
