"""De novo de Bruijn graph assemblers.

Functional Python analogs of the assemblers the paper integrates
(Table I) plus the Trinity baseline used in Table V:

=========  =====================  ==========================================
Name       Distributed runtime    Analog of
=========  =====================  ==========================================
velvet     (single node)          Velvet — serial DBG assembler
ray        ``parallel.comm``      Ray 2.3.1 — MPI, message-driven extension
abyss      ``parallel.comm``      ABySS 1.9.0 — MPI, serial master merge
contrail   ``parallel.mapreduce`` Contrail 0.8.2 — Hadoop MapReduce rounds
trinity    (single node)          Trinity 2.1.1 — independent baseline
=========  =====================  ==========================================

All of them consume reads and produce :class:`~repro.assembly.contigs.Contig`
lists plus a measured :class:`~repro.parallel.usage.ResourceUsage`.
"""

from repro.assembly.contigs import AssemblyResult, Contig, assembly_stats, n50
from repro.assembly.dbg import (
    KmerTable,
    build_kmer_table,
    build_kmer_table_packed,
    extract_unitigs,
)
from repro.assembly.kmers import (
    canonical_kmers,
    canonical_kmers_packed,
    canonical_kmers_varlen_packed,
    kmer_counts,
    kmer_counts_packed,
    kmer_owner,
    kmer_owner_packed,
    reads_to_code_matrix,
)
from repro.assembly.registry import ASSEMBLERS, AssemblerInfo, get_assembler

__all__ = [
    "Contig",
    "AssemblyResult",
    "assembly_stats",
    "n50",
    "KmerTable",
    "build_kmer_table",
    "build_kmer_table_packed",
    "extract_unitigs",
    "canonical_kmers",
    "canonical_kmers_packed",
    "canonical_kmers_varlen_packed",
    "kmer_counts",
    "kmer_counts_packed",
    "kmer_owner",
    "kmer_owner_packed",
    "reads_to_code_matrix",
    "ASSEMBLERS",
    "AssemblerInfo",
    "get_assembler",
]
