"""Frozen bytes-dict k-mer engine — the pre-packed reference implementation.

This module preserves the original ``dict[bytes, int]`` k-mer table, the
one-probe-at-a-time unitig walker and the bytes-payload assembler drivers
exactly as they were before the packed-integer engine replaced them on
the hot paths.  It exists for two purposes:

* **parity tests** (``tests/assembly/test_parity.py``) prove the packed
  engine reproduces this implementation bit-for-bit — same contigs, same
  per-phase work charges, same communication bytes and message counts;
* the **engine benchmark** (``benchmarks/test_kmer_engine.py``) times the
  packed engine against this reference on the Fig. 4 Ray-scaling
  workload and records the speedup.

Nothing here should be changed together with the live engine — that
would defeat the point of having a reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.assembly.base import AssemblyParams, unitigs_to_contigs
from repro.assembly.cleanup import clean_unitigs
from repro.assembly.contigs import AssemblyResult, assembly_stats
from repro.assembly.dbg import KMER_RECORD_BYTES, Unitig
from repro.assembly.kmers import (
    canonical,
    canonical_kmers,
    canonical_kmers_varlen,
    kmer_counts,
    kmer_owner,
    revcomp_kmer,
)
from repro.parallel.comm import SimWorld
from repro.parallel.mapreduce import MapReduceEngine, MRJob
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.seq import alphabet
from repro.seq.fastq import FastqRecord

_BASES = (0, 1, 2, 3)


@dataclass
class LegacyKmerTable:
    """Canonical k-mer -> coverage count, as a plain Python dict."""

    k: int
    counts: dict[bytes, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, oriented: bytes) -> bool:
        return canonical(oriented) in self.counts

    def coverage(self, oriented: bytes) -> int:
        return self.counts.get(canonical(oriented), 0)

    def drop_below(self, min_count: int) -> int:
        doomed = [k for k, c in self.counts.items() if c < min_count]
        for k in doomed:
            del self.counts[k]
        return len(doomed)

    def memory_bytes(self) -> int:
        return len(self.counts) * KMER_RECORD_BYTES

    def successors(self, oriented: bytes) -> list[bytes]:
        suffix = oriented[1:]
        out = []
        for b in _BASES:
            nxt = suffix + bytes([b])
            if canonical(nxt) in self.counts:
                out.append(nxt)
        return out

    def predecessors(self, oriented: bytes) -> list[bytes]:
        prefix = oriented[:-1]
        out = []
        for b in _BASES:
            prv = bytes([b]) + prefix
            if canonical(prv) in self.counts:
                out.append(prv)
        return out


def legacy_build_kmer_table(k: int, counts: dict[bytes, int]) -> LegacyKmerTable:
    """Wrap a counts dict (keys must already be canonical)."""
    return LegacyKmerTable(k=k, counts=dict(counts))


def _walk(
    table: LegacyKmerTable,
    start: bytes,
    visited: set[bytes],
) -> tuple[list[int], float, int]:
    """Walk right then left from ``start``; returns (codes, cov, steps)."""
    chain = list(start)
    cov_sum = table.coverage(start)
    n = 1
    visited.add(canonical(start))

    cur = start
    while True:
        nxts = table.successors(cur)
        if len(nxts) != 1:
            break
        nxt = nxts[0]
        if canonical(nxt) in visited:
            break  # loop or palindromic re-entry
        if len(table.predecessors(nxt)) != 1:
            break  # converging branch
        chain.append(nxt[-1])
        visited.add(canonical(nxt))
        cov_sum += table.coverage(nxt)
        n += 1
        cur = nxt

    cur = revcomp_kmer(start)
    left: list[int] = []
    while True:
        nxts = table.successors(cur)
        if len(nxts) != 1:
            break
        nxt = nxts[0]
        if canonical(nxt) in visited:
            break
        if len(table.predecessors(nxt)) != 1:
            break
        left.append(nxt[-1])
        visited.add(canonical(nxt))
        cov_sum += table.coverage(nxt)
        n += 1
        cur = nxt

    if left:
        prefix = revcomp_kmer(bytes(left))
        chain = list(prefix) + chain
    return chain, cov_sum / n, n


def legacy_extract_unitigs(
    table: LegacyKmerTable,
    seeds: Iterator[bytes] | None = None,
    visited: set[bytes] | None = None,
) -> tuple[list[Unitig], int]:
    """Extract all unitigs one probe at a time; (unitigs, total_steps)."""
    if visited is None:
        visited = set()
    if seeds is None:
        seeds = iter(sorted(table.counts.keys()))

    unitigs: list[Unitig] = []
    steps = 0
    for seed in seeds:
        if seed in visited or seed not in table.counts:
            continue
        chain, cov, n = _walk(table, seed, visited)
        steps += n
        unitigs.append(
            Unitig(codes=np.frombuffer(bytes(chain), dtype=np.uint8).copy(),
                   coverage=cov, n_kmers=n)
        )
    return unitigs, steps


# -- assembler drivers (bytes payloads, dict shards) --------------------------


def reference_distribute_and_count(
    world: SimWorld,
    reads: list[FastqRecord],
    k: int,
    kind_prefix: str = "",
) -> list[dict[bytes, int]]:
    """The original shared first half of the MPI assemblers."""
    p = world.size

    with world.phase(f"{kind_prefix}kmer_extract", kind="kmer"):
        send: list[list[np.ndarray]] = [[None] * p for _ in range(p)]
        for r in world.ranks():
            local_reads = reads[r::p]
            kmers = canonical_kmers_varlen([x.seq for x in local_reads], k)
            world.charge(r, float(kmers.shape[0]))
            owners = kmer_owner(kmers, p)
            for dst in range(p):
                send[r][dst] = kmers[owners == dst]
        recv = world.alltoall(send)

    with world.phase(f"{kind_prefix}kmer_count", kind="kmer"):
        shards: list[dict[bytes, int]] = []
        for r in world.ranks():
            mine = [m for m in recv[r] if m is not None and m.size]
            stacked = (
                np.concatenate(mine, axis=0)
                if mine
                else np.zeros((0, k), dtype=np.uint8)
            )
            world.charge(r, float(stacked.shape[0]))
            shard = kmer_counts(stacked)
            shards.append(shard)
            world.record_memory(r, len(shard) * KMER_RECORD_BYTES)
    return shards


def reference_velvet_assemble(
    reads: list[FastqRecord],
    params: AssemblyParams,
    n_threads: int = 8,
) -> AssemblyResult:
    """The original serial (Velvet-analog) assembly on the dict engine."""
    usage = ResourceUsage(n_ranks=1)

    kmers = canonical_kmers_varlen([r.seq for r in reads], params.k)
    usage.add_phase(
        PhaseUsage(
            name="kmer_count",
            kind="kmer",
            critical_compute=kmers.shape[0] / max(n_threads, 1),
            total_compute=float(kmers.shape[0]),
        )
    )

    table = legacy_build_kmer_table(params.k, kmer_counts(kmers))
    table.drop_below(params.min_count)
    usage.peak_rank_memory_bytes = table.memory_bytes()
    usage.add_phase(
        PhaseUsage(
            name="graph_build",
            kind="graph",
            critical_compute=float(len(table)),
            total_compute=float(len(table)),
        )
    )

    unitigs, steps = legacy_extract_unitigs(table)
    unitigs, cstats = clean_unitigs(
        unitigs, params.k, clip=params.clip_tips, pop=params.pop_bubbles
    )
    usage.add_phase(
        PhaseUsage(
            name="unitig_walk",
            kind="walk",
            critical_compute=float(steps + cstats.work),
            total_compute=float(steps + cstats.work),
        )
    )

    contigs = unitigs_to_contigs(unitigs, params, "velvet")
    return AssemblyResult(
        assembler="velvet",
        k=params.k,
        contigs=contigs,
        usage=usage,
        stats={
            "distinct_kmers": len(table),
            "tips_removed": cstats.tips_removed,
            "bubbles_popped": cstats.bubbles_popped,
            **assembly_stats(contigs),
        },
    )


def reference_ray_assemble(
    reads: list[FastqRecord],
    params: AssemblyParams,
    n_ranks: int = 8,
) -> AssemblyResult:
    """The original Ray-analog assembly on the dict engine."""
    world = SimWorld(n_ranks)
    p = world.size
    k = params.k

    shards = reference_distribute_and_count(world, reads, k)

    with world.phase("graph_build", kind="graph"):
        for r in world.ranks():
            shard = shards[r]
            doomed = [km for km, c in shard.items() if c < params.min_count]
            for km in doomed:
                del shard[km]
            world.charge(r, float(len(shard) + len(doomed)))
            world.record_memory(r, len(shard) * KMER_RECORD_BYTES)

    merged: dict[bytes, int] = {}
    for shard in shards:
        merged.update(shard)
    table = LegacyKmerTable(k=k, counts=merged)

    with world.phase("extension_walk", kind="walk"):
        visited: set[bytes] = set()
        all_unitigs = []
        total_probes = 0
        for r in world.ranks():
            seeds = sorted(shards[r].keys())
            unitigs, steps = legacy_extract_unitigs(table, iter(seeds), visited)
            all_unitigs.extend(unitigs)
            world.charge(r, float(steps))
            total_probes += int(steps * 8 * (p - 1) / p)
        world.count_messages(total_probes)

    with world.phase("cleanup", kind="walk"):
        all_unitigs, cstats = clean_unitigs(
            all_unitigs, k, clip=params.clip_tips, pop=params.pop_bubbles
        )
        for r in world.ranks():
            world.charge(r, float(cstats.work) / p)

    contigs = unitigs_to_contigs(all_unitigs, params, "ray")
    return AssemblyResult(
        assembler="ray",
        k=k,
        contigs=contigs,
        usage=world.usage,
        stats={
            "n_ranks": p,
            "distinct_kmers": len(table),
            "tips_removed": cstats.tips_removed,
            "bubbles_popped": cstats.bubbles_popped,
            **assembly_stats(contigs),
        },
    )


def reference_abyss_assemble(
    reads: list[FastqRecord],
    params: AssemblyParams,
    n_ranks: int = 8,
) -> AssemblyResult:
    """The original ABySS-analog assembly on the dict engine."""
    world = SimWorld(n_ranks)
    p = world.size
    k = params.k

    shards = reference_distribute_and_count(world, reads, k)

    with world.phase("graph_build", kind="graph"):
        for r in world.ranks():
            shard = shards[r]
            doomed = [km for km, c in shard.items() if c < params.min_count]
            for km in doomed:
                del shard[km]
            world.charge(r, float(len(shard) + len(doomed)))
            world.record_memory(r, len(shard) * KMER_RECORD_BYTES)

    merged: dict[bytes, int] = {}
    for shard in shards:
        merged.update(shard)
    table = LegacyKmerTable(k=k, counts=merged)

    with world.phase("unitig_rounds", kind="walk"):
        visited: set[bytes] = set()
        all_unitigs = []
        per_rank_unitigs: list[list] = []
        total_probes = 0
        for r in world.ranks():
            seeds = sorted(shards[r].keys())
            unitigs, steps = legacy_extract_unitigs(table, iter(seeds), visited)
            all_unitigs.extend(unitigs)
            per_rank_unitigs.append(unitigs)
            world.charge(r, float(steps))
            total_probes += int(steps * 2 * (p - 1) / p)
        world.count_messages(total_probes)
        for _ in range(8):
            world.barrier()

    with world.phase("master_merge", kind="walk"):
        payloads = [
            [u.codes for u in unitigs] for unitigs in per_rank_unitigs
        ]
        world.gather(payloads, root=0)
        all_unitigs, cstats = clean_unitigs(
            all_unitigs, k, clip=params.clip_tips, pop=params.pop_bubbles
        )
        serial_work = cstats.work + sum(len(u) for u in all_unitigs)
        world.charge_serial(float(serial_work))

    contigs = unitigs_to_contigs(all_unitigs, params, "abyss")
    return AssemblyResult(
        assembler="abyss",
        k=k,
        contigs=contigs,
        usage=world.usage,
        stats={
            "n_ranks": p,
            "distinct_kmers": len(table),
            "tips_removed": cstats.tips_removed,
            "bubbles_popped": cstats.bubbles_popped,
            **assembly_stats(contigs),
        },
    )


def reference_kmer_count_job(
    engine: MapReduceEngine,
    reads: list[FastqRecord],
    params: AssemblyParams,
) -> dict[bytes, int]:
    """The original Contrail counting job with bytes k-mer keys."""
    k = params.k
    min_count = params.min_count

    def mapper(_rid, seq):
        rows = canonical_kmers(alphabet.encode(seq), k)
        raw = np.ascontiguousarray(rows).tobytes()
        for i in range(rows.shape[0]):
            yield raw[i * k : (i + 1) * k], 1

    def combiner(kmer, values):
        yield kmer, sum(values)

    def reducer(kmer, values):
        total = sum(values)
        if total >= min_count:
            yield kmer, total

    job = MRJob("kmer_count", mapper, reducer, combiner=combiner)
    out = engine.run(job, [(r.id, r.seq) for r in reads])
    return dict(out)
