"""De Bruijn graph construction and unitig extraction (packed engine).

The graph is implicit: a :class:`KmerTable` maps canonical k-mers to
coverage counts, and adjacency is discovered by membership queries on the
four possible single-base extensions — the classic hash-based DBG
(Velvet/ABySS/Ray all work this way).

K-mers live in the 2-bit packed representation of
:mod:`repro.assembly.packed`: the table stores sorted packed rows with an
aligned count column, membership and coverage are batched
``np.searchsorted`` probes, and :func:`extract_unitigs` advances *arrays*
of concurrent walks per step instead of probing one Python-level k-mer at
a time.  The packed layout is order-isomorphic to the historical bytes
representation, and the frontier walker is step-for-step equivalent to
the sequential one (``repro.assembly.reference_impl``), so contigs, walk
step counts and emission order are bit-identical to the bytes-dict
engine — only real wall-time changes.

Orientation handling: the table stores *canonical* k-mers, but walking
operates on *oriented* k-mers; every membership test canonicalizes first.
A unitig is a maximal path along which every interior node has exactly
one successor and one predecessor.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.assembly import packed as packedmod
from repro.seq import alphabet

_BASES = (0, 1, 2, 3)

#: Resident bytes per stored k-mer.  The real assemblers pack k-mers into
#: 2-bit words with open-addressing tables (Ray ~14 B, ABySS ~16 B per
#: k-mer); memory extrapolations to paper scale use this constant, which
#: the packed layout (two uint64 words) now matches physically.
KMER_RECORD_BYTES = 16


class KmerTable:
    """Canonical k-mer -> coverage count, as sorted packed rows.

    Rows are kept sorted by packed key (== bytes-lexicographic k-mer
    order), with counts in an aligned ``int64`` column.  All lookups are
    batched binary searches; the ``counts`` property materializes the
    historical ``dict[bytes, int]`` view on demand for compatibility.
    """

    def __init__(self, k: int, counts: dict[bytes, int] | None = None) -> None:
        packedmod.check_k(k)
        self.k = k
        self.words = packedmod.words_for(k)
        self._packed = np.zeros((0, self.words), dtype=np.uint64)
        self._counts = np.zeros(0, dtype=np.int64)
        self._keys = packedmod.keys(self._packed, k)
        self._dict: dict[bytes, int] | None = None
        if counts:
            self.add_counts(counts)

    @classmethod
    def from_packed(
        cls,
        k: int,
        packed_rows: np.ndarray,
        counts: np.ndarray,
        presorted: bool = False,
    ) -> "KmerTable":
        """Build from *distinct* packed rows and their counts.

        ``presorted=True`` skips the sort for rows already in ascending
        key order — the cache-served path of the fused extraction layer
        (:mod:`repro.assembly.sweep`), where the shared spectrum stores
        its distinct rows sorted once.  Sortedness is re-checked only
        under :data:`repro.assembly.packed.DEBUG_SORTED_ENV`.
        """
        t = cls(k)
        rows = np.asarray(packed_rows, dtype=np.uint64).reshape(-1, t.words)
        key_arr = packedmod.keys(rows, k)
        if presorted:
            if packedmod.debug_assert_sorted_enabled():
                packedmod.assert_sorted(key_arr)
            t._packed = np.ascontiguousarray(rows)
            t._counts = np.asarray(counts, dtype=np.int64)
            t._keys = key_arr
            return t
        order = np.argsort(key_arr, kind="stable")
        t._packed = np.ascontiguousarray(rows[order])
        t._counts = np.asarray(counts, dtype=np.int64)[order]
        t._keys = key_arr[order]
        return t

    # -- views -------------------------------------------------------------

    @property
    def packed(self) -> np.ndarray:
        """Sorted canonical rows, ``(n, W)`` uint64 (do not mutate)."""
        return self._packed

    @property
    def key_array(self) -> np.ndarray:
        """Sorted 1-D key array aligned with :attr:`packed`."""
        return self._keys

    @property
    def count_array(self) -> np.ndarray:
        """Coverage counts aligned with :attr:`packed`."""
        return self._counts

    @property
    def counts(self) -> dict[bytes, int]:
        """Read-only dict view (canonical code-bytes -> count), in sorted
        k-mer order — the historical representation, built lazily."""
        if self._dict is None:
            kms = packedmod.unpack_to_bytes(self._packed, self.k)
            self._dict = dict(zip(kms, self._counts.tolist()))
        return self._dict

    def __len__(self) -> int:
        return int(self._counts.shape[0])

    # -- batched lookups ----------------------------------------------------

    def lookup_keys(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Exact-key membership + coverage for an array of packed keys."""
        n = self._keys.shape[0]
        m = query.shape[0]
        if n == 0 or m == 0:
            return np.zeros(m, dtype=bool), np.zeros(m, dtype=np.int64)
        idx = np.searchsorted(self._keys, query)
        idxc = np.minimum(idx, n - 1)
        found = (idx < n) & (self._keys[idxc] == query)
        cov = np.where(found, self._counts[idxc], 0)
        return found, cov

    def has_keys(self, query: np.ndarray) -> np.ndarray:
        """Exact-key membership only."""
        return self.lookup_keys(query)[0]

    # -- single-k-mer compatibility API ------------------------------------

    def _lookup_oriented(self, oriented: bytes) -> tuple[bool, int]:
        row = packedmod.canonicalize(packedmod.pack_bytes_kmer(oriented), self.k)
        found, cov = self.lookup_keys(packedmod.keys(row, self.k))
        return bool(found[0]), int(cov[0])

    def __contains__(self, oriented: bytes) -> bool:
        return self._lookup_oriented(oriented)[0]

    def coverage(self, oriented: bytes) -> int:
        return self._lookup_oriented(oriented)[1]

    def add_counts(self, other: dict[bytes, int]) -> None:
        """Merge a counts dict (keys must already be canonical)."""
        if not other:
            return
        kms = list(other.keys())
        mat = np.frombuffer(b"".join(kms), dtype=np.uint8).reshape(
            len(kms), self.k
        )
        rows = packedmod.pack(mat)
        cnt = np.fromiter(other.values(), dtype=np.int64, count=len(kms))
        all_rows = np.concatenate([self._packed, rows], axis=0)
        all_cnt = np.concatenate([self._counts, cnt])
        key_arr = packedmod.keys(all_rows, self.k)
        uniq, first, inverse = np.unique(
            key_arr, return_index=True, return_inverse=True
        )
        summed = np.zeros(uniq.shape[0], dtype=np.int64)
        np.add.at(summed, inverse, all_cnt)
        self._packed = np.ascontiguousarray(all_rows[first])
        self._counts = summed
        self._keys = uniq
        self._dict = None

    def drop_below(self, min_count: int) -> int:
        """Remove k-mers with coverage below ``min_count``; returns #removed."""
        keep = self._counts >= min_count
        removed = int(keep.size - keep.sum())
        if removed:
            self._packed = np.ascontiguousarray(self._packed[keep])
            self._counts = self._counts[keep]
            self._keys = self._keys[keep]
            self._dict = None
        return removed

    def memory_bytes(self) -> int:
        """Resident size a packed (real-tool) k-mer table would need."""
        return len(self) * KMER_RECORD_BYTES

    # -- adjacency ---------------------------------------------------------

    def successors(self, oriented: bytes) -> list[bytes]:
        """Oriented k-mers reachable by appending one base."""
        row = packedmod.pack_bytes_kmer(oriented)
        ext = np.concatenate(
            [packedmod.extend_right(row, self.k, b) for b in _BASES], axis=0
        )
        found = self.has_keys(
            packedmod.keys(packedmod.canonicalize(ext, self.k), self.k)
        )
        suffix = oriented[1:]
        return [suffix + bytes([b]) for b in _BASES if found[b]]

    def predecessors(self, oriented: bytes) -> list[bytes]:
        """Oriented k-mers reachable by prepending one base."""
        row = packedmod.pack_bytes_kmer(oriented)
        ext = np.concatenate(
            [packedmod.extend_left(row, self.k, b) for b in _BASES], axis=0
        )
        found = self.has_keys(
            packedmod.keys(packedmod.canonicalize(ext, self.k), self.k)
        )
        prefix = oriented[:-1]
        return [bytes([b]) + prefix for b in _BASES if found[b]]


def build_kmer_table(k: int, counts: dict[bytes, int]) -> KmerTable:
    """Wrap a counts dict (keys must already be canonical)."""
    return KmerTable(k=k, counts=counts)


def build_kmer_table_packed(
    k: int,
    packed_rows: np.ndarray,
    counts: np.ndarray,
    presorted: bool = False,
) -> KmerTable:
    """Wrap distinct packed canonical rows + counts without conversions."""
    return KmerTable.from_packed(k, packed_rows, counts, presorted=presorted)


class Unitig:
    """A maximal non-branching path: its sequence codes and coverage."""

    __slots__ = ("codes", "coverage", "n_kmers")

    def __init__(self, codes: np.ndarray, coverage: float, n_kmers: int):
        self.codes = codes  # uint8, length >= k
        self.coverage = coverage  # mean k-mer coverage
        self.n_kmers = n_kmers

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Unitig)
            and np.array_equal(self.codes, other.codes)
            and self.coverage == other.coverage
            and self.n_kmers == other.n_kmers
        )

    def __repr__(self) -> str:
        return (
            f"Unitig(len={len(self)}, coverage={self.coverage:.2f}, "
            f"n_kmers={self.n_kmers})"
        )

    @property
    def seq(self) -> str:
        return alphabet.decode(self.codes)


class _WalkBatch:
    """State of all concurrent walks launched from one seed batch."""

    def __init__(self, table: KmerTable, starts: np.ndarray) -> None:
        k = table.k
        m = starts.shape[0]
        self.table = table
        self.starts = starts
        self.start_keys = packedmod.key_list(starts, k)
        _, cov0 = table.lookup_keys(packedmod.keys(starts, k))
        self.cov_sum = cov0.astype(np.float64)
        self.n_kmers = np.ones(m, dtype=np.int64)
        self.right: list[list[int]] = [[] for _ in range(m)]
        self.left: list[list[int]] = [[] for _ in range(m)]
        #: Per-walk set of canonical keys this walk has entered — needed
        #: for cycle termination and palindromic hairpin re-entry, which
        #: can strike at any path position.
        self.own: list[set] = [set() for _ in range(m)]
        #: canonical key -> lowest walk index that entered the node.  Two
        #: walks can only ever meet when they seed the same unitig (the
        #: predecessor-uniqueness check blocks all cross-unitig entry),
        #: so on contact the higher-index walk is redundant — exactly the
        #: walk the sequential reference would have skipped — and is
        #: killed, keeping total work linear in the table size.
        self.claimed: dict = {}
        self.alive = np.ones(m, dtype=bool)
        self._start_codes: np.ndarray | None = None
        for w, key in enumerate(self.start_keys):
            if key in self.claimed:
                self.alive[w] = False  # duplicate seed
            else:
                self.claimed[key] = w
                self.own[w].add(key)

    def run(self) -> None:
        k = self.table.k
        live = np.flatnonzero(self.alive)
        self._extend(self.starts[live], live, self.right)
        live = np.flatnonzero(self.alive)
        self._extend(packedmod.revcomp(self.starts[live], k), live, self.left)

    def _extend(
        self,
        cur: np.ndarray,
        walk_ids: np.ndarray,
        chains: list[list[int]],
    ) -> None:
        """Advance all walks rightward in lockstep until each breaks."""
        table = self.table
        k = table.k
        while walk_ids.size:
            mask = self.alive[walk_ids]
            if not mask.all():
                walk_ids = walk_ids[mask]
                cur = cur[mask]
                if walk_ids.size == 0:
                    return
            a = walk_ids.size
            # Batched successor probe: 4 candidate extensions per walk.
            ext = np.stack(
                [packedmod.extend_right(cur, k, b) for b in _BASES], axis=1
            )
            canon_keys = packedmod.keys(
                packedmod.canonicalize(ext.reshape(a * 4, -1), k), k
            )
            found, cov = table.lookup_keys(canon_keys)
            found = found.reshape(a, 4)
            ok = found.sum(axis=1) == 1
            if not ok.any():
                return
            rows = np.arange(a)
            b_next = np.argmax(found, axis=1)
            nxt = ext[rows, b_next]
            nxt_keys = canon_keys.reshape(a, 4)[rows, b_next].tolist()
            nxt_cov = cov.reshape(a, 4)[rows, b_next]
            # Own-visited break (loop / palindromic hairpin re-entry).
            for j in np.flatnonzero(ok):
                if nxt_keys[j] in self.own[walk_ids[j]]:
                    ok[j] = False
            # Batched predecessor-uniqueness probe on the survivors.
            cand = np.flatnonzero(ok)
            if cand.size == 0:
                return
            pext = np.stack(
                [packedmod.extend_left(nxt[cand], k, b) for b in _BASES],
                axis=1,
            )
            pfound = table.has_keys(
                packedmod.keys(
                    packedmod.canonicalize(pext.reshape(cand.size * 4, -1), k),
                    k,
                )
            )
            ok[cand[pfound.reshape(cand.size, 4).sum(axis=1) != 1]] = False
            # Commit surviving steps in walk order, resolving claims.
            surv: list[int] = []
            for j in np.flatnonzero(ok):
                wid = int(walk_ids[j])
                if not self.alive[wid]:
                    continue
                key = nxt_keys[j]
                holder = self.claimed.get(key)
                if holder is not None and holder != wid:
                    if holder < wid:
                        self.alive[wid] = False
                        continue
                    self.alive[holder] = False
                self.claimed[key] = wid
                chains[wid].append(int(b_next[j]))
                self.own[wid].add(key)
                self.cov_sum[wid] += nxt_cov[j]
                self.n_kmers[wid] += 1
                surv.append(j)
            if not surv:
                return
            keep = np.array(surv, dtype=np.int64)
            cur = nxt[keep]
            walk_ids = walk_ids[keep]

    def codes_of(self, w: int) -> np.ndarray:
        """Assembled base codes of walk ``w`` (left + seed + right)."""
        if self._start_codes is None:
            # One batched unpack for all seeds, on first emission.
            self._start_codes = packedmod.unpack(self.starts, self.table.k)
        start_codes = self._start_codes[w]
        parts = []
        if self.left[w]:
            parts.append(
                np.array(
                    [3 - b for b in reversed(self.left[w])], dtype=np.uint8
                )
            )
        parts.append(start_codes)
        if self.right[w]:
            parts.append(np.array(self.right[w], dtype=np.uint8))
        if len(parts) == 1:
            return start_codes.copy()
        return np.concatenate(parts)


def extract_unitigs(
    table: KmerTable,
    seeds: Iterable[bytes] | np.ndarray | None = None,
    visited: set | None = None,
) -> tuple[list[Unitig], int]:
    """Extract all unitigs; returns (unitigs, total_walk_steps).

    ``seeds`` restricts the k-mers from which walks may start (used by the
    distributed assemblers to attribute work to ranks): a packed ``(m, W)``
    row array (the fast path), an iterable of code-bytes k-mers (the
    historical API), or None for every table k-mer in sorted order.
    ``visited`` may be shared across calls so that different rank shards
    never emit the same unitig twice; it holds packed key scalars.

    All walks advance in lockstep with batched probes, and the result is
    provably identical — unitigs, orientation, emission order, step
    count — to walking the seeds one at a time.
    """
    if visited is None:
        visited = set()
    k = table.k
    if seeds is None:
        seed_rows = table.packed
    elif isinstance(seeds, np.ndarray):
        seed_rows = np.asarray(seeds, dtype=np.uint64).reshape(-1, table.words)
    else:
        seed_list = [bytes(s) for s in seeds]
        if seed_list:
            mat = np.frombuffer(b"".join(seed_list), dtype=np.uint8).reshape(
                len(seed_list), k
            )
            seed_rows = packedmod.pack(mat)
        else:
            seed_rows = np.zeros((0, table.words), dtype=np.uint64)

    # A seed must be present in the table under its exact (canonical) key
    # and not already consumed by an earlier walk.
    seed_keys = packedmod.keys(seed_rows, k)
    in_table = table.has_keys(seed_keys)
    key_scalars = seed_keys.tolist()
    keep = [
        i
        for i in range(seed_rows.shape[0])
        if in_table[i] and key_scalars[i] not in visited
    ]
    if not keep:
        return [], 0

    batch = _WalkBatch(table, np.ascontiguousarray(seed_rows[keep]))
    batch.run()

    unitigs: list[Unitig] = []
    steps = 0
    for w in range(len(keep)):
        if not batch.alive[w] or batch.start_keys[w] in visited:
            continue  # consumed by an earlier-seeded walk
        visited |= batch.own[w]
        n = int(batch.n_kmers[w])
        steps += n
        unitigs.append(
            Unitig(
                codes=batch.codes_of(w),
                coverage=float(batch.cov_sum[w]) / n,
                n_kmers=n,
            )
        )
    return unitigs, steps
