"""De Bruijn graph construction and unitig extraction.

The graph is implicit: a :class:`KmerTable` maps canonical k-mers to
coverage counts, and adjacency is discovered by membership queries on the
four possible single-base extensions — the classic hash-based DBG
(Velvet/ABySS/Ray all work this way).

Orientation handling: the table stores *canonical* k-mers, but walking
operates on *oriented* k-mers (plain code-bytes); every membership test
canonicalizes first.  A unitig is a maximal path along which every
interior node has exactly one successor and one predecessor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.assembly.kmers import canonical, revcomp_kmer
from repro.seq import alphabet

_BASES = (0, 1, 2, 3)

#: Resident bytes per stored k-mer.  The real assemblers pack k-mers into
#: 2-bit words with open-addressing tables (Ray ~14 B, ABySS ~16 B per
#: k-mer); memory extrapolations to paper scale use this constant, not
#: Python's dict overhead.
KMER_RECORD_BYTES = 16


@dataclass
class KmerTable:
    """Canonical k-mer -> coverage count."""

    k: int
    counts: dict[bytes, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, oriented: bytes) -> bool:
        return canonical(oriented) in self.counts

    def coverage(self, oriented: bytes) -> int:
        return self.counts.get(canonical(oriented), 0)

    def add_counts(self, other: dict[bytes, int]) -> None:
        for kmer, c in other.items():
            self.counts[kmer] = self.counts.get(kmer, 0) + c

    def drop_below(self, min_count: int) -> int:
        """Remove k-mers with coverage below ``min_count``; returns #removed."""
        doomed = [k for k, c in self.counts.items() if c < min_count]
        for k in doomed:
            del self.counts[k]
        return len(doomed)

    def memory_bytes(self) -> int:
        """Resident size a packed (real-tool) k-mer table would need."""
        return len(self.counts) * KMER_RECORD_BYTES

    # -- adjacency ---------------------------------------------------------

    def successors(self, oriented: bytes) -> list[bytes]:
        """Oriented k-mers reachable by appending one base."""
        suffix = oriented[1:]
        out = []
        for b in _BASES:
            nxt = suffix + bytes([b])
            if canonical(nxt) in self.counts:
                out.append(nxt)
        return out

    def predecessors(self, oriented: bytes) -> list[bytes]:
        """Oriented k-mers reachable by prepending one base."""
        prefix = oriented[:-1]
        out = []
        for b in _BASES:
            prv = bytes([b]) + prefix
            if canonical(prv) in self.counts:
                out.append(prv)
        return out


def build_kmer_table(k: int, counts: dict[bytes, int]) -> KmerTable:
    """Wrap a counts dict (keys must already be canonical)."""
    return KmerTable(k=k, counts=dict(counts))


@dataclass
class Unitig:
    """A maximal non-branching path: its sequence codes and coverage."""

    codes: np.ndarray  # uint8, length >= k
    coverage: float  # mean k-mer coverage
    n_kmers: int

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    @property
    def seq(self) -> str:
        return alphabet.decode(self.codes)


def _walk(
    table: KmerTable,
    start: bytes,
    visited: set[bytes],
) -> tuple[list[int], float, int]:
    """Walk right then left from ``start``; returns (codes, cov, steps).

    Marks every visited k-mer's canonical form in ``visited``.
    """
    k = table.k
    chain = list(start)
    cov_sum = table.coverage(start)
    n = 1
    visited.add(canonical(start))

    # Extend right.
    cur = start
    while True:
        nxts = table.successors(cur)
        if len(nxts) != 1:
            break
        nxt = nxts[0]
        if canonical(nxt) in visited:
            break  # loop or palindromic re-entry
        if len(table.predecessors(nxt)) != 1:
            break  # converging branch
        chain.append(nxt[-1])
        visited.add(canonical(nxt))
        cov_sum += table.coverage(nxt)
        n += 1
        cur = nxt

    # Extend left (walk right from the reverse complement of the start).
    cur = revcomp_kmer(start)
    left: list[int] = []
    while True:
        nxts = table.successors(cur)
        if len(nxts) != 1:
            break
        nxt = nxts[0]
        if canonical(nxt) in visited:
            break
        if len(table.predecessors(nxt)) != 1:
            break
        left.append(nxt[-1])
        visited.add(canonical(nxt))
        cov_sum += table.coverage(nxt)
        n += 1
        cur = nxt

    if left:
        # ``left`` extends the revcomp strand rightward; flip it back.
        left_codes = bytes(left)
        prefix = revcomp_kmer(left_codes)
        chain = list(prefix) + chain
    return chain, cov_sum / n, n


def extract_unitigs(
    table: KmerTable,
    seeds: Iterator[bytes] | None = None,
    visited: set[bytes] | None = None,
) -> tuple[list[Unitig], int]:
    """Extract all unitigs; returns (unitigs, total_walk_steps).

    ``seeds`` restricts the k-mers from which walks may start (used by the
    distributed assemblers to attribute work to ranks); by default every
    k-mer seeds.  ``visited`` may be shared across calls so that different
    rank shards never emit the same unitig twice.
    """
    if visited is None:
        visited = set()
    if seeds is None:
        seeds = iter(sorted(table.counts.keys()))

    unitigs: list[Unitig] = []
    steps = 0
    for seed in seeds:
        if seed in visited or seed not in table.counts:
            continue
        chain, cov, n = _walk(table, seed, visited)
        steps += n
        unitigs.append(
            Unitig(codes=np.frombuffer(bytes(chain), dtype=np.uint8).copy(),
                   coverage=cov, n_kmers=n)
        )
    return unitigs, steps
