"""Vectorized k-mer extraction, canonicalization and counting.

Two representations coexist:

* the historical ``bytes``-of-codes form (one byte per base, values 0..3)
  kept for the public single-k-mer helpers and the frozen reference
  implementation, and
* the packed-integer form of :mod:`repro.assembly.packed` — 2 bits per
  base in one or two ``uint64`` words (k up to 63, covering the paper's
  deepest P. crispa runs) — used by the hot assembly paths.

The packed layout is order-isomorphic to the bytes layout, so canonical
forms, sort orders and ``np.unique`` groupings agree bit-for-bit between
the two pipelines.  The canonical form of a k-mer is the lexicographic
minimum of the k-mer and its reverse complement.
"""

from __future__ import annotations

import numpy as np

from repro.assembly import packed as packedmod
from repro.seq import alphabet
from repro.seq.fastq import FastqRecord

#: Multipliers for the vectorized partition hash (fixed odd constants so
#: ownership is deterministic across processes and runs).
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def reads_to_code_matrix(reads: list[FastqRecord]) -> np.ndarray:
    """Stack fixed-length reads into an ``(n_reads, L)`` uint8 code matrix.

    Raises ValueError when read lengths differ (the pipeline's
    pre-processing step produces variable-length reads; those go through
    :func:`canonical_kmers_varlen` instead).
    """
    if not reads:
        return np.zeros((0, 0), dtype=np.uint8)
    L = len(reads[0])
    joined = "".join(r.seq for r in reads)
    if len(joined) != L * len(reads):
        raise ValueError("reads are not fixed-length; use canonical_kmers_varlen")
    return alphabet.encode(joined).reshape(len(reads), L)


def _windows(codes: np.ndarray, k: int) -> np.ndarray:
    """All length-k windows of each row: ``(n_windows, k)`` uint8."""
    if codes.ndim == 1:
        codes = codes[None, :]
    n, L = codes.shape
    if L < k:
        return np.zeros((0, k), dtype=np.uint8)
    win = np.lib.stride_tricks.sliding_window_view(codes, k, axis=1)
    return win.reshape(-1, k)


def _drop_n(windows: np.ndarray) -> np.ndarray:
    """Remove windows containing uncalled bases."""
    if windows.size == 0:
        return windows
    return windows[(windows < alphabet.N).all(axis=1)]


def _canonicalize(windows: np.ndarray) -> np.ndarray:
    """Row-wise min(window, revcomp(window)), vectorized."""
    if windows.size == 0:
        return windows
    rc = (3 - windows)[:, ::-1]
    neq = windows != rc
    # Index of first differing column (0 when rows are equal — palindromes).
    first = neq.argmax(axis=1)
    rows = np.arange(windows.shape[0])
    take_fwd = windows[rows, first] <= rc[rows, first]
    return np.where(take_fwd[:, None], windows, rc)


def canonical_kmers(codes: np.ndarray, k: int) -> np.ndarray:
    """Canonical k-mers of one or many sequences as ``(n, k)`` uint8 rows.

    ``codes`` is a 1-D sequence or a 2-D matrix of fixed-length reads.
    Windows containing N are dropped.
    """
    if k < 3:
        raise ValueError("k must be >= 3")
    return _canonicalize(_drop_n(_windows(np.asarray(codes, dtype=np.uint8), k)))


def canonical_kmers_varlen(seqs: list[str], k: int) -> np.ndarray:
    """Canonical k-mers of variable-length sequences."""
    parts = [
        canonical_kmers(alphabet.encode(s), k) for s in seqs if len(s) >= k
    ]
    if not parts:
        return np.zeros((0, k), dtype=np.uint8)
    return np.concatenate(parts, axis=0)


def kmer_counts(kmer_rows: np.ndarray) -> dict[bytes, int]:
    """Count k-mer rows into a ``bytes -> count`` dict."""
    if kmer_rows.size == 0:
        return {}
    uniq, counts = np.unique(kmer_rows, axis=0, return_counts=True)
    raw = np.ascontiguousarray(uniq).tobytes()
    k = uniq.shape[1]
    return {
        raw[i * k : (i + 1) * k]: int(c) for i, c in enumerate(counts)
    }


def canonical_kmers_packed(codes: np.ndarray, k: int) -> np.ndarray:
    """Canonical k-mers of one or many sequences as packed ``(n, W)``
    uint64 rows (see :mod:`repro.assembly.packed`).

    Same extraction semantics as :func:`canonical_kmers` — N windows are
    dropped, palindromes keep the forward strand — but the result stays
    in packed space.
    """
    if k < 3:
        raise ValueError("k must be >= 3")
    packedmod.check_k(k)
    win = _drop_n(_windows(np.asarray(codes, dtype=np.uint8), k))
    if win.shape[0] == 0:
        return np.zeros((0, packedmod.words_for(k)), dtype=np.uint64)
    return packedmod.canonicalize(packedmod.pack(win), k)


def canonical_kmers_varlen_packed(seqs: list[str], k: int) -> np.ndarray:
    """Canonical packed k-mers of variable-length sequences.

    All sequences are joined with single-N separators and processed in
    one windowing/packing pass: windows crossing a read boundary contain
    the separator N and are dropped, so the result is exactly the
    per-read extraction concatenated in read order.
    """
    packedmod.check_k(k)
    parts: list[np.ndarray] = []
    sep = np.array([alphabet.N], dtype=np.uint8)
    for s in seqs:
        if len(s) >= k:
            parts.append(alphabet.encode(s))
            parts.append(sep)
    if not parts:
        return np.zeros((0, packedmod.words_for(k)), dtype=np.uint64)
    return canonical_kmers_packed(np.concatenate(parts[:-1]), k)


def canonical_kmers_encoded_packed(
    parts: list[np.ndarray], k: int
) -> np.ndarray:
    """Canonical packed k-mers of pre-encoded variable-length code arrays.

    Array-native twin of :func:`canonical_kmers_varlen_packed`: the same
    join-with-single-N-separator extraction in one windowing pass, minus
    the per-call string encoding; output rows and order are identical.
    """
    packedmod.check_k(k)
    sep = np.array([alphabet.N], dtype=np.uint8)
    joined: list[np.ndarray] = []
    for codes in parts:
        if codes.shape[0] >= k:
            joined.append(codes)
            joined.append(sep)
    if not joined:
        return np.zeros((0, packedmod.words_for(k)), dtype=np.uint64)
    return canonical_kmers_packed(np.concatenate(joined[:-1]), k)


def canonical_kmers_store_packed(
    store, k: int, indices: np.ndarray | None = None
) -> np.ndarray:
    """Canonical packed k-mers of (a subset of) a
    :class:`~repro.seq.readstore.ReadStore`.

    The store's flat code layout — every read followed by a single N
    separator — already *is* the joined form the varlen extractor builds
    per call, so the full-store path is one windowing pass with no
    encoding or concatenation at all; ``indices`` selects a read subset
    (e.g. one rank's stripe) via a vectorized ragged gather.  Both paths
    are bit-identical to :func:`canonical_kmers_varlen_packed` on the
    same records: windows touching a separator contain an N and are
    dropped, and reads shorter than k contribute no windows.
    """
    packedmod.check_k(k)
    codes = store.codes if indices is None else store.subset_codes(indices)
    if codes.shape[0] == 0:
        return np.zeros((0, packedmod.words_for(k)), dtype=np.uint64)
    return canonical_kmers_packed(codes, k)


def fused_canonical_positions_packed(
    codes: np.ndarray, ks
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Canonical packed k-mers + window positions for *all* k in one pass.

    ``codes`` is a flat uint8 code array in the :class:`~repro.seq.
    readstore.ReadStore` layout (reads joined by single-N separators, or
    any single sequence).  Returns ``{k: (canonical_rows, positions)}``
    where ``positions`` are the start offsets of the N-free windows in
    ascending order and ``canonical_rows`` is bit-identical — rows *and*
    order — to ``canonical_kmers_packed(codes, k)``.

    The fusion: the flat array is packed exactly once at ``kmax`` (every
    window start 0..T-kmax), and each smaller k is *derived* by masking
    the packed words down to its top ``2k`` bits — the packed layout is
    left-aligned, so the first k bases of a kmax-window are literally the
    k-window at the same position.  Only the ≤ ``kmax - k`` tail windows
    past the last kmax start (and nothing else) are packed directly.
    N-validity for every k comes from one prefix-sum over the N mask.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    ks = sorted({int(k) for k in ks})
    if not ks:
        return {}
    for k in ks:
        packedmod.check_k(k)
    U = np.uint64
    ones = U(0xFFFFFFFFFFFFFFFF)
    T = codes.shape[0]
    kmax = ks[-1]

    # One N prefix-sum serves every k: window [i, i+k) is N-free iff the
    # count of N bases does not grow across it.
    nbad = np.zeros(T + 1, dtype=np.int64)
    if T:
        nbad[1:] = np.cumsum(codes >= alphabet.N, dtype=np.int64)
    # N bases are masked to code 0 so they pack cleanly; any window that
    # contains one is dropped by the validity mask, so the value never
    # surfaces.
    san = codes & np.uint8(3)

    # Single packing pass at kmax over every start position 0..T-kmax.
    n_main = max(T - kmax + 1, 0)
    W = packedmod.words_for(kmax)
    main0 = np.zeros(n_main, dtype=U)
    main1 = np.zeros(n_main, dtype=U) if W == 2 else None
    if n_main:
        # One uint64 upcast of the whole sanitized array, then strictly
        # in-place shift/or rounds: no per-iteration temporaries, which
        # roughly halves the wall time of the dominant packing loop.
        san64 = san.astype(U)
        two = U(2)
        k0 = min(kmax, 32)
        w = np.zeros(n_main, dtype=U)
        for i in range(k0):
            np.left_shift(w, two, out=w)
            np.bitwise_or(w, san64[i : i + n_main], out=w)
        np.left_shift(w, U(2 * (32 - k0)), out=w)
        main0 = w
        if W == 2:
            w = np.zeros(n_main, dtype=U)
            for i in range(32, kmax):
                np.left_shift(w, two, out=w)
                np.bitwise_or(w, san64[i : i + n_main], out=w)
            np.left_shift(w, U(128 - 2 * kmax), out=w)
            main1 = w

    out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for k in ks:
        Wk = packedmod.words_for(k)
        n_k = max(T - k + 1, 0)
        if n_k == 0:
            out[k] = (
                np.zeros((0, Wk), dtype=U),
                np.zeros(0, dtype=np.int64),
            )
            continue
        valid = nbad[k : k + n_k] - nbad[:n_k] == 0
        pos = np.flatnonzero(valid).astype(np.int64)
        main_sel = pos[pos < n_main]
        tail_sel = pos[pos >= n_main]
        rows = np.empty((pos.shape[0], Wk), dtype=U)
        nm = main_sel.shape[0]
        if Wk == 1:
            # Word 0 always holds the first min(k, 32) bases left-aligned,
            # whether the kmax packing used one word or two.
            rows[:nm, 0] = main0[main_sel] & (ones << U(64 - 2 * k))
        else:
            rows[:nm, 0] = main0[main_sel]
            rows[:nm, 1] = main1[main_sel] & (ones << U(128 - 2 * k))
        if tail_sel.shape[0]:
            wins = np.lib.stride_tricks.sliding_window_view(san, k)[tail_sel]
            rows[nm:] = packedmod.pack(wins)
        out[k] = (packedmod.canonicalize(rows, k), pos)
    return out


def fused_canonical_positions_store_packed(
    store, ks, r0: int = 0, r1: int | None = None
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """:func:`fused_canonical_positions_packed` over a read-range shard
    ``[r0, r1)`` of a :class:`~repro.seq.readstore.ReadStore`.

    Positions are reported in *global* store coordinates, so the shard
    results of a partition of ``[0, n_reads)`` concatenate (in shard
    order) to exactly the full-store extraction.  Safe at any read
    boundary: the store layout places a single-N separator after every
    read — including the last — so the slice ``codes[offsets[r0] :
    offsets[r1]]`` ends on a separator, and any window crossing the
    shard's final read would contain that N and be dropped, exactly as
    it is in the full-store pass.
    """
    offsets = store.offsets
    n_reads = int(offsets.shape[0]) - 1
    if r1 is None:
        r1 = n_reads
    if not 0 <= r0 <= r1 <= n_reads:
        raise ValueError(
            f"read range [{r0}, {r1}) out of bounds for {n_reads} reads"
        )
    lo = int(offsets[r0])
    hi = int(offsets[r1])
    fused = fused_canonical_positions_packed(store.codes[lo:hi], ks)
    if lo:
        fused = {k: (rows, pos + lo) for k, (rows, pos) in fused.items()}
    return fused


def kmer_counts_packed(
    packed_rows: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Count packed k-mer rows: distinct rows in key order + counts.

    Groups and orders exactly like :func:`kmer_counts` does on the
    equivalent bytes rows (the packed key order is the bytes
    lexicographic order).
    """
    return packedmod.unique_counts(packed_rows, k)


def kmer_owner_packed(
    packed_rows: np.ndarray, k: int, n_ranks: int
) -> np.ndarray:
    """Owner ranks of packed k-mer rows — bit-exact with :func:`kmer_owner`.

    Extracts each position's 2-bit code straight from the packed words
    and folds it with the same position-dependent multipliers and final
    mixing as the bytes-path hash, so partitioning (and therefore every
    alltoall payload and message count) is unchanged.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    W = packedmod.words_for(k)
    rows = np.asarray(packed_rows, dtype=np.uint64).reshape(-1, W)
    if rows.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    with np.errstate(over="ignore"):
        weights = np.cumprod(np.full(k, _HASH_MULTIPLIER, dtype=np.uint64))
        h = np.zeros(rows.shape[0], dtype=np.uint64)
        one = np.uint64(1)
        three = np.uint64(3)
        for i in range(k):
            word = rows[:, 0] if i < 32 else rows[:, 1]
            shift = np.uint64(62 - 2 * (i % 32))
            code = (word >> shift) & three
            h += (code + one) * weights[i]
        h ^= h >> np.uint64(33)
        h *= _HASH_MULTIPLIER
        h ^= h >> np.uint64(29)
    return (h % np.uint64(n_ranks)).astype(np.int64)


def kmer_owner(kmer_rows: np.ndarray, n_ranks: int) -> np.ndarray:
    """Deterministic owner rank of each k-mer row (hash partition).

    The hash folds the k-mer bytes column-wise with position-dependent
    odd multipliers; uniform enough for load balance, stable across runs.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if kmer_rows.size == 0:
        return np.zeros(0, dtype=np.int64)
    k = kmer_rows.shape[1]
    with np.errstate(over="ignore"):
        weights = np.cumprod(np.full(k, _HASH_MULTIPLIER, dtype=np.uint64))
        h = ((kmer_rows.astype(np.uint64) + np.uint64(1)) * weights[None, :]).sum(
            axis=1, dtype=np.uint64
        )
        h ^= h >> np.uint64(33)
        h *= _HASH_MULTIPLIER
        h ^= h >> np.uint64(29)
    return (h % np.uint64(n_ranks)).astype(np.int64)


def owner_of(kmer: bytes, n_ranks: int) -> int:
    """Owner rank of a single k-mer (matches :func:`kmer_owner`)."""
    row = np.frombuffer(kmer, dtype=np.uint8)[None, :]
    return int(kmer_owner(row, n_ranks)[0])


def kmer_to_codes(kmer: bytes) -> np.ndarray:
    return np.frombuffer(kmer, dtype=np.uint8)


def revcomp_kmer(kmer: bytes) -> bytes:
    codes = np.frombuffer(kmer, dtype=np.uint8)
    return bytes((3 - codes)[::-1])


def canonical(kmer: bytes) -> bytes:
    """Canonical form of a single code-bytes k-mer."""
    rc = revcomp_kmer(kmer)
    return kmer if kmer <= rc else rc
