"""Packed-integer k-mer codec: 2 bits per base in ``uint64`` words.

A k-mer of base codes (A=0, C=1, G=2, T=3; see :mod:`repro.seq.alphabet`)
is stored left-aligned in ``W = 1`` (k <= 32) or ``W = 2`` (33 <= k <= 63)
big-endian-ordered 64-bit words: base ``i`` occupies bits
``[2*i, 2*i + 2)`` counted from the top of the ``64*W``-bit window, and
the unused low-order "slack" bits are zero.  The layout is chosen so that
numeric comparison of the word tuple equals lexicographic comparison of
the code string — packed canonicalization, sorted-array membership tables
and ``np.unique`` counting all order k-mers exactly like the historical
``bytes``-of-codes representation did.

Everything here is vectorized over *rows* of shape ``(n, W)``; the only
Python-level loops run over the k positions of a window (k <= 63), never
over the n k-mers.  Windows must be N-free (codes 0..3) before packing —
the extraction pipeline in :mod:`repro.assembly.kmers` drops N windows
first, exactly as the bytes path always has.
"""

from __future__ import annotations

import os

import numpy as np

#: Largest supported k: 63 bases fill 126 of 128 bits (two words); the
#: paper's deepest P. crispa run uses k=63.
MAX_K = 63
MIN_K = 3

_U = np.uint64
_TWO = _U(2)
_FOUR = _U(4)
_THREE = _U(3)
_SIXTYTWO = _U(62)
_SIXTYFOUR = _U(64)
_ONES = _U(0xFFFFFFFFFFFFFFFF)
_M2 = _U(0x3333333333333333)
_M4 = _U(0x0F0F0F0F0F0F0F0F)


#: Environment variable enabling sortedness re-checks in the presorted
#: fast paths (``unique_counts(..., presorted=True)`` and the cache-served
#: ``KmerTable`` constructors).  Off by default: the whole point of the
#: fast paths is skipping the O(n log n) work, but under the flag a bad
#: caller fails loudly instead of silently corrupting binary searches.
DEBUG_SORTED_ENV = "REPRO_DEBUG_SORTED"


def debug_assert_sorted_enabled() -> bool:
    return bool(os.environ.get(DEBUG_SORTED_ENV))


def assert_sorted(key_arr: np.ndarray) -> None:
    """Raise if a 1-D key array is not in ascending order."""
    if key_arr.shape[0] > 1 and bool(np.any(key_arr[1:] < key_arr[:-1])):
        raise AssertionError(
            "presorted fast path received unsorted keys "
            f"(set via {DEBUG_SORTED_ENV})"
        )


def check_k(k: int) -> int:
    if not MIN_K <= k <= MAX_K:
        raise ValueError(f"packed k-mers require {MIN_K} <= k <= {MAX_K}, got {k}")
    return k


def words_for(k: int) -> int:
    """Number of uint64 words per packed k-mer (1 or 2)."""
    check_k(k)
    return 1 if k <= 32 else 2


def pack(windows: np.ndarray) -> np.ndarray:
    """Pack ``(n, k)`` uint8 code windows into ``(n, W)`` uint64 rows."""
    windows = np.asarray(windows, dtype=np.uint8)
    if windows.ndim != 2:
        raise ValueError("pack expects a 2-D (n, k) window matrix")
    n, k = windows.shape
    W = words_for(k)
    out = np.zeros((n, W), dtype=_U)
    k0 = min(k, 32)
    w = np.zeros(n, dtype=_U)
    for i in range(k0):
        w = (w << _TWO) | windows[:, i].astype(_U)
    out[:, 0] = w << _U(2 * (32 - k0))
    if W == 2:
        w = np.zeros(n, dtype=_U)
        for i in range(32, k):
            w = (w << _TWO) | windows[:, i].astype(_U)
        out[:, 1] = w << _U(128 - 2 * k)
    return out


def unpack(packed: np.ndarray, k: int) -> np.ndarray:
    """Unpack ``(n, W)`` uint64 rows back to ``(n, k)`` uint8 codes."""
    W = words_for(k)
    packed = np.asarray(packed, dtype=_U).reshape(-1, W)
    out = np.empty((packed.shape[0], k), dtype=np.uint8)
    w0 = packed[:, 0]
    for i in range(min(k, 32)):
        out[:, i] = ((w0 >> _U(62 - 2 * i)) & _THREE).astype(np.uint8)
    if W == 2:
        w1 = packed[:, 1]
        for i in range(32, k):
            out[:, i] = ((w1 >> _U(62 - 2 * (i - 32))) & _THREE).astype(np.uint8)
    return out


def _reverse_fields(w: np.ndarray) -> np.ndarray:
    """Reverse the order of the 32 2-bit fields inside each uint64."""
    w = ((w >> _TWO) & _M2) | ((w & _M2) << _TWO)
    w = ((w >> _FOUR) & _M4) | ((w & _M4) << _FOUR)
    return w.byteswap()


def revcomp(packed: np.ndarray, k: int) -> np.ndarray:
    """Reverse complement in packed space (complement = bitwise NOT)."""
    W = words_for(k)
    packed = np.asarray(packed, dtype=_U).reshape(-1, W)
    if W == 1:
        w = _reverse_fields(~packed[:, 0])
        return (w << _U(64 - 2 * k))[:, None]
    # Reverse all 64 fields of the 128-bit value, then shift the k bases
    # (now right-aligned) back up to the top; the shifted-out high bits
    # are exactly the complemented slack garbage.
    hi = _reverse_fields(~packed[:, 1])
    lo = _reverse_fields(~packed[:, 0])
    s = _U(128 - 2 * k)  # 2..62 for k in 33..63
    out = np.empty_like(packed)
    out[:, 0] = (hi << s) | (lo >> (_SIXTYFOUR - s))
    out[:, 1] = lo << s
    return out


def canonicalize(packed: np.ndarray, k: int) -> np.ndarray:
    """Row-wise min(kmer, revcomp(kmer)) under the code-lexicographic
    order — identical tie-breaking (palindromes keep the forward strand)
    to the historical bytes comparison."""
    W = words_for(k)
    packed = np.asarray(packed, dtype=_U).reshape(-1, W)
    rc = revcomp(packed, k)
    if W == 1:
        take_fwd = packed[:, 0] <= rc[:, 0]
    else:
        take_fwd = (packed[:, 0] < rc[:, 0]) | (
            (packed[:, 0] == rc[:, 0]) & (packed[:, 1] <= rc[:, 1])
        )
    return np.where(take_fwd[:, None], packed, rc)


def extend_right(packed: np.ndarray, k: int, base) -> np.ndarray:
    """Drop the first base and append ``base`` (scalar or per-row array):
    the oriented successor k-mers of a walk step."""
    W = words_for(k)
    packed = np.asarray(packed, dtype=_U).reshape(-1, W)
    b = np.asarray(base, dtype=_U)
    out = np.empty_like(packed)
    if W == 1:
        out[:, 0] = (packed[:, 0] << _TWO) | (b << _U(64 - 2 * k))
        return out
    out[:, 0] = (packed[:, 0] << _TWO) | (packed[:, 1] >> _SIXTYTWO)
    out[:, 1] = (packed[:, 1] << _TWO) | (b << _U(128 - 2 * k))
    return out


def extend_left(packed: np.ndarray, k: int, base) -> np.ndarray:
    """Drop the last base and prepend ``base``: oriented predecessors."""
    W = words_for(k)
    packed = np.asarray(packed, dtype=_U).reshape(-1, W)
    b = np.asarray(base, dtype=_U)
    out = np.empty_like(packed)
    if W == 1:
        mask = _ONES << _U(64 - 2 * k)
        out[:, 0] = ((packed[:, 0] >> _TWO) & mask) | (b << _SIXTYTWO)
        return out
    mask1 = _ONES << _U(128 - 2 * k)
    out[:, 1] = ((packed[:, 1] >> _TWO) | (packed[:, 0] << _SIXTYTWO)) & mask1
    out[:, 0] = (packed[:, 0] >> _TWO) | (b << _SIXTYTWO)
    return out


# -- sortable keys -----------------------------------------------------------


def keys(packed: np.ndarray, k: int) -> np.ndarray:
    """1-D sortable key per row: plain uint64 for one-word k-mers, a
    16-byte big-endian string (``S16`` — memcmp order) for two words.
    Key order == packed tuple order == code-lexicographic order."""
    W = words_for(k)
    packed = np.asarray(packed, dtype=_U).reshape(-1, W)
    if W == 1:
        return np.ascontiguousarray(packed[:, 0])
    be = np.ascontiguousarray(packed).astype(">u8")
    return np.frombuffer(be.tobytes(), dtype="S16")


def keys_to_packed(key_arr: np.ndarray, k: int) -> np.ndarray:
    """Inverse of :func:`keys`."""
    W = words_for(k)
    if W == 1:
        return np.asarray(key_arr, dtype=_U)[:, None]
    raw = np.asarray(key_arr, dtype="S16").tobytes()
    return np.frombuffer(raw, dtype=">u8").reshape(-1, 2).astype(_U)


def bucket_ids(key_arr: np.ndarray, k: int, n_buckets: int) -> np.ndarray:
    """Radix bucket of each sortable key: the top ``log2(n_buckets)``
    bits of packed word 0.

    The bucket id is a *prefix* of the sort key for both key dtypes —
    plain uint64 keys start with word 0, and the ``S16`` memcmp key's
    first 8 bytes are word 0 big-endian — so bucket ids are monotone
    non-decreasing over any key-sorted array.  That is the merge
    invariant the sharded spectrum build rests on: concatenating
    per-bucket sorted runs in ascending bucket order yields the globally
    key-sorted sequence.  ``n_buckets`` must be a power of two.
    """
    if n_buckets < 1 or (n_buckets & (n_buckets - 1)):
        raise ValueError(f"n_buckets must be a power of two, got {n_buckets}")
    key_arr = np.asarray(key_arr)
    if n_buckets == 1:
        return np.zeros(key_arr.shape[0], dtype=np.int64)
    W = words_for(k)
    if W == 1:
        word0 = np.asarray(key_arr, dtype=_U)
    else:
        word0 = keys_to_packed(key_arr, k)[:, 0]
    bbits = n_buckets.bit_length() - 1
    return (word0 >> _U(64 - bbits)).astype(np.int64)


def key_list(packed: np.ndarray, k: int) -> list:
    """Keys as hashable Python scalars (``int`` or ``bytes``) for sets."""
    return keys(packed, k).tolist()


def visited_key_array(visited: set, k: int) -> np.ndarray:
    """A sorted key array from a set of :func:`key_list` scalars."""
    if words_for(k) == 1:
        arr = np.fromiter(visited, dtype=_U, count=len(visited))
    else:
        arr = np.array(list(visited), dtype="S16")
    arr.sort()
    return arr


def packed_to_ints(packed: np.ndarray, k: int) -> list[int]:
    """Rows as single Python ints (``w0 << 64 | w1``), preserving order —
    hashable keys for MapReduce shuffles."""
    W = words_for(k)
    packed = np.asarray(packed, dtype=_U).reshape(-1, W)
    if W == 1:
        return packed[:, 0].tolist()
    w0 = packed[:, 0].tolist()
    w1 = packed[:, 1].tolist()
    return [(a << 64) | b for a, b in zip(w0, w1)]


def ints_to_packed(values: list[int], k: int) -> np.ndarray:
    """Inverse of :func:`packed_to_ints`."""
    W = words_for(k)
    out = np.empty((len(values), W), dtype=_U)
    if W == 1:
        out[:, 0] = np.array(values, dtype=_U) if values else 0
        return out
    for i, v in enumerate(values):
        out[i, 0] = _U(v >> 64)
        out[i, 1] = _U(v & 0xFFFFFFFFFFFFFFFF)
    return out


def unique_counts(
    packed: np.ndarray, k: int, presorted: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct rows (sorted in key order) and their multiplicities.

    ``presorted=True`` is the fast path for rows already in ascending key
    order (e.g. streamed out of a shared :class:`~repro.assembly.sweep.
    KmerSpectrum`): run-length boundaries replace the ``np.unique`` sort.
    Sortedness is re-checked only under :data:`DEBUG_SORTED_ENV`.
    """
    W = words_for(k)
    packed = np.asarray(packed, dtype=_U).reshape(-1, W)
    if packed.shape[0] == 0:
        return packed, np.zeros(0, dtype=np.int64)
    ks = keys(packed, k)
    if presorted:
        if debug_assert_sorted_enabled():
            assert_sorted(ks)
        boundary = np.empty(ks.shape[0], dtype=bool)
        boundary[0] = True
        boundary[1:] = ks[1:] != ks[:-1]
        first = np.flatnonzero(boundary)
        counts = np.diff(np.append(first, ks.shape[0])).astype(np.int64)
        return packed[first], counts
    _, first, counts = np.unique(ks, return_index=True, return_counts=True)
    return packed[first], counts.astype(np.int64)


def unique_keys(packed: np.ndarray, k: int) -> np.ndarray:
    """Distinct sortable keys (see :func:`keys`) in ascending key order.

    The array-native replacement for ``set(key_list(...))``: ascending
    uint64/S16 key order equals the code-lexicographic k-mer order, so
    the result pairs with :func:`keys_in` for vectorized membership.
    """
    return np.unique(keys(packed, k))


def keys_in(query: np.ndarray, sorted_keys: np.ndarray) -> np.ndarray:
    """Boolean membership of ``query`` keys in a sorted key array.

    Vectorized ``searchsorted`` probe; works for both key dtypes (uint64
    and memcmp-ordered ``S16``).
    """
    query = np.asarray(query)
    if sorted_keys.size == 0:
        return np.zeros(query.shape[0], dtype=bool)
    pos = np.minimum(
        np.searchsorted(sorted_keys, query), sorted_keys.size - 1
    )
    return sorted_keys[pos] == query


# -- single-k-mer conveniences (legacy bytes interop) -------------------------


def pack_bytes_kmer(kmer: bytes) -> np.ndarray:
    """Pack one code-bytes k-mer into a ``(1, W)`` row."""
    return pack(np.frombuffer(kmer, dtype=np.uint8)[None, :])


def unpack_to_bytes(packed: np.ndarray, k: int) -> list[bytes]:
    """Rows back to code-bytes k-mers."""
    rows = unpack(packed, k)
    raw = rows.tobytes()
    return [raw[i * k : (i + 1) * k] for i in range(rows.shape[0])]
