"""Count-once fused k-mer extraction shared across the multi-k sweep.

The fan-out of :mod:`repro.core.multikmer` runs one assembly per
(assembler, k) pair over the *same* :class:`~repro.seq.readstore.ReadStore`.
PR 4 made the jobs share the encoded reads, but every job still extracted,
canonicalized and sorted its k-mer stream from scratch — ``ray_k25``,
``abyss_k25`` and ``contrail_k25`` each re-counted the identical 25-mer
multiset, and every distinct k re-walked the same code array.

This module eliminates that redundancy with two layers:

* :func:`build_spectra` — **one pass** over the store's flat code array
  produces a :class:`KmerSpectrum` for every k in the sweep, via
  :func:`repro.assembly.kmers.fused_canonical_positions_packed`: the
  array is packed once at the largest k and every smaller k is derived
  by masking the packed words (plus the handful of read-tail windows the
  largest k cannot reach).  Each spectrum holds the *sorted* distinct
  canonical rows, their global counts, and the occurrence stream
  (``inverse``/``read_offsets``/``rel_positions``) that maps every
  N-free window back to its read and offset — enough to reconstruct any
  assembler's per-k extraction, counting or partitioning bit-for-bit
  without touching the codes again.

* :class:`KmerTableCache` — a content-addressed registry keyed by
  ``(store digest, k)`` so every workload that needs the k-mer table of
  the same store resolves to the *same* spectrum (and its lazily derived
  owner partitions), counting ``kmer_table.hit`` / ``kmer_table.miss`` /
  ``kmer_table.bytes`` on the active tracer.

Spectra follow the exact sharing discipline of :class:`ReadStore`: the
arrays move into one shared-memory segment on first pickle, workers
attach zero-copy, and the handle is O(1) in the data size.  The owner
process must :meth:`KmerSpectrum.close` every spectrum it built.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterable

import numpy as np

from repro.assembly import kmers
from repro.assembly import packed as packedmod
from repro.assembly.dbg import KmerTable, build_kmer_table_packed
from repro.obs import get_tracer
from repro.seq.readstore import ReadStore, _attach_untracked, _cleanup_shm

#: Attached/shared spectra by segment name — same dedup role as
#: ``readstore._ATTACHED``: unpickling a handle in a process that already
#: holds the segment returns the live spectrum instead of re-attaching.
_ATTACHED: "weakref.WeakValueDictionary[str, KmerSpectrum]" = (
    weakref.WeakValueDictionary()
)


@dataclass(frozen=True)
class KmerSpectrumHandle:
    """O(1)-size pickle surrogate for a shared :class:`KmerSpectrum`."""

    shm_name: str
    k: int
    store_digest: str
    n_reads: int
    n_distinct: int
    n_occurrences: int


def _attach(handle: KmerSpectrumHandle) -> "KmerSpectrum":
    """Module-level unpickle hook (bound methods don't pickle portably)."""
    return KmerSpectrum.attach(handle)


def _layout_views(buf, n_reads: int, n_distinct: int, n_occ: int, W: int):
    """The five arrays over one flat buffer (all 8-byte elements, so every
    section is naturally aligned).  Returns
    (read_offsets, counts, inverse, rel_positions, distinct)."""
    off = 0
    read_offsets = np.frombuffer(buf, dtype=np.int64, count=n_reads + 1, offset=off)
    off += read_offsets.nbytes
    counts = np.frombuffer(buf, dtype=np.int64, count=n_distinct, offset=off)
    off += counts.nbytes
    inverse = np.frombuffer(buf, dtype=np.int64, count=n_occ, offset=off)
    off += inverse.nbytes
    rel_positions = np.frombuffer(buf, dtype=np.int64, count=n_occ, offset=off)
    off += rel_positions.nbytes
    distinct = np.frombuffer(
        buf, dtype=np.uint64, count=n_distinct * W, offset=off
    ).reshape(n_distinct, W)
    return read_offsets, counts, inverse, rel_positions, distinct


class KmerSpectrum:
    """The complete k-mer content of one store at one k, counted once.

    * ``distinct`` — ``(n_distinct, W)`` canonical packed rows in
      ascending key order (pre-sorted: tables built from them skip the
      sort via the ``presorted`` fast path).
    * ``counts`` — global multiplicity per distinct row.
    * ``inverse`` — per *occurrence* (N-free window, in store extraction
      order) the index of its distinct row: ``distinct[inverse]`` is
      bit-identical to ``canonical_kmers_store_packed(store, k)``.
    * ``read_offsets`` — occurrences of read ``i`` are the stream slice
      ``[read_offsets[i], read_offsets[i+1])``.
    * ``rel_positions`` — per occurrence, the window start offset within
      its read (trimming filters need it).
    """

    def __init__(
        self,
        k: int,
        store_digest: str,
        distinct: np.ndarray,
        counts: np.ndarray,
        inverse: np.ndarray,
        read_offsets: np.ndarray,
        rel_positions: np.ndarray,
        shm: shared_memory.SharedMemory | None = None,
        owns_shm: bool = False,
    ) -> None:
        packedmod.check_k(k)
        self.k = k
        self.words = packedmod.words_for(k)
        self.store_digest = store_digest
        self._distinct = distinct
        self._counts = counts
        self._inverse = inverse
        self._read_offsets = read_offsets
        self._rel_positions = rel_positions
        self.n_reads = int(read_offsets.shape[0]) - 1
        self.n_distinct = int(counts.shape[0])
        self.n_occurrences = int(inverse.shape[0])
        self._shm = shm
        self._owns_shm = owns_shm
        self._finalizer: weakref.finalize | None = None
        if shm is not None:
            self._finalizer = weakref.finalize(self, _cleanup_shm, shm, owns_shm)
        # Lazily derived, per-process (never shipped): hash-partition
        # owners per rank count, and the occurrence -> read map.
        self._owners: dict[int, np.ndarray] = {}
        self._occ_read: np.ndarray | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(
        cls, store: ReadStore, k: int, rows: np.ndarray, positions: np.ndarray
    ) -> "KmerSpectrum":
        """Build from one k's fused extraction output (canonical rows +
        global window start positions, both in extraction order)."""
        key_arr = packedmod.keys(rows, k)
        _, first, inverse, counts = np.unique(
            key_arr, return_index=True, return_inverse=True, return_counts=True
        )
        distinct = np.ascontiguousarray(rows[first])
        offsets = store.offsets
        read_of = np.searchsorted(offsets, positions, side="right") - 1
        per_read = np.bincount(read_of, minlength=store.n_reads)
        read_offsets = np.zeros(store.n_reads + 1, dtype=np.int64)
        np.cumsum(per_read, out=read_offsets[1:])
        rel_positions = positions - offsets[read_of]
        spectrum = cls(
            k=k,
            store_digest=store.digest,
            distinct=distinct,
            counts=counts.astype(np.int64),
            inverse=inverse.astype(np.int64).ravel(),
            read_offsets=read_offsets,
            rel_positions=rel_positions.astype(np.int64),
        )
        for arr in (
            spectrum._distinct,
            spectrum._counts,
            spectrum._inverse,
            spectrum._read_offsets,
            spectrum._rel_positions,
        ):
            arr.flags.writeable = False
        return spectrum

    @classmethod
    def attach(cls, handle: KmerSpectrumHandle) -> "KmerSpectrum":
        """Attach to an existing shared segment (zero-copy)."""
        existing = _ATTACHED.get(handle.shm_name)
        if existing is not None and not existing.closed:
            return existing
        shm = _attach_untracked(handle.shm_name)
        views = _layout_views(
            shm.buf,
            handle.n_reads,
            handle.n_distinct,
            handle.n_occurrences,
            packedmod.words_for(handle.k),
        )
        read_offsets, counts, inverse, rel_positions, distinct = views
        for arr in views:
            arr.flags.writeable = False
        spectrum = cls(
            k=handle.k,
            store_digest=handle.store_digest,
            distinct=distinct,
            counts=counts,
            inverse=inverse,
            read_offsets=read_offsets,
            rel_positions=rel_positions,
            shm=shm,
            owns_shm=False,
        )
        _ATTACHED[handle.shm_name] = spectrum
        return spectrum

    # -- sharing / lifecycle -------------------------------------------------

    @property
    def shared(self) -> bool:
        return self._shm is not None

    @property
    def owns_shm(self) -> bool:
        return self._owns_shm

    @property
    def closed(self) -> bool:
        return self._counts is None

    def share(self) -> KmerSpectrumHandle:
        """Move the arrays into a shared-memory segment (idempotent) and
        return the O(1) handle workers attach with."""
        if self.closed:
            raise ValueError("cannot share a closed KmerSpectrum")
        if self._shm is None:
            total = (
                self._read_offsets.nbytes
                + self._counts.nbytes
                + self._inverse.nbytes
                + self._rel_positions.nbytes
                + self._distinct.nbytes
            )
            shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
            views = _layout_views(
                shm.buf,
                self.n_reads,
                self.n_distinct,
                self.n_occurrences,
                self.words,
            )
            read_offsets, counts, inverse, rel_positions, distinct = views
            read_offsets[:] = self._read_offsets
            counts[:] = self._counts
            inverse[:] = self._inverse
            rel_positions[:] = self._rel_positions
            distinct[:] = self._distinct
            for arr in views:
                arr.flags.writeable = False
            self._read_offsets, self._counts = read_offsets, counts
            self._inverse, self._rel_positions = inverse, rel_positions
            self._distinct = distinct
            self._shm = shm
            self._owns_shm = True
            self._finalizer = weakref.finalize(self, _cleanup_shm, shm, True)
            _ATTACHED[shm.name] = self
        return self.handle()

    def handle(self) -> KmerSpectrumHandle:
        """Handle of an already-shared spectrum (see :meth:`share`)."""
        if self._shm is None:
            raise ValueError("KmerSpectrum is not shared; call share() first")
        return KmerSpectrumHandle(
            shm_name=self._shm.name,
            k=self.k,
            store_digest=self.store_digest,
            n_reads=self.n_reads,
            n_distinct=self.n_distinct,
            n_occurrences=self.n_occurrences,
        )

    def close(self, unlink: bool | None = None) -> None:
        """Release the shared segment (idempotent; double-close safe)."""
        shm = self._shm
        if shm is None:
            return
        if unlink is None:
            unlink = self._owns_shm
        self._shm = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._distinct = self._counts = self._inverse = None
        self._read_offsets = self._rel_positions = None
        self._owners.clear()
        self._occ_read = None
        _cleanup_shm(shm, unlink)

    def __reduce__(self):
        return _attach, (self.share(),)

    # -- array access --------------------------------------------------------

    def _require_open(self, arr):
        if arr is None:
            raise ValueError("KmerSpectrum is closed")
        return arr

    @property
    def distinct(self) -> np.ndarray:
        """Distinct canonical rows, ``(n_distinct, W)``, ascending key order."""
        return self._require_open(self._distinct)

    @property
    def counts(self) -> np.ndarray:
        """Global multiplicity aligned with :attr:`distinct`."""
        return self._require_open(self._counts)

    @property
    def inverse(self) -> np.ndarray:
        """Occurrence stream as indices into :attr:`distinct`."""
        return self._require_open(self._inverse)

    @property
    def read_offsets(self) -> np.ndarray:
        return self._require_open(self._read_offsets)

    @property
    def rel_positions(self) -> np.ndarray:
        return self._require_open(self._rel_positions)

    @property
    def nbytes(self) -> int:
        """Resident size of the spectrum arrays."""
        return int(
            self.distinct.nbytes
            + self.counts.nbytes
            + self.inverse.nbytes
            + self.read_offsets.nbytes
            + self.rel_positions.nbytes
        )

    # -- derived views -------------------------------------------------------

    def occ_read(self) -> np.ndarray:
        """Read index of every occurrence (derived once per process)."""
        if self._occ_read is None:
            per_read = np.diff(self.read_offsets)
            self._occ_read = np.repeat(
                np.arange(self.n_reads, dtype=np.int64), per_read
            )
        return self._occ_read

    def owners(self, n_ranks: int) -> np.ndarray:
        """Hash-partition owner rank of every distinct row — identical to
        :func:`repro.assembly.kmers.kmer_owner_packed`, computed once per
        rank count and reused by every workload sharing this spectrum."""
        got = self._owners.get(n_ranks)
        if got is None:
            got = kmers.kmer_owner_packed(self.distinct, self.k, n_ranks)
            self._owners[n_ranks] = got
        return got

    def table(self) -> KmerTable:
        """A fresh :class:`KmerTable` over the full spectrum (pre-sorted
        fast path; the caller owns it and may ``drop_below`` freely)."""
        return build_kmer_table_packed(
            self.k, self.distinct, self.counts, presorted=True
        )

    def __repr__(self) -> str:
        state = "shared" if self.shared else ("closed" if self.closed else "local")
        return (
            f"KmerSpectrum(k={self.k}, n_distinct={self.n_distinct}, "
            f"n_occurrences={self.n_occurrences}, {state}, "
            f"digest={self.store_digest[:12]}...)"
        )


def build_spectra(store: ReadStore, ks: Iterable[int]) -> tuple[KmerSpectrum, ...]:
    """Fused count-once extraction: one pass over ``store.codes`` yields a
    :class:`KmerSpectrum` per k, each bit-identical to the per-k path."""
    ks = sorted({int(k) for k in ks})
    if not ks:
        return ()
    fused = kmers.fused_canonical_positions_packed(store.codes, ks)
    return tuple(
        KmerSpectrum.from_rows(store, k, *fused[k]) for k in ks
    )


class KmerTableCache:
    """Process-wide registry of spectra keyed by ``(store digest, k)``.

    The cross-workload sharing point: the first unit that needs a
    (store, k) table registers its spectrum (``kmer_table.miss`` +
    ``kmer_table.bytes``), and every later unit — ``abyss_k25`` and
    ``contrail_k25`` after ``ray_k25`` — resolves to the same object
    (``kmer_table.hit``), reusing the sorted rows and any owner
    partitions already derived instead of re-sorting per job.  Closed
    spectra (owner freed the segment) drop out on lookup.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple[str, int], KmerSpectrum]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def resolve(self, spectrum: KmerSpectrum) -> KmerSpectrum:
        """The registered spectrum for ``spectrum``'s (digest, k), or
        ``spectrum`` itself after registering it."""
        key = (spectrum.store_digest, spectrum.k)
        with self._lock:
            got = self._entries.get(key)
            if got is not None and got.closed:
                del self._entries[key]
                got = None
            if got is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self._entries[key] = spectrum
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                self.misses += 1
        tracer = get_tracer()
        if tracer.enabled:
            if got is not None:
                tracer.count("kmer_table.hit")
            else:
                tracer.count("kmer_table.miss")
                tracer.count("kmer_table.bytes", spectrum.nbytes)
        return got if got is not None else spectrum

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide default, mirroring the assembly-cache discipline:
#: resolution is bit-neutral (same digest => same spectrum content), so
#: sharing across runs in one process is always safe.
_DEFAULT_CACHE = KmerTableCache()
_current: KmerTableCache | None = _DEFAULT_CACHE


def get_kmer_table_cache() -> KmerTableCache | None:
    """The active table cache, or None when disabled."""
    return _current


def set_kmer_table_cache(
    cache: KmerTableCache | None,
) -> KmerTableCache | None:
    """Install ``cache`` (None disables); returns the previous one."""
    global _current
    previous = _current
    _current = cache
    return previous


@contextmanager
def use_kmer_table_cache(cache: KmerTableCache | None):
    """Scoped :func:`set_kmer_table_cache` (None disables in the scope)."""
    previous = set_kmer_table_cache(cache)
    try:
        yield cache
    finally:
        set_kmer_table_cache(previous)
