"""Count-once fused k-mer extraction shared across the multi-k sweep.

The fan-out of :mod:`repro.core.multikmer` runs one assembly per
(assembler, k) pair over the *same* :class:`~repro.seq.readstore.ReadStore`.
PR 4 made the jobs share the encoded reads, but every job still extracted,
canonicalized and sorted its k-mer stream from scratch — ``ray_k25``,
``abyss_k25`` and ``contrail_k25`` each re-counted the identical 25-mer
multiset, and every distinct k re-walked the same code array.

This module eliminates that redundancy with two layers:

* :func:`build_spectra` — **one pass** over the store's flat code array
  produces a :class:`KmerSpectrum` for every k in the sweep, via
  :func:`repro.assembly.kmers.fused_canonical_positions_packed`: the
  array is packed once at the largest k and every smaller k is derived
  by masking the packed words (plus the handful of read-tail windows the
  largest k cannot reach).  Each spectrum holds the *sorted* distinct
  canonical rows, their global counts, and the occurrence stream
  (``inverse``/``read_offsets``/``rel_positions``) that maps every
  N-free window back to its read and offset — enough to reconstruct any
  assembler's per-k extraction, counting or partitioning bit-for-bit
  without touching the codes again.

* :class:`KmerTableCache` — a content-addressed registry keyed by
  ``(store digest, k)`` so every workload that needs the k-mer table of
  the same store resolves to the *same* spectrum (and its lazily derived
  owner partitions), counting ``kmer_table.hit`` / ``kmer_table.miss`` /
  ``kmer_table.bytes`` on the active tracer.

A third, optional layer shards the build itself.  The serial fused pass
is a single-threaded prefix ahead of the assembly fan-out; with a
pool-backed executor (:func:`submit_spectra_build`) the store is split
into contiguous read-range shards, each worker extracts its shard and
locally sorts/counts it into ``n_buckets`` radix buckets (bucket id =
top bits of packed word 0 — a *prefix* of the sort key, see
:func:`repro.assembly.packed.bucket_ids`), and the parent merges the
per-bucket sorted runs.  Because bucket ids are monotone over sorted
keys, ascending bucket concatenation of per-bucket merges is the
globally sorted distinct array, and the occurrence stream is rebuilt in
shard (= extraction) order — every sharded :class:`KmerSpectrum` is
bit-for-bit equal to the serial one.  The handles overlap with whatever
the parent does between submit and collect (cluster provisioning, in
the pipeline), which is where the wall win comes from.

Spectra follow the exact sharing discipline of :class:`ReadStore`: the
arrays move into one shared-memory segment on first pickle, workers
attach zero-copy, and the handle is O(1) in the data size.  The owner
process must :meth:`KmerSpectrum.close` every spectrum it built.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterable

import numpy as np

from repro.assembly import kmers
from repro.assembly import packed as packedmod
from repro.assembly.dbg import KmerTable, build_kmer_table_packed
from repro.obs import get_tracer
from repro.seq.readstore import ReadStore, _attach_untracked, _cleanup_shm

#: Default radix-bucket count for the sharded build.  Must be a power of
#: two; 16 keeps per-bucket merges comfortably sized without fragmenting
#: small spectra.
DEFAULT_SPECTRUM_BUCKETS = 16

#: Attached/shared spectra by segment name — same dedup role as
#: ``readstore._ATTACHED``: unpickling a handle in a process that already
#: holds the segment returns the live spectrum instead of re-attaching.
_ATTACHED: "weakref.WeakValueDictionary[str, KmerSpectrum]" = (
    weakref.WeakValueDictionary()
)


@dataclass(frozen=True)
class KmerSpectrumHandle:
    """O(1)-size pickle surrogate for a shared :class:`KmerSpectrum`."""

    shm_name: str
    k: int
    store_digest: str
    n_reads: int
    n_distinct: int
    n_occurrences: int


def _attach(handle: KmerSpectrumHandle) -> "KmerSpectrum":
    """Module-level unpickle hook (bound methods don't pickle portably)."""
    return KmerSpectrum.attach(handle)


def _layout_views(buf, n_reads: int, n_distinct: int, n_occ: int, W: int):
    """The five arrays over one flat buffer (all 8-byte elements, so every
    section is naturally aligned).  Returns
    (read_offsets, counts, inverse, rel_positions, distinct)."""
    off = 0
    read_offsets = np.frombuffer(buf, dtype=np.int64, count=n_reads + 1, offset=off)
    off += read_offsets.nbytes
    counts = np.frombuffer(buf, dtype=np.int64, count=n_distinct, offset=off)
    off += counts.nbytes
    inverse = np.frombuffer(buf, dtype=np.int64, count=n_occ, offset=off)
    off += inverse.nbytes
    rel_positions = np.frombuffer(buf, dtype=np.int64, count=n_occ, offset=off)
    off += rel_positions.nbytes
    distinct = np.frombuffer(
        buf, dtype=np.uint64, count=n_distinct * W, offset=off
    ).reshape(n_distinct, W)
    return read_offsets, counts, inverse, rel_positions, distinct


class KmerSpectrum:
    """The complete k-mer content of one store at one k, counted once.

    * ``distinct`` — ``(n_distinct, W)`` canonical packed rows in
      ascending key order (pre-sorted: tables built from them skip the
      sort via the ``presorted`` fast path).
    * ``counts`` — global multiplicity per distinct row.
    * ``inverse`` — per *occurrence* (N-free window, in store extraction
      order) the index of its distinct row: ``distinct[inverse]`` is
      bit-identical to ``canonical_kmers_store_packed(store, k)``.
    * ``read_offsets`` — occurrences of read ``i`` are the stream slice
      ``[read_offsets[i], read_offsets[i+1])``.
    * ``rel_positions`` — per occurrence, the window start offset within
      its read (trimming filters need it).
    """

    def __init__(
        self,
        k: int,
        store_digest: str,
        distinct: np.ndarray,
        counts: np.ndarray,
        inverse: np.ndarray,
        read_offsets: np.ndarray,
        rel_positions: np.ndarray,
        shm: shared_memory.SharedMemory | None = None,
        owns_shm: bool = False,
    ) -> None:
        packedmod.check_k(k)
        self.k = k
        self.words = packedmod.words_for(k)
        self.store_digest = store_digest
        self._distinct = distinct
        self._counts = counts
        self._inverse = inverse
        self._read_offsets = read_offsets
        self._rel_positions = rel_positions
        self.n_reads = int(read_offsets.shape[0]) - 1
        self.n_distinct = int(counts.shape[0])
        self.n_occurrences = int(inverse.shape[0])
        self._shm = shm
        self._owns_shm = owns_shm
        self._finalizer: weakref.finalize | None = None
        if shm is not None:
            self._finalizer = weakref.finalize(self, _cleanup_shm, shm, owns_shm)
        # Lazily derived, per-process (never shipped): hash-partition
        # owners per rank count, and the occurrence -> read map.
        self._owners: dict[int, np.ndarray] = {}
        self._occ_read: np.ndarray | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(
        cls, store: ReadStore, k: int, rows: np.ndarray, positions: np.ndarray
    ) -> "KmerSpectrum":
        """Build from one k's fused extraction output (canonical rows +
        global window start positions, both in extraction order)."""
        key_arr = packedmod.keys(rows, k)
        # return_index is deliberately absent: reconstructing the distinct
        # rows from the sorted unique *keys* (keys_to_packed is an exact
        # inverse) is both cheaper than the rows[first] gather and skips
        # the extra argsort np.unique needs to produce first-occurrence
        # indices.
        uniq, inverse, counts = np.unique(
            key_arr, return_inverse=True, return_counts=True
        )
        distinct = packedmod.keys_to_packed(uniq, k)
        return cls._from_occurrences(store, k, distinct, counts, inverse, positions)

    @classmethod
    def _from_occurrences(
        cls,
        store: ReadStore,
        k: int,
        distinct: np.ndarray,
        counts: np.ndarray,
        inverse: np.ndarray,
        positions: np.ndarray,
    ) -> "KmerSpectrum":
        """Assemble a spectrum from already-counted parts: sorted distinct
        rows, their counts, the occurrence -> distinct map and the global
        window positions (both in extraction order)."""
        offsets = store.offsets
        read_of = np.searchsorted(offsets, positions, side="right") - 1
        per_read = np.bincount(read_of, minlength=store.n_reads)
        read_offsets = np.zeros(store.n_reads + 1, dtype=np.int64)
        np.cumsum(per_read, out=read_offsets[1:])
        rel_positions = positions - offsets[read_of]
        if not distinct.flags["C_CONTIGUOUS"]:
            distinct = np.ascontiguousarray(distinct)
        spectrum = cls(
            k=k,
            store_digest=store.digest,
            distinct=distinct,
            counts=np.asarray(counts).astype(np.int64, copy=False),
            inverse=np.asarray(inverse).astype(np.int64, copy=False).ravel(),
            read_offsets=read_offsets,
            rel_positions=rel_positions.astype(np.int64, copy=False),
        )
        for arr in (
            spectrum._distinct,
            spectrum._counts,
            spectrum._inverse,
            spectrum._read_offsets,
            spectrum._rel_positions,
        ):
            arr.flags.writeable = False
        return spectrum

    @classmethod
    def attach(cls, handle: KmerSpectrumHandle) -> "KmerSpectrum":
        """Attach to an existing shared segment (zero-copy)."""
        existing = _ATTACHED.get(handle.shm_name)
        if existing is not None and not existing.closed:
            return existing
        shm = _attach_untracked(handle.shm_name)
        views = _layout_views(
            shm.buf,
            handle.n_reads,
            handle.n_distinct,
            handle.n_occurrences,
            packedmod.words_for(handle.k),
        )
        read_offsets, counts, inverse, rel_positions, distinct = views
        for arr in views:
            arr.flags.writeable = False
        spectrum = cls(
            k=handle.k,
            store_digest=handle.store_digest,
            distinct=distinct,
            counts=counts,
            inverse=inverse,
            read_offsets=read_offsets,
            rel_positions=rel_positions,
            shm=shm,
            owns_shm=False,
        )
        _ATTACHED[handle.shm_name] = spectrum
        return spectrum

    # -- sharing / lifecycle -------------------------------------------------

    @property
    def shared(self) -> bool:
        return self._shm is not None

    @property
    def owns_shm(self) -> bool:
        return self._owns_shm

    @property
    def closed(self) -> bool:
        return self._counts is None

    def share(self) -> KmerSpectrumHandle:
        """Move the arrays into a shared-memory segment (idempotent) and
        return the O(1) handle workers attach with."""
        if self.closed:
            raise ValueError("cannot share a closed KmerSpectrum")
        if self._shm is None:
            total = (
                self._read_offsets.nbytes
                + self._counts.nbytes
                + self._inverse.nbytes
                + self._rel_positions.nbytes
                + self._distinct.nbytes
            )
            shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
            views = _layout_views(
                shm.buf,
                self.n_reads,
                self.n_distinct,
                self.n_occurrences,
                self.words,
            )
            read_offsets, counts, inverse, rel_positions, distinct = views
            read_offsets[:] = self._read_offsets
            counts[:] = self._counts
            inverse[:] = self._inverse
            rel_positions[:] = self._rel_positions
            distinct[:] = self._distinct
            for arr in views:
                arr.flags.writeable = False
            self._read_offsets, self._counts = read_offsets, counts
            self._inverse, self._rel_positions = inverse, rel_positions
            self._distinct = distinct
            self._shm = shm
            self._owns_shm = True
            self._finalizer = weakref.finalize(self, _cleanup_shm, shm, True)
            _ATTACHED[shm.name] = self
        return self.handle()

    def handle(self) -> KmerSpectrumHandle:
        """Handle of an already-shared spectrum (see :meth:`share`)."""
        if self._shm is None:
            raise ValueError("KmerSpectrum is not shared; call share() first")
        return KmerSpectrumHandle(
            shm_name=self._shm.name,
            k=self.k,
            store_digest=self.store_digest,
            n_reads=self.n_reads,
            n_distinct=self.n_distinct,
            n_occurrences=self.n_occurrences,
        )

    def close(self, unlink: bool | None = None) -> None:
        """Release the shared segment (idempotent; double-close safe)."""
        shm = self._shm
        if shm is None:
            return
        if unlink is None:
            unlink = self._owns_shm
        self._shm = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._distinct = self._counts = self._inverse = None
        self._read_offsets = self._rel_positions = None
        self._owners.clear()
        self._occ_read = None
        _cleanup_shm(shm, unlink)

    def __reduce__(self):
        return _attach, (self.share(),)

    # -- array access --------------------------------------------------------

    def _require_open(self, arr):
        if arr is None:
            raise ValueError("KmerSpectrum is closed")
        return arr

    @property
    def distinct(self) -> np.ndarray:
        """Distinct canonical rows, ``(n_distinct, W)``, ascending key order."""
        return self._require_open(self._distinct)

    @property
    def counts(self) -> np.ndarray:
        """Global multiplicity aligned with :attr:`distinct`."""
        return self._require_open(self._counts)

    @property
    def inverse(self) -> np.ndarray:
        """Occurrence stream as indices into :attr:`distinct`."""
        return self._require_open(self._inverse)

    @property
    def read_offsets(self) -> np.ndarray:
        return self._require_open(self._read_offsets)

    @property
    def rel_positions(self) -> np.ndarray:
        return self._require_open(self._rel_positions)

    @property
    def nbytes(self) -> int:
        """Resident size of the spectrum arrays."""
        return int(
            self.distinct.nbytes
            + self.counts.nbytes
            + self.inverse.nbytes
            + self.read_offsets.nbytes
            + self.rel_positions.nbytes
        )

    # -- derived views -------------------------------------------------------

    def occ_read(self) -> np.ndarray:
        """Read index of every occurrence (derived once per process)."""
        if self._occ_read is None:
            per_read = np.diff(self.read_offsets)
            self._occ_read = np.repeat(
                np.arange(self.n_reads, dtype=np.int64), per_read
            )
        return self._occ_read

    def owners(self, n_ranks: int) -> np.ndarray:
        """Hash-partition owner rank of every distinct row — identical to
        :func:`repro.assembly.kmers.kmer_owner_packed`, computed once per
        rank count and reused by every workload sharing this spectrum."""
        got = self._owners.get(n_ranks)
        if got is None:
            got = kmers.kmer_owner_packed(self.distinct, self.k, n_ranks)
            self._owners[n_ranks] = got
        return got

    def table(self) -> KmerTable:
        """A fresh :class:`KmerTable` over the full spectrum (pre-sorted
        fast path; the caller owns it and may ``drop_below`` freely)."""
        return build_kmer_table_packed(
            self.k, self.distinct, self.counts, presorted=True
        )

    def __repr__(self) -> str:
        state = "shared" if self.shared else ("closed" if self.closed else "local")
        return (
            f"KmerSpectrum(k={self.k}, n_distinct={self.n_distinct}, "
            f"n_occurrences={self.n_occurrences}, {state}, "
            f"digest={self.store_digest[:12]}...)"
        )


def build_spectra(
    store: ReadStore,
    ks: Iterable[int],
    executor=None,
    n_shards: int | None = None,
    n_buckets: int = DEFAULT_SPECTRUM_BUCKETS,
    span_attrs: dict | None = None,
) -> tuple[KmerSpectrum, ...]:
    """Fused count-once extraction: one pass over ``store.codes`` yields a
    :class:`KmerSpectrum` per k, each bit-identical to the per-k path.

    With an ``executor`` whose ``supports_overlap`` is true the build is
    sharded across pool workers (submit + immediate collect; see
    :func:`submit_spectra_build` for the overlapped form) — still
    bit-identical.  Serial otherwise.  When tracing is active the build
    runs under a ``spectrum.build`` span with per-k child spans.
    """
    ks = tuple(sorted({int(k) for k in ks}))
    if not ks:
        return ()
    if executor is not None and getattr(executor, "supports_overlap", False):
        pending = submit_spectra_build(
            store, ks, executor, n_shards=n_shards, n_buckets=n_buckets
        )
        return pending.collect(span_attrs=span_attrs)
    tracer = get_tracer()
    if not tracer.enabled:
        fused = kmers.fused_canonical_positions_packed(store.codes, ks)
        return tuple(KmerSpectrum.from_rows(store, k, *fused[k]) for k in ks)
    with tracer.span(
        "spectrum.build",
        category="spectrum",
        mode="serial",
        ks=list(ks),
        **(span_attrs or {}),
    ):
        with tracer.span("spectrum.extract", category="spectrum"):
            fused = kmers.fused_canonical_positions_packed(store.codes, ks)
        spectra = []
        for k in ks:
            with tracer.span("spectrum.k", category="spectrum", k=k):
                spectra.append(KmerSpectrum.from_rows(store, k, *fused[k]))
        return tuple(spectra)


@dataclass(frozen=True)
class ShardSpectrumPart:
    """One (shard, k) cell of the sharded build: the shard's locally
    sorted distinct keys/counts, its occurrence stream against those
    local keys, and the bucket boundaries within the sorted keys."""

    keys: np.ndarray  # local distinct sortable keys, ascending
    counts: np.ndarray  # local multiplicity per key
    inverse: np.ndarray  # shard occurrences -> local key index
    positions: np.ndarray  # global window positions, extraction order
    bucket_starts: np.ndarray  # (n_buckets + 1,) slice bounds into keys


@dataclass(frozen=True)
class SpectrumShardWorkload:
    """Pool workload: extract + locally sort/count one read-range shard.

    The store O(1)-pickles over shared memory, so shipping the workload
    costs a handle, not the reads.  Workers run under a thread-local
    :class:`~repro.obs.NullTracer` (same isolation discipline as the
    preprocessing prefetch worker) and return real-clock perf_counter
    stamps so the parent can emit overlap-proving shard spans.
    """

    store: ReadStore
    ks: tuple[int, ...]
    reads_lo: int
    reads_hi: int
    n_buckets: int

    def __call__(self):
        from repro.obs import NullTracer, set_thread_tracer

        previous = set_thread_tracer(NullTracer())
        try:
            r0 = time.perf_counter()
            fused = kmers.fused_canonical_positions_store_packed(
                self.store, self.ks, self.reads_lo, self.reads_hi
            )
            edges = np.arange(self.n_buckets + 1, dtype=np.int64)
            parts: dict[int, ShardSpectrumPart] = {}
            for k in self.ks:
                rows, positions = fused[k]
                key_arr = packedmod.keys(rows, k)
                uniq, inverse, counts = np.unique(
                    key_arr, return_inverse=True, return_counts=True
                )
                bids = packedmod.bucket_ids(uniq, k, self.n_buckets)
                bucket_starts = np.searchsorted(bids, edges).astype(np.int64)
                parts[k] = ShardSpectrumPart(
                    keys=uniq,
                    counts=counts.astype(np.int64, copy=False),
                    inverse=np.asarray(inverse)
                    .astype(np.int64, copy=False)
                    .ravel(),
                    positions=positions,
                    bucket_starts=bucket_starts,
                )
            r1 = time.perf_counter()
        finally:
            set_thread_tracer(previous)
        return (parts, r0, r1), None


def _shard_ranges(n_reads: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous read ranges covering ``[0, n_reads)``; same sizing rule
    as ``np.array_split`` (first ``n_reads % n_shards`` shards one longer)."""
    n_shards = max(1, min(int(n_shards), n_reads or 1))
    base, extra = divmod(n_reads, n_shards)
    ranges = []
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def _merge_shard_spectra(
    store: ReadStore,
    k: int,
    parts: list[ShardSpectrumPart],
    n_buckets: int,
) -> KmerSpectrum:
    """Merge one k's shard parts into the global spectrum.

    Per bucket: concatenate the shards' key runs for that bucket and
    ``np.unique`` them — the merged bucket is sorted, and because bucket
    ids are a prefix of the sort key (monotone over sorted keys),
    appending the buckets in ascending order yields the globally sorted
    distinct array.  Counts are summed exactly (int64 scatter-add), and
    each shard's local inverse is translated through its bucket's merge
    ranks so the concatenated occurrence stream (shard order ==
    extraction order) indexes the global distinct array — bit-identical
    to the serial build.
    """
    trans = [np.empty(p.keys.shape[0], dtype=np.int64) for p in parts]
    key_chunks: list[np.ndarray] = []
    count_chunks: list[np.ndarray] = []
    base = 0
    for b in range(n_buckets):
        seg_keys = []
        seg_counts = []
        bounds = []
        for p in parts:
            lo = int(p.bucket_starts[b])
            hi = int(p.bucket_starts[b + 1])
            bounds.append((lo, hi))
            seg_keys.append(p.keys[lo:hi])
            seg_counts.append(p.counts[lo:hi])
        cat_keys = np.concatenate(seg_keys)
        merged, inv = np.unique(cat_keys, return_inverse=True)
        inv = np.asarray(inv).ravel()
        merged_counts = np.zeros(merged.shape[0], dtype=np.int64)
        np.add.at(merged_counts, inv, np.concatenate(seg_counts))
        off = 0
        for t, (lo, hi) in zip(trans, bounds):
            n_s = hi - lo
            t[lo:hi] = inv[off : off + n_s] + base
            off += n_s
        key_chunks.append(merged)
        count_chunks.append(merged_counts)
        base += merged.shape[0]
    distinct = packedmod.keys_to_packed(np.concatenate(key_chunks), k)
    counts = np.concatenate(count_chunks)
    inverse = np.concatenate([t[p.inverse] for t, p in zip(trans, parts)])
    positions = np.concatenate([p.positions for p in parts])
    return KmerSpectrum._from_occurrences(
        store, k, distinct, counts, inverse, positions
    )


class PendingSpectraBuild:
    """In-flight sharded build: handles out, merge on :meth:`collect`.

    Created by :func:`submit_spectra_build`; the caller does its own work
    (cluster provisioning, planning) between submit and collect — that
    interval is the overlap the shard workers fill.  Any worker failure
    degrades to the serial build (bit-identical result, lost
    optimization), traced as a ``spectrum.build_fallback`` event.
    """

    def __init__(
        self,
        store: ReadStore,
        ks: tuple[int, ...],
        handles: list,
        ranges: list[tuple[int, int]],
        n_buckets: int,
        r_submit: float,
    ) -> None:
        self.store = store
        self.ks = ks
        self._handles = handles
        self._ranges = ranges
        self.n_buckets = n_buckets
        self.n_shards = len(ranges)
        self._r_submit = r_submit

    def collect(self, span_attrs: dict | None = None) -> tuple[KmerSpectrum, ...]:
        """Wait for every shard and merge; bit-identical to the serial
        build (falls back to it outright if any shard failed)."""
        outcomes = [h.outcome() for h in self._handles]
        errors = [o.error for o in outcomes if o.error is not None]
        tracer = get_tracer()
        if errors:
            if tracer.enabled:
                tracer.event(
                    "spectrum.build_fallback",
                    category="spectrum",
                    error=repr(errors[0]),
                )
            return build_spectra(self.store, self.ks, span_attrs=span_attrs)
        shard_results = [o.result for o in outcomes]
        if not tracer.enabled:
            return tuple(
                _merge_shard_spectra(
                    self.store,
                    k,
                    [parts[k] for parts, _, _ in shard_results],
                    self.n_buckets,
                )
                for k in self.ks
            )
        with tracer.span(
            "spectrum.build",
            category="spectrum",
            mode="sharded",
            ks=list(self.ks),
            n_shards=self.n_shards,
            n_buckets=self.n_buckets,
            r_submit=self._r_submit,
            **(span_attrs or {}),
        ):
            vnow = tracer.clock.now if tracer.clock is not None else None
            for i, ((lo, hi), (_, w0, w1)) in enumerate(
                zip(self._ranges, shard_results)
            ):
                # Zero virtual width; the real interval is the worker's
                # own perf_counter window, which predates this collect —
                # the span-level proof that extraction overlapped the
                # parent's provisioning work.
                tracer.add_span(
                    "spectrum.shard",
                    v_start=vnow,
                    v_end=vnow,
                    category="spectrum",
                    r_start=w0,
                    r_end=w1,
                    shard=i,
                    reads_lo=lo,
                    reads_hi=hi,
                )
            spectra = []
            for k in self.ks:
                with tracer.span("spectrum.merge", category="spectrum", k=k):
                    spectra.append(
                        _merge_shard_spectra(
                            self.store,
                            k,
                            [parts[k] for parts, _, _ in shard_results],
                            self.n_buckets,
                        )
                    )
            return tuple(spectra)


def submit_spectra_build(
    store: ReadStore,
    ks: Iterable[int],
    executor,
    n_shards: int | None = None,
    n_buckets: int = DEFAULT_SPECTRUM_BUCKETS,
) -> PendingSpectraBuild:
    """Launch the sharded build and return immediately.

    ``n_shards`` defaults to the executor's ``max_workers`` — a
    configuration-derived value, so the span structure of a traced run is
    deterministic (never the host's core count).  The store is shared on
    first pickle; each worker attaches zero-copy and processes one
    contiguous read range into ``n_buckets`` radix buckets.
    """
    ks = tuple(sorted({int(k) for k in ks}))
    if not ks:
        raise ValueError("submit_spectra_build needs at least one k")
    if n_buckets < 1 or (n_buckets & (n_buckets - 1)):
        raise ValueError(f"n_buckets must be a power of two, got {n_buckets}")
    if n_shards is None:
        n_shards = int(getattr(executor, "max_workers", 1) or 1)
    ranges = _shard_ranges(store.n_reads, n_shards)
    r_submit = time.perf_counter()
    handles = [
        executor.submit(
            SpectrumShardWorkload(
                store=store,
                ks=ks,
                reads_lo=lo,
                reads_hi=hi,
                n_buckets=n_buckets,
            ),
            None,
        )
        for lo, hi in ranges
    ]
    return PendingSpectraBuild(store, ks, handles, ranges, n_buckets, r_submit)


class KmerTableCache:
    """Process-wide registry of spectra keyed by ``(store digest, k)``.

    The cross-workload sharing point: the first unit that needs a
    (store, k) table registers its spectrum (``kmer_table.miss`` +
    ``kmer_table.bytes``), and every later unit — ``abyss_k25`` and
    ``contrail_k25`` after ``ray_k25`` — resolves to the same object
    (``kmer_table.hit``), reusing the sorted rows and any owner
    partitions already derived instead of re-sorting per job.  Closed
    spectra (owner freed the segment) drop out on lookup.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple[str, int], KmerSpectrum]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def resolve(self, spectrum: KmerSpectrum) -> KmerSpectrum:
        """The registered spectrum for ``spectrum``'s (digest, k), or
        ``spectrum`` itself after registering it."""
        key = (spectrum.store_digest, spectrum.k)
        with self._lock:
            got = self._entries.get(key)
            if got is not None and got.closed:
                del self._entries[key]
                got = None
            if got is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self._entries[key] = spectrum
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                self.misses += 1
        tracer = get_tracer()
        if tracer.enabled:
            if got is not None:
                tracer.count("kmer_table.hit")
            else:
                tracer.count("kmer_table.miss")
                tracer.count("kmer_table.bytes", spectrum.nbytes)
        return got if got is not None else spectrum

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide default, mirroring the assembly-cache discipline:
#: resolution is bit-neutral (same digest => same spectrum content), so
#: sharing across runs in one process is always safe.
_DEFAULT_CACHE = KmerTableCache()
_current: KmerTableCache | None = _DEFAULT_CACHE


def get_kmer_table_cache() -> KmerTableCache | None:
    """The active table cache, or None when disabled."""
    return _current


def set_kmer_table_cache(
    cache: KmerTableCache | None,
) -> KmerTableCache | None:
    """Install ``cache`` (None disables); returns the previous one."""
    global _current
    previous = _current
    _current = cache
    return previous


@contextmanager
def use_kmer_table_cache(cache: KmerTableCache | None):
    """Scoped :func:`set_kmer_table_cache` (None disables in the scope)."""
    previous = set_kmer_table_cache(cache)
    try:
        yield cache
    finally:
        set_kmer_table_cache(previous)
