"""Distributed MPI-style assembler (Ray analog).

Ray (Boisvert et al. 2010) hash-partitions canonical k-mers over MPI ranks
and grows contigs through message-driven extension: a rank walking a seed
sends a membership query for every candidate extension to the k-mer's
owner.  Two properties matter for the paper's benchmarks:

* aggregate memory scales with ranks (any data set fits if you add nodes),
* extension is *latency-bound* — every remote candidate probe is a small
  message — so compute scale-out gains are marginal (Fig. 3/4).

Here, ranks exchange packed k-mer rows through a real ``alltoall``, each
rank counts its own shard with a sorted-array :class:`KmerTable`, and the
walking phase charges work to the rank owning each seed while counting
one remote probe message per off-shard candidate query, reproducing both
properties from measured quantities.  Communication is charged at the
*logical* k-byte record size the cost model was calibrated to, not the
16-byte packed wire size, so virtual TTCs match the bytes-era pipeline
bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.assembly import packed as packedmod
from repro.assembly.base import AssemblyParams, unitigs_to_contigs
from repro.assembly.cleanup import clean_unitigs
from repro.assembly.contigs import AssemblyResult, assembly_stats
from repro.assembly.dbg import KmerTable, build_kmer_table_packed
from repro.assembly.dbg import extract_unitigs
from repro.assembly.kmers import (
    canonical_kmers_store_packed,
    kmer_counts_packed,
    kmer_owner_packed,
)
from repro.parallel.comm import SimWorld
from repro.seq.fastq import FastqRecord
from repro.seq.readstore import ReadStore


def _distribute_and_count_fused(
    world: SimWorld, spectrum, k: int, kind_prefix: str = ""
) -> list[KmerTable]:
    """Count-once twin of :func:`distribute_and_count`.

    The shared :class:`~repro.assembly.sweep.KmerSpectrum` already holds
    the full occurrence stream and the sorted distinct rows, so no rank
    re-extracts or re-sorts anything.  Every virtual quantity is derived
    instead of recomputed — per-rank extraction charges from the stripe
    occupancy (read index mod p), the alltoall byte matrix from the
    (stripe, owner) occurrence histogram, and each rank's shard from the
    owner partition of the pre-sorted distinct rows — and is provably
    equal to the recomputed path's: same stream lengths, same per-pair
    payload sizes, same shard tables.
    """
    p = world.size
    owners = spectrum.owners(p)
    occ_rank = spectrum.occ_read() % p
    occ_owner = owners[spectrum.inverse]
    # (src rank, owner rank) occurrence histogram == the alltoall row
    # counts of the recomputed path.
    matrix = np.bincount(occ_rank * p + occ_owner, minlength=p * p).reshape(
        p, p
    )

    with world.phase(f"{kind_prefix}kmer_extract", kind="kmer"):
        for r in world.ranks():
            world.charge(r, float(matrix[r].sum()))
        send = [[int(matrix[r, dst]) for dst in range(p)] for r in range(p)]
        # Same logical k-byte record charge per (src, dst) pair as the
        # payload-carrying exchange below.
        world.alltoall(send, nbytes_of=lambda c: int(c) * k)

    with world.phase(f"{kind_prefix}kmer_count", kind="kmer"):
        shards: list[KmerTable] = []
        for r in world.ranks():
            world.charge(r, float(matrix[:, r].sum()))
            mine = owners == r
            shard = build_kmer_table_packed(
                k,
                spectrum.distinct[mine],
                spectrum.counts[mine],
                presorted=True,
            )
            shards.append(shard)
            world.record_memory(r, shard.memory_bytes())
    return shards


def distribute_and_count(
    world: SimWorld,
    reads: "ReadStore | list[FastqRecord]",
    k: int,
    kind_prefix: str = "",
    spectrum=None,
) -> list[KmerTable]:
    """Shared first half of the MPI assemblers.

    Splits reads over ranks, extracts packed k-mers locally, exchanges
    them to their hash owners via alltoall, and counts each shard into a
    sorted-array :class:`KmerTable`.  Returns the per-rank shard tables.

    Accepts the encode-once :class:`ReadStore` directly; a record list
    is encoded once up front.  Each rank's stripe is gathered from the
    shared code arrays — the extracted k-mer stream is bit-identical to
    the historical per-read ``reads[r::p]`` path.

    ``spectrum`` — a matching :class:`~repro.assembly.sweep.KmerSpectrum`
    (same store digest, same k) — switches to the count-once fast path,
    which replays the identical accounting from the shared precomputed
    stream; a non-matching spectrum is ignored.
    """
    store = (
        reads if isinstance(reads, ReadStore) else ReadStore.from_reads(reads)
    )
    if (
        spectrum is not None
        and spectrum.k == k
        and spectrum.store_digest == store.digest
    ):
        return _distribute_and_count_fused(world, spectrum, k, kind_prefix)
    p = world.size

    with world.phase(f"{kind_prefix}kmer_extract", kind="kmer"):
        send: list[list[np.ndarray]] = [[None] * p for _ in range(p)]
        for r in world.ranks():
            stripe = np.arange(r, store.n_reads, p, dtype=np.int64)
            kmers = canonical_kmers_store_packed(store, k, indices=stripe)
            world.charge(r, float(kmers.shape[0]))
            owners = kmer_owner_packed(kmers, k, p)
            for dst in range(p):
                send[r][dst] = kmers[owners == dst]
        # Rows travel packed (16 B) but are charged at their logical
        # k-byte record size — the quantity the cost model prices.
        recv = world.alltoall(send, nbytes_of=lambda a: a.shape[0] * k)

    with world.phase(f"{kind_prefix}kmer_count", kind="kmer"):
        shards: list[KmerTable] = []
        for r in world.ranks():
            mine = [m for m in recv[r] if m is not None and m.size]
            stacked = (
                np.concatenate(mine, axis=0)
                if mine
                else np.zeros((0, packedmod.words_for(k)), dtype=np.uint64)
            )
            world.charge(r, float(stacked.shape[0]))
            shard = build_kmer_table_packed(
                k, *kmer_counts_packed(stacked, k)
            )
            shards.append(shard)
            world.record_memory(r, shard.memory_bytes())
    return shards


def merge_shards(k: int, shards: list[KmerTable]) -> KmerTable:
    """Union of disjoint per-rank shard tables (a local-execution
    convenience; work and messages stay attributed per owner rank)."""
    rows = np.concatenate([s.packed for s in shards], axis=0)
    counts = np.concatenate([s.count_array for s in shards])
    return build_kmer_table_packed(k, rows, counts)


class RayAssembler:
    """MPI-style distributed DBG assembler with message-driven extension."""

    name = "ray"

    def assemble(
        self,
        reads: list[FastqRecord],
        params: AssemblyParams,
        n_ranks: int = 8,
    ) -> AssemblyResult:
        """Legacy record-list entry point (thin encode-once adapter)."""
        return self.assemble_encoded(
            ReadStore.from_reads(reads), params, n_ranks=n_ranks
        )

    def assemble_encoded(
        self,
        store: ReadStore,
        params: AssemblyParams,
        n_ranks: int = 8,
        spectrum=None,
    ) -> AssemblyResult:
        world = SimWorld(n_ranks)
        p = world.size
        k = params.k

        shards = distribute_and_count(world, store, k, spectrum=spectrum)

        # Coverage threshold is applied locally on each shard.
        with world.phase("graph_build", kind="graph"):
            for r in world.ranks():
                shard = shards[r]
                removed = shard.drop_below(params.min_count)
                world.charge(r, float(len(shard) + removed))
                world.record_memory(r, shard.memory_bytes())

        table = merge_shards(k, shards)

        with world.phase("extension_walk", kind="walk"):
            visited: set = set()
            all_unitigs = []
            total_probes = 0
            for r in world.ranks():
                unitigs, steps = extract_unitigs(
                    table, seeds=shards[r].packed, visited=visited
                )
                all_unitigs.extend(unitigs)
                world.charge(r, float(steps))
                # Each extension step probes ~4 candidate successors and
                # ~4 predecessors; a candidate is remote w.p. (p-1)/p.
                total_probes += int(steps * 8 * (p - 1) / p)
            world.count_messages(total_probes)

        with world.phase("cleanup", kind="walk"):
            all_unitigs, cstats = clean_unitigs(
                all_unitigs, k, clip=params.clip_tips, pop=params.pop_bubbles
            )
            # Cleanup runs on the condensed graph, replicated cheaply.
            for r in world.ranks():
                world.charge(r, float(cstats.work) / p)

        contigs = unitigs_to_contigs(all_unitigs, params, self.name)
        return AssemblyResult(
            assembler=self.name,
            k=k,
            contigs=contigs,
            usage=world.usage,
            stats={
                "n_ranks": p,
                "distinct_kmers": len(table),
                "tips_removed": cstats.tips_removed,
                "bubbles_popped": cstats.bubbles_popped,
                **assembly_stats(contigs),
            },
        )
