"""Distributed MPI-style assembler (ABySS analog).

ABySS (Simpson et al. 2009) distributes the k-mer hash table like Ray but
extends unitigs with bulk synchronized rounds instead of per-step probe
messages, then ships every unitig to the master for the final
overlap/merge and output stage.  Consequences the paper measures:

* lower constant factors than Ray — fewer, larger messages (Table III:
  882 s vs Ray's 1,721 s at two nodes), but
* the serial master stage is a fixed Amdahl term, so adding nodes shows
  "no significant gain" (Fig. 3).

The implementation mirrors that: distributed count + local-shard walking
charged per rank, then a ``gather`` of all unitigs and a serial
master-side cleanup/merge charged via ``charge_serial``.
"""

from __future__ import annotations

from repro.assembly.base import AssemblyParams, unitigs_to_contigs
from repro.assembly.cleanup import clean_unitigs
from repro.assembly.contigs import AssemblyResult, assembly_stats
from repro.assembly.dbg import extract_unitigs
from repro.assembly.ray import distribute_and_count, merge_shards
from repro.parallel.comm import SimWorld
from repro.seq.fastq import FastqRecord
from repro.seq.readstore import ReadStore


class AbyssAssembler:
    """MPI-style distributed DBG assembler with a serial master merge."""

    name = "abyss"

    def assemble(
        self,
        reads: list[FastqRecord],
        params: AssemblyParams,
        n_ranks: int = 8,
    ) -> AssemblyResult:
        """Legacy record-list entry point (thin encode-once adapter)."""
        return self.assemble_encoded(
            ReadStore.from_reads(reads), params, n_ranks=n_ranks
        )

    def assemble_encoded(
        self,
        store: ReadStore,
        params: AssemblyParams,
        n_ranks: int = 8,
        spectrum=None,
    ) -> AssemblyResult:
        world = SimWorld(n_ranks)
        p = world.size
        k = params.k

        shards = distribute_and_count(world, store, k, spectrum=spectrum)

        with world.phase("graph_build", kind="graph"):
            for r in world.ranks():
                shard = shards[r]
                removed = shard.drop_below(params.min_count)
                world.charge(r, float(len(shard) + removed))
                world.record_memory(r, shard.memory_bytes())

        table = merge_shards(k, shards)

        # Bulk-synchronous unitig walking: ranks walk their own seeds in
        # rounds; unlike Ray there is no per-step probe message, the round
        # structure shows up as collectives instead.
        with world.phase("unitig_rounds", kind="walk"):
            visited: set = set()
            all_unitigs = []
            per_rank_unitigs: list[list] = []
            total_probes = 0
            for r in world.ranks():
                unitigs, steps = extract_unitigs(
                    table, seeds=shards[r].packed, visited=visited
                )
                all_unitigs.extend(unitigs)
                per_rank_unitigs.append(unitigs)
                world.charge(r, float(steps))
                # ABySS also probes remote k-mers while extending, but
                # aggregates them per round (~2 effective messages per
                # step vs Ray's 8 fine-grained probes).
                total_probes += int(steps * 2 * (p - 1) / p)
            world.count_messages(total_probes)
            # A handful of synchronization rounds, independent of data size.
            for _ in range(8):
                world.barrier()

        # Master gathers all unitigs, then cleans and merges serially —
        # the Amdahl term that flattens ABySS's scale-out curve.
        with world.phase("master_merge", kind="walk"):
            payloads = [
                [u.codes for u in unitigs] for unitigs in per_rank_unitigs
            ]
            world.gather(payloads, root=0)
            all_unitigs, cstats = clean_unitigs(
                all_unitigs, k, clip=params.clip_tips, pop=params.pop_bubbles
            )
            serial_work = cstats.work + sum(len(u) for u in all_unitigs)
            world.charge_serial(float(serial_work))

        contigs = unitigs_to_contigs(all_unitigs, params, self.name)
        return AssemblyResult(
            assembler=self.name,
            k=k,
            contigs=contigs,
            usage=world.usage,
            stats={
                "n_ranks": p,
                "distinct_kmers": len(table),
                "tips_removed": cstats.tips_removed,
                "bubbles_popped": cstats.bubbles_popped,
                **assembly_stats(contigs),
            },
        )
