"""Graph cleanup: tip clipping and bubble popping on the unitig set.

Error k-mers that survive the coverage threshold show up as short,
low-coverage *tips* (dead-end unitigs hanging off a real path) or as
*bubbles* (two parallel unitigs between the same junctions, one per
allele of a sequencing error).  Both are removed on the condensed unitig
graph, as Velvet and ABySS do.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.assembly.dbg import Unitig
from repro.assembly.kmers import canonical


def _endpoints(u: Unitig, k: int) -> tuple[bytes, bytes]:
    """(k-1)-mer junctions at the two ends, canonicalized for matching."""
    codes = bytes(u.codes.tolist())
    left = codes[: k - 1]
    right = codes[-(k - 1):]
    return _canon_junction(left), _canon_junction(right)


def _canon_junction(j: bytes) -> bytes:
    # Unitig codes never contain N (N windows are dropped before the
    # graph is built), so the shared ACGT canonical helper applies.
    return canonical(j)


def build_unitig_graph(unitigs: list[Unitig], k: int) -> nx.MultiGraph:
    """Condensed graph: junction (k-1)-mers are nodes, unitigs are edges."""
    g = nx.MultiGraph()
    for i, u in enumerate(unitigs):
        left, right = _endpoints(u, k)
        g.add_edge(left, right, key=i, unitig=i)
    return g


@dataclass
class CleanupStats:
    tips_removed: int = 0
    bubbles_popped: int = 0
    work: int = 0  # graph operations performed (for usage accounting)


def clip_tips(
    unitigs: list[Unitig],
    k: int,
    max_tip_length: int | None = None,
    coverage_ratio: float = 0.5,
) -> tuple[list[Unitig], CleanupStats]:
    """Remove short low-coverage dead-end unitigs.

    A unitig is a tip when one of its junction nodes has degree 1 (in the
    condensed graph), it is shorter than ``max_tip_length`` (default 2k)
    and its coverage is below ``coverage_ratio`` times the median coverage
    of its neighbours.
    """
    if max_tip_length is None:
        max_tip_length = 2 * k
    stats = CleanupStats()
    if not unitigs:
        return [], stats

    g = build_unitig_graph(unitigs, k)
    stats.work = g.number_of_edges() + g.number_of_nodes()
    doomed: set[int] = set()
    for left, right, idx in g.edges(keys=True):
        u = unitigs[idx]
        if len(u) >= max_tip_length:
            continue
        deg_l, deg_r = g.degree(left), g.degree(right)
        if deg_l > 1 and deg_r > 1:
            continue  # interior unitig, not a tip
        if deg_l == 1 and deg_r == 1:
            continue  # isolated contig, keep
        junction = left if deg_l > 1 else right
        neighbour_covs = [
            unitigs[j].coverage
            for _, _, j in g.edges(junction, keys=True)
            if j != idx and j not in doomed
        ]
        if not neighbour_covs:
            continue
        ref = sorted(neighbour_covs)[len(neighbour_covs) // 2]
        if u.coverage < coverage_ratio * ref:
            doomed.add(idx)
            stats.tips_removed += 1

    kept = [u for i, u in enumerate(unitigs) if i not in doomed]
    return kept, stats


def pop_bubbles(
    unitigs: list[Unitig],
    k: int,
    length_tolerance: float = 0.1,
) -> tuple[list[Unitig], CleanupStats]:
    """Collapse parallel unitigs joining the same pair of junctions.

    When two unitigs connect the same junctions with similar lengths
    (within ``length_tolerance``), the lower-coverage branch — the error
    allele — is dropped.
    """
    stats = CleanupStats()
    if not unitigs:
        return [], stats
    g = build_unitig_graph(unitigs, k)
    stats.work = g.number_of_edges()
    doomed: set[int] = set()

    seen_pairs: dict[tuple[bytes, bytes], list[int]] = {}
    for left, right, idx in g.edges(keys=True):
        pair = (left, right) if left <= right else (right, left)
        seen_pairs.setdefault(pair, []).append(idx)

    for pair, members in seen_pairs.items():
        if len(members) < 2 or pair[0] == pair[1]:
            continue
        members = sorted(
            members, key=lambda i: (-unitigs[i].coverage, len(unitigs[i]))
        )
        keeper = unitigs[members[0]]
        for i in members[1:]:
            cand = unitigs[i]
            if abs(len(cand) - len(keeper)) <= length_tolerance * len(keeper):
                doomed.add(i)
                stats.bubbles_popped += 1

    kept = [u for i, u in enumerate(unitigs) if i not in doomed]
    return kept, stats


def clean_unitigs(
    unitigs: list[Unitig],
    k: int,
    clip: bool = True,
    pop: bool = True,
) -> tuple[list[Unitig], CleanupStats]:
    """Standard cleanup: tips first, then bubbles."""
    total = CleanupStats()
    out = unitigs
    if clip:
        out, s = clip_tips(out, k)
        total.tips_removed += s.tips_removed
        total.work += s.work
    if pop:
        out, s = pop_bubbles(out, k)
        total.bubbles_popped += s.bubbles_popped
        total.work += s.work
    return out, total
