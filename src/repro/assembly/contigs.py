"""Contig records, assembly results and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.usage import ResourceUsage
from repro.seq import alphabet


@dataclass(frozen=True)
class Contig:
    """One assembled contig."""

    contig_id: str
    seq: str
    coverage: float
    k: int
    assembler: str

    def __post_init__(self) -> None:
        if not self.seq:
            raise ValueError("empty contig sequence")

    def __len__(self) -> int:
        return len(self.seq)

    @property
    def codes(self) -> np.ndarray:
        return alphabet.encode(self.seq)


@dataclass
class AssemblyResult:
    """Output of one assembler invocation: contigs + measured usage."""

    assembler: str
    k: int
    contigs: list[Contig]
    usage: ResourceUsage
    stats: dict = field(default_factory=dict)

    @property
    def total_bp(self) -> int:
        return sum(len(c) for c in self.contigs)

    def __len__(self) -> int:
        return len(self.contigs)


def n50(lengths: list[int]) -> int:
    """N50 of a length distribution (0 for empty input)."""
    if not lengths:
        return 0
    ordered = sorted(lengths, reverse=True)
    half = sum(ordered) / 2.0
    acc = 0
    for L in ordered:
        acc += L
        if acc >= half:
            return L
    return ordered[-1]


def assembly_stats(contigs: list[Contig]) -> dict:
    """Summary statistics of a contig set."""
    lengths = [len(c) for c in contigs]
    return {
        "n_contigs": len(contigs),
        "total_bp": sum(lengths),
        "n50": n50(lengths),
        "max_len": max(lengths, default=0),
        "mean_len": float(np.mean(lengths)) if lengths else 0.0,
        "mean_coverage": (
            float(np.mean([c.coverage for c in contigs])) if contigs else 0.0
        ),
    }
