"""MapReduce DBG assembler (Contrail analog).

Contrail (Schatz et al. 2010) assembles on Hadoop as a chain of MapReduce
jobs: k-mer counting, graph/adjacency construction, then repeated
randomized path-compression rounds that contract linear chains (each round
is a full MapReduce job shipping node records — including their growing
sequences — through the shuffle).  The cost signature the paper observes
(Fig. 3, Table III) follows directly: heavy per-job startup overhead and a
JVM-class compute handicap make it very slow on small clusters, while the
embarrassingly parallel map/shuffle stages keep scaling until the
job-overhead floor is reached.

This implementation runs the real job chain on
:class:`~repro.parallel.mapreduce.MapReduceEngine`:

1. ``kmer_count`` — reads to canonical k-mer counts (with combiner),
2. ``adjacency`` — junction grouping; a junction incident to exactly two
   segment ends is compressible,
3. per round: ``pair_<r>`` (junction pairing + coin flip) and
   ``merge_<r>`` (apply absorptions), until no merge fires,
4. driver-side contig emission.

Input reads containing N produce no valid k-mers at those positions; the
paper notes Contrail *failed* outright on raw reads with N — modeled by
``fail_on_n`` (enabled by the pipeline when staging unpreprocessed data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.assembly import packed as packedmod
from repro.assembly.base import AssemblyParams, unitigs_to_contigs
from repro.assembly.cleanup import clean_unitigs
from repro.assembly.contigs import AssemblyResult, assembly_stats
from repro.assembly.dbg import Unitig
from repro.assembly.kmers import (
    canonical,
    canonical_kmers_packed,
    revcomp_kmer,
)
from repro.parallel.mapreduce import MapReduceEngine, MRJob, MRJobStats
from repro.seq.fastq import FastqRecord
from repro.seq.readstore import ReadStore


class ContrailInputError(ValueError):
    """Raised when raw (unpreprocessed) reads break the Hadoop pipeline."""


@dataclass
class _Segment:
    """A growing chain of merged k-mers (Contrail node record)."""

    sid: int
    codes: bytes  # oriented base codes
    cov_sum: float
    n_kmers: int

    def junctions(self, k: int) -> tuple[bytes, bytes]:
        left = self.codes[: k - 1]
        right = self.codes[-(k - 1):]
        return _canon(left), _canon(right)


#: Junction canonicalization — the shared single-k-mer helper.
_canon = canonical


def _coin(sid: int, round_no: int) -> bool:
    """Deterministic per-round coin: True = Head (absorber)."""
    x = (sid * 0x9E3779B97F4A7C15 + round_no * 0xBF58476D1CE4E5B9) & (2**64 - 1)
    x ^= x >> 31
    return bool(x & 1)


def _join(a: bytes, b: bytes, k: int) -> bytes | None:
    """Concatenate segment code strings overlapping by k-1, flipping b if
    needed; returns None when they do not actually overlap."""
    tail = a[-(k - 1):]
    if b[: k - 1] == tail:
        return a + b[k - 1:]
    brc = revcomp_kmer(b)
    if brc[: k - 1] == tail:
        return a + brc[k - 1:]
    head = a[: k - 1]
    if b[-(k - 1):] == head:
        return b + a[k - 1:]
    if brc[-(k - 1):] == head:
        return brc + a[k - 1:]
    return None


class ContrailAssembler:
    """Hadoop MapReduce-style DBG assembler."""

    name = "contrail"
    max_rounds = 24

    def assemble(
        self,
        reads: list[FastqRecord],
        params: AssemblyParams,
        n_ranks: int = 8,
        fail_on_n: bool = False,
    ) -> AssemblyResult:
        """Legacy record-list entry point (thin encode-once adapter)."""
        return self.assemble_encoded(
            ReadStore.from_reads(reads),
            params,
            n_ranks=n_ranks,
            fail_on_n=fail_on_n,
        )

    def assemble_encoded(
        self,
        store: ReadStore,
        params: AssemblyParams,
        n_ranks: int = 8,
        fail_on_n: bool = False,
        spectrum=None,
    ) -> AssemblyResult:
        if fail_on_n and store.contains_n():
            raise ContrailInputError(
                "input reads contain uncalled bases (N); Contrail requires "
                "pre-processed reads (see paper, Fig. 3 discussion)"
            )
        engine = MapReduceEngine(n_ranks)
        k = params.k

        if (
            spectrum is not None
            and spectrum.k == k
            and spectrum.store_digest == store.digest
        ):
            counts = self._derive_kmer_count(engine, store, params, spectrum)
        else:
            counts = self._job_kmer_count_encoded(engine, store, params)
        segments = {
            i: _Segment(sid=i, codes=kmer, cov_sum=float(c), n_kmers=1)
            for i, (kmer, c) in enumerate(sorted(counts.items()))
        }
        next_sid = len(segments)

        rounds = 0
        for round_no in range(self.max_rounds):
            merges = self._job_pair(engine, segments, k, round_no)
            if not merges:
                break
            segments, next_sid = self._job_merge(
                engine, segments, merges, k, round_no, next_sid
            )
            rounds += 1

        unitigs = [
            Unitig(
                codes=np.frombuffer(s.codes, dtype=np.uint8).copy(),
                coverage=s.cov_sum / s.n_kmers,
                n_kmers=s.n_kmers,
            )
            for s in segments.values()
        ]
        unitigs, cstats = clean_unitigs(
            unitigs, k, clip=params.clip_tips, pop=params.pop_bubbles
        )
        contigs = unitigs_to_contigs(unitigs, params, self.name)
        return AssemblyResult(
            assembler=self.name,
            k=k,
            contigs=contigs,
            usage=engine.usage,
            stats={
                "n_ranks": n_ranks,
                "mr_jobs": len(engine.job_stats),
                "compression_rounds": rounds,
                "distinct_kmers": len(counts),
                "tips_removed": cstats.tips_removed,
                "bubbles_popped": cstats.bubbles_popped,
                **assembly_stats(contigs),
            },
        )

    # -- jobs ----------------------------------------------------------------

    def _job_kmer_count(
        self,
        engine: MapReduceEngine,
        reads: list[FastqRecord],
        params: AssemblyParams,
    ) -> dict[bytes, int]:
        return self._job_kmer_count_encoded(
            engine, ReadStore.from_reads(reads), params
        )

    def _job_kmer_count_encoded(
        self,
        engine: MapReduceEngine,
        store: ReadStore,
        params: AssemblyParams,
    ) -> dict[bytes, int]:
        k = params.k
        min_count = params.min_count

        # Keys travel as packed integers (order-isomorphic to the code
        # bytes) but are priced at their logical k-byte record size, so
        # shuffle bytes and reducer memory match the bytes-keyed job.
        # Input records are zero-copy code views off the shared store —
        # safe for accounting because the engine only *counts* map input
        # records, it never prices their payloads.
        def mapper(_rid, codes):
            rows = canonical_kmers_packed(codes, k)
            for key in packedmod.packed_to_ints(rows, k):
                yield key, 1

        def combiner(kmer, values):
            yield kmer, sum(values)

        def reducer(kmer, values):
            total = sum(values)
            if total >= min_count:
                yield kmer, total

        job = MRJob(
            "kmer_count",
            mapper,
            reducer,
            combiner=combiner,
            key_nbytes=lambda _key: k,
        )
        out = engine.run(
            job, [(i, store.read_codes(i)) for i in range(store.n_reads)]
        )
        int_keys = [key for key, _c in out]
        byte_keys = packedmod.unpack_to_bytes(
            packedmod.ints_to_packed(int_keys, k), k
        )
        return {bk: c for bk, (_key, c) in zip(byte_keys, out)}

    def _derive_kmer_count(
        self,
        engine: MapReduceEngine,
        store: ReadStore,
        params: AssemblyParams,
        spectrum,
    ) -> dict[bytes, int]:
        """Count-once twin of :meth:`_job_kmer_count_encoded`.

        The shared :class:`~repro.assembly.sweep.KmerSpectrum` already is
        the job's result, so instead of streaming every read through the
        engine the job's *measured statistics* are derived from the
        occurrence stream and booked via
        :meth:`~repro.parallel.mapreduce.MapReduceEngine.record_job`:

        * map input = reads, map output = occurrences;
        * combiner output = distinct (map task, k-mer) pairs — task of
          read ``i`` is ``i % n`` exactly as the engine splits records;
        * shuffle bytes price each pair as one logical k-byte key plus a
          single-element combiner value list;
        * the reducer-memory peak replays the engine's per-partition sum
          with ``hash(key) % n`` placement over the same integer keys;
        * reduce groups = distinct k-mers, outputs = those >= min_count.

        Every quantity equals the executed job's bit-for-bit.
        """
        k = params.k
        n = engine.n_workers
        n_distinct = spectrum.n_distinct
        occ_task = spectrum.occ_read() % n
        pairs = np.unique(occ_task * n_distinct + spectrum.inverse)
        # Per distinct key: how many map tasks emitted it (the length of
        # its shuffled value list).
        multiplicity = np.bincount(pairs % n_distinct, minlength=n_distinct)
        ge = spectrum.counts >= params.min_count

        stats = MRJobStats(
            name="kmer_count",
            map_input_records=store.n_reads,
            map_output_records=spectrum.n_occurrences,
            combine_output_records=int(pairs.size),
            # Each (task, key) pair ships a k-byte logical key plus a
            # one-int value list (nbytes([v]) == 24).
            shuffle_bytes=int(pairs.size) * (k + 24),
            reduce_input_groups=n_distinct,
            reduce_output_records=int(ge.sum()),
        )
        int_keys = packedmod.packed_to_ints(spectrum.distinct, k)
        dests = np.fromiter(
            (hash(v) % n for v in int_keys),
            dtype=np.int64,
            count=n_distinct,
        )
        # nbytes(dict) pricing per partition: k + (8*m + 16) per key, +16
        # container overhead; sums of small ints stay exact in float64.
        per_key = k + 16 + 8 * multiplicity.astype(np.float64)
        part_bytes = np.bincount(dests, weights=per_key, minlength=n)
        peak = int(part_bytes.max()) + 16
        engine.record_job(stats, peak)

        byte_keys = packedmod.unpack_to_bytes(spectrum.distinct[ge], k)
        return dict(zip(byte_keys, spectrum.counts[ge].tolist()))

    def _job_pair(
        self,
        engine: MapReduceEngine,
        segments: dict[int, _Segment],
        k: int,
        round_no: int,
    ) -> list[tuple[int, int]]:
        """Junction pairing job; returns (head_sid, tail_sid) merges."""

        def mapper(sid, seg):
            jl, jr = seg.junctions(k)
            yield jl, sid
            yield jr, sid

        def reducer(junction, sids):
            if len(sids) != 2:
                return  # branch or dead end: not compressible
            a, b = sids
            if a == b:
                return  # palindromic self-adjacency
            ca, cb = _coin(a + round_no, round_no), _coin(b + round_no, round_no)
            if ca == cb:
                return  # same coin: retry next round
            head, tail = (a, b) if ca else (b, a)
            yield head, tail

        job = MRJob(f"pair_{round_no}", mapper, reducer)
        out = engine.run(job, list(segments.items()))
        # A tail may pair with heads on both of its ends; keep one merge
        # per tail (deterministic: smallest head id).
        chosen: dict[int, int] = {}
        for head, tail in out:
            if tail not in chosen or head < chosen[tail]:
                chosen[tail] = head
        return sorted((h, t) for t, h in chosen.items())

    def _job_merge(
        self,
        engine: MapReduceEngine,
        segments: dict[int, _Segment],
        merges: list[tuple[int, int]],
        k: int,
        round_no: int,
        next_sid: int,
    ) -> tuple[dict[int, _Segment], int]:
        """Apply absorptions: every record keyed by its (possibly new) owner."""
        absorbed_by = {t: h for h, t in merges}

        def mapper(sid, seg):
            target = absorbed_by.get(sid, sid)
            yield target, seg

        def reducer(sid, segs):
            if len(segs) == 1:
                yield sid, segs[0]
                return
            # Head absorbs one tail per end; join greedily.
            segs = sorted(segs, key=lambda s: s.sid)
            base = next(s for s in segs if s.sid == sid)
            rest = [s for s in segs if s.sid != sid]
            codes = base.codes
            cov = base.cov_sum
            n = base.n_kmers
            for t in rest:
                joined = _join(codes, t.codes, k)
                if joined is None:
                    # Pathological canonical-junction collision: keep apart.
                    yield t.sid, t
                    continue
                codes = joined
                cov += t.cov_sum
                n += t.n_kmers
            yield sid, _Segment(sid=sid, codes=codes, cov_sum=cov, n_kmers=n)

        job = MRJob(f"merge_{round_no}", mapper, reducer)
        out = engine.run(job, list(segments.items()))
        return {sid: seg for sid, seg in out}, next_sid
