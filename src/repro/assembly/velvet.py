"""Serial de Bruijn graph assembler (Velvet analog).

Velvet is the canonical single-node DBG assembler Rnnotator uses for small
data sets; in the paper it is exactly the class of tool that *fails* once
the data outgrows a single node's memory — the motivation for the MPI and
MapReduce assemblers.  This implementation is also the functional reference
the distributed assemblers are tested against.
"""

from __future__ import annotations

from repro.assembly.base import AssemblyParams, unitigs_to_contigs
from repro.assembly.cleanup import clean_unitigs
from repro.assembly.contigs import AssemblyResult, assembly_stats
from repro.assembly.dbg import build_kmer_table_packed, extract_unitigs
from repro.assembly.kmers import (
    canonical_kmers_store_packed,
    kmer_counts_packed,
)
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.seq.fastq import FastqRecord
from repro.seq.readstore import ReadStore


class VelvetAssembler:
    """Single-node multi-threaded DBG assembler."""

    name = "velvet"

    def assemble(
        self,
        reads: list[FastqRecord],
        params: AssemblyParams,
        n_threads: int = 8,
    ) -> AssemblyResult:
        """Legacy record-list entry point (thin encode-once adapter)."""
        return self.assemble_encoded(
            ReadStore.from_reads(reads), params, n_threads=n_threads
        )

    def assemble_encoded(
        self,
        store: ReadStore,
        params: AssemblyParams,
        n_threads: int = 8,
        spectrum=None,
    ) -> AssemblyResult:
        usage = ResourceUsage(n_ranks=1)

        if (
            spectrum is not None
            and spectrum.k == params.k
            and spectrum.store_digest == store.digest
        ):
            # Count-once fast path: the shared spectrum already holds the
            # stream length and the sorted distinct rows + counts.
            n_kmer_stream = spectrum.n_occurrences
            table = spectrum.table()
        else:
            kmers = canonical_kmers_store_packed(store, params.k)
            n_kmer_stream = int(kmers.shape[0])
            table = build_kmer_table_packed(
                params.k, *kmer_counts_packed(kmers, params.k)
            )
        usage.add_phase(
            PhaseUsage(
                name="kmer_count",
                kind="kmer",
                # k-mer counting multi-threads well on one node.
                critical_compute=n_kmer_stream / max(n_threads, 1),
                total_compute=float(n_kmer_stream),
            )
        )

        table.drop_below(params.min_count)
        usage.peak_rank_memory_bytes = table.memory_bytes()
        usage.add_phase(
            PhaseUsage(
                name="graph_build",
                kind="graph",
                critical_compute=float(len(table)),
                total_compute=float(len(table)),
            )
        )

        unitigs, steps = extract_unitigs(table)
        unitigs, cstats = clean_unitigs(
            unitigs, params.k, clip=params.clip_tips, pop=params.pop_bubbles
        )
        usage.add_phase(
            PhaseUsage(
                name="unitig_walk",
                kind="walk",
                critical_compute=float(steps + cstats.work),
                total_compute=float(steps + cstats.work),
            )
        )

        contigs = unitigs_to_contigs(unitigs, params, self.name)
        return AssemblyResult(
            assembler=self.name,
            k=params.k,
            contigs=contigs,
            usage=usage,
            stats={
                "distinct_kmers": len(table),
                "tips_removed": cstats.tips_removed,
                "bubbles_popped": cstats.bubbles_popped,
                **assembly_stats(contigs),
            },
        )
