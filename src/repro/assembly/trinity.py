"""Single-node baseline assembler (Trinity analog).

Trinity (Grabherr et al. 2011) is the popular reference point in the
paper's Table V.  It is *not* part of the pipeline: it applies its own
(much lighter) read preparation and a fixed small k-mer (25), then builds
contigs greedily from high-coverage seeds.  The paper stresses that the
comparison "needs to be scrutinized" precisely because the pre-processing
differs; the analog mirrors that by trimming only hard-quality tails,
keeping duplicate reads, and assembling permissively (lower coverage
threshold, no bubble popping) — which yields the Table V shape: noticeably
lower nucleotide-level precision, comparable weighted k-mer scores.
"""

from __future__ import annotations

import numpy as np

from repro.assembly import packed as packedmod
from repro.assembly.base import AssemblyParams, unitigs_to_contigs
from repro.assembly.cleanup import clean_unitigs
from repro.assembly.contigs import AssemblyResult, assembly_stats
from repro.assembly.dbg import build_kmer_table_packed, extract_unitigs
from repro.assembly.kmers import (
    canonical_kmers_encoded_packed,
    canonical_kmers_packed,
    kmer_counts_packed,
)
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.seq import alphabet
from repro.seq.fastq import FastqRecord
from repro.seq.readstore import ReadStore

TRINITY_K = 25


class TrinityAssembler:
    """Independent single-node baseline with built-in light preprocessing."""

    name = "trinity"

    def __init__(self, hard_trim_quality: int = 5) -> None:
        self.hard_trim_quality = hard_trim_quality

    #: In-silico normalization target depth (Trinity's --normalize_reads).
    normalize_depth = 30

    def prepare_reads(self, reads: list[FastqRecord]) -> list[str]:
        """Trinity-style preparation: trim trailing hard-low-quality bases,
        then in-silico normalization — a read is dropped when the k-mers
        it would add are already at the target depth.  No exact
        deduplication and no N filtering (unlike the pipeline's QC).

        Sequences come back normalized to the ``ACGTN`` alphabet (the
        same normalization every k-mer consumer applies)."""
        return [
            alphabet.decode(codes)
            for codes in self._prepare_encoded(ReadStore.from_reads(reads))
        ]

    def _prepare_encoded(self, store: ReadStore) -> list[np.ndarray]:
        """Array-native preparation over the encode-once store; returns
        the kept reads as trimmed code arrays (zero-copy views)."""
        trimmed = []
        for i in range(store.n_reads):
            ph = store.phred(i)
            end = int(ph.size)
            while end > 0 and ph[end - 1] < self.hard_trim_quality:
                end -= 1
            if end >= TRINITY_K:
                trimmed.append(store.read_codes(i)[:end])

        depth: dict[int, int] = {}
        out = []
        for codes in trimmed:
            rows = canonical_kmers_packed(codes, TRINITY_K)
            if rows.shape[0] == 0:
                continue
            keys = packedmod.key_list(rows, TRINITY_K)
            counts = sorted(depth.get(key, 0) for key in keys)
            if counts[len(counts) // 2] >= self.normalize_depth:
                continue  # locus already saturated
            out.append(codes)
            for key in keys:
                depth[key] = depth.get(key, 0) + 1
        return out

    def _prepare_fused(
        self, store: ReadStore, spectrum
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Count-once twin of :meth:`_prepare_encoded`.

        The shared 25-mer :class:`~repro.assembly.sweep.KmerSpectrum`
        already holds every read's canonical windows (``inverse`` ids at
        ``rel_positions``), so normalization needs no per-read extraction:
        a trimmed read's k-mers are exactly its spectrum occurrences with
        ``rel_position <= end - k`` (trimming only removes windows past
        the cut; the N-window set is unchanged), and the depth dict
        becomes an array indexed by distinct id — a bijection of the
        legacy ``dict[key, int]``, updated in the same read order.
        Returns the kept trimmed code views plus the selected occurrence
        indices (in stream order), whose rows equal the legacy path's
        extracted k-mer stream bit-for-bit.
        """
        offs = spectrum.read_offsets
        rel = spectrum.rel_positions
        inv = spectrum.inverse
        depth = np.zeros(spectrum.n_distinct, dtype=np.int64)
        out: list[np.ndarray] = []
        picked: list[np.ndarray] = []
        for i in range(store.n_reads):
            ph = store.phred(i)
            end = int(ph.size)
            while end > 0 and ph[end - 1] < self.hard_trim_quality:
                end -= 1
            if end < TRINITY_K:
                continue
            s, e = int(offs[i]), int(offs[i + 1])
            sel = np.arange(s, e, dtype=np.int64)[
                rel[s:e] <= end - TRINITY_K
            ]
            if sel.size == 0:
                continue
            idx = inv[sel]
            counts = np.sort(depth[idx])
            if int(counts[counts.size // 2]) >= self.normalize_depth:
                continue  # locus already saturated
            out.append(store.read_codes(i)[:end])
            picked.append(sel)
            np.add.at(depth, idx, 1)
        occ_sel = (
            np.concatenate(picked) if picked else np.zeros(0, dtype=np.int64)
        )
        return out, occ_sel

    def assemble(
        self,
        reads: list[FastqRecord],
        params: AssemblyParams | None = None,
        n_threads: int = 8,
    ) -> AssemblyResult:
        """Legacy record-list entry point (thin encode-once adapter)."""
        return self.assemble_encoded(
            ReadStore.from_reads(reads), params, n_threads=n_threads
        )

    def assemble_encoded(
        self,
        store: ReadStore,
        params: AssemblyParams | None = None,
        n_threads: int = 8,
        spectrum=None,
    ) -> AssemblyResult:
        """Assemble with Trinity defaults.

        ``params`` is accepted for interface compatibility but only its
        ``min_contig_length`` is honoured — Trinity fixes its own k and
        thresholds, exactly why Table V flags the comparison as indirect.
        A ``spectrum`` at Trinity's fixed k=25 (same store digest) serves
        preparation and counting from the shared count-once extraction.
        """
        min_contig = params.min_contig_length if params else 100
        usage = ResourceUsage(n_ranks=1)

        if (
            spectrum is not None
            and spectrum.k == TRINITY_K
            and spectrum.store_digest == store.digest
        ):
            _prepared, occ_sel = self._prepare_fused(store, spectrum)
            n_kmer_stream = int(occ_sel.size)
            sel_counts = np.bincount(
                spectrum.inverse[occ_sel], minlength=spectrum.n_distinct
            )
            present = sel_counts > 0
            table = build_kmer_table_packed(
                TRINITY_K,
                spectrum.distinct[present],
                sel_counts[present].astype(np.int64),
                presorted=True,
            )
        else:
            prepared = self._prepare_encoded(store)
            kmers = canonical_kmers_encoded_packed(prepared, TRINITY_K)
            n_kmer_stream = int(kmers.shape[0])
            table = build_kmer_table_packed(
                TRINITY_K, *kmer_counts_packed(kmers, TRINITY_K)
            )
        usage.add_phase(
            PhaseUsage(
                name="kmer_count",
                kind="kmer",
                critical_compute=n_kmer_stream / max(n_threads, 1),
                total_compute=float(n_kmer_stream),
            )
        )
        # Trinity's Inchworm prunes k-mers relative to the run's depth
        # (coverage-aware error pruning, unlike the pipeline's fixed
        # min_count=2 + dedup).  The depth-proportional threshold keeps
        # well-covered loci pristine at the cost of shallow transcripts —
        # the paper's Table V signature for Trinity: weighted k-mer scores
        # stay high while nucleotide-level recall drops.
        recurrent = sorted(
            c for c in table.count_array.tolist() if c >= 2
        )
        p90 = recurrent[int(len(recurrent) * 0.9)] if recurrent else 1
        min_count = max(3, int(p90 // 4))
        eff = AssemblyParams(
            k=TRINITY_K,
            min_count=min_count,
            min_contig_length=max(min_contig, TRINITY_K),
            clip_tips=True,       # Inchworm prunes weak dead-ends
            pop_bubbles=True,     # Butterfly resolves alternative paths
        )
        table.drop_below(eff.min_count)
        usage.peak_rank_memory_bytes = table.memory_bytes()
        usage.add_phase(
            PhaseUsage(
                name="graph_build",
                kind="graph",
                critical_compute=float(len(table)),
                total_compute=float(len(table)),
            )
        )

        unitigs, steps = extract_unitigs(table)
        unitigs, cstats = clean_unitigs(
            unitigs, eff.k, clip=eff.clip_tips, pop=eff.pop_bubbles
        )
        usage.add_phase(
            PhaseUsage(
                name="greedy_extension",
                kind="walk",
                critical_compute=float(steps + cstats.work),
                total_compute=float(steps + cstats.work),
            )
        )

        contigs = unitigs_to_contigs(unitigs, eff, self.name)
        return AssemblyResult(
            assembler=self.name,
            k=eff.k,
            contigs=contigs,
            usage=usage,
            stats={
                "distinct_kmers": len(table),
                "tips_removed": cstats.tips_removed,
                **assembly_stats(contigs),
            },
        )
