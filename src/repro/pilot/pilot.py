"""The Pilot entity: a held slice of cloud resources."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.cloud.cluster import Cluster
from repro.obs import get_tracer
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription
from repro.pilot.states import (
    PILOT_FINAL,
    PilotState,
    check_pilot_transition,
)

_ids = itertools.count()

#: Transition hook signature: (pilot, old_state, new_state).
TransitionHook = Callable[["Pilot", PilotState, PilotState], None]


@dataclass
class Pilot:
    """A pilot: description + state + (once ACTIVE) a bound cluster."""

    description: PilotDescription
    db: StateStore
    pilot_id: str = field(default_factory=lambda: f"pilot.{next(_ids):04d}")
    state: PilotState = PilotState.NEW
    cluster: Cluster | None = None
    owns_vms: bool = True  # S1 pilots own their VMs; S2 pilots borrow
    #: Called exactly once per legal transition, after the state store is
    #: updated — the seam the tracer (and tests) observe lifecycles on.
    transition_hooks: list[TransitionHook] = field(
        default_factory=list, repr=False
    )
    #: Live slice size override set by the elastic (S3) pool; ``None``
    #: means the declared description.n_nodes.
    _elastic_nodes: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.db.register(
            self.pilot_id,
            state=self.state.value,
            name=self.description.name,
            instance_type=self.description.instance_type,
            n_nodes=self.description.n_nodes,
        )

    def advance(self, new: PilotState) -> None:
        """Move to ``new``, enforcing the transition table, publishing the
        change to the state store and firing the transition hooks."""
        check_pilot_transition(self.state, new)
        old = self.state
        self.state = new
        self.db.update(self.pilot_id, "state", new.value)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "pilot.state",
                category="state",
                process=self.pilot_id,
                old=old.value,
                new=new.value,
            )
        for hook in self.transition_hooks:
            hook(self, old, new)

    @property
    def is_final(self) -> bool:
        return self.state in PILOT_FINAL

    @property
    def n_nodes(self) -> int:
        if self._elastic_nodes is not None:
            return self._elastic_nodes
        return self.description.n_nodes

    def resize(self, n_nodes: int) -> None:
        """Change the pilot's live slice size (the elastic S3 pool grows
        and shrinks pilots mid-run; S1/S2 pilots stay at their declared
        ``description.n_nodes``)."""
        if n_nodes < 1:
            raise ValueError("pilot needs at least one node")
        self._elastic_nodes = n_nodes
        self.db.update(self.pilot_id, "n_nodes", n_nodes)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "pilot.resize",
                category="pilot",
                process=self.pilot_id,
                n_nodes=n_nodes,
            )

    def bind_cluster(self, cluster: Cluster) -> None:
        if self.cluster is not None:
            raise RuntimeError(f"{self.pilot_id} already has a cluster")
        self.cluster = cluster
        self.db.update(self.pilot_id, "cluster", cluster.name)
