"""S3: the elastic reused pool.

S1 couples VM lifetimes to pilots, S2 reuses one fixed pool across
pilots.  S3 keeps S2's reuse but makes the pool *elastic mid-run*: a
controller watches the pilot cluster's SGE queue and grows the pool when
queued slot demand outstrips free capacity — which is exactly what
happens under spot preemption pressure, when reclaimed workers take
their slots (and their running jobs) with them — then shrinks idle
workers back between stages.

Growth is asynchronous (see :meth:`EC2Region.launch_async`): replacement
VMs become usable one provisioning delay later, as events on the virtual
clock, while queued jobs keep running on the surviving nodes.  The pilot
is resized to track the pool, so capacity checks and cost-model sizing
follow the live cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.clock import EventQueue
from repro.cloud.cluster import Cluster
from repro.cloud.ec2 import EC2Region
from repro.cloud.vm import VM
from repro.obs import get_tracer
from repro.pilot.pilot import Pilot


@dataclass
class ElasticPool:
    """Grows/shrinks one pilot's shared cluster from SGE queue depth."""

    region: EC2Region
    events: EventQueue
    cluster: Cluster
    pilot: Pilot | None = None
    min_nodes: int = 1
    max_nodes: int = 64
    #: Nodes launched but not yet provisioned (counted against demand so
    #: one pressure spike does not double-launch).
    inflight: int = 0
    grown_total: int = 0
    shrunk_total: int = 0
    _preempt_hooks_installed: bool = field(default=False, repr=False)

    # -- demand signals ----------------------------------------------------

    def queued_slot_demand(self) -> int:
        return sum(j.slots for j in self.cluster.scheduler.queue)

    def free_slots(self) -> int:
        return sum(self.cluster.scheduler.slots_free.values())

    # -- growth ------------------------------------------------------------

    def rebalance(self) -> int:
        """Launch nodes to cover queued demand; returns nodes launched."""
        vcpus = self.cluster.itype.vcpus
        deficit = (
            self.queued_slot_demand()
            - self.free_slots()
            - self.inflight * vcpus
        )
        if deficit <= 0:
            return 0
        headroom = self.max_nodes - (self.cluster.n_nodes + self.inflight)
        count = min(-(-deficit // vcpus), headroom)
        if count <= 0:
            return 0
        self._launch(count)
        return count

    def on_preempt(self, vm: VM) -> None:
        """Preemption hook: track the shrunken pool, then re-grow it if
        the queue still has demand (wire via ``SpotPreemptor.on_preempt``)."""
        if self.pilot is not None:
            self.pilot.resize(max(1, self.cluster.n_nodes))
        self.rebalance()

    def _launch(self, count: int) -> None:
        self.inflight += count
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "elastic.grow",
                category="pilot",
                process=self.pilot.pilot_id if self.pilot else None,
                cluster=self.cluster.name,
                count=count,
                queued_slots=self.queued_slot_demand(),
                free_slots=self.free_slots(),
            )

        def ready(batch: list[VM]) -> None:
            self.inflight -= len(batch)
            self.grown_total += len(batch)
            for vm in batch:
                self.cluster.adopt_vm(vm)
            if self.pilot is not None:
                self.pilot.resize(self.cluster.n_nodes)
            tracer = get_tracer()
            tracer.count("elastic_nodes_added", len(batch))
            tracer.gauge("elastic_pool_nodes", self.cluster.n_nodes)

        self.region.launch_async(
            self.cluster.itype, count, self.events, on_ready=ready
        )

    # -- shrink ------------------------------------------------------------

    def shrink_idle(self) -> int:
        """Terminate fully idle workers down to ``min_nodes`` (called
        between stages); returns nodes released."""
        sched = self.cluster.scheduler
        released = 0
        for vm in list(reversed(self.cluster.vms)):
            if self.cluster.n_nodes <= self.min_nodes:
                break
            if vm is self.cluster.head:
                continue
            if sched.slots_free.get(vm.vm_id) != sched.slots_total.get(
                vm.vm_id
            ):
                continue
            sched.slots_total.pop(vm.vm_id, None)
            sched.slots_free.pop(vm.vm_id, None)
            self.cluster.vms.remove(vm)
            self.region.terminate(vm)
            released += 1
        if released:
            self.shrunk_total += released
            if self.pilot is not None:
                self.pilot.resize(self.cluster.n_nodes)
            tracer = get_tracer()
            tracer.count("elastic_nodes_released", released)
            tracer.gauge("elastic_pool_nodes", self.cluster.n_nodes)
        return released
