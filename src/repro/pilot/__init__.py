"""RADICAL-Pilot analog.

The pilot abstraction decouples *resource acquisition* (a pilot holds a
slice of machines) from *work execution* (compute units are bound to
pilots and executed by the pilot's agent).  This subpackage reproduces the
RP architecture the paper builds on (§III.C):

* pilot and unit **state machines** with legal-transition enforcement
  (:mod:`states`),
* **descriptions** separating what is wanted from what runs
  (:mod:`description`),
* a backend **state store** with watchers — the "database system that
  updates run-time information on the fly" (:mod:`db`),
* **schedulers** mapping units onto pilots (:mod:`scheduler`),
* **PilotManager / UnitManager** front-ends (:mod:`manager`), and
* the per-pilot **agent** that runs units on the pilot's cluster through
  SGE, enforcing memory capacity (:mod:`agent`).
"""

from repro.pilot.agent import PilotAgent
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.db import StateStore
from repro.pilot.elastic import ElasticPool
from repro.pilot.manager import PilotManager, UnitFailureError, UnitManager
from repro.pilot.pilot import Pilot
from repro.pilot.scheduler import (
    MemoryAwareScheduler,
    RoundRobinScheduler,
    UnitScheduler,
)
from repro.pilot.states import PilotState, StateError, UnitState
from repro.pilot.unit import ComputeUnit

__all__ = [
    "PilotState",
    "UnitState",
    "StateError",
    "PilotDescription",
    "UnitDescription",
    "Pilot",
    "ComputeUnit",
    "StateStore",
    "UnitScheduler",
    "RoundRobinScheduler",
    "MemoryAwareScheduler",
    "PilotManager",
    "UnitManager",
    "UnitFailureError",
    "PilotAgent",
    "ElasticPool",
]
