"""Pilot and compute-unit state machines.

State names and ordering follow RADICAL-Pilot's model (Merzky et al.
2015): pilots move through launch into ACTIVE; units are scheduled onto a
pilot, staged, executed, and finish in one of the terminal states.  All
transitions are checked against the legal-transition tables — the
pipeline's correctness arguments (e.g. restart-on-failure) lean on the
state machine never skipping states.
"""

from __future__ import annotations

import enum


class StateError(RuntimeError):
    """An illegal state transition was attempted."""


class PilotState(enum.Enum):
    NEW = "NEW"
    PENDING_LAUNCH = "PENDING_LAUNCH"
    LAUNCHING = "LAUNCHING"
    ACTIVE = "ACTIVE"
    DONE = "DONE"
    CANCELED = "CANCELED"
    FAILED = "FAILED"


class UnitState(enum.Enum):
    NEW = "NEW"
    UNSCHEDULED = "UNSCHEDULED"
    SCHEDULING = "SCHEDULING"
    PENDING_EXECUTION = "PENDING_EXECUTION"
    EXECUTING = "EXECUTING"
    DONE = "DONE"
    CANCELED = "CANCELED"
    FAILED = "FAILED"


PILOT_TRANSITIONS: dict[PilotState, frozenset[PilotState]] = {
    PilotState.NEW: frozenset({PilotState.PENDING_LAUNCH, PilotState.CANCELED}),
    PilotState.PENDING_LAUNCH: frozenset(
        {PilotState.LAUNCHING, PilotState.CANCELED, PilotState.FAILED}
    ),
    PilotState.LAUNCHING: frozenset(
        {PilotState.ACTIVE, PilotState.CANCELED, PilotState.FAILED}
    ),
    PilotState.ACTIVE: frozenset(
        {PilotState.DONE, PilotState.CANCELED, PilotState.FAILED}
    ),
    PilotState.DONE: frozenset(),
    PilotState.CANCELED: frozenset(),
    PilotState.FAILED: frozenset(),
}

UNIT_TRANSITIONS: dict[UnitState, frozenset[UnitState]] = {
    UnitState.NEW: frozenset({UnitState.UNSCHEDULED, UnitState.CANCELED}),
    UnitState.UNSCHEDULED: frozenset(
        {UnitState.SCHEDULING, UnitState.CANCELED}
    ),
    UnitState.SCHEDULING: frozenset(
        {UnitState.PENDING_EXECUTION, UnitState.CANCELED, UnitState.FAILED}
    ),
    UnitState.PENDING_EXECUTION: frozenset(
        {UnitState.EXECUTING, UnitState.CANCELED, UnitState.FAILED}
    ),
    UnitState.EXECUTING: frozenset(
        {UnitState.DONE, UnitState.CANCELED, UnitState.FAILED}
    ),
    UnitState.DONE: frozenset(),
    UnitState.CANCELED: frozenset(),
    # FAILED units may be rescheduled (restart support, §III.C): back to
    # UNSCHEDULED is the one legal escape from a terminal state.
    UnitState.FAILED: frozenset({UnitState.UNSCHEDULED}),
}

PILOT_FINAL = frozenset({PilotState.DONE, PilotState.CANCELED, PilotState.FAILED})
UNIT_FINAL = frozenset({UnitState.DONE, UnitState.CANCELED, UnitState.FAILED})


def check_pilot_transition(old: PilotState, new: PilotState) -> None:
    if new not in PILOT_TRANSITIONS[old]:
        raise StateError(f"illegal pilot transition {old.value} -> {new.value}")


def check_unit_transition(old: UnitState, new: UnitState) -> None:
    if new not in UNIT_TRANSITIONS[old]:
        raise StateError(f"illegal unit transition {old.value} -> {new.value}")
