"""The ComputeUnit entity: one schedulable task."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import get_tracer
from repro.parallel.usage import ResourceUsage
from repro.pilot.db import StateStore
from repro.pilot.description import UnitDescription
from repro.pilot.states import UNIT_FINAL, UnitState, check_unit_transition

_ids = itertools.count()

#: Transition hook signature: (unit, old_state, new_state).
TransitionHook = Callable[["ComputeUnit", UnitState, UnitState], None]


@dataclass
class ComputeUnit:
    """A compute unit: description + state + execution record."""

    description: UnitDescription
    db: StateStore
    unit_id: str = field(default_factory=lambda: f"unit.{next(_ids):06d}")
    state: UnitState = UnitState.NEW
    pilot_id: str | None = None
    result: Any = None
    usage: ResourceUsage | None = None
    error: str | None = None
    restarts: int = 0
    started_at: float | None = None
    finished_at: float | None = None
    #: Real host seconds spent in the workload (not virtual time).
    real_seconds: float | None = None
    #: True when the last failure was no fault of the unit's (its node
    #: was preempted): the restart loop may then retry the same pilot
    #: instead of excluding it.
    failure_transient: bool = False
    #: Called exactly once per legal transition, after the state store is
    #: updated — the seam the tracer (and tests) observe lifecycles on.
    transition_hooks: list[TransitionHook] = field(
        default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        self.db.register(
            self.unit_id,
            state=self.state.value,
            name=self.description.name,
            stage=self.description.stage,
            cores=self.description.cores,
        )

    def advance(self, new: UnitState) -> None:
        check_unit_transition(self.state, new)
        old = self.state
        self.state = new
        self.db.update(self.unit_id, "state", new.value)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "unit.state",
                category="state",
                process=self.pilot_id or "unassigned",
                thread=self.unit_id,
                old=old.value,
                new=new.value,
                unit=self.description.name,
                stage=self.description.stage,
            )
        for hook in self.transition_hooks:
            hook(self, old, new)

    @property
    def is_final(self) -> bool:
        return self.state in UNIT_FINAL

    @property
    def ttc(self) -> float:
        """Virtual execution time (0 until finished)."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    def assign(self, pilot_id: str) -> None:
        self.pilot_id = pilot_id
        self.db.update(self.unit_id, "pilot", pilot_id)

    def fail(self, error: str, transient: bool = False) -> None:
        self.error = error
        self.failure_transient = transient
        self.advance(UnitState.FAILED)
        self.db.update(self.unit_id, "error", error)

    def reset_for_restart(self) -> None:
        """FAILED -> UNSCHEDULED (the restart path of §III.C).

        Clears the whole execution record: a restarted unit must not
        report the dead attempt's usage, result or timestamps — e.g. a
        retry that fails the static capacity check (and so never
        executes) would otherwise surface the failed attempt's usage
        through ``merged_usage`` and a bogus ``ttc``.
        """
        self.advance(UnitState.UNSCHEDULED)
        self.restarts += 1
        self.pilot_id = None
        self.error = None
        self.failure_transient = False
        self.result = None
        self.usage = None
        self.started_at = None
        self.finished_at = None
        self.real_seconds = None
        self.db.update(self.unit_id, "restarts", self.restarts)
