"""Descriptions: declarative requests for pilots and compute units."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.parallel.usage import ResourceUsage

#: A unit's workload: a callable returning (result, measured usage).
Workload = Callable[[], tuple[Any, ResourceUsage]]


@dataclass(frozen=True)
class PilotDescription:
    """A request for a slice of resources.

    ``instance_type``/``n_nodes`` describe the EC2 fleet the pilot should
    hold (the paper's pilots P_A, P_B, P_C differ exactly in these).
    ``runtime_limit`` is the walltime lease in seconds (0 = unlimited).
    """

    name: str
    instance_type: str
    n_nodes: int = 1
    runtime_limit: float = 0.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("pilot needs at least one node")
        if self.runtime_limit < 0:
            raise ValueError("runtime_limit must be >= 0")


@dataclass(frozen=True)
class UnitDescription:
    """A request for one task execution.

    ``work`` runs the *real* computation and returns ``(result, usage)``;
    the agent extrapolates the usage by ``1/scale`` before pricing it on
    the virtual clock.  ``memory_bytes`` (paper scale) lets the scheduler
    and the capacity check reason about footprints without running first;
    when 0, the post-hoc measured usage is the only check.

    ``checkpoint_key`` is the unit's content address in the durable
    checkpoint store (``None`` = never checkpointed): identical keys
    across two runs mean the stored outcome replays bit-identically, so
    the key must cover everything the outcome depends on — for assembly
    units that is ``(ReadStore digest, assembler, params, sweep k)``.
    """

    name: str
    work: Workload
    cores: int = 1
    memory_bytes: int = 0
    scale: float = 1.0
    stage: str = ""
    input_bytes: int = 0
    output_bytes: int = 0
    max_restarts: int = 0
    checkpoint_key: Any = None
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("unit needs at least one core")
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if self.memory_bytes < 0 or self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError("byte sizes must be >= 0")
