"""PilotManager and UnitManager front-ends.

``PilotManager`` owns pilot lifecycles against the simulated EC2 region:
launching a pilot provisions a StarCluster-style SGE cluster (or binds an
existing one — the S2 reuse path), cancelling it tears the VMs down when
the pilot owns them.

``UnitManager`` binds compute units to pilots through a pluggable
scheduler, drives their execution through the pilot agents, and restarts
failed units elsewhere when allowed — the pilot system's "starting,
monitoring, and restarting" role (§III.C).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cloud.clock import EventQueue
from repro.cloud.cluster import Cluster, build_cluster, cluster_from_vms
from repro.cloud.ec2 import EC2Region
from repro.obs import get_tracer
from repro.obs.live import StragglerDetector
from repro.parallel.costmodel import CostModel
from repro.parallel.executor import WorkloadExecutor, make_executor
from repro.pilot.agent import PilotAgent
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.pilot import Pilot
from repro.pilot.scheduler import (
    RoundRobinScheduler,
    SchedulingError,
    UnitScheduler,
    unit_fits_pilot,
)
from repro.pilot.states import PilotState, UnitState
from repro.pilot.unit import ComputeUnit

if TYPE_CHECKING:  # import cycle: repro.core.__init__ -> ... -> this module
    from repro.core.checkpoint import CheckpointStore
    from repro.pilot.elastic import ElasticPool


class ManagerError(RuntimeError):
    pass


class UnitFailureError(ManagerError):
    """Units failed permanently (exhausted ``max_restarts``).

    Raised instead of returning success-shaped results with FAILED units
    silently left behind; ``units`` carries the permanently failed ones
    so callers can report or selectively recover.
    """

    def __init__(self, units: list["ComputeUnit"]) -> None:
        self.units = list(units)
        detail = ", ".join(
            f"{u.description.name} ({u.error})" for u in self.units
        )
        super().__init__(
            f"{len(self.units)} unit(s) failed permanently: {detail}"
        )


_log = logging.getLogger(__name__)


@dataclass
class PilotManager:
    """Creates, launches and cancels pilots on the region."""

    region: EC2Region
    events: EventQueue
    db: StateStore
    pilots: list[Pilot] = field(default_factory=list)

    def submit(self, description: PilotDescription) -> Pilot:
        pilot = Pilot(description=description, db=self.db)
        self.pilots.append(pilot)
        return pilot

    def launch(self, pilot: Pilot) -> Pilot:
        """S1-style launch: provision a fresh fleet for this pilot."""
        with get_tracer().span(
            f"launch:{pilot.pilot_id}",
            category="pilot",
            process=pilot.pilot_id,
            instance_type=pilot.description.instance_type,
            n_nodes=pilot.description.n_nodes,
            reused_vms=False,
        ):
            pilot.advance(PilotState.PENDING_LAUNCH)
            pilot.advance(PilotState.LAUNCHING)
            cluster = build_cluster(
                self.region,
                self.events,
                pilot.description.instance_type,
                pilot.description.n_nodes,
                name=f"{pilot.pilot_id}.cluster",
            )
            pilot.bind_cluster(cluster)
            pilot.owns_vms = True
            pilot.advance(PilotState.ACTIVE)
        return pilot

    def launch_on(self, pilot: Pilot, cluster: Cluster) -> Pilot:
        """S2-style launch: bind to an existing cluster (VM reuse)."""
        if cluster.itype.name != pilot.description.instance_type:
            raise ManagerError(
                f"pilot wants {pilot.description.instance_type}, cluster is "
                f"{cluster.itype.name}"
            )
        if cluster.n_nodes < pilot.description.n_nodes:
            raise ManagerError(
                f"pilot wants {pilot.description.n_nodes} nodes, cluster has "
                f"{cluster.n_nodes}"
            )
        with get_tracer().span(
            f"launch:{pilot.pilot_id}",
            category="pilot",
            process=pilot.pilot_id,
            instance_type=pilot.description.instance_type,
            n_nodes=pilot.description.n_nodes,
            reused_vms=True,
            cluster=cluster.name,
        ):
            pilot.advance(PilotState.PENDING_LAUNCH)
            pilot.advance(PilotState.LAUNCHING)
            pilot.bind_cluster(cluster)
            pilot.owns_vms = False
            pilot.advance(PilotState.ACTIVE)
        return pilot

    def finish(self, pilot: Pilot) -> None:
        """Complete a pilot; terminates its fleet when it owns one (S1)."""
        pilot.advance(PilotState.DONE)
        if pilot.owns_vms and pilot.cluster is not None:
            self.region.terminate_all(pilot.cluster.vms)

    def cancel(self, pilot: Pilot) -> None:
        pilot.advance(PilotState.CANCELED)
        if pilot.owns_vms and pilot.cluster is not None:
            self.region.terminate_all(pilot.cluster.vms)


@dataclass
class UnitManager:
    """Schedules and executes compute units over a set of pilots.

    ``executor`` selects the workload-execution backend shared by all of
    this manager's pilot agents: ``"serial"`` (default), ``"thread"``,
    ``"process"``, or a ready :class:`WorkloadExecutor` instance.  The
    backend changes only *real* wall-time — virtual TTCs and results are
    identical across backends.
    """

    db: StateStore
    events: EventQueue
    scheduler: UnitScheduler = field(default_factory=RoundRobinScheduler)
    cost_model: CostModel = field(default_factory=CostModel)
    executor: WorkloadExecutor | str = "serial"
    #: Cadence (seconds) of in-workload RSS/CPU sampling under the pool
    #: backends; forwarded to every agent (0 = endpoint snapshots only).
    resource_cadence: float = 0.0
    #: Durable checkpoint store forwarded to every agent (None = off):
    #: DONE outcomes are recorded under their checkpoint keys and
    #: replayed bit-identically on resume.
    checkpoint: "CheckpointStore | None" = None
    #: Real seconds between per-unit ``unit.heartbeat`` events while
    #: workloads are in flight, forwarded to every agent (0 = off).
    #: Agents share one straggler detector, so peer wall times compare
    #: across the whole manager, not per pilot.
    heartbeat_cadence: float = 0.0
    #: Elastic pool controller (the S3 scheme): consulted each restart
    #: round to grow the pilot's cluster from SGE queue depth.
    elastic: "ElasticPool | None" = None
    #: Restart rounds that made no progress (no unit finished, no new
    #: exclusion learned) before the loop gives up as livelocked.
    #: Productive rounds do not count against it.
    max_restart_rounds: int = 10
    pilots: list[Pilot] = field(default_factory=list)
    units: list[ComputeUnit] = field(default_factory=list)
    _agents: dict[str, PilotAgent] = field(default_factory=dict)
    _straggler: "StragglerDetector | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.executor = make_executor(self.executor)
        if self.heartbeat_cadence > 0:
            self._straggler = StragglerDetector()

    def add_pilot(self, pilot: Pilot) -> None:
        if pilot.state is not PilotState.ACTIVE:
            raise ManagerError(f"{pilot.pilot_id} must be ACTIVE")
        self.pilots.append(pilot)
        self._agents[pilot.pilot_id] = PilotAgent(
            pilot=pilot,
            cost_model=self.cost_model,
            executor=self.executor,
            resource_cadence=self.resource_cadence,
            checkpoint=self.checkpoint,
            heartbeat_cadence=self.heartbeat_cadence,
            straggler=self._straggler,
        )

    def submit_units(
        self, descriptions: list[UnitDescription]
    ) -> list[ComputeUnit]:
        units = []
        for d in descriptions:
            unit = ComputeUnit(description=d, db=self.db)
            unit.advance(UnitState.UNSCHEDULED)
            units.append(unit)
            self.units.append(unit)
        return units

    def run(self, units: list[ComputeUnit] | None = None) -> list[ComputeUnit]:
        """Schedule, execute and (where allowed) restart units; returns
        them once all are DONE.  Advances the virtual clock.

        Restarts honour the paper's §III.C "restarting [elsewhere]"
        semantics: a ``(unit, pilot)`` pair that already failed is never
        retried — except after *transient* failures (the unit's node was
        preempted), which are no fault of the unit's — and a unit whose
        restart fits no untried pilot fails with a
        :class:`SchedulingError` instead of looping.

        Units that exhaust ``description.max_restarts`` raise a
        :class:`UnitFailureError` listing them: a run with permanently
        failed units must never return success-shaped results.
        """
        run_units = list(units) if units is not None else list(self.units)
        pending = list(run_units)
        if not self.pilots:
            raise ManagerError("no pilots added")

        failed_on: dict[str, set[str]] = {}
        no_progress_rounds = 0
        while pending:
            try:
                assignment = self.scheduler.schedule(
                    pending, self.pilots, exclude=failed_on
                )
            except SchedulingError as exc:
                _log.warning("scheduling failed terminally: %s", exc)
                for unit in pending:
                    if unit.state is UnitState.UNSCHEDULED:
                        unit.advance(UnitState.SCHEDULING)
                    unit.fail(str(exc))
                raise
            # Phase 1: dispatch every workload (they run concurrently
            # under a parallel executor backend) ...
            for unit in pending:
                unit.advance(UnitState.SCHEDULING)
                unit.assign(assignment[unit.unit_id])
                self._agents[unit.pilot_id].submit(unit)
            # ... phase 2: collect outcomes in submission order, which
            # enqueues the SGE jobs deterministically, then let virtual
            # time run.
            for unit in pending:
                if unit.state is UnitState.PENDING_EXECUTION:
                    self._agents[unit.pilot_id].collect(unit)
            if self.elastic is not None:
                # The queue is now fully populated for this round: grow
                # the pool if demand outstrips free slots.  Replacement
                # nodes land mid-run as provisioning events.
                self.elastic.rebalance()
            self.events.run()

            stuck = [u for u in pending if not u.is_final]
            if stuck:
                # The event queue drained with units still not final —
                # their SGE jobs can never start (capacity lost and
                # never replaced).  Surface it; silence here would be
                # the original swallowing bug in a new guise.
                raise ManagerError(
                    f"units never completed (insufficient capacity): "
                    f"{[u.description.name for u in stuck]}"
                )

            failed = [u for u in pending if u.state is UnitState.FAILED]
            made_progress = len(failed) < len(pending)
            for u in failed:
                # A transient failure (preempted node) says nothing
                # about the unit/pilot pairing, so it earns no
                # exclusion and the same pilot may be retried.
                if u.pilot_id is not None and not u.failure_transient:
                    if u.pilot_id not in failed_on.get(u.unit_id, set()):
                        made_progress = True
                    failed_on.setdefault(u.unit_id, set()).add(u.pilot_id)
            retryable = [
                u for u in failed if u.restarts < u.description.max_restarts
            ]
            exhausted = [
                u for u in failed if u.restarts >= u.description.max_restarts
            ]
            tracer = get_tracer()
            if exhausted:
                tracer.count("units_failed_permanently", len(exhausted))
                for u in exhausted:
                    _log.error(
                        "unit %s failed permanently after %d restart(s): %s",
                        u.description.name,
                        u.restarts,
                        u.error,
                    )
                    if tracer.enabled:
                        tracer.event(
                            "unit.failed_permanently",
                            category="scheduler",
                            thread=u.unit_id,
                            unit=u.description.name,
                            restarts=u.restarts,
                            error=u.error,
                        )
                raise UnitFailureError(exhausted)
            for u in retryable:
                _log.warning(
                    "restarting %s elsewhere (attempt %d, excluded pilots: %s)",
                    u.description.name,
                    u.restarts + 1,
                    sorted(failed_on.get(u.unit_id, ())),
                )
                tracer.count("units_restarted")
                if tracer.enabled:
                    tracer.event(
                        "unit.restart",
                        category="scheduler",
                        thread=u.unit_id,
                        unit=u.description.name,
                        excluded=sorted(failed_on.get(u.unit_id, ())),
                    )
                u.reset_for_restart()
            pending = retryable
            no_progress_rounds = 0 if made_progress else no_progress_rounds + 1
            if no_progress_rounds >= self.max_restart_rounds:
                raise ManagerError(
                    f"restart loop did not converge: {self.max_restart_rounds} "
                    f"consecutive round(s) without progress"
                )
        return run_units

    def wait_done(self) -> None:
        self.events.run()

    def close(self) -> None:
        """Release the executor backend's pool resources and stop any
        heartbeat threads (idempotent)."""
        for agent in self._agents.values():
            agent.stop_heartbeat()
        if isinstance(self.executor, WorkloadExecutor):
            self.executor.shutdown()
