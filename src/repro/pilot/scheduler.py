"""Unit -> pilot schedulers.

RADICAL-Pilot's UnitManager supports pluggable scheduling policies; the
pipeline uses three:

* round-robin — the distributed-static workflow pattern,
* memory-aware — refuse to bind a unit whose (paper-scale) footprint
  cannot fit the pilot's nodes, preferring pilots with headroom; this is
  what saves large inputs from landing on c3.2xlarge (Table IV), and
* a load-balancing variant weighting pilots by free cores.

Every policy takes an optional ``exclude`` map (``{unit_id: {pilot_id}}``)
naming pilots a unit must not be placed on again — the §III.C restart
path uses it to re-place a failed unit *elsewhere* instead of looping on
the pilot it already failed on.
"""

from __future__ import annotations

import logging
from abc import ABC, abstractmethod
from typing import Mapping

from repro.cloud.instances import get_instance_type
from repro.obs import get_tracer
from repro.pilot.pilot import Pilot
from repro.pilot.states import PilotState
from repro.pilot.unit import ComputeUnit

#: Pilots each unit must not be scheduled on: ``{unit_id: {pilot_id}}``.
ExcludeMap = Mapping[str, "set[str] | frozenset[str]"]

_log = logging.getLogger(__name__)


def record_placements(
    scheduler: "UnitScheduler",
    assignment: dict[str, str],
    units: list[ComputeUnit],
    exclude: ExcludeMap | None,
) -> None:
    """Emit one trace event per placement decision (no-op untraced)."""
    tracer = get_tracer()
    if not tracer.enabled:
        return
    names = {u.unit_id: u.description.name for u in units}
    for unit_id, pilot_id in assignment.items():
        tracer.event(
            "schedule.place",
            category="scheduler",
            process=pilot_id,
            thread=unit_id,
            unit=names.get(unit_id, unit_id),
            policy=type(scheduler).__name__,
            excluded=sorted((exclude or {}).get(unit_id, ())),
        )
    tracer.count("units_scheduled", len(assignment))


class SchedulingError(RuntimeError):
    """No pilot can host the unit."""


def _usable(pilots: list[Pilot]) -> list[Pilot]:
    return [
        p
        for p in pilots
        if p.state in (PilotState.ACTIVE, PilotState.LAUNCHING, PilotState.PENDING_LAUNCH, PilotState.NEW)
    ]


def unit_fits_pilot(unit: ComputeUnit, pilot: Pilot) -> bool:
    """Static capacity check: cores and declared memory vs the pilot fleet."""
    itype = get_instance_type(pilot.description.instance_type)
    total_cores = itype.vcpus * pilot.n_nodes
    if unit.description.cores > total_cores:
        return False
    mem = unit.description.memory_bytes
    if mem:
        # Per-node share: a unit spreading over n nodes needs mem/n per node.
        nodes_used = max(
            1, min(pilot.n_nodes, -(-unit.description.cores // itype.vcpus))
        )
        if mem / nodes_used > itype.memory_bytes:
            return False
    return True


def _candidates(
    unit: ComputeUnit, usable: list[Pilot], exclude: ExcludeMap | None
) -> list[Pilot]:
    """Usable pilots the unit fits on and is not excluded from."""
    banned = (exclude or {}).get(unit.unit_id, frozenset())
    return [
        p
        for p in usable
        if p.pilot_id not in banned and unit_fits_pilot(unit, p)
    ]


def _no_fit_error(
    unit: ComputeUnit, exclude: ExcludeMap | None
) -> SchedulingError:
    banned = (exclude or {}).get(unit.unit_id, frozenset())
    if banned:
        _log.warning(
            "unit %s fits no untried pilot (already failed on %s)",
            unit.description.name,
            sorted(banned),
        )
        return SchedulingError(
            f"unit {unit.description.name!r} fits no untried pilot "
            f"(already failed on {sorted(banned)})"
        )
    _log.warning("unit %s fits no pilot", unit.description.name)
    return SchedulingError(f"unit {unit.description.name!r} fits no pilot")


class UnitScheduler(ABC):
    """Assigns each unit to one pilot."""

    def schedule(
        self,
        units: list[ComputeUnit],
        pilots: list[Pilot],
        exclude: ExcludeMap | None = None,
    ) -> dict[str, str]:
        """Returns ``{unit_id: pilot_id}``; raises SchedulingError when a
        unit fits nowhere (or nowhere it has not already failed).  Every
        placement decision is published to the tracer."""
        assignment = self._schedule(units, pilots, exclude)
        record_placements(self, assignment, units, exclude)
        return assignment

    @abstractmethod
    def _schedule(
        self,
        units: list[ComputeUnit],
        pilots: list[Pilot],
        exclude: ExcludeMap | None = None,
    ) -> dict[str, str]:
        """Policy implementation; see :meth:`schedule`."""


class RoundRobinScheduler(UnitScheduler):
    """Cycle through the usable pilots, skipping those the unit cannot fit."""

    def _schedule(self, units, pilots, exclude=None):
        usable = _usable(pilots)
        if not usable:
            raise SchedulingError("no usable pilots")
        out: dict[str, str] = {}
        i = 0
        for unit in units:
            banned = (exclude or {}).get(unit.unit_id, frozenset())
            placed = False
            for probe in range(len(usable)):
                pilot = usable[(i + probe) % len(usable)]
                if pilot.pilot_id in banned:
                    continue
                if unit_fits_pilot(unit, pilot):
                    out[unit.unit_id] = pilot.pilot_id
                    i = (i + probe + 1) % len(usable)
                    placed = True
                    break
            if not placed:
                raise _no_fit_error(unit, exclude)
        return out


class MemoryAwareScheduler(UnitScheduler):
    """Prefer the cheapest pilot whose nodes can hold the unit's footprint."""

    def _schedule(self, units, pilots, exclude=None):
        usable = _usable(pilots)
        if not usable:
            raise SchedulingError("no usable pilots")
        out: dict[str, str] = {}
        for unit in units:
            candidates = _candidates(unit, usable, exclude)
            if not candidates:
                raise _no_fit_error(unit, exclude)
            best = min(
                candidates,
                key=lambda p: (
                    get_instance_type(p.description.instance_type).price_per_hour,
                    -p.n_nodes,
                ),
            )
            out[unit.unit_id] = best.pilot_id
        return out


class LoadBalancingScheduler(UnitScheduler):
    """Spread units proportionally to pilot core counts."""

    def _schedule(self, units, pilots, exclude=None):
        usable = _usable(pilots)
        if not usable:
            raise SchedulingError("no usable pilots")
        assigned_cores = {p.pilot_id: 0 for p in usable}
        out: dict[str, str] = {}
        for unit in units:
            candidates = _candidates(unit, usable, exclude)
            if not candidates:
                raise _no_fit_error(unit, exclude)
            best = min(
                candidates,
                key=lambda p: assigned_cores[p.pilot_id]
                / (get_instance_type(p.description.instance_type).vcpus * p.n_nodes),
            )
            out[unit.unit_id] = best.pilot_id
            assigned_cores[best.pilot_id] += unit.description.cores
        return out
