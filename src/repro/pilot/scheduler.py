"""Unit -> pilot schedulers.

RADICAL-Pilot's UnitManager supports pluggable scheduling policies; the
pipeline uses three:

* round-robin — the distributed-static workflow pattern,
* memory-aware — refuse to bind a unit whose (paper-scale) footprint
  cannot fit the pilot's nodes, preferring pilots with headroom; this is
  what saves large inputs from landing on c3.2xlarge (Table IV), and
* a load-balancing variant weighting pilots by free cores.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cloud.instances import get_instance_type
from repro.pilot.pilot import Pilot
from repro.pilot.states import PilotState
from repro.pilot.unit import ComputeUnit


class SchedulingError(RuntimeError):
    """No pilot can host the unit."""


def _usable(pilots: list[Pilot]) -> list[Pilot]:
    return [
        p
        for p in pilots
        if p.state in (PilotState.ACTIVE, PilotState.LAUNCHING, PilotState.PENDING_LAUNCH, PilotState.NEW)
    ]


def unit_fits_pilot(unit: ComputeUnit, pilot: Pilot) -> bool:
    """Static capacity check: cores and declared memory vs the pilot fleet."""
    itype = get_instance_type(pilot.description.instance_type)
    total_cores = itype.vcpus * pilot.n_nodes
    if unit.description.cores > total_cores:
        return False
    mem = unit.description.memory_bytes
    if mem:
        # Per-node share: a unit spreading over n nodes needs mem/n per node.
        nodes_used = max(
            1, min(pilot.n_nodes, -(-unit.description.cores // itype.vcpus))
        )
        if mem / nodes_used > itype.memory_bytes:
            return False
    return True


class UnitScheduler(ABC):
    """Assigns each unit to one pilot."""

    @abstractmethod
    def schedule(
        self, units: list[ComputeUnit], pilots: list[Pilot]
    ) -> dict[str, str]:
        """Returns ``{unit_id: pilot_id}``; raises SchedulingError when a
        unit fits nowhere."""


class RoundRobinScheduler(UnitScheduler):
    """Cycle through the usable pilots, skipping those the unit cannot fit."""

    def schedule(self, units, pilots):
        usable = _usable(pilots)
        if not usable:
            raise SchedulingError("no usable pilots")
        out: dict[str, str] = {}
        i = 0
        for unit in units:
            placed = False
            for probe in range(len(usable)):
                pilot = usable[(i + probe) % len(usable)]
                if unit_fits_pilot(unit, pilot):
                    out[unit.unit_id] = pilot.pilot_id
                    i = (i + probe + 1) % len(usable)
                    placed = True
                    break
            if not placed:
                raise SchedulingError(
                    f"unit {unit.description.name!r} fits no pilot"
                )
        return out


class MemoryAwareScheduler(UnitScheduler):
    """Prefer the cheapest pilot whose nodes can hold the unit's footprint."""

    def schedule(self, units, pilots):
        usable = _usable(pilots)
        if not usable:
            raise SchedulingError("no usable pilots")
        out: dict[str, str] = {}
        for unit in units:
            candidates = [p for p in usable if unit_fits_pilot(unit, p)]
            if not candidates:
                raise SchedulingError(
                    f"unit {unit.description.name!r} ("
                    f"{unit.description.memory_bytes / 1024**3:.0f} GiB) "
                    f"fits no pilot"
                )
            best = min(
                candidates,
                key=lambda p: (
                    get_instance_type(p.description.instance_type).price_per_hour,
                    -p.n_nodes,
                ),
            )
            out[unit.unit_id] = best.pilot_id
        return out


class LoadBalancingScheduler(UnitScheduler):
    """Spread units proportionally to pilot core counts."""

    def schedule(self, units, pilots):
        usable = _usable(pilots)
        if not usable:
            raise SchedulingError("no usable pilots")
        assigned_cores = {p.pilot_id: 0 for p in usable}
        out: dict[str, str] = {}
        for unit in units:
            candidates = [p for p in usable if unit_fits_pilot(unit, p)]
            if not candidates:
                raise SchedulingError(
                    f"unit {unit.description.name!r} fits no pilot"
                )
            best = min(
                candidates,
                key=lambda p: assigned_cores[p.pilot_id]
                / (get_instance_type(p.description.instance_type).vcpus * p.n_nodes),
            )
            out[unit.unit_id] = best.pilot_id
            assigned_cores[best.pilot_id] += unit.description.cores
        return out
