"""The pilot agent: executes compute units on the pilot's cluster.

The agent is where virtual time happens: it runs each unit's *real*
workload callable through a pluggable :class:`WorkloadExecutor`,
extrapolates the measured usage to paper scale, prices it with the cost
model against the SGE slot allocation actually granted, and enforces
node memory — a unit whose extrapolated footprint does not fit its nodes
fails with an OOM, the exact failure mode motivating the paper's
distributed assemblers.

Execution is split into two phases so workloads can run concurrently:

* :meth:`PilotAgent.submit` performs the static capacity check and
  dispatches the workload to the executor backend;
* :meth:`PilotAgent.collect` (or :meth:`PilotAgent.drain`) blocks on the
  workload's outcome, prices it, and enqueues the SGE job whose
  completion callback binds the result back into the unit on the
  virtual clock.

All capacity math is capped at the *pilot's* declared slice
(``pilot.n_nodes``), not the bound cluster's size: an S2 pilot launched
via ``launch_on`` onto a larger borrowed cluster must not silently use
the whole cluster.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cloud.sge import SGEJob
from repro.obs import get_tracer
from repro.obs.context import SpanContext, merge_worker_trace
from repro.obs.live import HeartbeatMonitor, InflightUnit, StragglerDetector
from repro.parallel.costmodel import CostModel, MachineConfig, fits_in_memory
from repro.parallel.executor import (
    ReplayWorkload,
    SerialExecutor,
    WorkloadExecutor,
    WorkloadHandle,
)
from repro.parallel.usage import ResourceUsage
from repro.pilot.pilot import Pilot
from repro.pilot.states import PilotState, UnitState
from repro.pilot.unit import ComputeUnit

if TYPE_CHECKING:  # import cycle: repro.core.__init__ -> ... -> this module
    from repro.core.checkpoint import CheckpointStore

#: Fraction of the priced runtime a task burns before dying of OOM.
OOM_FAILURE_FRACTION = 0.3

_log = logging.getLogger(__name__)


class AgentError(RuntimeError):
    pass


#: Span attribute names the exec-span emitters set explicitly; unit
#: description tags never override these.
_RESERVED_EXEC_ATTRS = frozenset(
    {"unit", "stage", "slots", "nodes", "oom", "preempted"}
)


def _extra_tags(unit: ComputeUnit) -> dict:
    """Unit description tags to stamp onto the exec span (assembler, k,
    ...) so trace analytics can slice cost/time by them.  Keys the span
    already carries explicitly (e.g. ``nodes``, which reflects the SGE
    allocation actually granted, not the requested one) are dropped."""
    return {
        k: v
        for k, v in unit.description.tags.items()
        if k not in _RESERVED_EXEC_ATTRS
    }


@dataclass
class PilotAgent:
    """Executes units bound to one ACTIVE pilot."""

    pilot: Pilot
    cost_model: CostModel = field(default_factory=CostModel)
    executor: WorkloadExecutor = field(default_factory=SerialExecutor)
    #: Seconds between in-workload RSS/CPU samples shipped back in worker
    #: traces (0 = endpoint snapshots only; only pool backends sample).
    resource_cadence: float = 0.0
    #: Durable checkpoint store: DONE unit outcomes are recorded under
    #: their ``description.checkpoint_key`` and replayed on later runs.
    checkpoint: "CheckpointStore | None" = None
    #: Real seconds between ``unit.heartbeat`` events per in-flight
    #: workload (0 = heartbeats off).  Heartbeats live entirely on the
    #: real clock; virtual TTCs are identical with them on or off.
    heartbeat_cadence: float = 0.0
    #: Peer-comparison analyzer fed each completed workload's wall time;
    #: shared across agents when the manager injects one, else built
    #: here when heartbeats are on.
    straggler: StragglerDetector | None = None
    _pending: dict[
        str,
        tuple[ComputeUnit, WorkloadHandle, SpanContext | None, bool, float],
    ] = field(default_factory=dict, repr=False)
    _heartbeat: HeartbeatMonitor | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.pilot.cluster is None:
            raise AgentError(f"{self.pilot.pilot_id} has no cluster")
        if self.heartbeat_cadence > 0 and self.straggler is None:
            self.straggler = StragglerDetector()

    # -- the pilot's slice of the cluster ----------------------------------

    @property
    def slice_nodes(self) -> int:
        """Nodes this agent may use: the pilot's slice, never more than
        the cluster actually has."""
        return min(self.pilot.n_nodes, self.pilot.cluster.n_nodes)

    @property
    def slice_slots(self) -> int:
        """SGE slots within the pilot's slice."""
        cluster = self.pilot.cluster
        return min(cluster.total_slots, self.slice_nodes * cluster.itype.vcpus)

    # -- phase 1: dispatch -------------------------------------------------

    def submit(self, unit: ComputeUnit) -> None:
        """Check static capacity and dispatch the unit's workload."""
        if self.pilot.state is not PilotState.ACTIVE:
            raise AgentError(f"{self.pilot.pilot_id} is not ACTIVE")
        cluster = self.pilot.cluster
        unit.advance(UnitState.PENDING_EXECUTION)
        tracer = get_tracer()

        # Static capacity check against the declared footprint, sized on
        # the pilot's slice (not the possibly larger borrowed cluster).
        itype = cluster.itype
        nodes_spanned = max(
            1, min(self.slice_nodes, -(-unit.description.cores // itype.vcpus))
        )
        declared = unit.description.memory_bytes
        if declared and declared / nodes_spanned > itype.memory_bytes:
            tracer.count("units_oom_static")
            _log.warning(
                "%s: unit %s fails static memory check on %s",
                self.pilot.pilot_id,
                unit.description.name,
                itype.name,
            )
            unit.fail(
                f"OOM (static): needs {declared / nodes_spanned / 1024**3:.1f} "
                f"GiB/node on {itype.name} ({itype.memory_gb:.0f} GiB)"
            )
            return

        if unit.description.cores > self.slice_slots:
            _log.warning(
                "%s: unit %s wants %d cores; capping at the pilot slice's "
                "%d slots",
                self.pilot.pilot_id,
                unit.description.name,
                unit.description.cores,
                self.slice_slots,
            )

        # A checkpointed outcome substitutes for the real computation but
        # still travels the full dispatch/collect/SGE path below, so the
        # replay is bit-identical in results, virtual TTC and trace
        # structure (see repro.core.checkpoint).
        work = unit.description.work
        replayed = False
        key = unit.description.checkpoint_key
        if self.checkpoint is not None and key is not None:
            record = self.checkpoint.get_unit(key)
            if record is not None:
                work = ReplayWorkload(
                    result=record.result,
                    usage=record.usage,
                    wall_seconds=record.wall_seconds,
                    worker_trace=record.worker_trace,
                )
                replayed = True
                tracer.count("checkpoint_hits")
            else:
                tracer.count("checkpoint_misses")

        # Dispatch the real workload; it may run concurrently with other
        # units' workloads.  Virtual time is charged when the SGE job
        # runs, after collect() binds the outcome back in.
        tracer.count("units_submitted")
        with tracer.span(
            f"dispatch:{unit.description.name}",
            category="agent",
            process=self.pilot.pilot_id,
            thread=unit.unit_id,
            backend=self.executor.name,
        ) as dispatch:
            # The context rides with the workload across the executor
            # boundary; worker records are re-parented under this
            # dispatch span when the outcome is collected.
            context = SpanContext.capture(
                tracer,
                parent_span_id=dispatch.span_id,
                process=self.pilot.pilot_id,
                thread=unit.unit_id,
                resource_cadence=self.resource_cadence,
            )
            handle = self.executor.submit(work, context)
        self._pending[unit.unit_id] = (
            unit, handle, context, replayed, time.perf_counter(),
        )
        self._ensure_heartbeat(tracer)

    # -- heartbeats --------------------------------------------------------

    def _inflight_snapshot(self) -> list[InflightUnit]:
        """The pending table as the heartbeat thread sees it (a copy —
        the beat never holds the agent up)."""
        executor_inflight = self.executor.inflight_count()
        return [
            InflightUnit(
                unit_id=unit_id,
                name=unit.description.name,
                stage=unit.description.stage,
                submitted_r=submitted_r,
                attrs={
                    "backend": self.executor.name,
                    "executor_inflight": executor_inflight,
                },
            )
            for unit_id, (unit, _, _, _, submitted_r) in list(
                self._pending.items()
            )
        ]

    def _ensure_heartbeat(self, tracer) -> None:
        if self.heartbeat_cadence <= 0 or not tracer.enabled:
            return
        if self._heartbeat is None:
            self._heartbeat = HeartbeatMonitor(
                tracer,
                self.heartbeat_cadence,
                self._inflight_snapshot,
                process=self.pilot.pilot_id,
                detector=self.straggler,
            )
        self._heartbeat.start()

    def stop_heartbeat(self) -> None:
        """Stop the heartbeat thread (idempotent; restartable)."""
        if self._heartbeat is not None:
            self._heartbeat.stop()

    # -- phase 2: collect --------------------------------------------------

    def collect(self, unit: ComputeUnit) -> None:
        """Block on the unit's workload outcome and enqueue its SGE job."""
        try:
            unit, handle, context, replayed, _ = self._pending.pop(
                unit.unit_id
            )
        except KeyError:
            raise AgentError(
                f"{unit.unit_id} has no pending workload on "
                f"{self.pilot.pilot_id}"
            ) from None
        outcome = handle.outcome()
        if not self._pending and self._heartbeat is not None:
            self._heartbeat.stop()  # restarted by the next submit round
        if self.straggler is not None and outcome.ok:
            self.straggler.note_completion(outcome.wall_seconds)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "workload.outcome",
                category="executor",
                process=self.pilot.pilot_id,
                thread=unit.unit_id,
                ok=outcome.ok,
                wall_seconds=outcome.wall_seconds,
                backend=self.executor.name,
            )
            tracer.observe("workload_wall_seconds", outcome.wall_seconds)
            merged = merge_worker_trace(tracer, outcome.worker_trace, context)
            if merged:
                tracer.count("worker_records_merged", float(merged))
                tracer.event(
                    "worker_trace.merged",
                    category="executor",
                    process=self.pilot.pilot_id,
                    thread=unit.unit_id,
                    pid=outcome.worker_trace.pid,
                    records=merged,
                )
        if not outcome.ok:
            tracer.count("units_workload_errors")
            _log.warning(
                "%s: workload of %s raised: %s",
                self.pilot.pilot_id,
                unit.description.name,
                outcome.error,
            )
            unit.fail(f"workload error: {outcome.error}")
            return
        unit.real_seconds = outcome.wall_seconds
        key = unit.description.checkpoint_key
        if self.checkpoint is not None and key is not None and not replayed:
            # Record the *raw* outcome (pre-scaling usage): replay runs
            # the identical pricing path, so TTCs match bit-for-bit.
            from repro.core.checkpoint import UnitCheckpoint

            self.checkpoint.put_unit(
                key,
                UnitCheckpoint(
                    result=outcome.result,
                    usage=outcome.usage,
                    wall_seconds=outcome.wall_seconds,
                    worker_trace=outcome.worker_trace,
                ),
            )
            tracer.count("checkpoint_puts")
        self._enqueue(unit, outcome.result, outcome.usage)

    def drain(self) -> None:
        """Collect every pending unit, in dispatch order."""
        for unit, _, _, _, _ in list(self._pending.values()):
            self.collect(unit)

    @property
    def pending_units(self) -> list[ComputeUnit]:
        return [unit for unit, _, _, _, _ in self._pending.values()]

    # -- pricing and the virtual-clock SGE job -----------------------------

    def _enqueue(self, unit: ComputeUnit, result, usage: ResourceUsage) -> None:
        cluster = self.pilot.cluster
        itype = cluster.itype
        scaled = usage.scaled(1.0 / unit.description.scale)
        oom = {"hit": False}

        def duration(alloc: dict[str, int]) -> float:
            # The pilot only holds slice_nodes of the cluster, so the
            # unit never spreads wider than its slice even when SGE
            # fragments the allocation across more physical nodes.
            n_nodes = min(len(alloc), self.slice_nodes)
            machine = MachineConfig(
                n_nodes=n_nodes,
                cores_per_node=itype.vcpus,
                compute_factor=itype.compute_factor,
                network_bandwidth=itype.network_bandwidth,
            )
            seconds = self.cost_model.task_seconds(scaled, machine)
            seconds += self.cost_model.io_seconds(
                unit.description.input_bytes + unit.description.output_bytes,
                machine,
            )
            ranks_per_node = -(-scaled.n_ranks // n_nodes)
            if not fits_in_memory(scaled, itype.memory_bytes, ranks_per_node):
                oom["hit"] = True
                return seconds * OOM_FAILURE_FRACTION
            return seconds

        def on_start_states() -> None:
            unit.advance(UnitState.EXECUTING)
            unit.started_at = cluster.events.clock.now

        def on_complete(job: SGEJob) -> None:
            unit.finished_at = cluster.events.clock.now
            tracer = get_tracer()
            if tracer.enabled:
                tracer.add_span(
                    f"exec:{unit.description.name}",
                    v_start=unit.started_at,
                    v_end=unit.finished_at,
                    category="unit",
                    process=self.pilot.pilot_id,
                    thread=unit.unit_id,
                    unit=unit.description.name,
                    stage=unit.description.stage,
                    slots=job.slots,
                    nodes=len(job.allocation),
                    oom=oom["hit"],
                    **_extra_tags(unit),
                )
            if oom["hit"]:
                peak = scaled.peak_rank_memory_bytes
                tracer.count("units_oom_measured")
                _log.warning(
                    "%s: unit %s hit a measured OOM on %s",
                    self.pilot.pilot_id,
                    unit.description.name,
                    itype.name,
                )
                unit.result = None
                unit.usage = scaled
                unit.fail(
                    f"OOM (measured): peak rank footprint "
                    f"{peak / 1024**3:.1f} GiB on {itype.name}"
                )
                return
            tracer.count("units_done")
            unit.result = result
            unit.usage = scaled
            unit.advance(UnitState.DONE)

        def timed_duration(alloc: dict[str, int]) -> float:
            on_start_states()
            return duration(alloc)

        def on_fail(job: SGEJob) -> None:
            # The job died with the node under it (spot preemption) or
            # was starved out by the capacity loss — not the unit's
            # fault, so the failure is transient: the restart loop may
            # legally retry on this same pilot.
            tracer = get_tracer()
            tracer.count("units_preempted")
            if job.started_at is not None:
                unit.finished_at = cluster.events.clock.now
                unit.usage = scaled  # burnt work, kept for accounting
                if tracer.enabled:
                    tracer.add_span(
                        f"exec:{unit.description.name}",
                        v_start=unit.started_at,
                        v_end=unit.finished_at,
                        category="unit",
                        process=self.pilot.pilot_id,
                        thread=unit.unit_id,
                        unit=unit.description.name,
                        stage=unit.description.stage,
                        slots=job.slots,
                        nodes=len(job.allocation),
                        preempted=True,
                        **_extra_tags(unit),
                    )
            _log.warning(
                "%s: unit %s lost its node: %s",
                self.pilot.pilot_id,
                unit.description.name,
                job.error,
            )
            unit.fail(f"preempted: {job.error}", transient=True)

        job = SGEJob(
            name=unit.description.name,
            slots=min(unit.description.cores, self.slice_slots),
            duration=timed_duration,
            on_complete=on_complete,
            on_fail=on_fail,
        )
        cluster.scheduler.qsub(job)


def merged_usage(
    units: list[ComputeUnit], include_failed: bool = False
) -> ResourceUsage:
    """Sequentially merge the scaled usage of finished units.

    By default only DONE units contribute: a FAILED unit's usage (e.g.
    the partial record of a measured OOM) describes work whose outputs
    were discarded.  Pass ``include_failed=True`` to account for that
    burnt work too — e.g. when totalling what a run actually consumed.
    """
    total = ResourceUsage()
    for u in units:
        if u.usage is None:
            continue
        if u.state is not UnitState.DONE and not include_failed:
            continue
        total = total.merge(u.usage)
    return total
