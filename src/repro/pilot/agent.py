"""The pilot agent: executes compute units on the pilot's cluster.

The agent is where virtual time happens: it runs each unit's *real*
workload callable, extrapolates the measured usage to paper scale,
prices it with the cost model against the SGE slot allocation actually
granted, and enforces node memory — a unit whose extrapolated footprint
does not fit its nodes fails with an OOM, the exact failure mode
motivating the paper's distributed assemblers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.sge import SGEJob
from repro.parallel.costmodel import CostModel, MachineConfig, fits_in_memory
from repro.parallel.usage import ResourceUsage
from repro.pilot.pilot import Pilot
from repro.pilot.states import PilotState, UnitState
from repro.pilot.unit import ComputeUnit

#: Fraction of the priced runtime a task burns before dying of OOM.
OOM_FAILURE_FRACTION = 0.3


class AgentError(RuntimeError):
    pass


@dataclass
class PilotAgent:
    """Executes units bound to one ACTIVE pilot."""

    pilot: Pilot
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.pilot.cluster is None:
            raise AgentError(f"{self.pilot.pilot_id} has no cluster")

    def submit(self, unit: ComputeUnit) -> None:
        """Run the unit's workload, price it, and enqueue the SGE job."""
        if self.pilot.state is not PilotState.ACTIVE:
            raise AgentError(f"{self.pilot.pilot_id} is not ACTIVE")
        cluster = self.pilot.cluster
        unit.advance(UnitState.PENDING_EXECUTION)

        # Static capacity check against the declared footprint.
        itype = cluster.itype
        nodes_spanned = max(
            1, min(cluster.n_nodes, -(-unit.description.cores // itype.vcpus))
        )
        declared = unit.description.memory_bytes
        if declared and declared / nodes_spanned > itype.memory_bytes:
            unit.fail(
                f"OOM (static): needs {declared / nodes_spanned / 1024**3:.1f} "
                f"GiB/node on {itype.name} ({itype.memory_gb:.0f} GiB)"
            )
            return

        # Execute the real workload now; time is charged on the virtual
        # clock when the SGE job runs.
        try:
            result, usage = unit.description.work()
        except Exception as exc:  # workload crash -> unit failure
            unit.fail(f"workload error: {exc}")
            return
        scaled = usage.scaled(1.0 / unit.description.scale)
        oom = {"hit": False}

        def duration(alloc: dict[str, int]) -> float:
            machine = MachineConfig(
                n_nodes=len(alloc),
                cores_per_node=itype.vcpus,
                compute_factor=itype.compute_factor,
                network_bandwidth=itype.network_bandwidth,
            )
            seconds = self.cost_model.task_seconds(scaled, machine)
            seconds += self.cost_model.io_seconds(
                unit.description.input_bytes + unit.description.output_bytes,
                machine,
            )
            ranks_per_node = -(-scaled.n_ranks // len(alloc))
            if not fits_in_memory(scaled, itype.memory_bytes, ranks_per_node):
                oom["hit"] = True
                return seconds * OOM_FAILURE_FRACTION
            return seconds

        def on_start_states() -> None:
            unit.advance(UnitState.EXECUTING)
            unit.started_at = cluster.events.clock.now

        def on_complete(job: SGEJob) -> None:
            unit.finished_at = cluster.events.clock.now
            if oom["hit"]:
                peak = scaled.peak_rank_memory_bytes
                unit.result = None
                unit.usage = scaled
                unit.fail(
                    f"OOM (measured): peak rank footprint "
                    f"{peak / 1024**3:.1f} GiB on {itype.name}"
                )
                return
            unit.result = result
            unit.usage = scaled
            unit.advance(UnitState.DONE)

        def timed_duration(alloc: dict[str, int]) -> float:
            on_start_states()
            return duration(alloc)

        job = SGEJob(
            name=unit.description.name,
            slots=min(unit.description.cores, cluster.total_slots),
            duration=timed_duration,
            on_complete=on_complete,
        )
        cluster.scheduler.qsub(job)


def merged_usage(units: list[ComputeUnit]) -> ResourceUsage:
    """Sequentially merge the scaled usage of finished units."""
    total = ResourceUsage()
    for u in units:
        if u.usage is not None:
            total = total.merge(u.usage)
    return total
