"""Backend state store.

RADICAL-Pilot coordinates managers and agents through a MongoDB instance
that "updates run-time information on the fly" (§III.C).  This in-memory
analog provides the same observable behaviour: every entity publishes its
state changes here with virtual timestamps, and watchers fire on update —
which is how the dynamic workflow reacts to the pre-processing output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cloud.clock import SimClock

Watcher = Callable[[str, str, Any], None]


@dataclass(frozen=True)
class StateRecord:
    entity_id: str
    field: str
    value: Any
    timestamp: float


@dataclass
class StateStore:
    """Entity documents plus an append-only history with watchers."""

    clock: SimClock
    documents: dict[str, dict[str, Any]] = field(default_factory=dict)
    history: list[StateRecord] = field(default_factory=list)
    _watchers: list[Watcher] = field(default_factory=list)

    def register(self, entity_id: str, **initial: Any) -> None:
        if entity_id in self.documents:
            raise KeyError(f"entity {entity_id!r} already registered")
        self.documents[entity_id] = {}
        for k, v in initial.items():
            self.update(entity_id, k, v)

    def update(self, entity_id: str, field_name: str, value: Any) -> None:
        if entity_id not in self.documents:
            raise KeyError(f"unknown entity {entity_id!r}")
        self.documents[entity_id][field_name] = value
        self.history.append(
            StateRecord(entity_id, field_name, value, self.clock.now)
        )
        for w in list(self._watchers):
            w(entity_id, field_name, value)

    def get(self, entity_id: str, field_name: str, default: Any = None) -> Any:
        return self.documents.get(entity_id, {}).get(field_name, default)

    def watch(self, watcher: Watcher) -> Callable[[], None]:
        """Register a watcher; returns an unsubscribe function."""
        self._watchers.append(watcher)

        def unsubscribe() -> None:
            if watcher in self._watchers:
                self._watchers.remove(watcher)

        return unsubscribe

    def history_of(self, entity_id: str, field_name: str | None = None) -> list[StateRecord]:
        return [
            r
            for r in self.history
            if r.entity_id == entity_id
            and (field_name is None or r.field == field_name)
        ]

    def timeline(self, field_name: str = "state") -> list[tuple[float, str, Any]]:
        """(timestamp, entity, value) tuples for one field, in time order."""
        return [
            (r.timestamp, r.entity_id, r.value)
            for r in self.history
            if r.field == field_name
        ]
