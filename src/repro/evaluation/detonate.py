"""DETONATE REF-EVAL metric analogs (Li et al. 2014).

Metrics reported in the paper's Table V:

* **nucleotide-level precision** — fraction of assembled bases that match
  reference bases under the best alignment,
* **nucleotide-level recall** — fraction of reference bases covered by a
  matching assembled base,
* **F1** — their harmonic mean,
* **weighted k-mer recall (WKR)** — k-mer recall where each reference
  transcript's k-mers are weighted by its expression (read abundance), so
  well-supported transcripts dominate the score, and
* **kc score** — WKR minus an inverse-compression penalty proportional to
  the assembly's k-mer count (DETONATE's guard against trivially
  recall-maximizing assemblies that output everything).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.assembly import packed as packedmod
from repro.assembly.contigs import Contig
from repro.assembly.kmers import canonical_kmers_varlen_packed
from repro.evaluation.align import AlignmentIndex, align_contig
from repro.seq.alphabet import encode, reverse_complement
from repro.seq.transcriptome import Transcriptome

#: k used by the k-mer level metrics (DETONATE's default is 25).
KMER_METRIC_K = 25


@dataclass(frozen=True)
class DetonateScores:
    """The Table V score tuple for one assembly."""

    precision: float
    recall: float
    f1: float
    weighted_kmer_recall: float
    kc_score: float
    n_contigs: int
    assembly_bp: int

    def nucleotide_tuple(self) -> tuple[float, float, float]:
        return (self.precision, self.recall, self.f1)


def _kmer_keys(seqs: list[str], k: int) -> np.ndarray:
    """Distinct canonical k-mers as a sorted packed-key array.

    Array-native successor of the historical ``set(key_list(...))``:
    no per-k-mer Python objects; membership goes through the vectorized
    ``searchsorted`` probe of :func:`repro.assembly.packed.keys_in`.
    """
    rows = canonical_kmers_varlen_packed(seqs, k)
    return packedmod.unique_keys(rows, k)


def evaluate(
    contigs: list[Contig],
    reference: Transcriptome,
    total_read_kmers: int | None = None,
    seed_k: int = 15,
    kmer_k: int = KMER_METRIC_K,
) -> DetonateScores:
    """Score an assembly against a reference transcriptome.

    ``total_read_kmers`` normalizes the kc penalty; when None it defaults
    to the reference k-mer mass times a typical coverage (the penalty is a
    small correction either way).
    """
    refs = [t.seq for t in reference.transcripts]
    if not refs:
        raise ValueError("empty reference transcriptome")

    # -- nucleotide level ---------------------------------------------------
    index = AlignmentIndex(refs, seed_k=seed_k)
    covered = [np.zeros(len(r), dtype=bool) for r in refs]
    matched_bases = 0
    assembly_bp = sum(len(c) for c in contigs)
    for contig in contigs:
        aln = align_contig(index, contig.seq)
        if aln is None or aln.length == 0:
            continue
        matched_bases += aln.matches
        ref_codes = index.ref_codes[aln.transcript_index]
        # Re-derive the matched positions on the reference for recall.
        seq = contig.seq if aln.strand == 1 else reverse_complement(contig.seq)
        ccodes = encode(seq)
        seg_c = ccodes[aln.contig_start : aln.contig_start + aln.length]
        seg_r = ref_codes[aln.ref_start : aln.ref_start + aln.length]
        eq = seg_c == seg_r
        covered[aln.transcript_index][aln.ref_start : aln.ref_start + aln.length] |= eq

    total_ref_bp = sum(len(r) for r in refs)
    covered_bp = int(sum(c.sum() for c in covered))
    precision = matched_bases / assembly_bp if assembly_bp else 0.0
    recall = covered_bp / total_ref_bp if total_ref_bp else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )

    # -- k-mer level ----------------------------------------------------------
    assembly_kmers = _kmer_keys([c.seq for c in contigs], kmer_k)
    weights = reference.read_sampling_weights()
    wkr_num = 0.0
    wkr_den = 0.0
    for t, w in zip(reference.transcripts, weights):
        t_kmers = _kmer_keys([t.seq], kmer_k)
        if t_kmers.size == 0:
            continue
        present = int(packedmod.keys_in(t_kmers, assembly_kmers).sum())
        wkr_num += w * present / len(t_kmers)
        wkr_den += w
    wkr = wkr_num / wkr_den if wkr_den else 0.0

    if total_read_kmers is None:
        total_read_kmers = 50 * sum(
            max(len(r) - kmer_k + 1, 0) for r in refs
        )
    penalty = len(assembly_kmers) / (2.0 * max(total_read_kmers, 1))
    kc = wkr - penalty

    return DetonateScores(
        precision=round(precision, 4),
        recall=round(recall, 4),
        f1=round(f1, 4),
        weighted_kmer_recall=round(wkr, 4),
        kc_score=round(kc, 4),
        n_contigs=len(contigs),
        assembly_bp=assembly_bp,
    )
