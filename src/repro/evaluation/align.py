"""Seed-and-vote alignment of contigs to reference transcripts.

DETONATE's nucleotide-level metrics need, for every assembled contig, the
reference positions it matches.  Contigs here are high-identity (they come
from DBG assembly of simulated reads), so a simple seed-and-vote aligner
is accurate: index every reference k-mer, collect a contig's seed hits,
vote on (transcript, diagonal), and score the best diagonal with a direct
vectorized base comparison.  Both strands are tried.

Seeds are packed 3 bits per base into a single ``uint64`` (3 bits so the
N code participates byte-for-byte like the historical bytes-slice keys
did), the index is a seed-sorted array triplet built with one argsort per
reference, and ``seed_hits`` resolves every contig position with two
batched ``np.searchsorted`` calls instead of a Python dict probe per
position.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.seq import alphabet
from repro.seq.alphabet import encode

SEED_K = 15

#: 3 bits per base (codes 0..4 including N) in one uint64.
_MAX_SEED_K = 21


def _pack_seeds(codes: np.ndarray, k: int) -> np.ndarray:
    """All length-k windows of ``codes`` packed into uint64 scalars.

    Equal packed values <=> equal byte windows (N included), exactly the
    equality the historical bytes-slice index keys provided.
    """
    if codes.shape[0] < k:
        return np.zeros(0, dtype=np.uint64)
    win = np.lib.stride_tricks.sliding_window_view(codes, k)
    weights = (np.uint64(1) << (np.uint64(3) * np.arange(k - 1, -1, -1, dtype=np.uint64)))
    return (win.astype(np.uint64) * weights[None, :]).sum(axis=1, dtype=np.uint64)


@dataclass(frozen=True)
class Alignment:
    """One contig-to-reference alignment on a single diagonal."""

    transcript_index: int
    ref_start: int
    contig_start: int
    length: int
    matches: int
    strand: int

    @property
    def identity(self) -> float:
        return self.matches / self.length if self.length else 0.0


class AlignmentIndex:
    """Seed index over a set of reference sequences.

    Stored as three aligned arrays sorted by packed seed value: the seed,
    its transcript id and its reference position.  Ties keep (tid, pos)
    insertion order, so vote accumulation order — and therefore
    ``Counter.most_common`` tie-breaking — matches the historical
    dict-of-lists index.
    """

    def __init__(self, references: list[str], seed_k: int = SEED_K) -> None:
        if seed_k < 8:
            raise ValueError("seed_k must be >= 8")
        if seed_k > _MAX_SEED_K:
            raise ValueError(f"seed_k must be <= {_MAX_SEED_K}")
        self.seed_k = seed_k
        self.references = references
        self.ref_codes = [encode(r) for r in references]

        seed_parts: list[np.ndarray] = []
        tid_parts: list[np.ndarray] = []
        pos_parts: list[np.ndarray] = []
        for tid, codes in enumerate(self.ref_codes):
            seeds = _pack_seeds(codes, seed_k)
            if seeds.shape[0] == 0:
                continue
            seed_parts.append(seeds)
            tid_parts.append(np.full(seeds.shape[0], tid, dtype=np.int64))
            pos_parts.append(np.arange(seeds.shape[0], dtype=np.int64))
        if seed_parts:
            seeds = np.concatenate(seed_parts)
            order = np.argsort(seeds, kind="stable")
            self._seeds = seeds[order]
            self._tids = np.concatenate(tid_parts)[order]
            self._positions = np.concatenate(pos_parts)[order]
        else:
            self._seeds = np.zeros(0, dtype=np.uint64)
            self._tids = np.zeros(0, dtype=np.int64)
            self._positions = np.zeros(0, dtype=np.int64)

    def seed_hits(self, codes: np.ndarray) -> Counter:
        """(transcript, diagonal) vote counts for a contig's seeds."""
        votes: Counter = Counter()
        query = _pack_seeds(np.asarray(codes, dtype=np.uint8), self.seed_k)
        if query.shape[0] == 0 or self._seeds.shape[0] == 0:
            return votes
        lo = np.searchsorted(self._seeds, query, side="left")
        hi = np.searchsorted(self._seeds, query, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return votes
        # Expand [lo, hi) ranges into flat index-entry positions, ordered
        # by contig position then by index order within each seed group.
        cum = np.cumsum(counts)
        offsets = np.arange(total) - np.repeat(cum - counts, counts)
        entries = np.repeat(lo, counts) + offsets
        contig_pos = np.repeat(
            np.arange(query.shape[0], dtype=np.int64), counts
        )
        tids = self._tids[entries]
        diags = self._positions[entries] - contig_pos
        votes.update(zip(tids.tolist(), diags.tolist()))
        return votes


def _score_diagonal(
    index: AlignmentIndex,
    contig_codes: np.ndarray,
    tid: int,
    diagonal: int,
    strand: int,
) -> Alignment:
    ref = index.ref_codes[tid]
    c_start = max(0, -diagonal)
    r_start = c_start + diagonal
    length = min(len(contig_codes) - c_start, len(ref) - r_start)
    if length <= 0:
        return Alignment(tid, r_start, c_start, 0, 0, strand)
    matches = int(
        (
            contig_codes[c_start : c_start + length]
            == ref[r_start : r_start + length]
        ).sum()
    )
    return Alignment(tid, r_start, c_start, length, matches, strand)


def align_contig(
    index: AlignmentIndex,
    contig_seq: str,
    min_votes: int = 2,
) -> Alignment | None:
    """Best single-diagonal alignment of a contig (either strand)."""
    best: Alignment | None = None
    for strand, seq in ((1, contig_seq), (-1, alphabet.reverse_complement(contig_seq))):
        codes = encode(seq)
        votes = index.seed_hits(codes)
        if not votes:
            continue
        # Score the few strongest diagonals only.
        for (tid, diag), n in votes.most_common(3):
            if n < min_votes:
                continue
            aln = _score_diagonal(index, codes, tid, diag, strand)
            if best is None or aln.matches > best.matches:
                best = aln
    return best
