"""Seed-and-vote alignment of contigs to reference transcripts.

DETONATE's nucleotide-level metrics need, for every assembled contig, the
reference positions it matches.  Contigs here are high-identity (they come
from DBG assembly of simulated reads), so a simple seed-and-vote aligner
is accurate: hash every reference k-mer, collect a contig's seed hits,
vote on (transcript, diagonal), and score the best diagonal with a direct
vectorized base comparison.  Both strands are tried.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.seq import alphabet
from repro.seq.alphabet import encode

SEED_K = 15


@dataclass(frozen=True)
class Alignment:
    """One contig-to-reference alignment on a single diagonal."""

    transcript_index: int
    ref_start: int
    contig_start: int
    length: int
    matches: int
    strand: int

    @property
    def identity(self) -> float:
        return self.matches / self.length if self.length else 0.0


class AlignmentIndex:
    """Seed index over a set of reference sequences."""

    def __init__(self, references: list[str], seed_k: int = SEED_K) -> None:
        if seed_k < 8:
            raise ValueError("seed_k must be >= 8")
        self.seed_k = seed_k
        self.references = references
        self.ref_codes = [encode(r) for r in references]
        self._index: dict[bytes, list[tuple[int, int]]] = {}
        for tid, codes in enumerate(self.ref_codes):
            raw = codes.tobytes()
            for pos in range(len(raw) - seed_k + 1):
                seed = raw[pos : pos + seed_k]
                self._index.setdefault(seed, []).append((tid, pos))

    def seed_hits(self, codes: np.ndarray) -> Counter:
        """(transcript, diagonal) vote counts for a contig's seeds."""
        votes: Counter = Counter()
        raw = codes.tobytes()
        k = self.seed_k
        for pos in range(0, len(raw) - k + 1):
            for tid, rpos in self._index.get(raw[pos : pos + k], ()):
                votes[(tid, rpos - pos)] += 1
        return votes


def _score_diagonal(
    index: AlignmentIndex,
    contig_codes: np.ndarray,
    tid: int,
    diagonal: int,
    strand: int,
) -> Alignment:
    ref = index.ref_codes[tid]
    c_start = max(0, -diagonal)
    r_start = c_start + diagonal
    length = min(len(contig_codes) - c_start, len(ref) - r_start)
    if length <= 0:
        return Alignment(tid, r_start, c_start, 0, 0, strand)
    matches = int(
        (
            contig_codes[c_start : c_start + length]
            == ref[r_start : r_start + length]
        ).sum()
    )
    return Alignment(tid, r_start, c_start, length, matches, strand)


def align_contig(
    index: AlignmentIndex,
    contig_seq: str,
    min_votes: int = 2,
) -> Alignment | None:
    """Best single-diagonal alignment of a contig (either strand)."""
    best: Alignment | None = None
    for strand, seq in ((1, contig_seq), (-1, alphabet.reverse_complement(contig_seq))):
        codes = encode(seq)
        votes = index.seed_hits(codes)
        if not votes:
            continue
        # Score the few strongest diagonals only.
        for (tid, diag), n in votes.most_common(3):
            if n < min_votes:
                continue
            aln = _score_diagonal(index, codes, tid, diag, strand)
            if best is None or aln.matches > best.matches:
                best = aln
    return best
