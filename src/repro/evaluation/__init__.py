"""Reference-based transcript assembly evaluation (DETONATE analog).

Implements the REF-EVAL metrics of DETONATE v1.10 (Li et al., Genome
Biology 2014) that the paper's Table V reports:

* nucleotide-level precision / recall / F1 (:func:`detonate.evaluate`),
* weighted k-mer recall, and
* the k-mer compression (kc) score.

Alignment of contigs to the reference uses seed-and-vote k-mer matching
(:mod:`align`) instead of DETONATE's BLAT dependency.
"""

from repro.evaluation.align import AlignmentIndex, align_contig
from repro.evaluation.detonate import DetonateScores, evaluate

__all__ = ["AlignmentIndex", "align_contig", "DetonateScores", "evaluate"]
