"""An MPI-like SPMD world, executed deterministically in-process.

Distributed algorithms are written in the loosely-synchronous style the
paper's assemblers actually use: every rank holds local state (a slot in a
per-rank list), local compute loops iterate over ranks, and data moves only
through explicit collectives (``alltoall``, ``allreduce``, ``gather``,
``bcast``...).  The world records everything — per-rank work charges,
bytes through every collective, latency-bound message counts — into
:class:`~repro.parallel.usage.ResourceUsage` phases, which the cost model
later turns into virtual seconds.

Example::

    world = SimWorld(4)
    with world.phase("count", kind="kmer"):
        send = [[[] for _ in range(4)] for _ in range(4)]
        for r in world.ranks():
            for item in local_items[r]:
                send[r][owner(item)].append(item)
            world.charge(r, len(local_items[r]))
        recv = world.alltoall(send)
    usage = world.usage
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.parallel.usage import PhaseUsage, ResourceUsage, nbytes


class CommError(RuntimeError):
    """Misuse of the communicator (bad shapes, no active phase, ...)."""


@dataclass
class _PhaseAccumulator:
    name: str
    kind: str
    charges: dict[int, float] = field(default_factory=dict)
    serial: float = 0.0
    comm_bytes: int = 0
    n_collectives: int = 0
    n_messages: int = 0
    n_jobs: int = 0

    def to_usage(self) -> PhaseUsage:
        return PhaseUsage(
            name=self.name,
            kind=self.kind,
            critical_compute=max(self.charges.values(), default=0.0),
            total_compute=sum(self.charges.values()),
            serial_compute=self.serial,
            comm_bytes=self.comm_bytes,
            n_collectives=self.n_collectives,
            n_messages=self.n_messages,
            n_jobs=self.n_jobs,
        )


class SimWorld:
    """A fixed-size SPMD communicator with usage accounting."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.size = n_ranks
        self._phase: _PhaseAccumulator | None = None
        self._usage = ResourceUsage(n_ranks=n_ranks)
        self._peak_memory = 0

    # -- structure -----------------------------------------------------------

    def ranks(self) -> range:
        """Iterate rank ids (SPMD outer loop)."""
        return range(self.size)

    @contextmanager
    def phase(self, name: str, kind: str = "generic") -> Iterator[None]:
        """Delimit a named computation phase; phases may not nest."""
        if self._phase is not None:
            raise CommError(f"phase {self._phase.name!r} already active")
        self._phase = _PhaseAccumulator(name=name, kind=kind)
        try:
            yield
        finally:
            self._usage.add_phase(self._phase.to_usage())
            self._phase = None

    @property
    def usage(self) -> ResourceUsage:
        """Usage so far (phases closed to this point)."""
        self._usage.peak_rank_memory_bytes = self._peak_memory
        return self._usage

    # -- accounting -----------------------------------------------------------

    def _acc(self) -> _PhaseAccumulator:
        if self._phase is None:
            raise CommError("no active phase; wrap work in world.phase(...)")
        return self._phase

    def charge(self, rank: int, units: float) -> None:
        """Charge ``units`` of work to ``rank`` in the current phase."""
        self._check_rank(rank)
        acc = self._acc()
        acc.charges[rank] = acc.charges.get(rank, 0.0) + units

    def charge_serial(self, units: float) -> None:
        """Charge single-rank (Amdahl) work: others idle while it runs."""
        self._acc().serial += units

    def count_messages(self, n: int) -> None:
        """Record ``n`` latency-bound point-to-point messages."""
        self._acc().n_messages += n

    def record_memory(self, rank: int, n_bytes: int) -> None:
        """Record the current memory footprint of ``rank``."""
        self._check_rank(rank)
        self._peak_memory = max(self._peak_memory, int(n_bytes))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommError(f"rank {rank} out of range [0, {self.size})")

    def _collective(self, off_node_bytes: int) -> None:
        acc = self._acc()
        acc.n_collectives += 1
        acc.comm_bytes += off_node_bytes

    # -- collectives -----------------------------------------------------------

    def alltoall(
        self,
        send: Sequence[Sequence[Any]],
        nbytes_of: Callable[[Any], int] | None = None,
    ) -> list[list[Any]]:
        """All-to-all personalized exchange.

        ``send[src][dst]`` is the payload from ``src`` to ``dst``; the
        return value ``recv`` satisfies ``recv[dst][src] == send[src][dst]``.
        Only off-diagonal payloads count as communication.

        ``nbytes_of`` overrides the payload-size measure for accounting.
        The cost model is calibrated to the *logical* record size of a
        payload (e.g. k bytes per k-mer); callers shipping a compressed
        physical representation pass the logical measure here so charged
        communication stays identical to the uncompressed exchange.
        """
        self._check_matrix(send)
        measure = nbytes if nbytes_of is None else nbytes_of
        off_node = sum(
            measure(send[s][d])
            for s in range(self.size)
            for d in range(self.size)
            if s != d
        )
        self._collective(off_node)
        return [[send[s][d] for s in range(self.size)] for d in range(self.size)]

    def _check_matrix(self, send) -> None:
        if len(send) != self.size or any(len(row) != self.size for row in send):
            raise CommError(
                f"alltoall needs a {self.size}x{self.size} payload matrix"
            )

    def allreduce(
        self, values: Sequence[Any], op: Callable[[Any, Any], Any] = None
    ) -> Any:
        """Reduce per-rank values with ``op`` (default +) and broadcast."""
        self._check_vector(values)
        if op is None:
            op = lambda a, b: a + b
        result = values[0]
        for v in values[1:]:
            result = op(result, v)
        per_value = max(nbytes(v) for v in values)
        self._collective(2 * per_value * max(self.size - 1, 0))
        return result

    def gather(self, values: Sequence[Any], root: int = 0) -> list[Any]:
        """Gather per-rank values to ``root``; returns the full list."""
        self._check_vector(values)
        self._check_rank(root)
        off_node = sum(nbytes(v) for r, v in enumerate(values) if r != root)
        self._collective(off_node)
        return list(values)

    def allgather(self, values: Sequence[Any]) -> list[Any]:
        """Gather per-rank values everywhere."""
        self._check_vector(values)
        total = sum(nbytes(v) for v in values)
        self._collective(total * max(self.size - 1, 0))
        return list(values)

    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``value`` from ``root`` to all ranks."""
        self._check_rank(root)
        self._collective(nbytes(value) * max(self.size - 1, 0))
        return value

    def scatter(self, values: Sequence[Any], root: int = 0) -> list[Any]:
        """Scatter one value per rank from ``root``; returns the list."""
        self._check_vector(values)
        self._check_rank(root)
        off_node = sum(nbytes(v) for r, v in enumerate(values) if r != root)
        self._collective(off_node)
        return list(values)

    def barrier(self) -> None:
        """Synchronization-only collective."""
        self._collective(0)

    def _check_vector(self, values) -> None:
        if len(values) != self.size:
            raise CommError(f"expected one value per rank ({self.size})")
