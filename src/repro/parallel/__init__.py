"""Functional simulated distributed runtimes.

The assemblers in :mod:`repro.assembly` are written as genuine distributed
algorithms (hash-partitioned state, explicit collectives) against these
runtimes:

* :mod:`repro.parallel.comm` — an MPI-like SPMD world executed
  deterministically in-process, with full traffic accounting.
* :mod:`repro.parallel.mapreduce` — a multi-round MapReduce engine with
  per-job startup costs (the Hadoop behaviour that dominates Contrail's
  small-cluster TTC in the paper).
* :mod:`repro.parallel.usage` — resource-usage records produced by both.
* :mod:`repro.parallel.costmodel` — converts measured usage into virtual
  seconds on a given machine configuration (calibrated against Table III).
* :mod:`repro.parallel.executor` — pluggable backends (serial, thread
  pool, process pool) that run unit workloads across host cores.
"""

from repro.parallel.comm import SimWorld
from repro.parallel.costmodel import CostModel, MachineConfig
from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkloadExecutor,
    WorkloadOutcome,
    make_executor,
)
from repro.parallel.mapreduce import MapReduceEngine, MRJob, MRJobStats
from repro.parallel.usage import PhaseUsage, ResourceUsage, nbytes

__all__ = [
    "SimWorld",
    "MapReduceEngine",
    "MRJob",
    "MRJobStats",
    "PhaseUsage",
    "ResourceUsage",
    "nbytes",
    "CostModel",
    "MachineConfig",
    "WorkloadExecutor",
    "WorkloadOutcome",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
]
