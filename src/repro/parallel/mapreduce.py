"""A functional MapReduce engine with Hadoop-like cost structure.

Contrail (Schatz et al.) runs DBG assembly as a *sequence of MapReduce
jobs*: graph construction, then repeated path-compression / tip-removal
rounds.  Two properties of that execution model drive the paper's Fig. 3
result (Contrail very slow on few nodes, converging at many):

* each job pays a fixed startup/teardown overhead regardless of size, and
* map/shuffle/reduce are embarrassingly parallel, so adding workers keeps
  helping until the overhead floor dominates.

This engine executes real ``(key, value)`` map/combine/shuffle/sort/reduce
semantics and records per-job statistics that the cost model prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Iterator, Sequence

from repro.obs import get_tracer
from repro.parallel.usage import PhaseUsage, ResourceUsage, nbytes

KV = tuple[Hashable, Any]
Mapper = Callable[[Hashable, Any], Iterable[KV]]
Reducer = Callable[[Hashable, list[Any]], Iterable[KV]]


@dataclass(frozen=True)
class MRJob:
    """One MapReduce job: a mapper, a reducer and an optional combiner.

    The combiner, when given, runs on each mapper's local output groups
    before the shuffle (the standard Hadoop optimization) and must be
    semantically compatible with the reducer.

    ``key_nbytes``, when given, overrides how intermediate keys are
    priced in the shuffle and reducer-memory accounting.  Jobs whose keys
    are a compressed stand-in for a logical record (e.g. packed-integer
    k-mers standing in for k code bytes) pass the logical size here so
    the charged bytes stay identical to shuffling the uncompressed keys.
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Reducer | None = None
    key_nbytes: Callable[[Hashable], int] | None = None


@dataclass
class MRJobStats:
    """Measured statistics of one executed job."""

    name: str
    map_input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    shuffle_bytes: int = 0
    reduce_input_groups: int = 0
    reduce_output_records: int = 0

    @property
    def map_work(self) -> float:
        return float(self.map_input_records + self.map_output_records)

    @property
    def reduce_work(self) -> float:
        return float(self.combine_output_records + self.reduce_output_records)


class MapReduceEngine:
    """Executes jobs over ``n_workers`` simulated workers.

    Work is hash-partitioned: records are split across map tasks, and
    intermediate keys across reduce tasks, exactly as a real cluster would.
    Statistics are accumulated into a :class:`ResourceUsage` with one
    phase per job so downstream pricing can count jobs and shuffles.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.job_stats: list[MRJobStats] = []
        self._usage = ResourceUsage(n_ranks=n_workers)
        self._peak_memory = 0

    @property
    def usage(self) -> ResourceUsage:
        self._usage.peak_rank_memory_bytes = self._peak_memory
        return self._usage

    def run(self, job: MRJob, records: Sequence[KV]) -> list[KV]:
        """Execute one job and return its sorted output records."""
        with get_tracer().span(
            f"mr:{job.name}", category="mapreduce", n_workers=self.n_workers
        ) as sp:
            output = self._run_job(job, records, sp)
        return output

    def _run_job(self, job: MRJob, records: Sequence[KV], sp) -> list[KV]:
        stats = MRJobStats(name=job.name)
        n = self.n_workers

        # Map: records split round-robin over map tasks; each task's output
        # is optionally combined locally before shuffle.
        partitions: list[dict[Hashable, list[Any]]] = [dict() for _ in range(n)]
        map_outputs_per_task: list[dict[Hashable, list[Any]]] = []
        for task in range(n):
            local: dict[Hashable, list[Any]] = {}
            for i in range(task, len(records), n):
                k, v = records[i]
                stats.map_input_records += 1
                for ok, ov in job.mapper(k, v):
                    stats.map_output_records += 1
                    local.setdefault(ok, []).append(ov)
            if job.combiner is not None:
                combined: dict[Hashable, list[Any]] = {}
                for k, vs in local.items():
                    for ck, cv in job.combiner(k, vs):
                        stats.combine_output_records += 1
                        combined.setdefault(ck, []).append(cv)
                local = combined
            else:
                stats.combine_output_records += sum(len(v) for v in local.values())
            map_outputs_per_task.append(local)

        # Shuffle: hash-partition intermediate keys over reduce tasks.
        key_size = job.key_nbytes if job.key_nbytes is not None else nbytes
        for local in map_outputs_per_task:
            for k, vs in local.items():
                dest = hash(k) % n
                stats.shuffle_bytes += key_size(k) + nbytes(vs)
                partitions[dest].setdefault(k, []).extend(vs)

        # Track reducer-side memory: the largest partition must fit.
        # Mirrors nbytes(dict) = sum over items + container overhead, with
        # keys priced through the job's key measure.
        if partitions:
            part_bytes = max(
                sum(key_size(k) + nbytes(vs) for k, vs in p.items()) + 16
                for p in partitions
            )
            self._peak_memory = max(self._peak_memory, part_bytes)

        # Sort + Reduce.
        output: list[KV] = []
        for part in partitions:
            for k in sorted(part.keys(), key=repr):
                stats.reduce_input_groups += 1
                for rk, rv in job.reducer(k, part[k]):
                    stats.reduce_output_records += 1
                    output.append((rk, rv))

        self.job_stats.append(stats)
        sp.set(
            map_input_records=stats.map_input_records,
            map_output_records=stats.map_output_records,
            shuffle_bytes=stats.shuffle_bytes,
            reduce_input_groups=stats.reduce_input_groups,
            reduce_output_records=stats.reduce_output_records,
        )
        get_tracer().count("mr_jobs")
        self._usage.add_phase(
            PhaseUsage(
                name=job.name,
                kind="mr_job",
                critical_compute=(stats.map_work + stats.reduce_work) / n,
                total_compute=stats.map_work + stats.reduce_work,
                comm_bytes=stats.shuffle_bytes,
                n_collectives=1,
                n_jobs=1,
            )
        )
        return output

    def record_job(
        self, stats: MRJobStats, peak_partition_bytes: int = 0
    ) -> None:
        """Account one job whose statistics were *derived* instead of
        executed.

        The count-once fast path (:mod:`repro.assembly.sweep`) can
        reproduce a job's exact measured statistics from a shared
        precomputed k-mer spectrum without streaming a single record
        through the engine.  This entry point books such a job with the
        identical observable footprint of :meth:`run`: the ``mr:<name>``
        span and ``mr_jobs`` counter, the :class:`MRJobStats` entry, the
        reducer-memory peak, and the priced :class:`PhaseUsage`.
        """
        n = self.n_workers
        with get_tracer().span(
            f"mr:{stats.name}", category="mapreduce", n_workers=n
        ) as sp:
            sp.set(
                map_input_records=stats.map_input_records,
                map_output_records=stats.map_output_records,
                shuffle_bytes=stats.shuffle_bytes,
                reduce_input_groups=stats.reduce_input_groups,
                reduce_output_records=stats.reduce_output_records,
            )
        get_tracer().count("mr_jobs")
        self.job_stats.append(stats)
        self._peak_memory = max(self._peak_memory, peak_partition_bytes)
        self._usage.add_phase(
            PhaseUsage(
                name=stats.name,
                kind="mr_job",
                critical_compute=(stats.map_work + stats.reduce_work) / n,
                total_compute=stats.map_work + stats.reduce_work,
                comm_bytes=stats.shuffle_bytes,
                n_collectives=1,
                n_jobs=1,
            )
        )

    def chain(
        self, jobs: Iterable[MRJob], records: Sequence[KV]
    ) -> list[KV]:
        """Run jobs sequentially, feeding each job's output to the next."""
        current = list(records)
        for job in jobs:
            current = self.run(job, current)
        return current
