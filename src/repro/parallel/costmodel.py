"""Convert measured resource usage into virtual seconds.

Tasks execute for real at simulation scale and hand back a
:class:`~repro.parallel.usage.ResourceUsage`; the pipeline extrapolates it
to paper-scale data volumes and prices it here against a machine
configuration.  The model is deliberately simple and physical:

``T = Σ_phase [ critical/(rate·f) + serial/(rate·f) + comm·x/(B·n) +
C·λ·log2(p) + m·λ_msg ] + jobs·overhead``

where ``rate`` is the work-kind throughput of one core, ``f`` the
instance's per-core speed factor, ``x`` the off-node traffic fraction,
``B`` per-node network bandwidth, ``λ`` collective latency, ``λ_msg``
point-to-point message latency, and ``overhead`` the fixed MapReduce job
cost.  The throughput constants are *calibrated once* against the paper's
Table III anchors (see :mod:`repro.bench.calibration`); every other
number in the reproduction is then a prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.parallel.usage import ResourceUsage

#: Default work-kind throughputs, units/second for one reference core.
#: Values are set by the calibration pass in ``repro.bench.calibration``
#: and anchored on Table III; see EXPERIMENTS.md.
DEFAULT_RATES: dict[str, float] = {
    "generic": 2.0e6,
    "kmer": 1.2e6,       # k-mer extraction/counting (units: k-mer records)
    "graph": 8.0e5,      # DBG node/edge operations
    "walk": 5.0e5,       # contig walking / extension steps
    "mr_job": 1.0e5,     # MapReduce record processing (JVM-handicapped)
    "preprocess": 3.0e6, # read QC operations (units: bases)
    "merge": 1.0e6,      # overlap merge operations
    "quantify": 2.0e6,   # pseudoalignment operations
    "io": 2.0e8,         # local/disk streaming, bytes/s
}


@dataclass(frozen=True)
class MachineConfig:
    """The resources a task runs on (one SGE job / pilot slice)."""

    n_nodes: int
    cores_per_node: int = 8
    compute_factor: float = 1.0       # per-core speed vs the reference core
    network_bandwidth: float = 125e6  # bytes/s per node (1 Gb/s-class)
    io_bandwidth: float = 2e8         # bytes/s aggregate streaming

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.cores_per_node < 1:
            raise ValueError("nodes and cores must be >= 1")
        if self.compute_factor <= 0 or self.network_bandwidth <= 0:
            raise ValueError("speed factors must be positive")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node


@dataclass(frozen=True)
class CostModel:
    """Prices usage records on machines; see module docstring."""

    rates: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_RATES))
    mr_job_overhead: float = 65.0     # seconds per MapReduce job (Hadoop startup)
    collective_latency: float = 2e-3  # seconds per collective hop
    message_latency: float = 2e-6     # seconds per point-to-point MPI message

    def with_rates(self, **overrides: float) -> "CostModel":
        merged = dict(self.rates)
        merged.update(overrides)
        return replace(self, rates=merged)

    def rate(self, kind: str) -> float:
        try:
            return self.rates[kind]
        except KeyError:
            return self.rates["generic"]

    def task_seconds(self, usage: ResourceUsage, machine: MachineConfig) -> float:
        """Virtual execution time of ``usage`` on ``machine``.

        The usage record was measured with ``usage.n_ranks`` ranks; those
        ranks are assumed spread evenly over the machine's nodes, one per
        core when possible.
        """
        p = max(usage.n_ranks, 1)
        n = machine.n_nodes
        off_node_fraction = (n - 1) / n if n > 1 else 0.0

        total = 0.0
        for phase in usage.phases:
            core_rate = self.rate(phase.kind) * machine.compute_factor
            # If more ranks than cores, ranks time-share cores.
            oversub = max(1.0, p / machine.total_cores)
            total += phase.critical_compute * oversub / core_rate
            total += phase.serial_compute / core_rate
            if phase.comm_bytes:
                total += (
                    phase.comm_bytes * off_node_fraction
                    / (machine.network_bandwidth * n)
                )
            if phase.n_collectives:
                total += (
                    phase.n_collectives
                    * self.collective_latency
                    * max(1.0, math.log2(p))
                )
            if phase.n_messages:
                total += phase.n_messages * self.message_latency
            if phase.n_jobs:
                total += phase.n_jobs * self.mr_job_overhead
        return total

    def io_seconds(self, n_bytes: int, machine: MachineConfig) -> float:
        """Streaming time for reading/writing ``n_bytes``."""
        return n_bytes / (machine.io_bandwidth * machine.n_nodes)

    def transfer_seconds(self, n_bytes: int, bandwidth: float) -> float:
        """Bulk data transfer over a link of ``bandwidth`` bytes/s."""
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        return n_bytes / bandwidth


def fits_in_memory(
    usage: ResourceUsage,
    node_memory_bytes: int,
    cores_per_node: int,
) -> bool:
    """Whether the most loaded rank's peers fit on one node.

    Ranks are packed one per core; a node therefore hosts up to
    ``cores_per_node`` ranks, and in the worst case each needs the peak
    rank footprint.
    """
    ranks_per_node = min(max(usage.n_ranks, 1), cores_per_node)
    return usage.peak_rank_memory_bytes * ranks_per_node <= node_memory_bytes
