"""Resource-usage records.

Every distributed task in this code base executes *real* computation on
simulation-scale data while recording what it did: work units on the
critical path, bytes moved through collectives, latency-bound message
counts, serial (single-rank) work, and MapReduce job/round structure.
The cost model (:mod:`repro.parallel.costmodel`) later converts a usage
record into virtual seconds for a given machine configuration; scaling a
record by ``1/scale`` extrapolates simulation-scale measurements to the
paper-scale data volumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

import numpy as np

from repro.obs import get_tracer


def nbytes(obj) -> int:
    """Approximate serialized size of a message payload in bytes."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        # Serialized size is the UTF-8 encoding, not the code-point count
        # (len(str) under-charges any non-ASCII payload).
        return len(obj.encode("utf-8"))
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, dict):
        return sum(nbytes(k) + nbytes(v) for k, v in obj.items()) + 16
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(nbytes(x) for x in obj) + 16
    # dataclasses / misc objects: shallow dict walk
    if hasattr(obj, "__dict__"):
        return nbytes(vars(obj)) + 16
    return 64


@dataclass(frozen=True)
class PhaseUsage:
    """Measured usage of one phase of a distributed computation.

    ``kind`` selects the compute-rate constant in the cost model (e.g.
    ``"kmer"``, ``"graph"``, ``"mr_map"``).  ``critical_compute`` is the
    maximum per-rank work; ``total_compute`` the sum over ranks;
    ``serial_compute`` is work done on a single rank while others idle.
    """

    name: str
    kind: str = "generic"
    critical_compute: float = 0.0
    total_compute: float = 0.0
    serial_compute: float = 0.0
    comm_bytes: int = 0
    n_collectives: int = 0
    n_messages: int = 0
    n_jobs: int = 0  # MapReduce jobs launched in this phase

    def scaled(self, factor: float) -> "PhaseUsage":
        """Scale data-proportional quantities by ``factor``.

        Collective/job *counts* are structural (round counts do not grow
        with data volume for these algorithms) and are left unscaled.
        """
        return replace(
            self,
            critical_compute=self.critical_compute * factor,
            total_compute=self.total_compute * factor,
            serial_compute=self.serial_compute * factor,
            comm_bytes=int(self.comm_bytes * factor),
            n_messages=int(self.n_messages * factor),
        )


@dataclass
class ResourceUsage:
    """Aggregate usage of a task: phases plus peak memory.

    ``peak_rank_memory_bytes`` is the peak memory of the most loaded rank
    at the *measured* scale; ``scaled`` extrapolates it together with the
    phase quantities.
    """

    phases: list[PhaseUsage] = field(default_factory=list)
    peak_rank_memory_bytes: int = 0
    n_ranks: int = 1

    def add_phase(self, phase: PhaseUsage) -> None:
        """Append one measured phase (the seam every assembler, MR engine
        and collective reports through — the tracer taps it here)."""
        self.phases.append(phase)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "phase",
                category="phase",
                phase=phase.name,
                kind=phase.kind,
                critical_compute=phase.critical_compute,
                total_compute=phase.total_compute,
                serial_compute=phase.serial_compute,
                comm_bytes=phase.comm_bytes,
                n_messages=phase.n_messages,
                n_jobs=phase.n_jobs,
            )

    def merge(self, other: "ResourceUsage") -> "ResourceUsage":
        """Sequential composition: phases concatenate, memory takes the max."""
        return ResourceUsage(
            phases=self.phases + other.phases,
            peak_rank_memory_bytes=max(
                self.peak_rank_memory_bytes, other.peak_rank_memory_bytes
            ),
            n_ranks=max(self.n_ranks, other.n_ranks),
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return ResourceUsage(
            phases=[p.scaled(factor) for p in self.phases],
            peak_rank_memory_bytes=int(self.peak_rank_memory_bytes * factor),
            n_ranks=self.n_ranks,
        )

    def scaled_by(
        self,
        phase_factor,
        memory_factor: float | None = None,
    ) -> "ResourceUsage":
        """Scale each phase by ``phase_factor(phase)`` — used when
        different phases extrapolate differently (read-bound vs
        graph-bound work).  ``memory_factor`` defaults to the maximum
        phase factor (memory holds the largest structure)."""
        factors = [(p, float(phase_factor(p))) for p in self.phases]
        if any(f <= 0 for _, f in factors):
            raise ValueError("scale factors must be positive")
        if memory_factor is None:
            memory_factor = max((f for _, f in factors), default=1.0)
        return ResourceUsage(
            phases=[p.scaled(f) for p, f in factors],
            peak_rank_memory_bytes=int(
                self.peak_rank_memory_bytes * memory_factor
            ),
            n_ranks=self.n_ranks,
        )

    # -- aggregate views ----------------------------------------------------

    @property
    def total_compute(self) -> float:
        return sum(p.total_compute for p in self.phases)

    @property
    def critical_compute(self) -> float:
        return sum(p.critical_compute for p in self.phases)

    @property
    def serial_compute(self) -> float:
        return sum(p.serial_compute for p in self.phases)

    @property
    def comm_bytes(self) -> int:
        return sum(p.comm_bytes for p in self.phases)

    @property
    def n_collectives(self) -> int:
        return sum(p.n_collectives for p in self.phases)

    @property
    def n_messages(self) -> int:
        return sum(p.n_messages for p in self.phases)

    @property
    def n_jobs(self) -> int:
        return sum(p.n_jobs for p in self.phases)

    def by_kind(self) -> dict[str, float]:
        """Critical-path compute grouped by work kind."""
        out: dict[str, float] = {}
        for p in self.phases:
            out[p.kind] = out.get(p.kind, 0.0) + p.critical_compute
        return out


def merge_all(usages: Iterable[ResourceUsage]) -> ResourceUsage:
    """Sequentially compose many usage records."""
    result = ResourceUsage()
    for u in usages:
        result = result.merge(u)
    return result
