"""Pluggable workload-execution backends for the pilot agent.

The pilot agent separates *what a unit costs on the virtual clock* (the
cost model, run against the measured usage) from *running the real
Python workload that produces that usage*.  The executors here own the
second half: a workload is dispatched with :meth:`WorkloadExecutor.submit`
and its outcome is collected later through the returned
:class:`WorkloadHandle` — which is what lets a multi-k, multi-assembler
fan-out occupy every host core instead of serializing on one.

Three backends:

* :class:`SerialExecutor` — runs the workload inline at submit time.
  This is the historical behaviour and the default: fully deterministic,
  no pools, no pickling requirements.
* :class:`ThreadExecutor` — a ``ThreadPoolExecutor``.  Accepts any
  callable (closures included); real speedup only where workloads
  release the GIL (I/O, sleeping, native extensions).
* :class:`ProcessExecutor` — a ``ProcessPoolExecutor``.  True CPU
  parallelism for pure-Python workloads, but the workload callable and
  its results must be picklable (see
  :class:`repro.core.multikmer.AssemblyWorkload`).

All backends report the workload's *real* wall-clock seconds in the
outcome, so the host-side speedup is observable alongside the — by
construction backend-independent — virtual TTCs.

Tracing crosses the executor boundary via span-context propagation:
``submit`` accepts an optional picklable
:class:`~repro.obs.context.SpanContext`.  The serial backend ignores it
(inline execution records straight into the ambient tracer); the pool
backends ship it with the workload, ``run_workload`` installs a
thread-local :class:`~repro.obs.context.BufferingTracer` around the
workload body, and the buffered spans/events/metric deltas — plus
RSS/CPU resource samples — come back in
:attr:`WorkloadOutcome.worker_trace` for the collect path to merge.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import get_tracer, set_thread_tracer
from repro.obs.context import BufferingTracer, SpanContext, WorkerTrace
from repro.parallel.usage import ResourceUsage

#: A unit workload: a callable returning (result, measured usage).
#: (Mirrors repro.pilot.description.Workload; redeclared here to keep the
#: parallel layer below the pilot layer.)
Workload = Callable[[], tuple[Any, ResourceUsage]]


class ExecutorError(RuntimeError):
    pass


@dataclass
class WorkloadOutcome:
    """What one workload execution produced.

    ``wall_seconds`` is real host time spent inside the workload — not
    virtual time; the cost model still prices virtual duration from the
    usage record.  ``worker_trace`` carries the workload's buffered
    spans/events/metrics when a span context was propagated (pool
    backends with tracing enabled); ``None`` otherwise.
    """

    result: Any = None
    usage: ResourceUsage | None = None
    wall_seconds: float = 0.0
    error: BaseException | None = None
    worker_trace: WorkerTrace | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _init_worker() -> None:
    """Process-pool worker initializer.

    Forked workers inherit the parent's entire heap; moving it to the
    permanent generation (``gc.freeze``) keeps worker-side garbage
    collections from rescanning millions of inherited objects (and from
    dirtying their copy-on-write pages) on every gen-2 pass.  Workers
    are workload runners, not long-lived accumulators — nothing they
    inherit ever becomes garbage they need to reclaim.
    """
    import gc

    gc.freeze()


@dataclass(frozen=True)
class ReplayWorkload:
    """A checkpointed outcome standing in for the real computation.

    Resume-from-checkpoint must be *trace-transparent*: a replayed unit
    travels the identical dispatch path (executor submit, pickle
    measurement, pool round-trip) so the resumed run's trace has the
    same structure as an uninterrupted one.  Only the workload body is
    substituted: :func:`run_workload` short-circuits to the stored
    outcome — including the original worker trace, whose spans and
    events are re-merged parent-side exactly like a live run's.
    """

    result: Any
    usage: ResourceUsage | None
    wall_seconds: float = 0.0
    worker_trace: WorkerTrace | None = None

    def __call__(self) -> tuple[Any, ResourceUsage | None]:
        return self.result, self.usage


@dataclass(frozen=True)
class DelayedWorkload:
    """Chaos wrapper: sleep ``delay_seconds`` of *real* time, then run.

    The straggler drill for the live-telemetry layer: the wrapped unit
    takes longer on the host clock — so heartbeats see it run past its
    peers — while every virtual quantity (the usage record the cost
    model prices) is untouched, preserving TTC/dollar parity.
    Picklable, so it crosses the process backend like any workload.
    """

    work: Workload
    delay_seconds: float

    def __call__(self) -> tuple[Any, ResourceUsage]:
        time.sleep(self.delay_seconds)
        return self.work()


def run_workload(
    work: Workload, context: SpanContext | None = None
) -> tuple[Any, ResourceUsage, float, WorkerTrace | None]:
    """Execute ``work`` and time it.

    Module-level so the process backend can ship it to a worker.  With a
    ``context``, the workload runs under a thread-locally installed
    :class:`BufferingTracer` — in-workload instrumentation lands in its
    buffers instead of vanishing with the worker — and the buffered
    trace is the fourth element of the returned tuple.
    """
    if isinstance(work, ReplayWorkload):
        return work.result, work.usage, work.wall_seconds, work.worker_trace
    if context is None:
        t0 = time.perf_counter()
        result, usage = work()
        return result, usage, time.perf_counter() - t0, None
    buffer = BufferingTracer(cadence=context.resource_cadence)
    previous = set_thread_tracer(buffer)
    try:
        buffer.count("worker_workloads")
        with buffer.span("workload", category="worker", pid=buffer.pid):
            t0 = time.perf_counter()
            result, usage = work()
            wall = time.perf_counter() - t0
    finally:
        set_thread_tracer(previous)
        buffer.close()
    return result, usage, wall, buffer.to_worker_trace()


class WorkloadHandle(ABC):
    """A dispatched workload; :meth:`outcome` blocks until it finishes."""

    @abstractmethod
    def outcome(self) -> WorkloadOutcome:
        """Wait for the workload and return its outcome (never raises
        for workload errors — they come back in ``outcome.error``)."""


class _ReadyHandle(WorkloadHandle):
    """An already-finished workload (serial backend, dispatch errors)."""

    def __init__(self, outcome: WorkloadOutcome) -> None:
        self._outcome = outcome

    def outcome(self) -> WorkloadOutcome:
        return self._outcome


class _FutureHandle(WorkloadHandle):
    """A workload pending on a concurrent.futures pool."""

    def __init__(self, future: Future) -> None:
        self._future = future

    def outcome(self) -> WorkloadOutcome:
        try:
            result, usage, wall, worker_trace = self._future.result()
        except Exception as exc:
            return WorkloadOutcome(error=exc)
        return WorkloadOutcome(
            result=result,
            usage=usage,
            wall_seconds=wall,
            worker_trace=worker_trace,
        )


class WorkloadExecutor(ABC):
    """Dispatches unit workloads; see the module docstring for backends."""

    #: Backend name, as accepted by :func:`make_executor`.
    name: str = "?"

    #: Whether ``submit`` returns before the workload runs, so separately
    #: submitted workloads genuinely execute concurrently.  Cross-stage
    #: pipeline overlap (prefetching the next dataset's pre-processing
    #: while an assembly fan-out is in flight) and the sharded host-side
    #: spectrum build (:func:`repro.assembly.sweep.submit_spectra_build`,
    #: overlapped with cluster provisioning) are only attempted on
    #: backends where this holds — the serial backend runs workloads
    #: inline at submit time, so "overlap" there would just reorder work.
    supports_overlap: bool = False

    @abstractmethod
    def submit(
        self, work: Workload, context: SpanContext | None = None
    ) -> WorkloadHandle:
        """Dispatch ``work``; never raises for workload errors.

        ``context`` requests worker-side tracing (see module docstring);
        backends that execute inline may ignore it."""

    def inflight_count(self) -> int:
        """Workloads submitted but not yet finished.  Inline backends
        are never in flight between calls; pool backends count live
        futures — what the heartbeat monitor stamps on its beats."""
        return 0

    def shutdown(self) -> None:
        """Release pool resources (idempotent; no-op for serial)."""

    def __enter__(self) -> "WorkloadExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class SerialExecutor(WorkloadExecutor):
    """Runs each workload inline at submit time (historical behaviour)."""

    name = "serial"

    def __init__(self, max_workers: int | None = None) -> None:
        # max_workers accepted (and ignored) for factory uniformity.
        self.max_workers = 1

    def submit(
        self, work: Workload, context: SpanContext | None = None
    ) -> WorkloadHandle:
        # context is ignored deliberately: inline execution records
        # straight into the ambient tracer, already on the right stack.
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("executor.dispatch", category="executor", backend=self.name)
        try:
            # The worker trace is always None for live inline runs (no
            # context, no buffering) but carries the original's buffered
            # records when replaying a checkpointed pool-backend outcome.
            result, usage, wall, worker_trace = run_workload(work)
        except Exception as exc:
            return _ReadyHandle(WorkloadOutcome(error=exc))
        return _ReadyHandle(
            WorkloadOutcome(
                result=result,
                usage=usage,
                wall_seconds=wall,
                worker_trace=worker_trace,
            )
        )


class _PoolExecutor(WorkloadExecutor):
    """Shared plumbing for the concurrent.futures-backed backends.

    The pool is created lazily on first submit so that merely
    constructing a manager with a parallel backend costs nothing.
    """

    supports_overlap = True

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or self._default_workers()
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    @staticmethod
    def _default_workers() -> int:
        return os.cpu_count() or 1

    def _make_pool(self):
        raise NotImplementedError

    def inflight_count(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def _workload_done(self, _future: Future) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def submit(
        self, work: Workload, context: SpanContext | None = None
    ) -> WorkloadHandle:
        if self._pool is None:
            self._pool = self._make_pool()
        try:
            future = self._pool.submit(run_workload, work, context)
        except Exception as exc:  # pool broken / shut down
            return _ReadyHandle(WorkloadOutcome(error=exc))
        with self._inflight_lock:
            self._inflight += 1
        future.add_done_callback(self._workload_done)
        return _FutureHandle(future)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadExecutor(_PoolExecutor):
    """ThreadPoolExecutor backend: any callable, GIL-bound for pure CPU."""

    name = "thread"

    @staticmethod
    def _default_workers() -> int:
        # Threads suit GIL-releasing (I/O-shaped) workloads, which can be
        # oversubscribed well past the core count — same default policy
        # as concurrent.futures.ThreadPoolExecutor.
        return min(32, (os.cpu_count() or 1) + 4)

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-exec"
        )


class ProcessExecutor(_PoolExecutor):
    """ProcessPoolExecutor backend: true CPU parallelism, needs pickling.

    Prefers the ``fork`` start method where available so workers inherit
    the parent's hash seed and module state — keeping set/dict-free
    deterministic workloads bit-identical to the serial backend.
    """

    name = "process"

    def submit(
        self, work: Workload, context: SpanContext | None = None
    ) -> WorkloadHandle:
        tracer = get_tracer()
        if tracer.enabled:
            # What crosses the process boundary is the pickled workload;
            # encode-once workloads must stay O(1) here regardless of
            # read count (the ReadStore pickles to a shm handle).
            try:
                pickled_bytes = len(
                    pickle.dumps(work, protocol=pickle.HIGHEST_PROTOCOL)
                )
            except Exception:
                pickled_bytes = None
            tracer.event(
                "executor.submit_pickle",
                category="executor",
                backend=self.name,
                nbytes=-1 if pickled_bytes is None else pickled_bytes,
            )
            # A failed pickle has no size: emit only the failure event
            # above, never a sentinel observation that would poison the
            # histogram's percentiles.
            if pickled_bytes is not None:
                tracer.observe("workload_pickle_bytes", float(pickled_bytes))
        return super().submit(work, context)

    def _make_pool(self) -> ProcessPoolExecutor:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        return ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=ctx,
            initializer=_init_worker,
        )


#: Registry of backend names -> classes (used by make_executor and docs).
EXECUTOR_BACKENDS: dict[str, type[WorkloadExecutor]] = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def make_executor(
    spec: "str | WorkloadExecutor", max_workers: int | None = None
) -> WorkloadExecutor:
    """Resolve an executor spec: a backend name or an existing instance.

    Passing an instance returns it unchanged (the caller keeps ownership
    of its lifecycle); passing a name constructs a fresh backend.
    """
    if isinstance(spec, WorkloadExecutor):
        return spec
    try:
        cls = EXECUTOR_BACKENDS[spec]
    except (KeyError, TypeError):
        raise ExecutorError(
            f"unknown executor {spec!r}; expected one of "
            f"{sorted(EXECUTOR_BACKENDS)} or a WorkloadExecutor instance"
        ) from None
    return cls(max_workers=max_workers)
