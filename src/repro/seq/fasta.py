"""Minimal FASTA reader/writer.

Records hold sequences as strings; conversion to code arrays is done at the
point of use (``repro.seq.alphabet.encode``).  Both file-path and file-like
inputs are accepted.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, TextIO


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: ``>id description`` header plus sequence."""

    id: str
    seq: str
    description: str = ""

    def __len__(self) -> int:
        return len(self.seq)

    @property
    def header(self) -> str:
        return f"{self.id} {self.description}".rstrip()


def _open_maybe(path_or_handle, mode: str) -> tuple[TextIO, bool]:
    if isinstance(path_or_handle, (str, Path)):
        return open(path_or_handle, mode), True
    return path_or_handle, False


def parse_fasta(handle: TextIO) -> Iterator[FastaRecord]:
    """Yield records from an open FASTA handle."""
    header: str | None = None
    chunks: list[str] = []
    for line in handle:
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                yield _make_record(header, chunks)
            header = line[1:]
            chunks = []
        else:
            if header is None:
                raise ValueError("FASTA sequence data before first header")
            chunks.append(line.strip())
    if header is not None:
        yield _make_record(header, chunks)


def _make_record(header: str, chunks: list[str]) -> FastaRecord:
    parts = header.split(None, 1)
    rec_id = parts[0] if parts else ""
    desc = parts[1] if len(parts) > 1 else ""
    return FastaRecord(id=rec_id, seq="".join(chunks).upper(), description=desc)


def read_fasta(path_or_handle) -> list[FastaRecord]:
    """Read all records from a FASTA file or handle."""
    handle, owned = _open_maybe(path_or_handle, "r")
    try:
        return list(parse_fasta(handle))
    finally:
        if owned:
            handle.close()


def write_fasta(
    records: Iterable[FastaRecord],
    path_or_handle,
    width: int = 70,
) -> int:
    """Write records; returns the number written.  ``width=0`` disables wrapping."""
    handle, owned = _open_maybe(path_or_handle, "w")
    n = 0
    try:
        for rec in records:
            handle.write(f">{rec.header}\n")
            if width and width > 0:
                for i in range(0, len(rec.seq), width):
                    handle.write(rec.seq[i : i + width] + "\n")
                if not rec.seq:
                    handle.write("\n")
            else:
                handle.write(rec.seq + "\n")
            n += 1
    finally:
        if owned:
            handle.close()
    return n


def fasta_string(records: Iterable[FastaRecord], width: int = 70) -> str:
    """Render records to a FASTA-formatted string."""
    buf = io.StringIO()
    write_fasta(records, buf, width=width)
    return buf.getvalue()
