"""Minimal FASTQ reader/writer with Phred+33 quality handling.

The read simulator produces ``FastqRecord`` lists directly; file round-trips
exist so examples can persist data sets and so the pipeline's staging steps
have real bytes to move.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

import numpy as np

PHRED_OFFSET = 33
MAX_PHRED = 60


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ record.  ``qual`` is the Phred+33 ASCII string."""

    id: str
    seq: str
    qual: str

    def __post_init__(self) -> None:
        if len(self.seq) != len(self.qual):
            raise ValueError(
                f"sequence/quality length mismatch for {self.id}: "
                f"{len(self.seq)} != {len(self.qual)}"
            )

    def __len__(self) -> int:
        return len(self.seq)

    def phred(self) -> np.ndarray:
        """Quality scores as an integer array."""
        return (
            np.frombuffer(self.qual.encode("ascii"), dtype=np.uint8).astype(np.int16)
            - PHRED_OFFSET
        )


def phred_to_ascii(scores: np.ndarray) -> str:
    """Encode integer Phred scores as a Phred+33 string (clipped to 0..60)."""
    clipped = np.clip(np.asarray(scores, dtype=np.int16), 0, MAX_PHRED)
    return (clipped + PHRED_OFFSET).astype(np.uint8).tobytes().decode("ascii")


def _open_maybe(path_or_handle, mode: str) -> tuple[TextIO, bool]:
    if isinstance(path_or_handle, (str, Path)):
        return open(path_or_handle, mode), True
    return path_or_handle, False


def parse_fastq(handle: TextIO) -> Iterator[FastqRecord]:
    """Yield records from an open FASTQ handle.

    Raises ValueError on structural corruption (bad separators, truncation).
    """
    while True:
        header = handle.readline()
        if not header:
            return
        header = header.rstrip("\n")
        if not header:
            continue
        if not header.startswith("@"):
            raise ValueError(f"expected '@' header, got {header[:30]!r}")
        seq = handle.readline().rstrip("\n")
        sep = handle.readline().rstrip("\n")
        qual = handle.readline().rstrip("\n")
        if not sep.startswith("+"):
            raise ValueError(f"expected '+' separator for {header[:30]!r}")
        if len(qual) != len(seq):
            raise ValueError(f"truncated record {header[:30]!r}")
        yield FastqRecord(id=header[1:].split()[0], seq=seq.upper(), qual=qual)


def read_fastq(path_or_handle) -> list[FastqRecord]:
    """Read all records from a FASTQ file or handle."""
    handle, owned = _open_maybe(path_or_handle, "r")
    try:
        return list(parse_fastq(handle))
    finally:
        if owned:
            handle.close()


def write_fastq(records: Iterable[FastqRecord], path_or_handle) -> int:
    """Write records; returns the number written."""
    handle, owned = _open_maybe(path_or_handle, "w")
    n = 0
    try:
        for rec in records:
            handle.write(f"@{rec.id}\n{rec.seq}\n+\n{rec.qual}\n")
            n += 1
    finally:
        if owned:
            handle.close()
    return n


def fastq_string(records: Iterable[FastqRecord]) -> str:
    """Render records to a FASTQ-formatted string."""
    buf = io.StringIO()
    write_fastq(records, buf)
    return buf.getvalue()


def fastq_bytes_estimate(n_reads: int, read_length: int, paired: bool = False) -> int:
    """Approximate on-disk FASTQ size in bytes.

    Per record: header (~30 B), sequence, '+' line, quality, newlines.
    Used by the staging/transfer cost model to reason about *unscaled*
    data volumes without materializing them.
    """
    per_record = 30 + read_length + 2 + read_length + 4
    total_reads = n_reads * (2 if paired else 1)
    return per_record * total_reads
