"""RNA-seq read simulation.

Produces Illumina-like reads from a :class:`~repro.seq.transcriptome.Transcriptome`:

* single-end or paired-end, fixed read length (50 bp GAII-style or 100 bp
  HiSeq-style in the paper's two data sets),
* substitution errors with a 3'-increasing error ramp and matching Phred
  qualities,
* uncalled bases (``N``) — these are what force Contrail to receive
  *pre-processed* input in the paper's Fig. 3 experiment,
* adapter read-through for fragments shorter than the read length,
* PCR duplicates.

Every read records its provenance (transcript, offset, strand) so tests can
assert assembler correctness against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.seq import alphabet
from repro.seq.alphabet import decode, encode
from repro.seq.fastq import FastqRecord, phred_to_ascii
from repro.seq.transcriptome import Transcriptome

#: Canonical Illumina TruSeq-style adapter prefix used for read-through.
ADAPTER = "AGATCGGAAGAGC"


@dataclass(frozen=True)
class ReadSimSpec:
    """Parameters of a simulated sequencing run."""

    read_length: int = 100
    n_reads: int = 10_000
    paired: bool = False
    fragment_mean: int = 250
    fragment_sd: int = 30
    error_rate_start: float = 0.001
    error_rate_end: float = 0.02
    n_rate: float = 0.002
    duplicate_fraction: float = 0.02
    adapter_fraction: float = 0.01
    platform: str = "Illumina HiSeq"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.read_length < 10:
            raise ValueError("read_length must be >= 10")
        if self.n_reads < 0:
            raise ValueError("n_reads must be >= 0")
        if self.paired and self.fragment_mean < self.read_length:
            raise ValueError("paired runs need fragment_mean >= read_length")


@dataclass(frozen=True)
class ReadOrigin:
    """Ground-truth provenance of one fragment.

    The fragment is ``transcript[offset : offset + length]``, reverse
    complemented when ``strand == -1``; read 1 sequences its 5' end.
    """

    transcript_index: int
    offset: int
    length: int
    strand: int


@dataclass
class SequencingRun:
    """The output of a simulated run: reads plus ground truth."""

    spec: ReadSimSpec
    reads: list[FastqRecord]
    mates: list[FastqRecord] = field(default_factory=list)
    origins: list[ReadOrigin] = field(default_factory=list)

    @property
    def n_fragments(self) -> int:
        return len(self.reads)

    @property
    def total_bases(self) -> int:
        return sum(len(r) for r in self.reads) + sum(len(r) for r in self.mates)

    def all_reads(self) -> list[FastqRecord]:
        """Reads and mates interleaved (mates after their read)."""
        if not self.mates:
            return list(self.reads)
        out: list[FastqRecord] = []
        for r1, r2 in zip(self.reads, self.mates):
            out.append(r1)
            out.append(r2)
        return out


class ReadSimulator:
    """Samples fragments from a transcriptome and sequences them with errors."""

    def __init__(self, transcriptome: Transcriptome, spec: ReadSimSpec) -> None:
        if len(transcriptome) == 0:
            raise ValueError("cannot sequence an empty transcriptome")
        self.transcriptome = transcriptome
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)
        self._weights = transcriptome.read_sampling_weights()
        self._adapter_codes = encode(ADAPTER)
        # Per-cycle error probability ramp (3' end is worse, like Illumina),
        # with a sharp dip over the last ~6% of cycles (end-of-run chemistry
        # decay) — the part quality trimming is meant to cut.
        self._cycle_error = np.linspace(
            spec.error_rate_start, spec.error_rate_end, spec.read_length
        )
        tail = max(1, int(round(0.06 * spec.read_length)))
        self._cycle_error[-tail:] *= 5.0
        self._cycle_phred = np.clip(
            (-10.0 * np.log10(np.maximum(self._cycle_error, 1e-6))).astype(np.int16),
            2,
            41,
        )

    def run(self) -> SequencingRun:
        """Simulate the full run described by the spec."""
        spec = self.spec
        rng = self._rng
        n_unique = max(0, spec.n_reads - int(spec.n_reads * spec.duplicate_fraction))

        reads: list[FastqRecord] = []
        mates: list[FastqRecord] = []
        origins: list[ReadOrigin] = []

        t_idx = rng.choice(len(self.transcriptome.transcripts), size=n_unique, p=self._weights)
        for i in range(n_unique):
            origin, r1, r2 = self._sequence_fragment(int(t_idx[i]), i)
            reads.append(r1)
            origins.append(origin)
            if spec.paired:
                assert r2 is not None
                mates.append(r2)

        # PCR duplicates: re-emit existing records with new ids.
        n_dup = spec.n_reads - n_unique
        if n_unique > 0:
            dup_of = rng.integers(0, n_unique, size=n_dup)
            for j, src in enumerate(dup_of):
                src = int(src)
                reads.append(self._redup(reads[src], n_unique + j, "/1" if spec.paired else ""))
                origins.append(origins[src])
                if spec.paired:
                    mates.append(self._redup(mates[src], n_unique + j, "/2"))

        return SequencingRun(spec=spec, reads=reads, mates=mates, origins=origins)

    # -- internals ---------------------------------------------------------

    def _redup(self, rec: FastqRecord, index: int, suffix: str) -> FastqRecord:
        return FastqRecord(id=f"read{index:08d}{suffix}", seq=rec.seq, qual=rec.qual)

    def _sequence_fragment(
        self, t_index: int, index: int
    ) -> tuple[ReadOrigin, FastqRecord, FastqRecord | None]:
        spec = self.spec
        rng = self._rng
        tx = self.transcriptome.transcripts[t_index]
        tlen = len(tx)

        frag_len = int(
            np.clip(rng.normal(spec.fragment_mean, spec.fragment_sd), 30, max(30, tlen))
        )
        frag_len = min(frag_len, tlen)
        offset = int(rng.integers(0, tlen - frag_len + 1))
        strand = 1 if rng.random() < 0.5 else -1

        fragment = tx.codes[offset : offset + frag_len]
        if strand == -1:
            fragment = alphabet.reverse_complement(fragment)

        origin = ReadOrigin(
            transcript_index=t_index, offset=offset, length=frag_len, strand=strand
        )
        r1 = self._read_from(fragment, f"read{index:08d}" + ("/1" if spec.paired else ""))
        r2 = None
        if spec.paired:
            mate_frag = alphabet.reverse_complement(fragment)
            r2 = self._read_from(mate_frag, f"read{index:08d}/2")
        return origin, r1, r2

    def _read_from(self, fragment: np.ndarray, read_id: str) -> FastqRecord:
        """Sequence the first ``read_length`` cycles of a fragment."""
        spec = self.spec
        rng = self._rng
        L = spec.read_length

        if fragment.shape[0] >= L:
            codes = fragment[:L].copy()
        else:
            # Read-through: fragment then adapter then random junk.
            pieces = [fragment, self._adapter_codes]
            need = L - fragment.shape[0] - self._adapter_codes.shape[0]
            if need > 0:
                pieces.append(alphabet.random_dna(need, rng))
            codes = np.concatenate(pieces)[:L].copy()

        # Substitution errors following the per-cycle ramp.
        err_mask = rng.random(L) < self._cycle_error
        if err_mask.any():
            shift = rng.integers(1, 4, size=int(err_mask.sum())).astype(np.uint8)
            originals = codes[err_mask]
            substituted = np.where(originals < 4, (originals + shift) % 4, originals)
            codes[err_mask] = substituted

        # Uncalled bases.
        n_mask = rng.random(L) < spec.n_rate
        codes[n_mask] = alphabet.N

        phred = self._cycle_phred.copy()
        phred[n_mask] = 2
        phred[err_mask] = np.minimum(phred[err_mask], 15)

        return FastqRecord(id=read_id, seq=decode(codes), qual=phred_to_ascii(phred))
