"""Transcriptome models and expression profiles.

A :class:`Transcriptome` is the set of mature mRNA sequences expressed from
a genome, together with per-transcript relative abundances.  Abundances
follow a log-normal profile, the standard empirical model for RNA-seq
expression: a few transcripts dominate the read mass while a long tail is
weakly covered — which is exactly why DETONATE's *weighted* metrics differ
from the unweighted nucleotide-level ones (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.seq.alphabet import decode
from repro.seq.genome import Genome


@dataclass(frozen=True)
class Transcript:
    """One mature mRNA: identifier, sequence codes and relative abundance."""

    transcript_id: str
    codes: np.ndarray  # uint8
    abundance: float  # relative, sums to 1 over a transcriptome

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    @property
    def seq(self) -> str:
        return decode(self.codes)


@dataclass
class Transcriptome:
    """An expressed transcript set with normalized abundances."""

    name: str
    transcripts: list[Transcript] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.transcripts)

    def __iter__(self):
        return iter(self.transcripts)

    @property
    def total_bp(self) -> int:
        return sum(len(t) for t in self.transcripts)

    def abundances(self) -> np.ndarray:
        return np.array([t.abundance for t in self.transcripts], dtype=np.float64)

    def read_sampling_weights(self) -> np.ndarray:
        """Probability that a random read originates from each transcript.

        Proportional to abundance x length (longer transcripts yield more
        fragments at equal molar abundance).
        """
        w = self.abundances() * np.array([len(t) for t in self.transcripts])
        total = w.sum()
        if total <= 0:
            raise ValueError("transcriptome has no read mass")
        return w / total


def expression_profile(
    n: int, rng: np.random.Generator, sigma: float = 1.2
) -> np.ndarray:
    """Log-normal relative abundances for ``n`` transcripts, normalized to 1."""
    if n <= 0:
        return np.zeros(0, dtype=np.float64)
    x = rng.lognormal(mean=0.0, sigma=sigma, size=n)
    return x / x.sum()


def from_genome(
    genome: Genome,
    rng: np.random.Generator,
    expressed_fraction: float = 0.85,
    sigma: float = 1.2,
) -> Transcriptome:
    """Build the expressed transcriptome of a synthetic genome.

    A random subset of genes is expressed (silenced genes model the
    incompleteness of any RNA-seq sample relative to the annotation, one of
    the reasons the paper's ground-truth comparison is approximate).
    """
    if not 0.0 < expressed_fraction <= 1.0:
        raise ValueError("expressed_fraction must be in (0, 1]")
    n_expr = max(1, int(round(len(genome.genes) * expressed_fraction)))
    idx = rng.choice(len(genome.genes), size=n_expr, replace=False)
    idx.sort()
    abundances = expression_profile(n_expr, rng, sigma=sigma)
    transcripts = [
        Transcript(
            transcript_id=genome.genes[g].gene_id.replace("_g", "_t"),
            codes=genome.gene_sequence(genome.genes[g]),
            abundance=float(a),
        )
        for g, a in zip(idx, abundances)
    ]
    return Transcriptome(name=f"{genome.name}_txome", transcripts=transcripts)
