"""Analogs of the paper's two benchmark data sets (Table II).

The real data (B. glumae SRX129586 and the P. crispa set of Gordon et al.
2015) cannot ship, so each data set is described twice:

* **paper scale** — the Table II numbers (genome size, gene count, FASTQ
  bytes, read count/length, pairedness, pre-processing memory).  These feed
  the memory/transfer/cost models so capacity results (Table IV) and TTCs
  reflect the *real* data volumes.
* **simulation scale** — a scaled-down synthetic genome + transcriptome +
  read set with the same qualitative structure (prokaryote 50 bp single-end
  vs fungus 100 bp paired-end, error/N content, operons vs introns).  The
  functional pipeline runs on this; the ``scale`` factor is recorded in the
  outputs and in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.seq import transcriptome as txome_mod
from repro.seq.fastq import fastq_bytes_estimate
from repro.seq.genome import Genome, GenomeSpec, synthesize_genome
from repro.seq.reads import ReadSimSpec, ReadSimulator, SequencingRun
from repro.seq.transcriptome import Transcriptome

GB = 1024**3
MB = 1024**2


@dataclass(frozen=True)
class DatasetSpec:
    """Full description of one benchmark data set (paper scale + generator)."""

    name: str
    organism_type: str  # "bacteria" | "fungus"
    genome_size_bp: int
    n_protein_genes: int
    fastq_bytes: int
    read_length: int
    n_reads: int  # fragments (pairs count once, as in Table II "x 2")
    paired: bool
    platform: str
    preprocess_memory_bytes: int
    preprocessed_bytes: int
    kmer_list: tuple[int, ...]
    # generator knobs
    gc: float = 0.55
    intron_rate: float = 0.0
    operon_fraction: float = 0.0
    expression_sigma: float = 1.2

    @property
    def total_read_records(self) -> int:
        return self.n_reads * (2 if self.paired else 1)


#: *Burkholderia glumae* analog — Table II column 1.
B_GLUMAE = DatasetSpec(
    name="B_glumae",
    organism_type="bacteria",
    genome_size_bp=6_700_000,
    n_protein_genes=5_223,
    fastq_bytes=int(3.8 * GB),
    read_length=50,
    n_reads=16_263_310,
    paired=False,
    platform="Illumina GAII",
    preprocess_memory_bytes=15 * GB,
    preprocessed_bytes=175 * MB,
    kmer_list=(35, 37, 39, 41, 43, 45, 47),
    gc=0.68,  # Burkholderia are GC-rich
    operon_fraction=0.4,
)

#: The §IV.C sample run's data: an unpublished *paired-end* B. glumae set,
#: 4.4 GB total, for which the pipeline needed two k-mer assemblies.
B_GLUMAE_PE = DatasetSpec(
    name="B_glumae_PE",
    organism_type="bacteria",
    genome_size_bp=6_700_000,
    n_protein_genes=5_223,
    fastq_bytes=int(4.4 * GB),
    read_length=100,
    n_reads=8_800_000,
    paired=True,
    platform="Illumina HiSeq",
    preprocess_memory_bytes=7 * GB,
    preprocessed_bytes=400 * MB,
    kmer_list=(51, 55),
    gc=0.68,
    operon_fraction=0.4,
)

#: *Plicaturopsis crispa* analog — Table II column 2.
P_CRISPA = DatasetSpec(
    name="P_crispa",
    organism_type="fungus",
    genome_size_bp=34_500_000,
    n_protein_genes=13_617,
    fastq_bytes=int(26.2 * GB),
    read_length=100,
    n_reads=54_168_576,
    paired=True,
    platform="Illumina HiSeq",
    preprocess_memory_bytes=40 * GB,
    preprocessed_bytes=int(9.4 * GB),
    kmer_list=(51, 55, 59, 63),
    gc=0.52,
    intron_rate=2.5,
)


@dataclass
class Dataset:
    """A generated (simulation-scale) data set plus its paper-scale spec."""

    spec: DatasetSpec
    scale: float
    genome: Genome
    transcriptome: Transcriptome
    run: SequencingRun

    @property
    def sim_fastq_bytes(self) -> int:
        return fastq_bytes_estimate(
            self.run.n_fragments, self.spec.read_length, self.spec.paired
        )

    @property
    def read_scale(self) -> float:
        """Exact simulated/paper read-record ratio.

        Work, traffic and memory measured on the simulated reads are
        extrapolated to paper scale by dividing by this — it accounts for
        ``coverage_boost`` as well as ``scale``.
        """
        return len(self.run.all_reads()) / self.spec.total_read_records

    def paper_scale_bytes(self, sim_bytes: int) -> int:
        """Extrapolate a simulation-scale byte count back to paper scale."""
        return int(sim_bytes / self.scale)


def generate_dataset(
    spec: DatasetSpec,
    scale: float = 0.001,
    seed: int = 0,
    coverage_boost: float = 1.0,
) -> Dataset:
    """Generate a scaled-down analog of ``spec``.

    ``scale`` multiplies genome size, gene count and read count alike, so
    sequencing coverage is preserved.  ``coverage_boost`` multiplies the
    read count only (useful for tiny test fixtures where integer floors
    would otherwise starve coverage).
    """
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")

    n_genes = max(5, int(round(spec.n_protein_genes * scale)))
    genome_size = max(n_genes * 1400, int(round(spec.genome_size_bp * scale)))
    n_reads = max(500, int(round(spec.n_reads * scale * coverage_boost)))

    gspec = GenomeSpec(
        name=spec.name,
        size_bp=genome_size,
        n_genes=n_genes,
        gc=spec.gc,
        intron_rate=spec.intron_rate,
        operon_fraction=spec.operon_fraction,
        seed=seed,
    )
    genome = synthesize_genome(gspec)
    rng = np.random.default_rng(seed + 1)
    txome = txome_mod.from_genome(genome, rng, sigma=spec.expression_sigma)

    rspec = ReadSimSpec(
        read_length=spec.read_length,
        n_reads=n_reads,
        paired=spec.paired,
        fragment_mean=max(220, spec.read_length * 2),
        platform=spec.platform,
        seed=seed + 2,
    )
    run = ReadSimulator(txome, rspec).run()
    return Dataset(spec=spec, scale=scale, genome=genome, transcriptome=txome, run=run)


def tiny_dataset(
    paired: bool = False, seed: int = 0, coverage_boost: float = 1.0
) -> Dataset:
    """A very small fixture data set for unit tests (sub-second to build).

    ``coverage_boost`` multiplies the read count only (~10x transcriptome
    coverage at 1.0) — useful when an example needs deeper assemblies.
    """
    base = P_CRISPA if paired else B_GLUMAE
    spec = replace(
        base,
        name=base.name + "_tiny",
        n_protein_genes=2_000,
        genome_size_bp=2_000_000,
        n_reads=400_000,
    )
    return generate_dataset(
        spec, scale=0.01, seed=seed, coverage_boost=coverage_boost
    )
