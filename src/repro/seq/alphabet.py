"""DNA alphabet utilities.

Sequences are handled in two representations:

* Python ``str`` over ``ACGTN`` — the user-facing form.
* ``numpy.uint8`` code arrays with A=0, C=1, G=2, T=3, N=4 — the internal
  form every hot loop uses.  All converters are vectorized; per-base Python
  loops are reserved for tests.
"""

from __future__ import annotations

import numpy as np

#: Code assigned to each base.  Complement of code ``b < 4`` is ``3 - b``;
#: N (4) is its own complement.
BASES = "ACGTN"
A, C, G, T, N = range(5)

_ENCODE_LUT = np.full(256, N, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    _ENCODE_LUT[ord(_b)] = _i
    _ENCODE_LUT[ord(_b.lower())] = _i

_DECODE_LUT = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8).copy()

_COMPLEMENT_LUT = np.array([T, G, C, A, N], dtype=np.uint8)


def encode(seq: str | bytes) -> np.ndarray:
    """Encode a DNA string into a uint8 code array.

    Unknown characters map to ``N`` (code 4).  Case-insensitive.
    """
    if isinstance(seq, str):
        seq = seq.encode("ascii")
    raw = np.frombuffer(seq, dtype=np.uint8)
    return _ENCODE_LUT[raw]


def decode(codes: np.ndarray) -> str:
    """Decode a uint8 code array back into an ``ACGTN`` string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() > N:
        raise ValueError("code array contains values outside 0..4")
    return _DECODE_LUT[codes].tobytes().decode("ascii")


def complement(codes: np.ndarray) -> np.ndarray:
    """Complement of a code array (vectorized; N maps to N)."""
    return _COMPLEMENT_LUT[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(seq: str | np.ndarray) -> str | np.ndarray:
    """Reverse complement; returns the same representation it was given."""
    if isinstance(seq, str):
        return decode(complement(encode(seq))[::-1])
    return complement(seq)[::-1]


def gc_content(seq: str | np.ndarray) -> float:
    """Fraction of called (non-N) bases that are G or C.

    Returns 0.0 for empty or all-N input.
    """
    codes = encode(seq) if isinstance(seq, str) else np.asarray(seq, dtype=np.uint8)
    called = codes != N
    n_called = int(called.sum())
    if n_called == 0:
        return 0.0
    gc = int(((codes == G) | (codes == C)).sum())
    return gc / n_called


def fraction_n(seq: str | np.ndarray) -> float:
    """Fraction of bases that are N.  Returns 0.0 for empty input."""
    codes = encode(seq) if isinstance(seq, str) else np.asarray(seq, dtype=np.uint8)
    if codes.size == 0:
        return 0.0
    return float((codes == N).mean())


def random_dna(
    length: int,
    rng: np.random.Generator,
    gc: float = 0.5,
) -> np.ndarray:
    """Random DNA code array with the requested expected GC content."""
    if not 0.0 <= gc <= 1.0:
        raise ValueError(f"gc must be in [0, 1], got {gc}")
    p_gc = gc / 2.0
    p_at = (1.0 - gc) / 2.0
    return rng.choice(
        np.array([A, C, G, T], dtype=np.uint8),
        size=length,
        p=[p_at, p_gc, p_gc, p_at],
    ).astype(np.uint8)


def is_valid_codes(codes: np.ndarray) -> bool:
    """True if every element is a legal base code (0..4)."""
    codes = np.asarray(codes)
    return bool(codes.size == 0 or (codes >= 0).all() and (codes <= N).all())
