"""Sequence substrate: DNA alphabet, FASTA/FASTQ I/O, synthetic genomes,
transcriptomes, RNA-seq read simulation and the paper's dataset analogs.

This subpackage stands in for the real sequencing data the paper uses
(B. glumae SRX129586 and the P. crispa data set of Gordon et al. 2015),
which cannot be shipped.  See DESIGN.md section 2 for the substitution
rationale.
"""

from repro.seq.alphabet import (
    decode,
    encode,
    gc_content,
    random_dna,
    reverse_complement,
)
from repro.seq.fasta import FastaRecord, read_fasta, write_fasta
from repro.seq.fastq import FastqRecord, read_fastq, write_fastq
from repro.seq.readstore import ReadStore, ReadStoreHandle
from repro.seq.genome import Gene, Genome, GenomeSpec, synthesize_genome
from repro.seq.transcriptome import Transcript, Transcriptome, expression_profile
from repro.seq.reads import ReadSimulator, ReadSimSpec, SequencingRun
from repro.seq.datasets import DatasetSpec, B_GLUMAE, P_CRISPA, generate_dataset

__all__ = [
    "encode",
    "decode",
    "reverse_complement",
    "gc_content",
    "random_dna",
    "FastaRecord",
    "read_fasta",
    "write_fasta",
    "FastqRecord",
    "read_fastq",
    "write_fastq",
    "ReadStore",
    "ReadStoreHandle",
    "Gene",
    "Genome",
    "GenomeSpec",
    "synthesize_genome",
    "Transcript",
    "Transcriptome",
    "expression_profile",
    "ReadSimulator",
    "ReadSimSpec",
    "SequencingRun",
    "DatasetSpec",
    "B_GLUMAE",
    "P_CRISPA",
    "generate_dataset",
]
