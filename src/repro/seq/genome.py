"""Synthetic genome generation.

The paper's data sets come from two real organisms (Table II):

* *B. glumae* — a bacterium, 6.7 Mb genome, 5,223 protein genes.
* *P. crispa* — a fungus, 34.5 Mb genome, 13,617 protein genes.

We generate structurally analogous genomes: a linear chromosome sequence
with non-overlapping gene loci on both strands.  Prokaryote-style genomes
place intron-less genes densely (optionally grouped into operons);
eukaryote-style genomes insert introns so that the transcript (mature mRNA)
differs from the genomic locus — which matters for assembly difficulty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.seq import alphabet
from repro.seq.alphabet import decode, random_dna


@dataclass(frozen=True)
class Exon:
    """Half-open interval [start, end) in gene-local coordinates."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid exon interval [{self.start}, {self.end})")

    def __len__(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class Gene:
    """A gene locus.

    ``start``/``end`` are genomic, half-open.  ``strand`` is ``+1``/``-1``.
    ``exons`` are in gene-local coordinates (relative to ``start``); an
    intron-less gene has a single exon covering the locus.
    """

    gene_id: str
    start: int
    end: int
    strand: int
    exons: tuple[Exon, ...]
    operon_id: str | None = None

    def __post_init__(self) -> None:
        if self.strand not in (1, -1):
            raise ValueError("strand must be +1 or -1")
        if self.end <= self.start:
            raise ValueError("empty gene locus")
        prev_end = -1
        for ex in self.exons:
            if ex.start <= prev_end:
                raise ValueError("exons must be sorted and non-overlapping")
            prev_end = ex.end
        if self.exons and self.exons[-1].end > self.end - self.start:
            raise ValueError("exon extends past gene locus")

    @property
    def locus_length(self) -> int:
        return self.end - self.start

    @property
    def mrna_length(self) -> int:
        return sum(len(ex) for ex in self.exons)


@dataclass
class Genome:
    """A synthetic genome: one chromosome plus annotated genes."""

    name: str
    sequence: np.ndarray  # uint8 code array
    genes: list[Gene] = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.sequence.shape[0])

    @property
    def size_bp(self) -> int:
        return len(self)

    def gene_sequence(self, gene: Gene) -> np.ndarray:
        """Mature mRNA sequence (exons spliced, strand-corrected) as codes."""
        locus = self.sequence[gene.start : gene.end]
        mrna = np.concatenate([locus[ex.start : ex.end] for ex in gene.exons])
        if gene.strand == -1:
            mrna = alphabet.reverse_complement(mrna)
        return mrna

    def gene_sequence_str(self, gene: Gene) -> str:
        return decode(self.gene_sequence(gene))


@dataclass(frozen=True)
class GenomeSpec:
    """Parameters for :func:`synthesize_genome`."""

    name: str
    size_bp: int
    n_genes: int
    gc: float = 0.55
    mean_gene_length: int = 1000
    min_gene_length: int = 200
    intron_rate: float = 0.0  # expected introns per kb of exon
    mean_intron_length: int = 80
    operon_fraction: float = 0.0  # fraction of genes grouped into operons
    mean_operon_size: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size_bp <= 0 or self.n_genes < 0:
            raise ValueError("size_bp must be positive and n_genes >= 0")
        if self.min_gene_length < 1 or self.mean_gene_length < self.min_gene_length:
            raise ValueError("gene length parameters inconsistent")


def _draw_gene_lengths(spec: GenomeSpec, rng: np.random.Generator) -> np.ndarray:
    """Gamma-distributed mRNA lengths, floored at the minimum."""
    shape = 2.0
    scale = max(spec.mean_gene_length - spec.min_gene_length, 1) / shape
    lengths = spec.min_gene_length + rng.gamma(shape, scale, size=spec.n_genes)
    return lengths.astype(np.int64)


def synthesize_genome(spec: GenomeSpec) -> Genome:
    """Generate a genome matching ``spec``.

    Genes are laid out left to right with random intergenic gaps sized so
    everything fits in ``size_bp``; raises ValueError when the requested
    gene content cannot fit.
    """
    rng = np.random.default_rng(spec.seed)
    mrna_lengths = _draw_gene_lengths(spec, rng)

    # Introns enlarge the genomic locus relative to the mRNA.
    n_introns = rng.poisson(spec.intron_rate * mrna_lengths / 1000.0)
    intron_total = np.zeros(spec.n_genes, dtype=np.int64)
    for i, k in enumerate(n_introns):
        if k > 0:
            intron_total[i] = int(
                rng.gamma(2.0, spec.mean_intron_length / 2.0, size=k).sum()
            )
    locus_lengths = mrna_lengths + intron_total

    total_genic = int(locus_lengths.sum())
    if total_genic >= spec.size_bp:
        raise ValueError(
            f"genes ({total_genic} bp) do not fit in genome ({spec.size_bp} bp)"
        )

    slack = spec.size_bp - total_genic
    # Dirichlet split of the slack into n_genes+1 intergenic gaps.
    if spec.n_genes > 0:
        gaps = rng.dirichlet(np.ones(spec.n_genes + 1)) * slack
        gaps = gaps.astype(np.int64)
    else:
        gaps = np.array([slack], dtype=np.int64)

    sequence = random_dna(spec.size_bp, rng, gc=spec.gc)
    genes: list[Gene] = []

    # Operon assignment: consecutive genes share an operon id and strand.
    operon_ids = _assign_operons(spec, rng)

    pos = int(gaps[0])
    strand = 1
    current_operon: str | None = None
    for i in range(spec.n_genes):
        locus_len = int(locus_lengths[i])
        mrna_len = int(mrna_lengths[i])
        op = operon_ids[i]
        if op is None or op != current_operon:
            strand = 1 if rng.random() < 0.5 else -1
        current_operon = op

        exons = _split_exons(mrna_len, int(n_introns[i]), locus_len, rng)
        genes.append(
            Gene(
                gene_id=f"{spec.name}_g{i:05d}",
                start=pos,
                end=pos + locus_len,
                strand=strand,
                exons=exons,
                operon_id=op,
            )
        )
        pos += locus_len + int(gaps[i + 1])

    return Genome(name=spec.name, sequence=sequence, genes=genes)


def _assign_operons(spec: GenomeSpec, rng: np.random.Generator) -> list[str | None]:
    ids: list[str | None] = [None] * spec.n_genes
    if spec.operon_fraction <= 0 or spec.n_genes == 0:
        return ids
    i = 0
    op_counter = 0
    while i < spec.n_genes:
        if rng.random() < spec.operon_fraction:
            size = max(2, int(rng.poisson(spec.mean_operon_size)))
            op_id = f"{spec.name}_op{op_counter:04d}"
            op_counter += 1
            for j in range(i, min(i + size, spec.n_genes)):
                ids[j] = op_id
            i += size
        else:
            i += 1
    return ids


def _split_exons(
    mrna_len: int, n_introns: int, locus_len: int, rng: np.random.Generator
) -> tuple[Exon, ...]:
    """Split an mRNA of ``mrna_len`` into ``n_introns + 1`` exons placed in a
    locus of ``locus_len`` with the introns between them."""
    n_exons = n_introns + 1
    if n_exons == 1 or mrna_len < 2 * n_exons:
        return (Exon(0, locus_len),) if n_introns == 0 else (Exon(0, mrna_len),)

    # Exon lengths: random positive split of the mRNA.
    cuts = np.sort(rng.choice(np.arange(1, mrna_len), size=n_exons - 1, replace=False))
    exon_lens = np.diff(np.concatenate(([0], cuts, [mrna_len])))

    intron_total = locus_len - mrna_len
    if intron_total < n_introns:  # degenerate; collapse introns
        return (Exon(0, mrna_len),)
    intron_lens = rng.multinomial(
        intron_total - n_introns, np.ones(n_introns) / n_introns
    ) + 1

    exons = []
    pos = 0
    for i, el in enumerate(exon_lens):
        exons.append(Exon(pos, pos + int(el)))
        pos += int(el)
        if i < n_introns:
            pos += int(intron_lens[i])
    return tuple(exons)
