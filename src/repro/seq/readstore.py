"""Encode-once read storage shared across the assembly fan-out.

The multi-k, multi-assembler fan-out runs many compute units over the
*same* pre-processed read set.  Historically every
:class:`~repro.core.multikmer.AssemblyWorkload` carried its own
``tuple[FastqRecord, ...]`` — pickled in full per submit under the
process backend — and every assembler re-ran :func:`repro.seq.alphabet.encode`
over the identical reads for every (assembler, k) pair.

:class:`ReadStore` removes both redundancies.  Reads are encoded exactly
once into flat numpy arrays:

* ``codes`` — every read's base codes followed by a single ``N``
  separator (code 4).  This is exactly the joined form
  :func:`repro.assembly.kmers.canonical_kmers_varlen_packed` builds per
  call, so per-k extraction becomes one windowing pass over the shared
  array with **no** per-call string encoding or concatenation, and the
  resulting k-mer stream is bit-identical to the per-read path (windows
  crossing a separator contain an N and are dropped; reads shorter than
  k contribute no windows).
* ``offsets`` — ``int64`` of length ``n_reads + 1``; read ``i`` occupies
  ``codes[offsets[i] : offsets[i+1] - 1]`` (the ``-1`` skips its
  separator).
* ``quals`` — raw Phred+33 bytes in the same layout (one zero pad byte
  per read), so a single offsets array serves both.
* ``id_bytes`` / ``id_offsets`` — UTF-8 read ids, for full
  ``FastqRecord`` reconstruction through the legacy adapter path.

Locally the arrays are plain process memory.  :meth:`ReadStore.share`
moves them into a :mod:`multiprocessing.shared_memory` segment so
process-pool workers attach zero-copy; pickling a shared store ships
only a tiny :class:`ReadStoreHandle` (O(1) in the read count).  The
``digest`` — a SHA-256 over the encoded arrays — is the store's
content address, used by the assembly cache and for cheap equality.

Lifecycle: the process that built the store owns the segment and must
:meth:`ReadStore.close` it (``unlink`` defaults to "iff owner");
attached stores only detach.  A ``weakref.finalize`` backstop cleans up
stores that are garbage-collected without an explicit close, so no
``/dev/shm`` segment outlives its owner.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterable, Sequence

import numpy as np

from repro.seq import alphabet
from repro.seq.fastq import PHRED_OFFSET, FastqRecord

#: Attached/shared stores by segment name.  Unpickling a handle in the
#: process that owns (or already attached) the segment returns the same
#: live store instead of re-attaching; fork children inherit the entries
#: and therefore the parent's zero-copy views.
_ATTACHED: "weakref.WeakValueDictionary[str, ReadStore]" = (
    weakref.WeakValueDictionary()
)


@dataclass(frozen=True)
class ReadStoreHandle:
    """O(1)-size pickle surrogate for a shared :class:`ReadStore`."""

    shm_name: str
    n_reads: int
    n_code_bytes: int
    n_id_bytes: int
    digest: str


def _attach(handle: ReadStoreHandle) -> "ReadStore":
    """Module-level unpickle hook (bound methods don't pickle portably)."""
    return ReadStore.attach(handle)


def _cleanup_shm(shm: shared_memory.SharedMemory, unlink: bool) -> None:
    try:
        shm.close()
    except BufferError:
        # A numpy view still exports pointers into the mapping (typical
        # at interpreter shutdown, where GC order is arbitrary).  Disarm
        # the SharedMemory destructor so it does not retry the close and
        # print "Exception ignored in __del__"; the OS reclaims the
        # mapping itself at process exit.
        import os

        shm._buf = None
        shm._mmap = None
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:
                pass
            shm._fd = -1
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _unregister_tracker(name: str) -> None:
    """Keep the resource tracker from destroying a segment we only attach.

    Python < 3.13 has no ``SharedMemory(track=False)``: every attach also
    registers the segment with the process's resource tracker, which
    would unlink it when *this* process exits even though the owner is
    still using it.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}" if not name.startswith("/") else name,
                                    "shared_memory")
    except Exception:
        pass


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without resource-tracker registration.

    Register-then-unregister (the pre-3.13 workaround above) is racy
    when fork-pool workers share the parent's tracker: the tracker's
    per-type cache is a *set*, so interleaved attach pairs from two
    workers collapse into one entry and the surplus unregister — or the
    owner's eventual unlink — dies with a ``KeyError`` inside the
    tracker process.  Suppressing the registration instead keeps the
    owner's create/unlink pair the only bookkeeping the tracker ever
    sees, however many processes attach and whenever they forked.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except Exception:
        shm = shared_memory.SharedMemory(name=name)
        _unregister_tracker(shm.name)
        return shm


def _layout_views(
    buf, n_reads: int, n_code_bytes: int, n_id_bytes: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The five arrays over one flat buffer.

    int64 sections lead so their 8-byte alignment holds at offset 0.
    Returns (offsets, id_offsets, codes, quals, id_bytes).
    """
    off = 0
    offsets = np.frombuffer(buf, dtype=np.int64, count=n_reads + 1, offset=off)
    off += offsets.nbytes
    id_offsets = np.frombuffer(buf, dtype=np.int64, count=n_reads + 1, offset=off)
    off += id_offsets.nbytes
    codes = np.frombuffer(buf, dtype=np.uint8, count=n_code_bytes, offset=off)
    off += n_code_bytes
    quals = np.frombuffer(buf, dtype=np.uint8, count=n_code_bytes, offset=off)
    off += n_code_bytes
    id_bytes = np.frombuffer(buf, dtype=np.uint8, count=n_id_bytes, offset=off)
    return offsets, id_offsets, codes, quals, id_bytes


class ReadStore:
    """Reads encoded once into flat arrays; shareable across processes."""

    def __init__(
        self,
        codes: np.ndarray,
        quals: np.ndarray,
        offsets: np.ndarray,
        id_bytes: np.ndarray,
        id_offsets: np.ndarray,
        digest: str | None = None,
        shm: shared_memory.SharedMemory | None = None,
        owns_shm: bool = False,
    ) -> None:
        self._codes = codes
        self._quals = quals
        self._offsets = offsets
        self._id_bytes = id_bytes
        self._id_offsets = id_offsets
        self.n_reads = int(offsets.shape[0]) - 1
        self._digest = digest
        self._shm = shm
        self._owns_shm = owns_shm
        self._finalizer: weakref.finalize | None = None
        if shm is not None:
            self._finalizer = weakref.finalize(self, _cleanup_shm, shm, owns_shm)
        if digest is None:
            self._digest = self._compute_digest()

    # -- construction -------------------------------------------------------

    @classmethod
    def from_reads(cls, reads: Iterable[FastqRecord]) -> "ReadStore":
        """Encode records exactly once into the flat separator layout."""
        reads = list(reads)
        n = len(reads)
        lengths = np.fromiter(
            (len(r.seq) for r in reads), dtype=np.int64, count=n
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths + 1, out=offsets[1:])
        total = int(offsets[-1])
        codes = np.full(total, alphabet.N, dtype=np.uint8)
        quals = np.zeros(total, dtype=np.uint8)
        if n:
            encoded = alphabet.encode("".join(r.seq for r in reads))
            qual_raw = np.frombuffer(
                "".join(r.qual for r in reads).encode("ascii"), dtype=np.uint8
            )
            dest = np.arange(encoded.size, dtype=np.int64) + np.repeat(
                np.arange(n, dtype=np.int64), lengths
            )
            codes[dest] = encoded
            quals[dest] = qual_raw

        id_chunks = [r.id.encode("utf-8") for r in reads]
        id_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.fromiter((len(b) for b in id_chunks), dtype=np.int64, count=n),
            out=id_offsets[1:],
        )
        id_bytes = np.frombuffer(b"".join(id_chunks), dtype=np.uint8)

        for arr in (codes, quals, offsets, id_offsets):
            arr.flags.writeable = False
        return cls(codes, quals, offsets, id_bytes, id_offsets)

    @classmethod
    def attach(cls, handle: ReadStoreHandle) -> "ReadStore":
        """Attach to an existing shared segment (zero-copy).

        Returns the already-live store when this process owns or
        previously attached the segment.
        """
        existing = _ATTACHED.get(handle.shm_name)
        if existing is not None and not existing.closed:
            return existing
        shm = _attach_untracked(handle.shm_name)
        offsets, id_offsets, codes, quals, id_bytes = _layout_views(
            shm.buf, handle.n_reads, handle.n_code_bytes, handle.n_id_bytes
        )
        for arr in (offsets, id_offsets, codes, quals, id_bytes):
            arr.flags.writeable = False
        store = cls(
            codes,
            quals,
            offsets,
            id_bytes,
            id_offsets,
            digest=handle.digest,
            shm=shm,
            owns_shm=False,
        )
        _ATTACHED[handle.shm_name] = store
        return store

    # -- sharing / lifecycle -------------------------------------------------

    @property
    def shared(self) -> bool:
        return self._shm is not None

    @property
    def owns_shm(self) -> bool:
        return self._owns_shm

    @property
    def closed(self) -> bool:
        return self._codes is None

    def share(self) -> ReadStoreHandle:
        """Move the arrays into a shared-memory segment (idempotent) and
        return the O(1) handle workers attach with."""
        if self.closed:
            raise ValueError("cannot share a closed ReadStore")
        if self._shm is None:
            total = (
                self._offsets.nbytes
                + self._id_offsets.nbytes
                + 2 * self._codes.nbytes
                + self._id_bytes.nbytes
            )
            shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
            views = _layout_views(
                shm.buf, self.n_reads, self._codes.size, self._id_bytes.size
            )
            offsets, id_offsets, codes, quals, id_bytes = views
            offsets[:] = self._offsets
            id_offsets[:] = self._id_offsets
            codes[:] = self._codes
            quals[:] = self._quals
            id_bytes[:] = self._id_bytes
            for arr in views:
                arr.flags.writeable = False
            # Rebind onto the segment so exactly one copy stays resident.
            self._offsets, self._id_offsets = offsets, id_offsets
            self._codes, self._quals, self._id_bytes = codes, quals, id_bytes
            self._shm = shm
            self._owns_shm = True
            self._finalizer = weakref.finalize(self, _cleanup_shm, shm, True)
            _ATTACHED[shm.name] = self
        return self.handle()

    def handle(self) -> ReadStoreHandle:
        """Handle of an already-shared store (see :meth:`share`)."""
        if self._shm is None:
            raise ValueError("ReadStore is not shared; call share() first")
        return ReadStoreHandle(
            shm_name=self._shm.name,
            n_reads=self.n_reads,
            n_code_bytes=self._codes.size,
            n_id_bytes=self._id_bytes.size,
            digest=self.digest,
        )

    def close(self, unlink: bool | None = None) -> None:
        """Release the shared segment (idempotent; double-close safe).

        ``unlink`` destroys the segment; it defaults to True exactly when
        this store created it.  A store that was never shared holds plain
        process memory and closing it is a no-op.
        """
        shm = self._shm
        if shm is None:
            return
        if unlink is None:
            unlink = self._owns_shm
        self._shm = None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._codes = self._quals = None
        self._offsets = self._id_offsets = self._id_bytes = None
        _cleanup_shm(shm, unlink)

    def __reduce__(self):
        return _attach, (self.share(),)

    # -- identity -----------------------------------------------------------

    def _compute_digest(self) -> str:
        h = hashlib.sha256(b"readstore/v1")
        h.update(np.int64(self.n_reads).tobytes())
        for arr in (
            self._offsets,
            self._codes,
            self._quals,
            self._id_offsets,
            self._id_bytes,
        ):
            h.update(np.ascontiguousarray(arr).data)
        return h.hexdigest()

    @property
    def digest(self) -> str:
        """SHA-256 content address over the encoded arrays."""
        return self._digest

    def __eq__(self, other) -> bool:
        if not isinstance(other, ReadStore):
            return NotImplemented
        return self._digest == other._digest

    def __hash__(self) -> int:
        return hash(self._digest)

    def __repr__(self) -> str:
        state = "shared" if self.shared else ("closed" if self.closed else "local")
        return (
            f"ReadStore(n_reads={self.n_reads}, n_bases={self.n_bases}, "
            f"{state}, digest={self._digest[:12]}...)"
        )

    # -- array access --------------------------------------------------------

    def _require_open(self, arr):
        if arr is None:
            raise ValueError("ReadStore is closed")
        return arr

    @property
    def codes(self) -> np.ndarray:
        """Flat base codes, one N separator after every read."""
        return self._require_open(self._codes)

    @property
    def quals(self) -> np.ndarray:
        """Flat Phred+33 bytes in the ``codes`` layout (pad byte 0)."""
        return self._require_open(self._quals)

    @property
    def offsets(self) -> np.ndarray:
        return self._require_open(self._offsets)

    @property
    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets) - 1

    @property
    def n_bases(self) -> int:
        return int(self.offsets[-1]) - self.n_reads

    @property
    def nbytes(self) -> int:
        """Resident size of the encoded arrays."""
        return int(
            self.codes.nbytes
            + self.quals.nbytes
            + self.offsets.nbytes
            + self._id_offsets.nbytes
            + self._id_bytes.nbytes
        )

    def __len__(self) -> int:
        return self.n_reads

    def contains_n(self) -> bool:
        """True when any *read* has an uncalled base (separators excluded)."""
        return int((self.codes == alphabet.N).sum()) > self.n_reads

    def read_codes(self, i: int) -> np.ndarray:
        """Base codes of read ``i`` (zero-copy view, separator excluded)."""
        offsets = self.offsets
        return self.codes[offsets[i] : offsets[i + 1] - 1]

    def subset_codes(self, indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Codes of the selected reads in the separator layout.

        Vectorized ragged gather: the result is what ``from_reads`` on
        exactly those records would produce for ``codes`` — so k-mer
        extraction over a rank's stripe matches the per-read path
        bit-for-bit.
        """
        indices = np.asarray(indices, dtype=np.int64)
        offsets = self.offsets
        if indices.size == 0:
            return np.zeros(0, dtype=np.uint8)
        starts = offsets[indices]
        spans = offsets[indices + 1] - starts  # read length + separator
        total = int(spans.sum())
        ends = np.cumsum(spans)
        rel = np.arange(total, dtype=np.int64) - np.repeat(ends - spans, spans)
        return self.codes[np.repeat(starts, spans) + rel]

    # -- record reconstruction (legacy adapter path) -------------------------

    def phred(self, i: int) -> np.ndarray:
        """Quality scores of read ``i`` — matches ``FastqRecord.phred``."""
        offsets = self.offsets
        raw = self.quals[offsets[i] : offsets[i + 1] - 1]
        return raw.astype(np.int16) - PHRED_OFFSET

    def seq(self, i: int) -> str:
        return alphabet.decode(self.read_codes(i))

    def read_id(self, i: int) -> str:
        ids = self._require_open(self._id_bytes)
        off = self._id_offsets
        return ids[off[i] : off[i + 1]].tobytes().decode("utf-8")

    def record(self, i: int) -> FastqRecord:
        offsets = self.offsets
        qual = self.quals[offsets[i] : offsets[i + 1] - 1]
        return FastqRecord(
            id=self.read_id(i),
            seq=self.seq(i),
            qual=qual.tobytes().decode("ascii"),
        )

    def records(self) -> list[FastqRecord]:
        """Materialize all records (the thin adapter for legacy callers;
        sequences are normalized to the ``ACGTN`` alphabet)."""
        return [self.record(i) for i in range(self.n_reads)]
