"""Trace exporters: JSONL event log, Chrome ``trace_event`` JSON, text.

The JSONL log is the archival format (one record per line, metrics
snapshot appended last) and what ``python -m repro.obs.report`` reads.
The Chrome format loads directly in Perfetto / ``chrome://tracing``: one
"process" row per track (pilot, VM pool, SGE, pipeline), one "thread"
row per unit/rank/stage within it.  Both clocks are exported — pick the
timeline with ``clock="virtual"`` (default: the paper's TTC domain) or
``clock="real"`` (host wall-time).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.tracer import Tracer

#: Microseconds per (virtual or real) second — trace_event's ts unit.
_US = 1e6


def json_default(value):
    """Fallback serializer for tag values ``json`` does not know.

    Instrumentation tags whatever it has on hand — numpy scalars from a
    spectrum computation, raw digest bytes, paths, sets — and the
    exporter must never raise mid-run over it.  Numpy scalars flatten to
    their Python numbers, bytes decode (or hex-encode when not UTF-8),
    sets become sorted-ish lists, and anything else falls back to
    ``repr``."""
    if hasattr(value, "item") and callable(value.item):
        try:
            return value.item()  # numpy scalars / 0-d arrays
        except (TypeError, ValueError):
            pass
    if hasattr(value, "tolist") and callable(value.tolist):
        try:
            return value.tolist()  # numpy arrays
        except (TypeError, ValueError):
            pass
    if isinstance(value, (bytes, bytearray)):
        try:
            return value.decode("utf-8")
        except UnicodeDecodeError:
            return "hex:" + bytes(value).hex()
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    return repr(value)


def dump_record(record: dict) -> str:
    """One trace record as a single JSON line (no trailing newline),
    robust to non-JSON-native tag values — shared by the archival
    writer and the live streaming sink."""
    return json.dumps(record, default=json_default)


def _records_of(source: "Tracer | Iterable[dict]") -> list[dict]:
    if isinstance(source, Tracer):
        return source.records()
    return list(source)


def write_jsonl(source: "Tracer | Iterable[dict]", path: str | Path) -> Path:
    """Write one record per line; a tracer source appends its metrics
    snapshot as a final ``{"type": "metrics"}`` record."""
    path = Path(path)
    records = _records_of(source)
    if isinstance(source, Tracer):
        records = records + [
            {"type": "metrics", "data": source.metrics.snapshot()}
        ]
    with path.open("w") as fh:
        for record in records:
            fh.write(dump_record(record) + "\n")
    return path


def load_jsonl(path: str | Path) -> list[dict]:
    """Read a trace written by :func:`write_jsonl`."""
    records = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _span_times(record: dict, clock: str) -> tuple[float, float] | None:
    if clock == "virtual":
        if record["v0"] is None or record["v1"] is None:
            return None
        return record["v0"], record["v1"]
    return record["r0"], record["r1"]


def _event_time(record: dict, clock: str) -> float | None:
    if clock == "virtual":
        return record["v"]
    return record["r"]


def chrome_trace(
    source: "Tracer | Iterable[dict]", clock: str = "virtual"
) -> dict:
    """Build a Chrome ``trace_event`` document from a trace.

    Track names map to numeric pids/tids in order of first appearance,
    with ``process_name``/``thread_name`` metadata events so the viewer
    shows the original names.  Records without a timestamp on the chosen
    clock (e.g. spans recorded before a clock was bound, under
    ``clock="virtual"``) are skipped.
    """
    if clock not in ("virtual", "real"):
        raise ValueError(f"clock must be 'virtual' or 'real', not {clock!r}")
    records = _records_of(source)
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    trace_events: list[dict] = []

    def track(process: str, thread: str) -> tuple[int, int]:
        if process not in pids:
            pids[process] = len(pids) + 1
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[process],
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        key = (process, thread)
        if key not in tids:
            tids[key] = len(tids) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pids[process],
                    "tid": tids[key],
                    "args": {"name": thread},
                }
            )
        return pids[process], tids[key]

    for record in records:
        kind = record.get("type")
        if kind == "span":
            times = _span_times(record, clock)
            if times is None:
                continue
            t0, t1 = times
            pid, tid = track(record["process"], record["thread"])
            trace_events.append(
                {
                    "name": record["name"],
                    "cat": record["cat"] or "default",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": t0 * _US,
                    "dur": max(0.0, (t1 - t0)) * _US,
                    "args": dict(
                        record["attrs"],
                        v_seconds=record["v1"] - record["v0"]
                        if record["v0"] is not None and record["v1"] is not None
                        else None,
                        r_seconds=record["r1"] - record["r0"],
                    ),
                }
            )
        elif kind == "event" and record["cat"] == "resource":
            # Resource samples render as Perfetto counter tracks: one
            # "C" event per sampled quantity, charted per process row.
            t = _event_time(record, clock)
            if t is None:
                continue
            pid, _ = track(record["process"], record["thread"])
            attrs = record["attrs"]
            for counter, key, scale in (
                ("rss_mb", "rss_bytes", 1e-6),
                ("cpu_s", "cpu_seconds", 1.0),
            ):
                if key in attrs:
                    trace_events.append(
                        {
                            "name": counter,
                            "cat": "resource",
                            "ph": "C",
                            "pid": pid,
                            "tid": 0,
                            "ts": t * _US,
                            "args": {"value": attrs[key] * scale},
                        }
                    )
        elif kind == "event":
            t = _event_time(record, clock)
            if t is None:
                continue
            pid, tid = track(record["process"], record["thread"])
            trace_events.append(
                {
                    "name": record["name"],
                    "cat": record["cat"] or "default",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": t * _US,
                    "args": record["attrs"],
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(
    source: "Tracer | Iterable[dict]",
    path: str | Path,
    clock: str = "virtual",
) -> Path:
    """Write a Chrome trace JSON file (open it in Perfetto)."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(source, clock=clock), indent=1,
                   default=json_default)
    )
    return path


def text_summary(source: "Tracer | Iterable[dict]", top: int = 10) -> str:
    """Plain-text digest: span counts by category, hottest spans on both
    clocks, and the metrics snapshot when present."""
    records = _records_of(source)
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    metrics = next(
        (r["data"] for r in records if r.get("type") == "metrics"), None
    )
    if isinstance(source, Tracer):
        metrics = source.metrics.snapshot()

    lines = [f"trace: {len(spans)} spans, {len(events)} events"]
    by_cat: dict[str, int] = {}
    for s in spans:
        by_cat[s["cat"] or "default"] = by_cat.get(s["cat"] or "default", 0) + 1
    for cat, n in sorted(by_cat.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {cat:16s} {n:5d} spans")

    def v_dur(s: dict) -> float:
        if s["v0"] is None or s["v1"] is None:
            return 0.0
        return s["v1"] - s["v0"]

    hottest_v = sorted(spans, key=v_dur, reverse=True)[:top]
    if any(v_dur(s) > 0 for s in hottest_v):
        lines.append(f"hottest spans (virtual, top {top}):")
        for s in hottest_v:
            if v_dur(s) <= 0:
                continue
            lines.append(
                f"  {v_dur(s):12.1f} s  {s['name']}  [{s['process']}/{s['thread']}]"
            )
    hottest_r = sorted(spans, key=lambda s: s["r1"] - s["r0"], reverse=True)[:top]
    if hottest_r:
        lines.append(f"hottest spans (real, top {top}):")
        for s in hottest_r:
            lines.append(
                f"  {s['r1'] - s['r0']:12.4f} s  {s['name']}  "
                f"[{s['process']}/{s['thread']}]"
            )
    if metrics:
        lines.append("metrics:")
        for name, value in metrics.get("counters", {}).items():
            lines.append(f"  counter   {name:32s} {value:g}")
        for name, value in metrics.get("gauges", {}).items():
            if value is not None:
                lines.append(f"  gauge     {name:32s} {value:g}")
        for name, h in metrics.get("histograms", {}).items():
            lines.append(
                f"  histogram {name:32s} n={h['count']} mean={h['mean']:.4g} "
                f"p95={h['p95']:.4g} max={h['max']:.4g}"
            )
    return "\n".join(lines)
