"""Live telemetry: streaming JSONL sink, heartbeats, straggler analysis.

Everything post-hoc about the observability layer (report, critpath,
attribution, diff, ledger) reads a *finished* trace; this module is the
in-flight half the ROADMAP's multi-tenant service needs:

* :class:`JsonlStreamSink` — a :class:`~repro.obs.tracer.TraceSink`
  appending one JSON line per record as it happens, flushed per line, so
  ``python -m repro.obs.monitor run.jsonl --follow`` (or plain
  ``tail -f``) can watch a run in progress.  Worker-trace merges stream
  too: :func:`~repro.obs.context.merge_worker_trace` routes re-written
  records through the tracer's emitting chokepoints.
* :class:`HeartbeatMonitor` — a daemon thread beating every ``cadence``
  real seconds over a snapshot of in-flight workloads (the pilot agent's
  pending table), emitting one ``unit.heartbeat`` event per unit with
  its real elapsed seconds.  Heartbeats are **real-clock only** and
  never touch the virtual clock, so the tracing-parity guarantee (same
  TTCs and dollars with or without telemetry) holds with them on.
* :class:`StragglerDetector` — robust peer comparison: a unit whose
  in-flight real elapsed exceeds ``max(median + k*MAD, min_ratio *
  median)`` of its *completed* peers' wall times is flagged once with a
  ``unit.straggler`` event.  Median + k·MAD (not mean + k·sigma) keeps
  one legitimate heavy shard from masking a genuinely hung one.
"""

from __future__ import annotations

import statistics
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.obs.export import dump_record
from repro.obs.tracer import Tracer, TraceSink


class JsonlStreamSink(TraceSink):
    """Appends every record as one JSON line, flushed immediately.

    The resulting file is a superset of the archival ``write_jsonl``
    format: alongside the span-close/event records it carries
    ``span_open`` and ``metric`` lines (which every post-hoc reader
    ignores — they all filter on ``type``).  ``close`` appends the final
    ``{"type": "metrics"}`` snapshot when the sink was built with a
    tracer to snapshot, making the stream self-contained for post-hoc
    use as well.
    """

    def __init__(self, path: str | Path, tracer: Tracer | None = None) -> None:
        self.path = Path(path)
        self._tracer = tracer
        self._lock = threading.Lock()
        self._fh = self.path.open("w")

    def emit(self, record: dict) -> None:
        line = dump_record(record) + "\n"
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line)
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh.closed:
                return
            if self._tracer is not None:
                self._fh.write(
                    dump_record(
                        {
                            "type": "metrics",
                            "data": self._tracer.metrics.snapshot(),
                        }
                    )
                    + "\n"
                )
            self._fh.close()


class CollectorSink(TraceSink):
    """Buffers emitted records in memory — the test-and-engine-facing
    sink (the alert engine's post-hoc mode replays a trace through it)."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        with self._lock:
            self.records.append(record)


class StragglerDetector:
    """Flags in-flight units running far beyond their completed peers.

    ``note_completion(wall_seconds)`` feeds finished peers;
    ``check(unit, elapsed)`` returns the evidence dict for a straggler
    (once per unit) or ``None``.  No verdicts are issued until
    ``min_peers`` completions exist — with nothing to compare against,
    everything would look normal (or nothing would).
    """

    def __init__(
        self,
        k: float = 3.0,
        min_peers: int = 3,
        min_ratio: float = 1.75,
    ) -> None:
        if min_peers < 2:
            raise ValueError("straggler detection needs at least 2 peers")
        self.k = k
        self.min_peers = min_peers
        self.min_ratio = min_ratio
        self._walls: list[float] = []
        self._flagged: set[str] = set()
        self._lock = threading.Lock()

    def note_completion(self, wall_seconds: float) -> None:
        with self._lock:
            self._walls.append(float(wall_seconds))

    def threshold(self) -> float | None:
        """Current elapsed-seconds cutoff, or None without enough peers."""
        with self._lock:
            walls = list(self._walls)
        if len(walls) < self.min_peers:
            return None
        med = statistics.median(walls)
        mad = statistics.median(abs(w - med) for w in walls)
        return max(med + self.k * mad, self.min_ratio * med)

    def check(self, unit: str, elapsed: float) -> dict | None:
        """Evidence attrs when ``unit`` is newly straggling, else None."""
        cutoff = self.threshold()
        if cutoff is None or elapsed <= cutoff:
            return None
        with self._lock:
            if unit in self._flagged:
                return None
            self._flagged.add(unit)
            peers = len(self._walls)
            median = statistics.median(self._walls)
        return {
            "unit": unit,
            "elapsed_r": elapsed,
            "threshold_r": cutoff,
            "peer_median_r": median,
            "peers": peers,
        }


@dataclass(frozen=True)
class InflightUnit:
    """One in-flight workload as the heartbeat thread sees it."""

    unit_id: str
    name: str
    stage: str = ""
    submitted_r: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)


class HeartbeatMonitor:
    """Daemon thread emitting periodic per-unit heartbeat events.

    ``inflight`` is polled each beat and must return the current
    :class:`InflightUnit` snapshot cheaply (the pilot agent snapshots
    its pending table under no lock — dict iteration over a copy).
    Each beat emits one ``unit.heartbeat`` event (category
    ``"heartbeat"``) per unit carrying its real elapsed seconds, and
    runs the optional :class:`StragglerDetector` over the same numbers,
    emitting ``unit.straggler`` (category ``"heartbeat"``, severity
    tagged) for fresh verdicts.  Same thread discipline as
    :class:`~repro.obs.resources.CadenceSampler`: daemon, idempotent
    ``stop``, never joins itself.
    """

    def __init__(
        self,
        tracer: Tracer,
        cadence: float,
        inflight: Callable[[], Iterable[InflightUnit]],
        process: str = "main",
        detector: StragglerDetector | None = None,
    ) -> None:
        if cadence <= 0:
            raise ValueError("heartbeat cadence must be > 0 seconds")
        self.tracer = tracer
        self.cadence = cadence
        self.inflight = inflight
        self.process = process
        self.detector = detector
        self.beats = 0
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-heartbeat", daemon=True
            )
            self._thread.start()
        # One synchronous beat per cycle: workloads faster than the
        # cadence would otherwise never be observed in flight.
        self.beat()

    def stop(self) -> None:
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        if thread is not threading.current_thread():
            thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self.cadence):
            self.beat()

    def beat(self) -> None:
        """One heartbeat pass (callable directly from tests)."""
        units = list(self.inflight())
        now = time.perf_counter()
        for u in units:
            elapsed = now - u.submitted_r
            self.tracer.event(
                "unit.heartbeat",
                category="heartbeat",
                process=self.process,
                thread=u.unit_id,
                unit=u.name,
                stage=u.stage,
                elapsed_r=elapsed,
                inflight=len(units),
                **u.attrs,
            )
            if self.detector is not None:
                evidence = self.detector.check(u.name, elapsed)
                if evidence is not None:
                    self.tracer.event(
                        "unit.straggler",
                        category="heartbeat",
                        process=self.process,
                        thread=u.unit_id,
                        severity="warning",
                        stage=u.stage,
                        **evidence,
                    )
        self.beats += 1
