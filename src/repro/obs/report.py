"""Run-report CLI over a JSONL trace file.

``python -m repro.obs.report trace.jsonl`` renders:

* the per-stage table (virtual TTC and real host seconds per pipeline
  stage, from the ``stage``-category spans, with p50/p95 of the stage's
  unit execution spans);
* per-process (pilot / VM pool / SGE) timelines of the virtual clock;
* a virtual-vs-real breakdown by span category;
* the top-k hottest phases by charged critical-path compute (from the
  ``phase`` events the usage layer emits);
* the caching scorecard (count-once k-mer table reuse and the
  content-addressed assembly cache, from their tracer counters);
* the alert log (when the trace carries rules-engine firings);
* the per-run cost attribution (when the trace carries billing spans);
* the metrics snapshot.

``--chrome out.json`` additionally converts the trace to Chrome
``trace_event`` JSON (open in Perfetto / ``chrome://tracing``).
``--json`` emits the same facts machine-readably (exact floats, no
formatting loss) instead of the text report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable

from repro.obs.export import load_jsonl, text_summary, write_chrome
from repro.obs.metrics import Histogram
from repro.obs.spans import events_of as _events
from repro.obs.spans import pipeline_span
from repro.obs.spans import spans_of as _spans
from repro.obs.spans import v_duration as _v_dur


def stage_ttcs(records: Iterable[dict]) -> dict[str, float]:
    """Virtual TTC per pipeline stage, keyed by stage name.

    Exact floats straight from the trace — these equal the pipeline's
    ``StageReport.ttc`` values bit-for-bit (asserted by the trace-parity
    test)."""
    out: dict[str, float] = {}
    for span in _spans(records):
        if span["cat"] == "stage":
            out[span["attrs"].get("stage", span["name"])] = _v_dur(span)
    return out


def _unit_histograms(records: Iterable[dict]) -> dict[str, Histogram]:
    """stage name -> histogram of its unit exec spans' virtual seconds."""
    out: dict[str, Histogram] = {}
    for span in _spans(records):
        if span["cat"] != "unit" or span["v0"] is None:
            continue
        stage = span["attrs"].get("stage")
        if stage is None:
            continue
        if stage not in out:
            out[stage] = Histogram(stage)
        out[stage].observe(_v_dur(span))
    return out


def stage_table(records: Iterable[dict]) -> str:
    records = list(records)
    units = _unit_histograms(records)
    rows = ["per-stage timings (virtual TTC vs real host seconds):"]
    rows.append(
        f"  {'stage':24s} {'virtual s':>12s} {'real s':>10s} "
        f"{'unit p50':>9s} {'p95':>9s}  placement"
    )
    for span in _spans(records):
        if span["cat"] != "stage":
            continue
        attrs = span["attrs"]
        placement = attrs.get("pilot", "-")
        if attrs.get("n_nodes"):
            placement += f" ({attrs['n_nodes']} x {attrs.get('instance_type', '?')})"
        hist = units.get(attrs.get("stage", span["name"]))
        p50 = f"{hist.percentile(50):9.1f}" if hist else f"{'-':>9s}"
        p95 = f"{hist.percentile(95):9.1f}" if hist else f"{'-':>9s}"
        rows.append(
            f"  {attrs.get('stage', span['name']):24s} {_v_dur(span):12.1f} "
            f"{span['r1'] - span['r0']:10.3f} {p50} {p95}  {placement}"
        )
    return "\n".join(rows) if len(rows) > 2 else ""


def process_timelines(records: Iterable[dict], width: int = 48) -> str:
    """ASCII virtual-time swimlane per process track."""
    spans = [s for s in _spans(records) if _v_dur(s) >= 0 and s["v0"] is not None]
    if not spans:
        return ""
    t_min = min(s["v0"] for s in spans)
    t_max = max(s["v1"] for s in spans)
    extent = max(t_max - t_min, 1e-9)
    by_process: dict[str, list[dict]] = {}
    for s in spans:
        by_process.setdefault(s["process"], []).append(s)
    rows = [f"virtual timelines ({t_min:.0f} s .. {t_max:.0f} s):"]
    for process in sorted(by_process):
        rows.append(f"  {process}:")
        for s in sorted(by_process[process], key=lambda s: (s["v0"], s["v1"])):
            lo = int((s["v0"] - t_min) / extent * width)
            hi = max(lo + 1, int((s["v1"] - t_min) / extent * width))
            bar = " " * lo + "#" * (hi - lo) + " " * (width - hi)
            rows.append(
                f"    |{bar}| {s['name']}  {_v_dur(s):.1f} s [{s['thread']}]"
            )
    return "\n".join(rows)


def virtual_vs_real(records: Iterable[dict]) -> str:
    """Per-category totals on both clocks (top-level spans only, so
    nested spans are not double counted)."""
    spans = _spans(records)
    roots = [s for s in spans if s.get("parent") is None]
    if not roots:
        return ""
    totals: dict[str, tuple[float, float]] = {}
    for s in roots:
        cat = s["cat"] or "default"
        v, r = totals.get(cat, (0.0, 0.0))
        totals[cat] = (v + _v_dur(s), r + (s["r1"] - s["r0"]))
    rows = ["virtual vs real seconds by category (top-level spans):"]
    rows.append(f"  {'category':16s} {'virtual s':>12s} {'real s':>10s}")
    for cat, (v, r) in sorted(totals.items(), key=lambda kv: -kv[1][0]):
        rows.append(f"  {cat:16s} {v:12.1f} {r:10.3f}")
    return "\n".join(rows)


def hottest_phases(records: Iterable[dict], top: int = 10) -> str:
    """Top-k phases by critical-path compute charged to the cost model."""
    phases = [e for e in _events(records) if e["cat"] == "phase"]
    if not phases:
        return ""
    phases.sort(key=lambda e: e["attrs"].get("critical_compute", 0.0), reverse=True)
    rows = [f"hottest phases (critical-path compute, top {top}):"]
    rows.append(
        f"  {'phase':28s} {'kind':10s} {'critical':>12s} {'comm MB':>9s}"
    )
    for e in phases[:top]:
        a = e["attrs"]
        rows.append(
            f"  {a.get('phase', e['name']):28s} {a.get('kind', '?'):10s} "
            f"{a.get('critical_compute', 0.0):12.3g} "
            f"{a.get('comm_bytes', 0) / 1e6:9.2f}"
        )
    return "\n".join(rows)


def cache_scorecard(records: Iterable[dict]) -> str:
    """Hit/miss scorecard of the two content-addressed caches, plus the
    count-once spectrum build's wall/virtual cost.

    Mirrors the ``kmer_table.*`` counters of the count-once fusion layer
    (:mod:`repro.assembly.sweep`) and the ``assembly_cache.*`` counters
    (lookups plus parent-side ``put`` recording) from the metrics
    snapshot into a first-class report section; when the trace carries
    ``spectrum.build`` spans, a row reports the build's real host
    seconds against its (zero, by construction) virtual cost and mode."""
    records = list(records)
    metrics = next(
        (r["data"] for r in records if r.get("type") == "metrics"), None
    )
    counters = (metrics or {}).get("counters", {})
    rows = []
    for label, prefix, extra in (
        ("kmer table cache", "kmer_table", [("bytes cached", "bytes")]),
        ("assembly cache", "assembly_cache", [("puts", "put")]),
    ):
        hits = counters.get(f"{prefix}.hit", 0.0)
        misses = counters.get(f"{prefix}.miss", 0.0)
        cells = [f"hits {hits:g}", f"misses {misses:g}"]
        if hits + misses:
            cells.append(f"hit rate {hits / (hits + misses):.0%}")
        for name, suffix in extra:
            value = counters.get(f"{prefix}.{suffix}")
            if value is not None:
                cells.append(f"{name} {value:g}")
        if hits or misses or any(
            counters.get(f"{prefix}.{suffix}") for _, suffix in extra
        ):
            rows.append(f"  {label:18s} {'  '.join(cells)}")
    builds = [s for s in _spans(records) if s["name"] == "spectrum.build"]
    if builds:
        wall = sum(s["r1"] - s["r0"] for s in builds)
        virt = sum(_v_dur(s) for s in builds)
        mode = builds[-1]["attrs"].get("mode", "?")
        cells = [f"wall {wall:.3f} s", f"virtual {virt:g} s", f"mode {mode}"]
        n_shards = builds[-1]["attrs"].get("n_shards")
        if n_shards is not None:
            cells.append(f"shards {n_shards:g}")
        rows.append(f"  {'spectrum build':18s} {'  '.join(cells)}")
    if not rows:
        return ""
    return "\n".join(["cache scorecard:"] + rows)


def alerts_section(records: Iterable[dict]) -> str:
    """The alert log: one line per rules-engine firing in the trace."""
    alerts = [e for e in _events(records) if e["cat"] == "alert"]
    if not alerts:
        return ""
    rows = [f"alerts ({len(alerts)}):"]
    for e in alerts:
        a = e["attrs"]
        rows.append(
            f"  [{a.get('severity', '?'):8s}] "
            f"{a.get('rule', '?')}: {a.get('message', '')}"
        )
    return "\n".join(rows)


def cost_section(records: list[dict]) -> str:
    """The cost-attribution table, or "" for traces without billing
    spans (unit tests and the fake-clock fixtures trace no VMs)."""
    from repro.obs.attribution import attribute_costs, format_attribution

    try:
        attribution = attribute_costs(records)
    except ValueError:
        return ""
    return format_attribution(attribution)


def build_report(records: list[dict], top: int = 10) -> str:
    """The full plain-text run report."""
    sections = [
        stage_table(records),
        process_timelines(records),
        virtual_vs_real(records),
        hottest_phases(records, top=top),
        cache_scorecard(records),
        alerts_section(records),
        cost_section(records),
        text_summary(records, top=top),
    ]
    return "\n\n".join(s for s in sections if s)


def report_data(records: list[dict], top: int = 10) -> dict:
    """The machine-readable report (the ``--json`` output).

    Same facts as :func:`build_report` but exact — no float formatting,
    no column truncation — and JSON-serializable, so
    ``json.loads(json.dumps(data))`` round-trips it unchanged.
    """
    records = list(records)
    root = pipeline_span(records)
    stages: dict[str, dict] = {}
    for span in _spans(records):
        if span["cat"] == "stage":
            stages[span["attrs"].get("stage", span["name"])] = {
                "virtual_s": _v_dur(span),
                "real_s": span["r1"] - span["r0"],
            }
    categories: dict[str, dict] = {}
    for span in _spans(records):
        if span.get("parent") is not None:
            continue
        cat = span["cat"] or "default"
        row = categories.setdefault(cat, {"virtual_s": 0.0, "real_s": 0.0})
        row["virtual_s"] += _v_dur(span)
        row["real_s"] += span["r1"] - span["r0"]
    phases = [e for e in _events(records) if e["cat"] == "phase"]
    phases.sort(
        key=lambda e: e["attrs"].get("critical_compute", 0.0), reverse=True
    )
    try:
        from repro.obs.attribution import attribute_costs

        attribution = attribute_costs(records)
        cost = {
            "total_usd": attribution.total_usd,
            "by_bucket_usd": dict(attribution.by_bucket),
            "n_vms": len(attribution.vms),
        }
    except ValueError:
        cost = None
    metrics = next(
        (r["data"] for r in records if r.get("type") == "metrics"), {}
    )
    return {
        "ttc_s": root["v1"] - root["v0"] if root else None,
        "pipeline": dict(root["attrs"]) if root else {},
        "stages": stages,
        "categories": categories,
        "hottest_phases": [dict(e["attrs"]) for e in phases[:top]],
        "alerts": [
            dict(e["attrs"]) for e in _events(records) if e["cat"] == "alert"
        ],
        "counters": dict(metrics.get("counters", {})),
        "cost": cost,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a run report from a repro JSONL trace file.",
    )
    parser.add_argument("trace", help="trace file written by obs.export.write_jsonl")
    parser.add_argument("--top", type=int, default=10, help="top-k hottest phases")
    parser.add_argument(
        "--chrome",
        metavar="OUT",
        help="also write a Chrome trace_event JSON to OUT (open in Perfetto)",
    )
    parser.add_argument(
        "--clock",
        choices=("virtual", "real"),
        default="virtual",
        help="timeline for the --chrome export",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of the text one",
    )
    args = parser.parse_args(argv)
    records = load_jsonl(args.trace)
    if args.json:
        print(json.dumps(report_data(records, top=args.top), indent=2, sort_keys=True))
    else:
        print(build_report(records, top=args.top))
    if args.chrome:
        path = write_chrome(records, args.chrome, clock=args.clock)
        if not args.json:  # keep --json stdout parseable
            print(f"\nchrome trace written to {path} (load in Perfetto)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
