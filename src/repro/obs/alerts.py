"""SLO / alert rules engine over the live trace stream.

Declarative rules, evaluated incrementally against the records a
:class:`~repro.obs.tracer.TraceSink` receives (live) or against a
finished trace replayed through the same code path (post-hoc, see
:func:`evaluate`).  Five rule kinds:

===================  =====================================================
``stage_duration``    a ``stage`` span's *virtual* TTC exceeded the SLO
                      (``target`` fnmatch-es the stage name)
``budget_burn``       dollars billed on ``vm.lifetime`` spans exceeded
                      ``threshold`` × the planner's predicted cost (from
                      the ``planner.prediction`` event) — the serverless
                      STAR motivation: fire *while* the meter runs
``heartbeat_timeout`` a ``unit.heartbeat`` reported real elapsed beyond
                      ``threshold`` seconds (a hung shard)
``cache_hit_rate``    a cache's hit rate finished below ``threshold``
                      (``target`` is the counter prefix, e.g.
                      ``assembly_cache``); end-of-stream rule
``straggler``         a ``unit.straggler`` verdict arrived (the
                      detection itself lives in :mod:`repro.obs.live`)
===================  =====================================================

Rules are spelled compactly (CLI flags, PipelineConfig) as
``kind[:target][:threshold][:severity]`` — e.g.
``stage_duration:transcript-assembly:5000:critical``,
``budget_burn:1.25``, ``heartbeat_timeout:30:critical``,
``cache_hit_rate:kmer_table:0.5``, ``straggler``.

Every firing appends an :class:`Alert`, emits a severity-tagged
``alert`` event (category ``"alert"``) into the tracer — so alerts land
in the archival trace, the report and the run ledger — and bumps the
``alerts.<severity>`` counter.  The engine is itself a sink on the same
tracer it emits into; it ignores ``alert``-category records to stay off
its own input.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any, Iterable

from repro.obs.tracer import Tracer, TraceSink

SEVERITIES = ("info", "warning", "critical")

_KINDS = (
    "stage_duration",
    "budget_burn",
    "heartbeat_timeout",
    "cache_hit_rate",
    "straggler",
)

#: Rule kinds whose compact form carries a target before the threshold.
_TARGETED = ("stage_duration", "cache_hit_rate")


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule (see module docstring for the kinds)."""

    kind: str
    threshold: float = 0.0
    target: str = "*"
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown alert rule kind {self.kind!r} (choose from {_KINDS})"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r} (choose from {SEVERITIES})"
            )
        if self.kind != "straggler" and self.threshold <= 0:
            raise ValueError(f"{self.kind} rule needs a threshold > 0")

    @property
    def spec(self) -> str:
        """The compact string form (round-trips through :func:`parse_rule`)."""
        parts = [self.kind]
        if self.kind in _TARGETED:
            parts.append(self.target)
        if self.kind != "straggler":
            parts.append(f"{self.threshold:g}")
        parts.append(self.severity)
        return ":".join(parts)


def parse_rule(spec: "str | AlertRule") -> AlertRule:
    """``kind[:target][:threshold][:severity]`` → :class:`AlertRule`."""
    if isinstance(spec, AlertRule):
        return spec
    parts = [p for p in str(spec).split(":")]
    if not parts or not parts[0]:
        raise ValueError(f"empty alert rule spec {spec!r}")
    kind, rest = parts[0], parts[1:]
    target = "*"
    if kind in _TARGETED:
        if not rest:
            raise ValueError(f"{kind} rule needs a target: {spec!r}")
        target, rest = rest[0], rest[1:]
    threshold = 0.0
    if kind != "straggler":
        if not rest:
            raise ValueError(f"{kind} rule needs a threshold: {spec!r}")
        threshold, rest = float(rest[0]), rest[1:]
    severity = rest[0] if rest else "warning"
    if len(rest) > 1:
        raise ValueError(f"trailing fields in alert rule spec {spec!r}")
    return AlertRule(
        kind=kind, threshold=threshold, target=target, severity=severity
    )


def default_rules() -> tuple[AlertRule, ...]:
    """The stock rule set the smoke CLI's ``--default-alerts`` enables:
    any straggler verdict, a unit silent/hung past 30 real seconds, and
    billing running 25 % past the planner's predicted cost."""
    return (
        AlertRule(kind="straggler", severity="warning"),
        AlertRule(kind="heartbeat_timeout", threshold=30.0, severity="critical"),
        AlertRule(kind="budget_burn", threshold=1.25, severity="critical"),
    )


@dataclass(frozen=True)
class Alert:
    """One rule firing."""

    rule: str  # the rule kind
    severity: str
    message: str
    r_time: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "r": self.r_time,
            "attrs": self.attrs,
        }


class AlertEngine(TraceSink):
    """Evaluates a rule set against the record stream (live or replayed).

    Attach to the tracer with ``tracer.add_sink(engine)`` for live
    evaluation; firings then also become ``alert`` events in that
    tracer.  Call :meth:`finalize` (or let ``close_sinks`` do it) to run
    the end-of-stream rules (cache-hit-rate floors, a budget check with
    late-arriving predictions).
    """

    def __init__(
        self,
        rules: Iterable["AlertRule | str"],
        tracer: Tracer | None = None,
    ) -> None:
        self.rules = tuple(parse_rule(r) for r in rules)
        self.tracer = tracer
        self.alerts: list[Alert] = []
        self._lock = threading.Lock()
        self._fired: set[tuple] = set()
        self._planned_cost: float | None = None
        self._billed_usd = 0.0
        self._counters: dict[str, float] = {}
        self._finalized = False

    # -- stream consumption --------------------------------------------------

    def emit(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "span":
            if record.get("cat") == "stage":
                self._on_stage(record)
            elif record.get("name") == "vm.lifetime":
                self._on_billing(record)
        elif kind == "event":
            cat = record.get("cat")
            if cat == "alert":
                return  # our own output looping back through the bus
            name = record.get("name")
            if name == "planner.prediction":
                self._planned_cost = record["attrs"].get("cost_usd")
                self._check_budget(record.get("r"))
            elif name == "unit.heartbeat":
                self._on_heartbeat(record)
            elif name == "unit.straggler":
                self._on_straggler(record)
        elif kind == "metric":
            if record.get("kind") == "counter":
                with self._lock:
                    name = record["name"]
                    self._counters[name] = (
                        self._counters.get(name, 0.0) + record["value"]
                    )
        elif kind == "metrics":
            # The archival snapshot supersedes whatever deltas we saw.
            with self._lock:
                self._counters = dict(record["data"].get("counters", {}))

    def close(self) -> None:
        self.finalize()

    # -- rule evaluation -----------------------------------------------------

    def _rules_of(self, kind: str):
        return (r for r in self.rules if r.kind == kind)

    def _on_stage(self, record: dict) -> None:
        if record.get("v0") is None or record.get("v1") is None:
            return
        stage = record["attrs"].get("stage", record["name"])
        ttc = record["v1"] - record["v0"]
        for rule in self._rules_of("stage_duration"):
            if fnmatch(stage, rule.target) and ttc > rule.threshold:
                self._fire(
                    rule,
                    key=("stage_duration", rule.target, stage),
                    message=(
                        f"stage {stage} took {ttc:.1f} virtual s "
                        f"(SLO {rule.threshold:g} s)"
                    ),
                    r_time=record.get("r1"),
                    stage=stage,
                    ttc_s=ttc,
                    slo_s=rule.threshold,
                )

    def _on_billing(self, record: dict) -> None:
        cost = record["attrs"].get("cost_usd")
        if cost is None:
            return
        with self._lock:
            self._billed_usd += cost
        self._check_budget(record.get("r1"))

    def _check_budget(self, r_time: float | None) -> None:
        if self._planned_cost is None or self._planned_cost <= 0:
            return
        burn = self._billed_usd / self._planned_cost
        for rule in self._rules_of("budget_burn"):
            if burn > rule.threshold:
                self._fire(
                    rule,
                    key=("budget_burn", rule.threshold),
                    message=(
                        f"billed ${self._billed_usd:.2f} is "
                        f"{burn:.0%} of the planned ${self._planned_cost:.2f} "
                        f"(limit {rule.threshold:.0%})"
                    ),
                    r_time=r_time,
                    billed_usd=self._billed_usd,
                    planned_usd=self._planned_cost,
                    burn=burn,
                )

    def _on_heartbeat(self, record: dict) -> None:
        attrs = record["attrs"]
        elapsed = attrs.get("elapsed_r", 0.0)
        unit = attrs.get("unit", record.get("thread", "?"))
        for rule in self._rules_of("heartbeat_timeout"):
            if elapsed > rule.threshold:
                self._fire(
                    rule,
                    key=("heartbeat_timeout", rule.threshold, unit),
                    message=(
                        f"unit {unit} in flight for {elapsed:.1f} s "
                        f"(timeout {rule.threshold:g} s)"
                    ),
                    r_time=record.get("r"),
                    unit=unit,
                    elapsed_r=elapsed,
                    timeout_s=rule.threshold,
                )

    def _on_straggler(self, record: dict) -> None:
        # The detector's own severity tag would collide with the rule's.
        attrs = {
            k: v for k, v in record["attrs"].items() if k != "severity"
        }
        unit = attrs.get("unit", record.get("thread", "?"))
        for rule in self._rules_of("straggler"):
            self._fire(
                rule,
                key=("straggler", unit),
                message=(
                    f"unit {unit} is straggling: "
                    f"{attrs.get('elapsed_r', 0.0):.1f} s vs peer median "
                    f"{attrs.get('peer_median_r', 0.0):.1f} s"
                ),
                r_time=record.get("r"),
                **attrs,
            )

    def finalize(self) -> None:
        """End-of-stream rules; idempotent."""
        with self._lock:
            if self._finalized:
                return
            self._finalized = True
            counters = dict(self._counters)
        self._check_budget(None)
        for rule in self._rules_of("cache_hit_rate"):
            hits = counters.get(f"{rule.target}.hit", 0.0)
            misses = counters.get(f"{rule.target}.miss", 0.0)
            if hits + misses <= 0:
                continue
            rate = hits / (hits + misses)
            if rate < rule.threshold:
                self._fire(
                    rule,
                    key=("cache_hit_rate", rule.target),
                    message=(
                        f"{rule.target} hit rate {rate:.0%} below the "
                        f"{rule.threshold:.0%} floor "
                        f"({hits:g} hits / {misses:g} misses)"
                    ),
                    r_time=None,
                    cache=rule.target,
                    hit_rate=rate,
                    floor=rule.threshold,
                )

    # -- firing --------------------------------------------------------------

    def _fire(
        self,
        rule: AlertRule,
        key: tuple,
        message: str,
        r_time: float | None,
        **attrs: Any,
    ) -> None:
        with self._lock:
            if key in self._fired:
                return
            self._fired.add(key)
            alert = Alert(
                rule=rule.kind,
                severity=rule.severity,
                message=message,
                r_time=r_time,
                attrs=attrs,
            )
            self.alerts.append(alert)
        if self.tracer is not None:
            self.tracer.event(
                "alert",
                category="alert",
                rule=rule.kind,
                severity=rule.severity,
                message=message,
                **attrs,
            )
            self.tracer.count(f"alerts.{rule.severity}")

    # -- views ---------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Firings by severity (zero-count severities omitted)."""
        with self._lock:
            out: dict[str, int] = {}
            for alert in self.alerts:
                out[alert.severity] = out.get(alert.severity, 0) + 1
        return out


def evaluate(
    records: Iterable[dict], rules: Iterable["AlertRule | str"]
) -> list[Alert]:
    """Post-hoc evaluation: replay a finished trace through the engine."""
    engine = AlertEngine(rules)
    for record in records:
        engine.emit(record)
    engine.finalize()
    return engine.alerts


#: Package-root alias — ``evaluate`` alone is too generic a name there.
evaluate_alerts = evaluate
