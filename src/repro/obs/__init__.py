"""repro.obs — end-to-end tracing, metrics and run reports.

The observability layer the timing arguments rest on: a process-wide but
explicitly-injectable :class:`Tracer` records spans and point events
carrying both **virtual time** (the simulation clock every TTC and
dollar figure is measured on) and **real host time** (``perf_counter``),
a :class:`Metrics` registry counts what the event stream makes awkward
to count, and exporters render it all as a JSONL log, a Chrome
``trace_event`` JSON (Perfetto / ``chrome://tracing``) or plain text.
``python -m repro.obs.report`` turns a trace file into per-stage
timelines, a virtual-vs-real breakdown and the hottest phases.

The layer also streams: attach a :class:`~repro.obs.live.JsonlStreamSink`
(or any :class:`TraceSink`) to a live tracer and every span open/close,
event and metric delta is pushed as it happens — ``python -m
repro.obs.monitor run.jsonl --follow`` tails the file into a live
progress view, and :class:`~repro.obs.alerts.AlertEngine` evaluates
SLO/alert rules (stage-duration SLOs, budget burn, heartbeat timeouts,
stragglers, cache-hit floors) against the same stream.

Tracing is off by default (:class:`NullTracer`: every call a no-op) and
never perturbs virtual quantities — TTCs, usage, comm bytes and contigs
are bit-identical with tracing on or off.

Quickstart::

    from repro.obs import Tracer, use_tracer, write_jsonl

    tracer = Tracer()
    with use_tracer(tracer):
        result = RnnotatorPipeline().run(dataset, config)
    write_jsonl(tracer, "run.trace.jsonl")
    # then: python -m repro.obs.report run.trace.jsonl
"""

from repro.obs.context import (
    BufferingTracer,
    SpanContext,
    WorkerTrace,
    merge_worker_trace,
    worker_track,
)
from repro.obs.export import (
    chrome_trace,
    load_jsonl,
    text_summary,
    write_chrome,
    write_jsonl,
)
from repro.obs.logsetup import VirtualClockFormatter, logging_setup
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.resources import (
    CadenceSampler,
    ResourceSample,
    ResourceSampler,
)
from repro.obs.tracer import (
    EventRecord,
    NullTracer,
    SpanRecord,
    Tracer,
    TraceSink,
    get_tracer,
    set_thread_tracer,
    set_tracer,
    use_tracer,
)

# The trace-analytics CLIs (critpath, attribution, ledger, monitor) are
# also importable from the package root, but lazily: eager imports here
# would put them in sys.modules before ``python -m repro.obs.<cli>``
# executes them, tripping runpy's double-import warning on every CLI run.
_LAZY_EXPORTS = {
    "CostAttribution": "repro.obs.attribution",
    "attribute_costs": "repro.obs.attribution",
    "CriticalPath": "repro.obs.critpath",
    "compute_critical_path": "repro.obs.critpath",
    "what_if": "repro.obs.critpath",
    "RunLedger": "repro.obs.ledger",
    "build_record": "repro.obs.ledger",
    "check_regressions": "repro.obs.ledger",
    "pipeline_ttc": "repro.obs.spans",
    "stage_times": "repro.obs.spans",
    "Alert": "repro.obs.alerts",
    "AlertEngine": "repro.obs.alerts",
    "AlertRule": "repro.obs.alerts",
    "default_rules": "repro.obs.alerts",
    "evaluate_alerts": "repro.obs.alerts",
    "parse_rule": "repro.obs.alerts",
    "CollectorSink": "repro.obs.live",
    "HeartbeatMonitor": "repro.obs.live",
    "InflightUnit": "repro.obs.live",
    "JsonlStreamSink": "repro.obs.live",
    "StragglerDetector": "repro.obs.live",
    "RunState": "repro.obs.monitor",
}


def __getattr__(name: str):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "Alert",
    "AlertEngine",
    "AlertRule",
    "BufferingTracer",
    "CadenceSampler",
    "CollectorSink",
    "CostAttribution",
    "Counter",
    "CriticalPath",
    "EventRecord",
    "Gauge",
    "HeartbeatMonitor",
    "Histogram",
    "InflightUnit",
    "JsonlStreamSink",
    "Metrics",
    "NullTracer",
    "ResourceSample",
    "ResourceSampler",
    "RunLedger",
    "RunState",
    "SpanContext",
    "SpanRecord",
    "StragglerDetector",
    "TraceSink",
    "Tracer",
    "VirtualClockFormatter",
    "WorkerTrace",
    "attribute_costs",
    "build_record",
    "check_regressions",
    "chrome_trace",
    "compute_critical_path",
    "default_rules",
    "evaluate_alerts",
    "get_tracer",
    "load_jsonl",
    "logging_setup",
    "merge_worker_trace",
    "parse_rule",
    "pipeline_ttc",
    "set_thread_tracer",
    "set_tracer",
    "stage_times",
    "text_summary",
    "use_tracer",
    "what_if",
    "worker_track",
    "write_chrome",
    "write_jsonl",
]
