"""repro.obs — end-to-end tracing, metrics and run reports.

The observability layer the timing arguments rest on: a process-wide but
explicitly-injectable :class:`Tracer` records spans and point events
carrying both **virtual time** (the simulation clock every TTC and
dollar figure is measured on) and **real host time** (``perf_counter``),
a :class:`Metrics` registry counts what the event stream makes awkward
to count, and exporters render it all as a JSONL log, a Chrome
``trace_event`` JSON (Perfetto / ``chrome://tracing``) or plain text.
``python -m repro.obs.report`` turns a trace file into per-stage
timelines, a virtual-vs-real breakdown and the hottest phases.

Tracing is off by default (:class:`NullTracer`: every call a no-op) and
never perturbs virtual quantities — TTCs, usage, comm bytes and contigs
are bit-identical with tracing on or off.

Quickstart::

    from repro.obs import Tracer, use_tracer, write_jsonl

    tracer = Tracer()
    with use_tracer(tracer):
        result = RnnotatorPipeline().run(dataset, config)
    write_jsonl(tracer, "run.trace.jsonl")
    # then: python -m repro.obs.report run.trace.jsonl
"""

from repro.obs.context import (
    BufferingTracer,
    SpanContext,
    WorkerTrace,
    merge_worker_trace,
    worker_track,
)
from repro.obs.export import (
    chrome_trace,
    load_jsonl,
    text_summary,
    write_chrome,
    write_jsonl,
)
from repro.obs.logsetup import VirtualClockFormatter, logging_setup
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.resources import (
    CadenceSampler,
    ResourceSample,
    ResourceSampler,
)
from repro.obs.tracer import (
    EventRecord,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_thread_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "BufferingTracer",
    "CadenceSampler",
    "Counter",
    "EventRecord",
    "Gauge",
    "Histogram",
    "Metrics",
    "NullTracer",
    "ResourceSample",
    "ResourceSampler",
    "SpanContext",
    "SpanRecord",
    "Tracer",
    "VirtualClockFormatter",
    "WorkerTrace",
    "chrome_trace",
    "get_tracer",
    "load_jsonl",
    "logging_setup",
    "merge_worker_trace",
    "set_thread_tracer",
    "set_tracer",
    "text_summary",
    "use_tracer",
    "worker_track",
    "write_chrome",
    "write_jsonl",
]
