"""stdlib logging wired to the virtual clock.

The codebase logs through per-module loggers under the ``"repro"``
namespace (``logging.getLogger(__name__)``); nothing is printed until
:func:`logging_setup` attaches a handler.  The formatter prefixes every
record with the virtual-clock timestamp — taken from an explicit clock
or from the clock bound to the current tracer — so log lines interleave
meaningfully with the trace: ``[v=   1234.5s] WARNING repro.pilot.agent:
...``.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, TextIO

from repro.obs.tracer import get_tracer

#: The namespace every repro logger lives under.
ROOT_LOGGER = "repro"

DEFAULT_FORMAT = "%(vclock)s %(levelname)-7s %(name)s: %(message)s"


class VirtualClockFormatter(logging.Formatter):
    """Adds a ``%(vclock)s`` field with the virtual time of the record.

    The clock is resolved per record — explicit ``clock`` first, else
    whatever clock the current tracer has bound — so one handler follows
    the active run without rewiring.
    """

    def __init__(
        self, fmt: str = DEFAULT_FORMAT, clock: Any | None = None
    ) -> None:
        super().__init__(fmt)
        self._clock = clock

    def _resolve_clock(self) -> Any | None:
        if self._clock is not None:
            return self._clock
        return get_tracer().clock

    def format(self, record: logging.LogRecord) -> str:
        clock = self._resolve_clock()
        if clock is not None:
            record.vclock = f"[v={clock.now:10.1f}s]"
        else:
            record.vclock = "[v=        --]"
        return super().format(record)


def logging_setup(
    level: int = logging.INFO,
    stream: TextIO | None = None,
    clock: Any | None = None,
    fmt: str = DEFAULT_FORMAT,
) -> logging.Logger:
    """Attach a virtual-clock-stamped stream handler to the ``repro``
    logger tree and return the root ``repro`` logger.

    Idempotent: calling again replaces the handler this function
    installed previously (other handlers are left alone), so tests and
    notebooks can re-run it freely.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(VirtualClockFormatter(fmt, clock=clock))
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    return logger
