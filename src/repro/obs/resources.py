"""Host resource telemetry: RSS and CPU snapshots, without new deps.

The STAR-aligner cloud studies pick instance types off per-task resource
profiles; this module supplies the raw samples.  Two sources, both in
the standard library / procfs:

* ``/proc/self/status`` ``VmRSS`` — the process's *current* resident set
  (Linux only; falls back to ``ru_maxrss``, the high-water mark, where
  procfs is unavailable);
* ``resource.getrusage(RUSAGE_SELF)`` — cumulative user+system CPU
  seconds and the RSS high-water mark.

A :class:`ResourceSampler` snapshots both on demand (the worker-side
tracer samples at span open/close), and a :class:`CadenceSampler` runs a
daemon thread that invokes a callback every ``interval`` seconds inside
long workloads.  Samples are plain picklable dataclasses so they cross
the process boundary inside a worker trace.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

try:
    import resource as _resource
except ImportError:  # non-POSIX platform
    _resource = None

_PROC_STATUS = Path("/proc/self/status")

#: ru_maxrss unit: kilobytes on Linux, bytes on macOS.
_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024


@dataclass(frozen=True)
class ResourceSample:
    """One resource snapshot on the sampling process's real clock."""

    r_time: float  # perf_counter seconds (sampler-process domain)
    rss_bytes: int  # current RSS (or high-water mark as a fallback)
    cpu_seconds: float  # cumulative user + system CPU


def read_rss_bytes() -> int:
    """Current resident set size in bytes (0 when unreadable)."""
    try:
        with _PROC_STATUS.open() as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    if _resource is not None:
        return _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss * _MAXRSS_UNIT
    return 0


def read_cpu_seconds() -> float:
    """Cumulative user + system CPU seconds of this process."""
    if _resource is None:
        return 0.0
    ru = _resource.getrusage(_resource.RUSAGE_SELF)
    return ru.ru_utime + ru.ru_stime


class ResourceSampler:
    """Snapshots RSS/CPU on demand."""

    def sample(self) -> ResourceSample:
        return ResourceSample(
            r_time=time.perf_counter(),
            rss_bytes=read_rss_bytes(),
            cpu_seconds=read_cpu_seconds(),
        )


class CadenceSampler:
    """Calls ``callback(sample)`` every ``interval`` seconds until stopped.

    Runs on a daemon thread so a crashing workload can never be kept
    alive by its own telemetry; :meth:`stop` is idempotent and joins the
    thread.  The thread only reads clocks and procfs — it never touches
    the workload's state, so sampling cannot perturb results.
    """

    def __init__(
        self,
        interval: float,
        callback: Callable[[ResourceSample], None],
        sampler: ResourceSampler | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("cadence interval must be > 0")
        self.interval = interval
        self.callback = callback
        self.sampler = sampler or ResourceSampler()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    def start(self) -> None:
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()  # allow start -> stop -> start reuse
            self._thread = threading.Thread(
                target=self._run, name="repro-resource-sampler", daemon=True
            )
            self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.callback(self.sampler.sample())

    def stop(self) -> None:
        """Stop and join the sampling thread.

        Safe under double-stop, stop-before-start, and concurrent stops
        from several threads (the lock makes take-and-join atomic, so
        only one caller joins).  Calling from the sampler thread itself
        (a callback deciding to stop) signals shutdown without the
        illegal self-join.
        """
        self._stop.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None and thread is not threading.current_thread():
            thread.join()
