"""Cross-process span context, worker-side buffering, parent-side merge.

The pilot-system literature (Merzky et al., RADICAL-Pilot) reconciles
per-component timestamps collected in *different processes* onto one
timeline; this module is that machinery for the executor backends.
Three pieces:

* :class:`SpanContext` — the picklable capsule the dispatching side
  attaches to a workload: the dispatch span to re-parent under, the
  pilot/unit track names, a ``(wall, perf_counter)`` clock handshake and
  the resource-sampling cadence.
* :class:`BufferingTracer` — a :class:`~repro.obs.tracer.Tracer` the
  worker installs (thread-locally) around ``run_workload``: spans,
  events and metrics land in its private buffers, every span carries
  RSS/CPU endpoint snapshots, and an optional cadence thread emits
  ``category="resource"`` counter samples during long workloads.  Its
  whole state ships back as a :class:`WorkerTrace`.
* :func:`merge_worker_trace` — folds a :class:`WorkerTrace` into the
  parent tracer: span ids are re-issued from the parent's counter,
  worker-root spans are re-parented under the dispatch span, every real
  timestamp is shifted into the parent's ``perf_counter`` domain via the
  clock handshake (monotonic clocks are **not** comparable across
  processes), records land on one ``worker-<pid>`` track per worker
  process, and the worker's metric deltas are merged into the parent
  registry.

Clock alignment: ``perf_counter`` has an unspecified per-process epoch,
but both processes share the wall clock.  The dispatching side samples
``(wall_p, perf_p)`` when it builds the context; the worker samples
``(wall_w, perf_w)`` when it starts.  A worker timestamp ``x`` maps to
the parent domain as ``x + offset`` with

    offset = (perf_p - wall_p) - (perf_w - wall_w)

exact up to wall-clock skew between the two samples (microseconds for
forked workers on one host).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from repro.obs.metrics import Metrics
from repro.obs.resources import CadenceSampler, ResourceSample, ResourceSampler
from repro.obs.tracer import (
    MAIN_TRACK,
    EventRecord,
    SpanHandle,
    SpanRecord,
    Tracer,
)


@dataclass(frozen=True)
class SpanContext:
    """What a workload needs to record spans for a remote parent.

    Picklable and immutable; built with :meth:`capture` inside the
    dispatch span so ``parent_span_id`` is the span the worker's records
    are re-parented under.
    """

    parent_span_id: int | None = None
    process: str = MAIN_TRACK
    thread: str = MAIN_TRACK
    parent_wall: float = 0.0  # time.time() at capture
    parent_perf: float = 0.0  # time.perf_counter() at capture
    #: Seconds between in-flight resource samples (0 = endpoints only).
    resource_cadence: float = 0.0

    @classmethod
    def capture(
        cls,
        tracer: Tracer,
        parent_span_id: int | None = None,
        process: str | None = None,
        thread: str | None = None,
        resource_cadence: float = 0.0,
    ) -> "SpanContext | None":
        """A context for the current instant, or None when tracing is off
        (so disabled tracing ships zero extra bytes to workers)."""
        if not tracer.enabled:
            return None
        return cls(
            parent_span_id=parent_span_id,
            process=process if process is not None else MAIN_TRACK,
            thread=thread if thread is not None else MAIN_TRACK,
            parent_wall=time.time(),
            parent_perf=time.perf_counter(),
            resource_cadence=resource_cadence,
        )


@dataclass
class WorkerTrace:
    """Everything one traced workload recorded, ready to pickle home.

    All real timestamps are in the *worker's* ``perf_counter`` domain;
    the ``(worker_wall, worker_perf)`` handshake pair lets the parent
    shift them (see module docstring).  The metrics registry is a fresh
    one per workload, so every value in it is a delta.
    """

    pid: int
    worker_wall: float
    worker_perf: float
    spans: list[SpanRecord] = field(default_factory=list)
    events: list[EventRecord] = field(default_factory=list)
    metrics: Metrics = field(default_factory=Metrics)

    @property
    def n_records(self) -> int:
        return len(self.spans) + len(self.events)

    def r_offset(self, context: SpanContext) -> float:
        """Seconds to add to worker real timestamps to land them in the
        dispatching process's ``perf_counter`` domain."""
        return (context.parent_perf - context.parent_wall) - (
            self.worker_perf - self.worker_wall
        )


class BufferingTracer(Tracer):
    """Worker-side tracer: buffers everything, samples resources.

    Unlike the parent tracer it is never bound to a virtual clock — the
    simulation clock lives in the dispatching process — so its records
    carry ``None`` virtual times, keeping the tracing-on/off parity
    guarantee trivially intact for worker spans.

    Top-level spans (the workload boundary) get endpoint resource
    attributes (``rss_bytes``, ``rss_delta_bytes``, ``cpu_seconds`` —
    close-time RSS, RSS growth across the span, CPU burned inside it).
    Nested spans skip the endpoint reads — procfs is not free, and a
    tight inner loop of instrumented spans must not pay two resource
    snapshots each; the cadence thread covers the interior instead.
    With ``cadence > 0`` a daemon thread emits ``category="resource"``
    events every ``cadence`` seconds; the Chrome exporter renders those
    as Perfetto counter tracks.  One sample is always taken at open and
    at :meth:`close`, so even instant workloads chart two points.
    """

    def __init__(
        self, cadence: float = 0.0, sampler: ResourceSampler | None = None
    ) -> None:
        super().__init__()
        self.pid = os.getpid()
        self.worker_wall = time.time()
        self.worker_perf = time.perf_counter()
        self._sampler = sampler or ResourceSampler()
        self._cadence: CadenceSampler | None = None
        self._record_sample(self._sampler.sample())
        if cadence > 0:
            self._cadence = CadenceSampler(cadence, self._record_sample)
            self._cadence.start()

    # -- resource sampling --------------------------------------------------

    def _record_sample(self, sample: ResourceSample) -> None:
        self.events.append(
            EventRecord(
                name="resource.sample",
                category="resource",
                v_time=None,
                r_time=sample.r_time,
                attrs={
                    "rss_bytes": sample.rss_bytes,
                    "cpu_seconds": sample.cpu_seconds,
                },
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        process: str | None = None,
        thread: str | None = None,
        **attrs: Any,
    ) -> Iterator[SpanHandle]:
        top_level = not self._stack()
        s0 = self._sampler.sample() if top_level else None
        with super().span(
            name, category=category, process=process, thread=thread, **attrs
        ) as handle:
            try:
                yield handle
            finally:
                if s0 is not None:
                    s1 = self._sampler.sample()
                    handle.set(
                        rss_bytes=s1.rss_bytes,
                        rss_delta_bytes=s1.rss_bytes - s0.rss_bytes,
                        cpu_seconds=s1.cpu_seconds - s0.cpu_seconds,
                    )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop the cadence thread and take the final resource sample."""
        if self._cadence is not None:
            self._cadence.stop()
            self._cadence = None
        self._record_sample(self._sampler.sample())

    def to_worker_trace(self) -> WorkerTrace:
        return WorkerTrace(
            pid=self.pid,
            worker_wall=self.worker_wall,
            worker_perf=self.worker_perf,
            spans=list(self.spans),
            events=list(self.events),
            metrics=self.metrics,
        )


def worker_track(pid: int) -> str:
    """The trace track (process row) name for worker ``pid``."""
    return f"worker-{pid}"


def merge_worker_trace(
    tracer: Tracer, trace: "WorkerTrace | None", context: "SpanContext | None"
) -> int:
    """Fold a worker's records into the parent tracer; returns how many
    records were merged (0 when there is nothing to merge or tracing is
    off).  See the module docstring for the three rewrites applied."""
    if trace is None or context is None or not tracer.enabled:
        return 0
    offset = trace.r_offset(context)
    process = worker_track(trace.pid)
    id_map = {s.span_id: next(tracer._ids) for s in trace.spans}
    merged = 0
    for s in trace.spans:
        parent_id = (
            id_map.get(s.parent_id, context.parent_span_id)
            if s.parent_id is not None
            else context.parent_span_id
        )
        tracer.record_span(
            replace(
                s,
                span_id=id_map[s.span_id],
                parent_id=parent_id,
                process=process,
                thread=context.thread if s.thread == MAIN_TRACK else s.thread,
                r_start=s.r_start + offset,
                r_end=s.r_end + offset,
            )
        )
        merged += 1
    for e in trace.events:
        tracer.record_event(
            replace(
                e,
                process=process,
                thread=context.thread if e.thread == MAIN_TRACK else e.thread,
                r_time=e.r_time + offset,
            )
        )
        merged += 1
    # Gauge recency is judged on real time; shift into the parent domain
    # before the registry merge compares timestamps.
    for gauge in trace.metrics.gauges.values():
        if gauge.updated_r is not None:
            gauge.updated_r += offset
    tracer.metrics.merge(
        trace.metrics,
        on_delta=tracer._emit_delta if tracer._sinks else None,
    )
    return merged
