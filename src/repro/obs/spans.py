"""Shared views over JSONL trace records.

Every trace-analytics CLI (:mod:`repro.obs.report`, :mod:`~.diff`,
:mod:`~.critpath`, :mod:`~.attribution`, :mod:`~.ledger`) reads the same
record stream :func:`repro.obs.export.write_jsonl` produces — one dict
per span/event plus a final metrics snapshot.  This module is the single
place that knows the record schema, so the consumers stay free of
copy-pasted filtering helpers.
"""

from __future__ import annotations

from typing import Iterable

#: Empty metrics snapshot, the shape :meth:`Metrics.snapshot` produces.
EMPTY_METRICS: dict = {"counters": {}, "gauges": {}, "histograms": {}}


def spans_of(records: Iterable[dict]) -> list[dict]:
    """All span records, in stream order."""
    return [r for r in records if r.get("type") == "span"]


def events_of(records: Iterable[dict]) -> list[dict]:
    """All event records, in stream order."""
    return [r for r in records if r.get("type") == "event"]


def metrics_of(records: Iterable[dict]) -> dict:
    """The metrics snapshot (an empty one when the trace carries none)."""
    found = next(
        (r["data"] for r in records if r.get("type") == "metrics"), None
    )
    if found is None:
        return {k: dict(v) for k, v in EMPTY_METRICS.items()}
    return found


def v_duration(span: dict) -> float:
    """Virtual seconds covered by a span (0 when no clock was bound)."""
    if span["v0"] is None or span["v1"] is None:
        return 0.0
    return span["v1"] - span["v0"]


def r_duration(span: dict) -> float:
    """Real host seconds covered by a span."""
    return span["r1"] - span["r0"]


def stage_spans(records: Iterable[dict]) -> list[dict]:
    """The ``category="stage"`` spans, ordered by virtual start."""
    out = [s for s in spans_of(records) if s["cat"] == "stage"]
    out.sort(key=lambda s: (s["v0"] is None, s["v0"], s["v1"]))
    return out


def stage_name(span: dict) -> str:
    """A stage span's logical name (``stage`` attr, else span name)."""
    return span["attrs"].get("stage", span["name"])


def stage_times(records: Iterable[dict]) -> dict[str, tuple[float, float]]:
    """stage name -> (virtual TTC, real seconds)."""
    return {
        stage_name(s): (v_duration(s), r_duration(s))
        for s in stage_spans(records)
    }


def pipeline_span(records: Iterable[dict]) -> dict | None:
    """The run-covering ``category="pipeline"`` root span, if present.

    With several runs in one trace (``run_many``), the *last* one wins —
    analytics CLIs operate on single-run traces.
    """
    found = None
    for s in spans_of(records):
        if s["cat"] == "pipeline":
            found = s
    return found


def pipeline_ttc(records: Iterable[dict]) -> float | None:
    """The run's end-to-end virtual TTC, from the pipeline root span."""
    root = pipeline_span(records)
    if root is None or root["v0"] is None or root["v1"] is None:
        return None
    return root["v1"] - root["v0"]
