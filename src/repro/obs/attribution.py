"""Dollar and node-second attribution from billing spans + intervals.

Joins the per-VM billing spans (``vm.lifetime``, stamped with ``vm_id``,
``pilot`` and ``cost_usd`` by :mod:`repro.cloud.ec2`) against the trace's
interval structure to answer the paper's economic question per run:
*where did the money go?*  Each VM's uptime is partitioned into buckets
— its own provisioning window, cluster setup, each pipeline stage, and
explicit idle remainder — and its dollars are split pro rata by time, so
bucket dollars sum back to the billing total.  The assembly stage is
further subdivided per ``(assembler, k)`` by exec-span node-seconds,
with cache hit/miss provenance from the ``assembly_cache.lookup``
events.

The same module hosts the planner gate: the pipeline span carries the
:func:`repro.core.planner.predict_run` prediction made *before* the
fan-out ran (``planner_ttc_s`` / ``planner_cost_usd``), and
:func:`planner_violations` checks it against the trace's actuals with
relative tolerances, in the style of :mod:`repro.obs.diff` — exit 2 for
structural problems (no prediction on the trace), exit 1 for a blown
tolerance.

CLI::

    python -m repro.obs.attribution trace.jsonl
    python -m repro.obs.attribution trace.jsonl --json
    python -m repro.obs.attribution trace.jsonl --planner-gate \\
        --ttc-rel 0.10 --cost-rel 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Sequence

from .critpath import compute_critical_path
from .export import load_jsonl
from .spans import events_of, pipeline_span, spans_of, stage_name

#: Bucket labels for non-stage VM time.
PROVISION = "provision"
SETUP = "cluster-setup"
IDLE = "idle"


@dataclass
class VMAttribution:
    """One VM's billed dollars split over time buckets."""

    vm_id: str
    pilot: str | None
    instance_type: str
    v_start: float
    v_end: float
    cost_usd: float
    preempted: bool = False
    #: bucket label -> seconds of this VM's uptime (partition: sums to
    #: ``uptime_s`` up to float error).
    seconds: dict[str, float] = field(default_factory=dict)

    @property
    def uptime_s(self) -> float:
        return self.v_end - self.v_start

    def dollars(self) -> dict[str, float]:
        """bucket -> USD, pro rata by time; sums back to ``cost_usd``
        within float round-off (the largest bucket absorbs the
        pro-rata residual)."""
        if not self.seconds or self.uptime_s <= 0:
            return {IDLE: self.cost_usd}
        out = {
            label: self.cost_usd * secs / self.uptime_s
            for label, secs in self.seconds.items()
        }
        largest = max(out, key=lambda k: out[k])
        out[largest] = self.cost_usd - sum(
            v for k, v in out.items() if k != largest
        )
        return out


@dataclass
class AssemblyJobCost:
    """One fan-out job's share of the assembly-stage spend."""

    assembler: str
    k: int | None
    nodes: int
    node_seconds: float
    cost_usd: float
    cache: str | None = None  # "hit" | "miss" | None (cache disabled)


@dataclass
class CostAttribution:
    """The full per-run cost table."""

    total_usd: float
    billed_usd: float  # from the pipeline span, for cross-checking
    vms: list[VMAttribution]
    by_bucket: dict[str, float]  # bucket -> USD across all VMs
    node_seconds_by_bucket: dict[str, float]
    assembly_jobs: list[AssemblyJobCost]
    by_pilot: dict[str, float]

    def as_dict(self) -> dict:
        return {
            "total_usd": self.total_usd,
            "billed_usd": self.billed_usd,
            "by_bucket_usd": {
                k: round(v, 6) for k, v in self.by_bucket.items()
            },
            "node_seconds_by_bucket": {
                k: round(v, 3)
                for k, v in self.node_seconds_by_bucket.items()
            },
            "by_pilot_usd": {
                k: round(v, 6) for k, v in self.by_pilot.items()
            },
            "vms": [
                {
                    "vm_id": vm.vm_id,
                    "pilot": vm.pilot,
                    "instance_type": vm.instance_type,
                    "uptime_s": round(vm.uptime_s, 3),
                    "cost_usd": vm.cost_usd,
                    "preempted": vm.preempted,
                    "buckets_usd": {
                        k: round(v, 6) for k, v in vm.dollars().items()
                    },
                }
                for vm in self.vms
            ],
            "assembly_jobs": [
                {
                    "assembler": j.assembler,
                    "k": j.k,
                    "nodes": j.nodes,
                    "node_seconds": round(j.node_seconds, 3),
                    "cost_usd": round(j.cost_usd, 6),
                    "cache": j.cache,
                }
                for j in self.assembly_jobs
            ],
        }


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def _partition_vm(
    vm: VMAttribution,
    provision_ivals: list[tuple[float, float]],
    setup_ivals: list[tuple[float, float]],
    stage_ivals: list[tuple[float, float, str]],
) -> dict[str, float]:
    """Partition one VM's uptime into labelled buckets.

    Classification priority per instant: the VM's own provisioning
    window, then cluster setup, then whichever pipeline stage was
    running, else idle.  Implemented as a boundary sweep so the bucket
    seconds exactly tile the uptime interval.
    """
    cuts = {vm.v_start, vm.v_end}
    for iv in provision_ivals + setup_ivals:
        cuts.update(iv)
    for s0, s1, _ in stage_ivals:
        cuts.update((s0, s1))
    points = sorted(c for c in cuts if vm.v_start <= c <= vm.v_end)
    if points[0] != vm.v_start:
        points.insert(0, vm.v_start)
    if points[-1] != vm.v_end:
        points.append(vm.v_end)

    out: dict[str, float] = {}
    for p0, p1 in zip(points, points[1:]):
        if p1 <= p0:
            continue
        mid = (p0 + p1) / 2
        if any(i0 <= mid < i1 for i0, i1 in provision_ivals):
            label = PROVISION
        elif any(i0 <= mid < i1 for i0, i1 in setup_ivals):
            label = SETUP
        else:
            label = next(
                (nm for s0, s1, nm in stage_ivals if s0 <= mid < s1), IDLE
            )
        out[label] = out.get(label, 0.0) + (p1 - p0)
    return out


def attribute_costs(records: Sequence[dict]) -> CostAttribution:
    """Build the per-run cost table from a single-run trace."""
    spans = spans_of(records)
    lifetimes = [s for s in spans if s["name"] == "vm.lifetime"]
    if not lifetimes:
        raise ValueError("trace has no vm.lifetime billing spans")

    provisions = {}  # vm_id -> list of (v0, v1)
    for s in spans:
        if s["name"] == "vm.provision":
            for vid in s["attrs"].get("vm_ids", []):
                provisions.setdefault(vid, []).append((s["v0"], s["v1"]))
    setup_ivals = [
        (s["v0"], s["v1"])
        for s in spans
        if s["name"].startswith("cluster.setup")
    ]
    stage_ivals = [
        (s["v0"], s["v1"], stage_name(s))
        for s in spans
        if s["cat"] == "stage"
    ]

    vms: list[VMAttribution] = []
    for s in lifetimes:
        a = s["attrs"]
        vm = VMAttribution(
            vm_id=a.get("vm_id", s["thread"]),
            pilot=a.get("pilot"),
            instance_type=a.get("instance_type", "?"),
            v_start=s["v0"],
            v_end=s["v1"],
            cost_usd=float(a.get("cost_usd", 0.0)),
            preempted=bool(a.get("preempted", False)),
        )
        vm.seconds = _partition_vm(
            vm, provisions.get(vm.vm_id, []), setup_ivals, stage_ivals
        )
        vms.append(vm)

    by_bucket: dict[str, float] = {}
    node_seconds: dict[str, float] = {}
    by_pilot: dict[str, float] = {}
    for vm in vms:
        for label, usd in vm.dollars().items():
            by_bucket[label] = by_bucket.get(label, 0.0) + usd
        for label, secs in vm.seconds.items():
            node_seconds[label] = node_seconds.get(label, 0.0) + secs
        key = vm.pilot or "?"
        by_pilot[key] = by_pilot.get(key, 0.0) + vm.cost_usd
    by_bucket = dict(sorted(by_bucket.items(), key=lambda kv: -kv[1]))

    # -- subdivide the assembly stage per (assembler, k) job ----------------
    execs = [
        s
        for s in spans
        if s["cat"] == "unit"
        and s["attrs"].get("stage") == "transcript-assembly"
        and s["v0"] is not None
    ]
    cache_outcomes: dict[tuple, str] = {}
    for e in events_of(records):
        if e["name"] == "assembly_cache.lookup":
            a = e["attrs"]
            cache_outcomes[(a.get("assembler"), a.get("k"))] = a.get(
                "outcome"
            )
    assembly_usd = by_bucket.get("transcript-assembly", 0.0)
    jobs: list[AssemblyJobCost] = []
    total_ns = 0.0
    for s in execs:
        a = s["attrs"]
        ns = (s["v1"] - s["v0"]) * max(int(a.get("nodes", 1)), 1)
        total_ns += ns
        jobs.append(
            AssemblyJobCost(
                assembler=a.get("assembler", a.get("unit", s["name"])),
                k=a.get("k"),
                nodes=int(a.get("nodes", 1)),
                node_seconds=ns,
                cost_usd=0.0,
                cache=cache_outcomes.get((a.get("assembler"), a.get("k"))),
            )
        )
    for j in jobs:
        if total_ns > 0:
            j.cost_usd = assembly_usd * j.node_seconds / total_ns
    jobs.sort(key=lambda j: -j.node_seconds)

    root = pipeline_span(records)
    billed = (
        float(root["attrs"].get("total_cost_usd", 0.0))
        if root is not None
        else 0.0
    )
    return CostAttribution(
        total_usd=sum(vm.cost_usd for vm in vms),
        billed_usd=billed,
        vms=vms,
        by_bucket=by_bucket,
        node_seconds_by_bucket=node_seconds,
        assembly_jobs=jobs,
        by_pilot=dict(sorted(by_pilot.items())),
    )


def format_attribution(attr: CostAttribution) -> str:
    lines = ["== cost attribution =="]
    lines.append(
        f"billed total ${attr.total_usd:.2f}"
        f" across {len(attr.vms)} VM(s)"
    )
    lines.append("")
    lines.append(f"{'bucket':<22} {'node-s':>10} {'USD':>8} {'share':>7}")
    for label, usd in attr.by_bucket.items():
        secs = attr.node_seconds_by_bucket.get(label, 0.0)
        share = usd / attr.total_usd if attr.total_usd else 0.0
        lines.append(
            f"{label:<22} {secs:>10.1f} {usd:>8.3f} {share:>6.1%}"
        )
    lines.append("")
    lines.append("== per VM ==")
    for vm in attr.vms:
        flag = " (preempted)" if vm.preempted else ""
        lines.append(
            f"  {vm.vm_id} [{vm.pilot or '-'}] {vm.instance_type}"
            f" up {vm.uptime_s:.1f}s -> ${vm.cost_usd:.2f}{flag}"
        )
    if attr.assembly_jobs:
        lines.append("")
        lines.append("== assembly fan-out ==")
        lines.append(
            f"{'job':<16} {'nodes':>5} {'node-s':>10} {'USD':>8}  cache"
        )
        for j in attr.assembly_jobs:
            job = f"{j.assembler}_k{j.k}" if j.k is not None else j.assembler
            lines.append(
                f"{job:<16} {j.nodes:>5} {j.node_seconds:>10.1f}"
                f" {j.cost_usd:>8.4f}  {j.cache or '-'}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Planner prediction gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateResult:
    """Predicted-vs-actual comparison for one quantity."""

    name: str
    predicted: float
    actual: float
    rel_err: float
    tolerance: float

    @property
    def ok(self) -> bool:
        return self.rel_err <= self.tolerance


def planner_violations(
    records: Sequence[dict],
    ttc_rel: float = 0.10,
    cost_rel: float = 0.25,
) -> tuple[list[str], list[GateResult]]:
    """Check the planner's pre-run prediction against trace actuals.

    Returns ``(structural, gates)``: structural problems mean the trace
    cannot be gated at all (no pipeline span, no prediction attrs); each
    :class:`GateResult` compares one quantity against its tolerance.
    The actual TTC comes from the critical path (which tiles the run
    exactly), the actual cost from the billing spans.
    """
    structural: list[str] = []
    root = pipeline_span(records)
    if root is None:
        return ["trace has no pipeline span"], []
    attrs = root["attrs"]
    pred_ttc = attrs.get("planner_ttc_s")
    pred_cost = attrs.get("planner_cost_usd")
    if pred_ttc is None or pred_cost is None:
        structural.append(
            "pipeline span carries no planner prediction "
            "(planner_ttc_s/planner_cost_usd)"
        )
        return structural, []

    path = compute_critical_path(records)
    actual_ttc = path.total
    actual_cost = sum(
        float(s["attrs"].get("cost_usd", 0.0))
        for s in spans_of(records)
        if s["name"] == "vm.lifetime"
    )

    gates = [
        GateResult(
            name="ttc_s",
            predicted=float(pred_ttc),
            actual=actual_ttc,
            rel_err=(
                abs(actual_ttc - pred_ttc) / pred_ttc if pred_ttc else 1.0
            ),
            tolerance=ttc_rel,
        ),
        GateResult(
            name="cost_usd",
            predicted=float(pred_cost),
            actual=actual_cost,
            rel_err=(
                abs(actual_cost - pred_cost) / pred_cost
                if pred_cost
                else (0.0 if not actual_cost else 1.0)
            ),
            tolerance=cost_rel,
        ),
    ]
    return structural, gates


def format_gate(structural: list[str], gates: list[GateResult]) -> str:
    lines = ["== planner prediction gate =="]
    for s in structural:
        lines.append(f"  STRUCTURAL: {s}")
    for g in gates:
        verdict = "ok" if g.ok else "VIOLATION"
        lines.append(
            f"  {g.name:<9} predicted {g.predicted:>12.3f}"
            f" actual {g.actual:>12.3f}"
            f" rel-err {g.rel_err:.2%} (tol {g.tolerance:.0%}) {verdict}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.attribution",
        description="Per-run dollar/node-second attribution from a trace.",
    )
    parser.add_argument("trace", help="JSONL trace file")
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--planner-gate",
        action="store_true",
        help=(
            "check planner predicted-vs-actual TTC and cost; exit 1 on a "
            "blown tolerance, 2 when the trace cannot be gated"
        ),
    )
    parser.add_argument(
        "--ttc-rel",
        type=float,
        default=0.10,
        help="relative TTC tolerance for the planner gate",
    )
    parser.add_argument(
        "--cost-rel",
        type=float,
        default=0.25,
        help="relative cost tolerance for the planner gate",
    )
    args = parser.parse_args(argv)

    records = load_jsonl(args.trace)
    try:
        attr = attribute_costs(records)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    structural: list[str] = []
    gates: list[GateResult] = []
    if args.planner_gate:
        structural, gates = planner_violations(
            records, ttc_rel=args.ttc_rel, cost_rel=args.cost_rel
        )

    if args.json:
        payload = attr.as_dict()
        if args.planner_gate:
            payload["planner_gate"] = {
                "structural": structural,
                "gates": [
                    {
                        "name": g.name,
                        "predicted": g.predicted,
                        "actual": g.actual,
                        "rel_err": g.rel_err,
                        "tolerance": g.tolerance,
                        "ok": g.ok,
                    }
                    for g in gates
                ],
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_attribution(attr))
        if args.planner_gate:
            print()
            print(format_gate(structural, gates))

    if args.planner_gate:
        if structural:
            return 2
        if any(not g.ok for g in gates):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
