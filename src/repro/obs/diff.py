"""Trace diffing: make a BENCH regression a diffable artifact.

``python -m repro.obs.diff base.jsonl other.jsonl`` compares two JSONL
traces written by :func:`repro.obs.write_jsonl`:

* **per-stage deltas** — virtual TTC and real host seconds of every
  ``category="stage"`` span, side by side with absolute and relative
  drift (virtual times are deterministic for an identical-seed run, so
  any virtual drift is a real behaviour change; real times are hardware
  noise unless you ask to gate them);
* **span structure** — span/event names that appear in only one trace
  (an instrumentation point added or lost), plus count changes;
* **metric drift** — counters and gauges by relative drift, histograms
  by count and mean (report-only: their values are real-time shaped).

Exit status (CI-distinguishable): 0 when every gated quantity is within
its threshold, **1** on threshold violations only (drift), **2** when
the trace *structure* changed (span/event names appeared or vanished —
an instrumentation change, not mere drift; takes precedence when both
kinds are present).  Gates: virtual drift is gated by ``--v-rel``
(default 0: identical-seed traces must agree exactly), structural
changes are always gated (disable with ``--ignore-structure``), real
time by ``--r-rel`` and counter/gauge drift by ``--metric-rel`` only
when passed.  ``--json`` emits the whole comparison as one JSON object
for machine-readable CI logs.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.export import load_jsonl
from repro.obs.spans import metrics_of as _metrics_of
from repro.obs.spans import stage_times as _stage_times

#: Floor for relative-drift denominators.
_EPS = 1e-12

#: ``main`` exit codes: structure changed / a threshold blew.
EXIT_OK = 0
EXIT_THRESHOLD = 1
EXIT_STRUCTURE = 2


def _rel(a: float, b: float) -> float:
    """Relative drift of ``b`` vs ``a`` (0 when both are 0)."""
    if a == b:
        return 0.0
    return abs(b - a) / max(abs(a), abs(b), _EPS)


def _name_counts(records: Iterable[dict]) -> dict[tuple[str, str, str], int]:
    """(type, category, name) -> occurrence count."""
    out: dict[tuple[str, str, str], int] = {}
    for r in records:
        kind = r.get("type")
        if kind not in ("span", "event"):
            continue
        key = (kind, r.get("cat", ""), r["name"])
        out[key] = out.get(key, 0) + 1
    return out


@dataclass
class StageDelta:
    stage: str
    v_base: float
    v_other: float
    r_base: float
    r_other: float

    @property
    def v_rel(self) -> float:
        return _rel(self.v_base, self.v_other)

    @property
    def r_rel(self) -> float:
        return _rel(self.r_base, self.r_other)


@dataclass
class MetricDelta:
    kind: str  # "counter" | "gauge"
    name: str
    base: float | None
    other: float | None

    @property
    def rel(self) -> float:
        if self.base is None or self.other is None:
            return float("inf")  # appeared or vanished entirely
        return _rel(self.base, self.other)


@dataclass
class TraceDiff:
    """Everything the comparison found, before any gating."""

    stages: list[StageDelta] = field(default_factory=list)
    total_v_base: float = 0.0
    total_v_other: float = 0.0
    new_names: list[tuple[str, str, str]] = field(default_factory=list)
    missing_names: list[tuple[str, str, str]] = field(default_factory=list)
    count_changes: list[tuple[tuple[str, str, str], int, int]] = field(
        default_factory=list
    )
    metric_deltas: list[MetricDelta] = field(default_factory=list)
    histogram_notes: list[str] = field(default_factory=list)

    @property
    def total_v_rel(self) -> float:
        return _rel(self.total_v_base, self.total_v_other)

    @property
    def max_stage_v_rel(self) -> float:
        return max((d.v_rel for d in self.stages), default=0.0)

    # -- gating --------------------------------------------------------------

    def threshold_violations(
        self,
        v_rel: float = 0.0,
        r_rel: float | None = None,
        metric_rel: float | None = None,
    ) -> list[str]:
        """Drift beyond its thresholds (exit code 1 material)."""
        out = []
        for d in self.stages:
            if d.v_rel > v_rel:
                out.append(
                    f"stage {d.stage!r}: virtual drift {d.v_rel:.2%} "
                    f"({d.v_base:g} s -> {d.v_other:g} s) > {v_rel:.2%}"
                )
            if r_rel is not None and d.r_rel > r_rel:
                out.append(
                    f"stage {d.stage!r}: real drift {d.r_rel:.2%} "
                    f"({d.r_base:.3f} s -> {d.r_other:.3f} s) > {r_rel:.2%}"
                )
        if self.total_v_rel > v_rel:
            out.append(
                f"total virtual time drift {self.total_v_rel:.2%} "
                f"({self.total_v_base:g} s -> {self.total_v_other:g} s) "
                f"> {v_rel:.2%}"
            )
        if metric_rel is not None:
            for m in self.metric_deltas:
                if m.rel > metric_rel:
                    out.append(
                        f"{m.kind} {m.name!r}: drift "
                        f"{m.base} -> {m.other} > {metric_rel:.2%}"
                    )
        return out

    def structural_violations(self) -> list[str]:
        """Span/event names present in only one trace (exit code 2
        material: instrumentation changed, not mere drift)."""
        out = []
        for key in self.new_names:
            out.append(f"new {key[0]} {key[2]!r} (cat {key[1]!r})")
        for key in self.missing_names:
            out.append(f"missing {key[0]} {key[2]!r} (cat {key[1]!r})")
        return out

    def violations(
        self,
        v_rel: float = 0.0,
        r_rel: float | None = None,
        metric_rel: float | None = None,
        structure: bool = True,
    ) -> list[str]:
        """All reasons this diff fails: thresholds, then structure."""
        out = self.threshold_violations(
            v_rel=v_rel, r_rel=r_rel, metric_rel=metric_rel
        )
        if structure:
            out.extend(self.structural_violations())
        return out

    def as_dict(self) -> dict:
        """Machine-readable view of the whole comparison."""
        return {
            "total_v_base": self.total_v_base,
            "total_v_other": self.total_v_other,
            "total_v_rel": self.total_v_rel,
            "stages": [
                {
                    "stage": d.stage,
                    "v_base": d.v_base,
                    "v_other": d.v_other,
                    "v_rel": d.v_rel,
                    "r_base": d.r_base,
                    "r_other": d.r_other,
                    "r_rel": d.r_rel,
                }
                for d in self.stages
            ],
            "new_names": [list(k) for k in self.new_names],
            "missing_names": [list(k) for k in self.missing_names],
            "count_changes": [
                {"key": list(key), "base": a, "other": b}
                for key, a, b in self.count_changes
            ],
            "metric_deltas": [
                {
                    "kind": m.kind,
                    "name": m.name,
                    "base": m.base,
                    "other": m.other,
                }
                for m in self.metric_deltas
            ],
            "histogram_notes": list(self.histogram_notes),
        }

    # -- rendering -----------------------------------------------------------

    def format(self, top: int = 10) -> str:
        lines = ["trace diff (base -> other):"]
        lines.append(
            f"  total virtual {self.total_v_base:g} s -> "
            f"{self.total_v_other:g} s ({self.total_v_rel:+.2%} drift)"
        )
        if self.stages:
            lines.append("  per-stage deltas:")
            lines.append(
                f"    {'stage':24s} {'virtual base':>12s} {'other':>10s} "
                f"{'drift':>8s} {'real base':>10s} {'other':>8s}"
            )
            for d in self.stages:
                lines.append(
                    f"    {d.stage:24s} {d.v_base:12.1f} {d.v_other:10.1f} "
                    f"{d.v_rel:8.2%} {d.r_base:10.3f} {d.r_other:8.3f}"
                )
        if self.new_names:
            lines.append("  new records (in other only):")
            for kind, cat, name in self.new_names:
                lines.append(f"    + {kind} {name} [{cat or 'default'}]")
        if self.missing_names:
            lines.append("  missing records (in base only):")
            for kind, cat, name in self.missing_names:
                lines.append(f"    - {kind} {name} [{cat or 'default'}]")
        if self.count_changes:
            lines.append("  record-count changes:")
            for (kind, cat, name), a, b in self.count_changes[:top]:
                lines.append(
                    f"    {kind} {name} [{cat or 'default'}]: {a} -> {b}"
                )
            hidden = len(self.count_changes) - top
            if hidden > 0:
                lines.append(f"    ... and {hidden} more")
        drifted = sorted(
            (m for m in self.metric_deltas if m.rel > 0),
            key=lambda m: m.rel,
            reverse=True,
        )
        if drifted:
            lines.append(f"  metric drift (top {top}):")
            for m in drifted[:top]:
                lines.append(
                    f"    {m.kind:7s} {m.name:32s} {m.base} -> {m.other}"
                )
        if self.histogram_notes:
            lines.append("  histograms (report-only):")
            lines.extend(f"    {note}" for note in self.histogram_notes[:top])
        if not (
            self.stages
            or self.new_names
            or self.missing_names
            or self.count_changes
            or drifted
        ):
            lines.append("  (no differences found)")
        return "\n".join(lines)


def diff_traces(
    base: Iterable[dict], other: Iterable[dict]
) -> TraceDiff:
    """Compare two record streams (as loaded by :func:`load_jsonl`)."""
    base = list(base)
    other = list(other)
    diff = TraceDiff()

    stages_a = _stage_times(base)
    stages_b = _stage_times(other)
    for stage in list(stages_a) + [s for s in stages_b if s not in stages_a]:
        va, ra = stages_a.get(stage, (0.0, 0.0))
        vb, rb = stages_b.get(stage, (0.0, 0.0))
        diff.stages.append(StageDelta(stage, va, vb, ra, rb))
    diff.total_v_base = sum(v for v, _ in stages_a.values())
    diff.total_v_other = sum(v for v, _ in stages_b.values())

    counts_a = _name_counts(base)
    counts_b = _name_counts(other)
    diff.new_names = sorted(set(counts_b) - set(counts_a))
    diff.missing_names = sorted(set(counts_a) - set(counts_b))
    diff.count_changes = sorted(
        (key, counts_a[key], counts_b[key])
        for key in set(counts_a) & set(counts_b)
        if counts_a[key] != counts_b[key]
    )

    metrics_a = _metrics_of(base)
    metrics_b = _metrics_of(other)
    for kind in ("counters", "gauges"):
        names = sorted(set(metrics_a[kind]) | set(metrics_b[kind]))
        for name in names:
            a = metrics_a[kind].get(name)
            b = metrics_b[kind].get(name)
            if a == b:
                continue
            diff.metric_deltas.append(
                MetricDelta(kind.rstrip("s"), name, a, b)
            )
    hists = sorted(
        set(metrics_a["histograms"]) | set(metrics_b["histograms"])
    )
    for name in hists:
        ha = metrics_a["histograms"].get(name)
        hb = metrics_b["histograms"].get(name)
        if ha is None or hb is None:
            diff.histogram_notes.append(
                f"{name}: present only in {'other' if ha is None else 'base'}"
            )
        elif ha["count"] != hb["count"] or ha["mean"] != hb["mean"]:
            diff.histogram_notes.append(
                f"{name}: n {ha['count']} -> {hb['count']}, "
                f"mean {ha['mean']:.4g} -> {hb['mean']:.4g}"
            )
    return diff


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description="Diff two repro JSONL trace files "
        "(exit 1 when gated drift exceeds its threshold).",
    )
    parser.add_argument("base", help="baseline trace (JSONL)")
    parser.add_argument("other", help="trace to compare against the baseline")
    parser.add_argument(
        "--v-rel",
        type=float,
        default=0.0,
        help="max relative virtual-time drift per stage and in total "
        "(default 0: identical-seed traces must agree exactly)",
    )
    parser.add_argument(
        "--r-rel",
        type=float,
        default=None,
        help="gate real-time drift per stage at this relative threshold "
        "(default: report only — real time is hardware noise)",
    )
    parser.add_argument(
        "--metric-rel",
        type=float,
        default=None,
        help="gate counter/gauge drift at this relative threshold "
        "(default: report only)",
    )
    parser.add_argument(
        "--ignore-structure",
        action="store_true",
        help="do not fail on span/event names present in only one trace",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="rows per report section"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the comparison as one JSON object (machine-readable)",
    )
    args = parser.parse_args(argv)

    diff = diff_traces(load_jsonl(args.base), load_jsonl(args.other))
    thresholds = diff.threshold_violations(
        v_rel=args.v_rel,
        r_rel=args.r_rel,
        metric_rel=args.metric_rel,
    )
    structural = (
        [] if args.ignore_structure else diff.structural_violations()
    )
    code = EXIT_OK
    if thresholds:
        code = EXIT_THRESHOLD
    if structural:
        code = EXIT_STRUCTURE

    if args.json:
        payload = diff.as_dict()
        payload["threshold_violations"] = thresholds
        payload["structural_violations"] = structural
        payload["exit_code"] = code
        print(json.dumps(payload, indent=2, sort_keys=True))
        return code

    print(diff.format(top=args.top))
    if thresholds or structural:
        print(
            f"\nFAIL: {len(thresholds)} threshold and "
            f"{len(structural)} structural violation(s):"
        )
        for v in thresholds + structural:
            print(f"  {v}")
        return code
    print("\nOK: within thresholds")
    return code


if __name__ == "__main__":
    sys.exit(main())
