"""Live run monitor: tail a streaming trace, render progress + alerts.

``python -m repro.obs.monitor run.jsonl --follow`` tails a trace as the
:class:`~repro.obs.live.JsonlStreamSink` appends it, printing a progress
line whenever the picture changes and a final state block when the
pipeline-root span closes.  The same CLI on a *finished* trace (no
``--follow``) renders the identical final state — the monitor derives
everything from records both formats share (span closes, events), so
live and post-hoc views agree byte-for-byte.

Progress comes from the ``unit.state`` transition events the pilot layer
always emits; liveness from ``unit.heartbeat``; alerts from the
``alert``-category events the rules engine injects; per-worker occupancy
from the merged ``worker``-category spans; ETA from the
``planner.prediction`` event plus live unit throughput.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Unit states that are final.
_DONE, _FAILED, _CANCELED = "DONE", "FAILED", "CANCELED"
_FINAL_STATES = {_DONE, _FAILED, _CANCELED}


@dataclass
class _UnitView:
    name: str = "?"
    stage: str = ""
    state: str = "NEW"


@dataclass
class RunState:
    """Everything the monitor knows about one run, updated per record."""

    units: dict[str, _UnitView] = field(default_factory=dict)
    stages: dict[str, dict] = field(default_factory=dict)  # closed stage spans
    workers: dict[str, dict] = field(default_factory=dict)
    alerts: list[dict] = field(default_factory=list)
    heartbeats: dict[str, dict] = field(default_factory=dict)
    planner: dict = field(default_factory=dict)
    pipeline: dict | None = None  # the root span close record
    pipeline_open: dict | None = None
    billed_usd: float = 0.0
    first_r: float | None = None
    last_r: float | None = None

    # -- ingestion ---------------------------------------------------------

    def apply(self, record: dict) -> None:
        kind = record.get("type")
        r = record.get("r1") if kind == "span" else record.get("r")
        if isinstance(r, (int, float)):
            self.first_r = r if self.first_r is None else min(self.first_r, r)
            self.last_r = r if self.last_r is None else max(self.last_r, r)
        if kind == "span":
            self._apply_span(record)
        elif kind == "span_open":
            if record.get("cat") == "pipeline":
                self.pipeline_open = record
        elif kind == "event":
            self._apply_event(record)

    def _apply_span(self, record: dict) -> None:
        cat = record.get("cat")
        if cat == "pipeline":
            self.pipeline = record
        elif cat == "stage":
            stage = record["attrs"].get("stage", record["name"])
            self.stages[stage] = record
        elif cat == "worker":
            w = self.workers.setdefault(
                record["process"], {"workloads": 0, "busy_r": 0.0}
            )
            if record.get("parent") is None or record["name"] == "workload":
                w["workloads"] += 1
                w["busy_r"] += record["r1"] - record["r0"]
        elif record.get("name") == "vm.lifetime":
            self.billed_usd += record["attrs"].get("cost_usd", 0.0) or 0.0

    def _apply_event(self, record: dict) -> None:
        name, cat = record.get("name"), record.get("cat")
        attrs = record.get("attrs", {})
        if name == "unit.state":
            view = self.units.setdefault(record["thread"], _UnitView())
            view.name = attrs.get("unit", view.name)
            view.stage = attrs.get("stage", view.stage)
            view.state = attrs.get("new", view.state)
        elif name == "unit.heartbeat":
            self.heartbeats[attrs.get("unit", record["thread"])] = attrs
        elif name == "planner.prediction":
            self.planner = attrs
        elif cat == "alert":
            self.alerts.append(record)

    # -- derived views ------------------------------------------------------

    @property
    def complete(self) -> bool:
        return self.pipeline is not None

    def stage_progress(self) -> dict[str, dict[str, int]]:
        """stage -> {done, failed, running, total} from unit final states."""
        out: dict[str, dict[str, int]] = {}
        for view in self.units.values():
            row = out.setdefault(
                view.stage or "?",
                {"done": 0, "failed": 0, "running": 0, "total": 0},
            )
            row["total"] += 1
            if view.state == _DONE:
                row["done"] += 1
            elif view.state in (_FAILED, _CANCELED):
                row["failed"] += 1
            else:
                row["running"] += 1
        return out

    def unit_counts(self) -> tuple[int, int, int]:
        done = sum(1 for v in self.units.values() if v.state == _DONE)
        failed = sum(
            1
            for v in self.units.values()
            if v.state in (_FAILED, _CANCELED)
        )
        running = len(self.units) - done - failed
        return done, failed, running

    def eta_seconds(self) -> float | None:
        """Real-seconds ETA from live unit throughput against the
        planner's predicted fan-out; None when not estimable."""
        done, _, running = self.unit_counts()
        if done <= 0 or running <= 0:
            return None
        if self.first_r is None or self.last_r is None:
            return None
        elapsed = self.last_r - self.first_r
        if elapsed <= 0:
            return None
        planned = self.planner.get("assembly_jobs")
        remaining = max(
            running, (planned - done) if isinstance(planned, int) else 0
        )
        return remaining * elapsed / done


def progress_line(state: RunState) -> str:
    done, failed, running = state.unit_counts()
    parts = [f"units {done} done / {running} running / {failed} failed"]
    active = [
        f"{unit}:{hb.get('elapsed_r', 0.0):.1f}s"
        for unit, hb in sorted(state.heartbeats.items())
        if any(
            v.state not in _FINAL_STATES
            for v in state.units.values()
            if v.name == unit
        )
    ]
    if active:
        parts.append("inflight " + " ".join(active[:4]))
    eta = state.eta_seconds()
    if eta is not None:
        parts.append(f"eta ~{eta:.1f}s")
    if state.alerts:
        parts.append(f"alerts {len(state.alerts)}")
    return " | ".join(parts)


def final_summary(state: RunState) -> str:
    """The deterministic end-state block: identical for a live-tailed
    stream and the same run's archival trace (it reads only records
    both carry)."""
    lines = ["== final state =="]
    if state.pipeline is not None:
        p = state.pipeline
        ttc = (
            p["v1"] - p["v0"]
            if p.get("v0") is not None and p.get("v1") is not None
            else 0.0
        )
        lines.append(
            f"run: {p['name']} — COMPLETE  (TTC {ttc:.1f} virtual s)"
        )
    else:
        lines.append("run: IN PROGRESS (no pipeline-close record)")
    done, failed, running = state.unit_counts()
    counts = f"units: {done} done, {failed} failed"
    if running:
        counts += f", {running} running"
    lines.append(counts)
    progress = state.stage_progress()
    if state.stages or progress:
        lines.append(
            f"  {'stage':24s} {'done':>5s} {'fail':>5s} "
            f"{'virtual s':>10s} {'real s':>9s}"
        )
        for stage in sorted(set(state.stages) | set(progress)):
            row = progress.get(stage, {})
            span = state.stages.get(stage)
            virt = (
                f"{span['v1'] - span['v0']:10.1f}"
                if span and span.get("v0") is not None
                else f"{'-':>10s}"
            )
            real = (
                f"{span['r1'] - span['r0']:9.3f}" if span else f"{'-':>9s}"
            )
            lines.append(
                f"  {stage:24s} {row.get('done', 0):5d} "
                f"{row.get('failed', 0):5d} {virt} {real}"
            )
    if state.workers:
        lines.append("workers:")
        for name in sorted(state.workers):
            w = state.workers[name]
            lines.append(
                f"  {name:16s} {w['workloads']:3d} workloads  "
                f"busy {w['busy_r']:.3f} s"
            )
    if state.alerts:
        lines.append(f"alerts: {len(state.alerts)}")
        for a in state.alerts:
            attrs = a.get("attrs", {})
            lines.append(
                f"  [{attrs.get('severity', '?'):8s}] "
                f"{attrs.get('rule', '?')}: {attrs.get('message', '')}"
            )
    else:
        lines.append("alerts: none")
    if state.planner:
        line = (
            f"planner: predicted TTC {state.planner.get('ttc_s', 0.0):.1f} s, "
            f"cost ${state.planner.get('cost_usd', 0.0):.2f}"
        )
        if state.billed_usd:
            line += f"; billed ${state.billed_usd:.2f}"
        lines.append(line)
    return "\n".join(lines)


def replay(records) -> RunState:
    state = RunState()
    for record in records:
        state.apply(record)
    return state


def _parse_lines(chunk: str, state: RunState) -> int:
    applied = 0
    for line in chunk.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail line; the next poll completes it
        state.apply(record)
        applied += 1
    return applied


def follow(
    path: Path,
    poll: float = 0.2,
    timeout: float | None = None,
    out=None,
) -> int:
    """Tail ``path`` until the pipeline-root span closes; returns 0 on
    completion, 1 on timeout.  Prints a progress line per change and the
    final-state block at the end."""
    out = out or sys.stdout
    state = RunState()
    deadline = None if timeout is None else time.monotonic() + timeout
    position = 0
    buffer = ""
    last_line = ""
    while True:
        if path.exists():
            with path.open() as fh:
                fh.seek(position)
                chunk = fh.read()
                position = fh.tell()
            if chunk:
                buffer += chunk
                complete, _, buffer = buffer.rpartition("\n")
                if complete and _parse_lines(complete, state):
                    line = progress_line(state)
                    if line != last_line:
                        print(line, file=out, flush=True)
                        last_line = line
                if state.complete:
                    print(final_summary(state), file=out, flush=True)
                    return 0
        if deadline is not None and time.monotonic() > deadline:
            print(
                f"timeout: no pipeline completion after {timeout:g}s",
                file=out,
                flush=True,
            )
            print(final_summary(state), file=out, flush=True)
            return 1
        time.sleep(poll)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.monitor",
        description=(
            "Watch a repro run live (tail a streaming JSONL trace) or "
            "render the final state of a finished one."
        ),
    )
    parser.add_argument(
        "trace",
        help="trace file (a JsonlStreamSink stream or an archival trace)",
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="tail the file until the pipeline-root span closes",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between tail polls (with --follow)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up (exit 1) after this many seconds (with --follow)",
    )
    args = parser.parse_args(argv)
    path = Path(args.trace)
    if args.follow:
        return follow(path, poll=args.poll, timeout=args.timeout)
    if not path.exists():
        print(f"no such trace: {path}", file=sys.stderr)
        return 2
    state = RunState()
    with path.open() as fh:
        _parse_lines(fh.read(), state)
    print(final_summary(state))
    return 0


if __name__ == "__main__":
    sys.exit(main())
