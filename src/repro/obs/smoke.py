"""Traced smoke pipeline: one small end-to-end run, one JSONL trace.

``python -m repro.obs.smoke --out trace.jsonl`` runs the tiny quickstart
dataset through the full pilot pipeline on a chosen executor backend
(process by default — the backend whose workloads run out-of-process and
therefore exercise span-context propagation, clock alignment and worker
metric merging) and writes the merged trace.  CI runs this, uploads the
trace as an artifact, and diffs it against the committed baseline with
``python -m repro.obs.diff``; regenerate the baseline with::

    PYTHONPATH=src python -m repro.obs.smoke --out tests/data/ci_baseline_trace.jsonl

The assembly cache is disabled so the trace is identical whether or not
the process already ran a pipeline, and the seed is fixed so every
virtual quantity is deterministic.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.obs import Tracer
from repro.obs.export import write_jsonl
from repro.seq.datasets import tiny_dataset


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke",
        description="Run a traced smoke pipeline and write its JSONL trace.",
    )
    parser.add_argument("--out", required=True, help="trace output path")
    parser.add_argument(
        "--executor",
        default="process",
        choices=("serial", "thread", "process"),
        help="workload-execution backend (default: process)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="pool size for pool backends"
    )
    parser.add_argument(
        "--resource-cadence",
        type=float,
        default=0.01,
        help="seconds between in-workload RSS/CPU samples (0 = endpoints)",
    )
    parser.add_argument("--seed", type=int, default=1, help="dataset seed")
    args = parser.parse_args(argv)

    tracer = Tracer()
    result = RnnotatorPipeline(tracer=tracer).run(
        tiny_dataset(seed=args.seed),
        PipelineConfig(
            kmer_list=(35, 41),
            executor=args.executor,
            executor_workers=args.workers,
            assembly_cache=False,
            resource_cadence=args.resource_cadence,
        ),
    )
    path = write_jsonl(tracer, args.out)
    worker_spans = sum(
        1 for s in tracer.spans if s.process.startswith("worker-")
    )
    print(
        f"traced smoke ok: TTC {result.total_ttc:.0f} s, "
        f"{len(tracer.spans)} spans ({worker_spans} from workers), "
        f"{len(tracer.events)} events -> {path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
