"""Traced smoke pipeline: one small end-to-end run, one JSONL trace.

``python -m repro.obs.smoke --out trace.jsonl`` runs the tiny quickstart
dataset through the full pilot pipeline on a chosen executor backend
(process by default — the backend whose workloads run out-of-process and
therefore exercise span-context propagation, clock alignment and worker
metric merging) and writes the merged trace.  CI runs this, uploads the
trace as an artifact, and diffs it against the committed baseline with
``python -m repro.obs.diff``; regenerate the baseline with::

    PYTHONPATH=src python -m repro.obs.smoke --out tests/data/ci_baseline_trace.jsonl

The assembly cache is disabled so the trace is identical whether or not
the process already ran a pipeline, and the seed is fixed so every
virtual quantity is deterministic.

The chaos knobs turn the same smoke into a checkpoint/resume drill (the
CI chaos job):

* ``--checkpoint-dir DIR`` enables the durable checkpoint store;
* ``--kill-after-stage NAME`` kills the run after that stage (exit 75,
  the sysexits ``EX_TEMPFAIL``) — rerunning with the same checkpoint
  directory resumes bit-identically;
* ``--preempt-at T`` (repeatable) injects a spot reclaim ``T`` virtual
  seconds into the assembly fan-out, with ``--max-unit-restarts`` giving
  units the budget to survive it;
* ``--expect-checkpoint-hits N`` asserts the run replayed at least N
  unit outcomes (resume actually resumed).

The live-telemetry knobs turn it into the monitor/alert drill:

* ``--live-out PATH`` attaches a streaming
  :class:`~repro.obs.live.JsonlStreamSink`, so ``python -m
  repro.obs.monitor PATH --follow`` can watch the run live;
* ``--heartbeat-cadence S`` emits per-inflight-unit heartbeats (and
  enables straggler detection) every S real seconds;
* ``--alert SPEC`` (repeatable) / ``--default-alerts`` arm the SLO
  rules engine; ``--alert-log PATH`` dumps fired alerts as JSONL;
* ``--straggle-unit NAME --straggle-seconds S`` delays matching
  assembly units in *real* time only — virtual TTC/cost untouched —
  so the straggler detector has something to catch;
* ``--expect-alert KIND`` (repeatable) / ``--expect-no-alerts`` turn
  the run into a CI assertion about which alerts fired.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.rnnotator import (
    PipelineConfig,
    PipelineKilled,
    RnnotatorPipeline,
)
from repro.core.schemes import MatchingScheme
from repro.obs import Tracer
from repro.obs.export import write_jsonl
from repro.obs.live import JsonlStreamSink
from repro.seq.datasets import tiny_dataset

#: Exit code of a deliberately killed run (sysexits.h EX_TEMPFAIL: a
#: rerun may succeed — which is the whole point of the checkpoint).
KILLED_EXIT_CODE = 75


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke",
        description="Run a traced smoke pipeline and write its JSONL trace.",
    )
    parser.add_argument("--out", required=True, help="trace output path")
    parser.add_argument(
        "--executor",
        default="process",
        choices=("serial", "thread", "process"),
        help="workload-execution backend (default: process)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="pool size for pool backends"
    )
    parser.add_argument(
        "--resource-cadence",
        type=float,
        default=0.01,
        help="seconds between in-workload RSS/CPU samples (0 = endpoints)",
    )
    parser.add_argument("--seed", type=int, default=1, help="dataset seed")
    parser.add_argument(
        "--kmer-list",
        default="35,41",
        metavar="K,K,...",
        help="comma-separated k values for the assembly fan-out "
        "(straggler detection needs >= 4 units: 3 completed peers "
        "plus the straggler)",
    )
    parser.add_argument(
        "--scheme",
        default="S2",
        choices=[s.value for s in MatchingScheme],
        help="pilot-VM matching scheme (default: S2)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="durable checkpoint store directory (default: off)",
    )
    parser.add_argument(
        "--kill-after-stage",
        default=None,
        metavar="STAGE",
        help="kill the run after this stage completes (exits "
        f"{KILLED_EXIT_CODE}; rerun with the same --checkpoint-dir "
        "to resume)",
    )
    parser.add_argument(
        "--preempt-at",
        type=float,
        action="append",
        default=[],
        metavar="SECONDS",
        help="inject a spot reclaim this many virtual seconds into the "
        "assembly fan-out (repeatable)",
    )
    parser.add_argument(
        "--max-unit-restarts",
        type=int,
        default=0,
        help="restart budget for assembly units (default: 0)",
    )
    parser.add_argument(
        "--expect-checkpoint-hits",
        type=int,
        default=None,
        metavar="N",
        help="fail unless the run replayed at least N checkpointed units",
    )
    parser.add_argument(
        "--live-out",
        default=None,
        metavar="PATH",
        help="also stream the trace live to this JSONL file "
        "(tail it with python -m repro.obs.monitor PATH --follow)",
    )
    parser.add_argument(
        "--heartbeat-cadence",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="real seconds between in-flight unit heartbeats "
        "(0 = off, the default — heartbeats are nondeterministic and "
        "would churn the CI baseline diff)",
    )
    parser.add_argument(
        "--alert",
        action="append",
        default=[],
        metavar="SPEC",
        help="arm one alert rule, kind[:target][:threshold][:severity] "
        "(repeatable)",
    )
    parser.add_argument(
        "--default-alerts",
        action="store_true",
        help="arm the default rule set (straggler, heartbeat_timeout, "
        "budget_burn)",
    )
    parser.add_argument(
        "--alert-log",
        default=None,
        metavar="PATH",
        help="write fired alerts to this JSONL file (CI artifact)",
    )
    parser.add_argument(
        "--straggle-unit",
        default=None,
        metavar="NAME",
        help="delay assembly units whose name contains NAME "
        "(real time only; virtual quantities unchanged)",
    )
    parser.add_argument(
        "--straggle-seconds",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="real-time delay for --straggle-unit matches",
    )
    parser.add_argument(
        "--expect-alert",
        action="append",
        default=[],
        metavar="KIND",
        help="fail unless an alert of this rule kind fired (repeatable)",
    )
    parser.add_argument(
        "--expect-no-alerts",
        action="store_true",
        help="fail if any alert fired",
    )
    args = parser.parse_args(argv)

    alert_rules = list(args.alert)
    if args.default_alerts:
        alert_rules = ["straggler", "heartbeat_timeout:30", "budget_burn:1.25"] + alert_rules

    tracer = Tracer()
    live_sink = None
    if args.live_out is not None:
        live_sink = tracer.add_sink(JsonlStreamSink(args.live_out, tracer=tracer))
    config = PipelineConfig(
        kmer_list=tuple(int(k) for k in args.kmer_list.split(",")),
        executor=args.executor,
        executor_workers=args.workers,
        assembly_cache=False,
        resource_cadence=args.resource_cadence,
        scheme=MatchingScheme.parse(args.scheme),
        checkpoint_dir=args.checkpoint_dir,
        abort_after_stage=args.kill_after_stage,
        preempt_at=tuple(args.preempt_at),
        unit_max_restarts=args.max_unit_restarts,
        alert_rules=tuple(alert_rules),
        heartbeat_cadence=args.heartbeat_cadence,
        straggle_unit=args.straggle_unit,
        straggle_seconds=args.straggle_seconds,
    )
    pipeline = RnnotatorPipeline(tracer=tracer)
    try:
        result = pipeline.run(tiny_dataset(seed=args.seed), config)
    except PipelineKilled as exc:
        if live_sink is not None:
            live_sink.close()
        path = write_jsonl(tracer, args.out)
        print(f"traced smoke killed as requested: {exc} -> {path}")
        return KILLED_EXIT_CODE

    if live_sink is not None:
        live_sink.close()
    path = write_jsonl(tracer, args.out)
    worker_spans = sum(
        1 for s in tracer.spans if s.process.startswith("worker-")
    )
    def counter(name: str) -> int:
        c = tracer.metrics.counters.get(name)
        return int(c.value) if c is not None else 0

    hits = counter("checkpoint_hits")
    chaos = ""
    if args.checkpoint_dir is not None or args.preempt_at:
        stats = result.checkpoint_stats or {}
        chaos = (
            f", checkpoint hits {hits} / puts {stats.get('unit_puts', 0)}"
            f", preemptions {counter('vms_preempted')}"
        )
    print(
        f"traced smoke ok: TTC {result.total_ttc:.0f} s, "
        f"{len(tracer.spans)} spans ({worker_spans} from workers), "
        f"{len(tracer.events)} events{chaos} -> {path}"
    )
    if (
        args.expect_checkpoint_hits is not None
        and hits < args.expect_checkpoint_hits
    ):
        print(
            f"ERROR: expected >= {args.expect_checkpoint_hits} checkpoint "
            f"hits, saw {hits} — the resume did not resume",
            file=sys.stderr,
        )
        return 1

    alerts = pipeline.last_alerts
    if alert_rules:
        by_kind: dict[str, int] = {}
        for alert in alerts:
            by_kind[alert.rule] = by_kind.get(alert.rule, 0) + 1
        summary = (
            ", ".join(f"{k} x{n}" for k, n in sorted(by_kind.items()))
            or "none"
        )
        print(f"alerts fired: {summary}")
    if args.alert_log is not None:
        with open(args.alert_log, "w", encoding="utf-8") as fh:
            for alert in alerts:
                fh.write(json.dumps(alert.to_dict(), sort_keys=True) + "\n")
        print(f"alert log -> {args.alert_log} ({len(alerts)} alert(s))")
    failed = False
    fired_kinds = {alert.rule for alert in alerts}
    for kind in args.expect_alert:
        if kind not in fired_kinds:
            print(
                f"ERROR: expected a '{kind}' alert, none fired "
                f"(fired: {sorted(fired_kinds) or 'none'})",
                file=sys.stderr,
            )
            failed = True
    if args.expect_no_alerts and alerts:
        print(
            f"ERROR: expected a clean run, {len(alerts)} alert(s) fired: "
            + ", ".join(sorted(fired_kinds)),
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
