"""Traced smoke pipeline: one small end-to-end run, one JSONL trace.

``python -m repro.obs.smoke --out trace.jsonl`` runs the tiny quickstart
dataset through the full pilot pipeline on a chosen executor backend
(process by default — the backend whose workloads run out-of-process and
therefore exercise span-context propagation, clock alignment and worker
metric merging) and writes the merged trace.  CI runs this, uploads the
trace as an artifact, and diffs it against the committed baseline with
``python -m repro.obs.diff``; regenerate the baseline with::

    PYTHONPATH=src python -m repro.obs.smoke --out tests/data/ci_baseline_trace.jsonl

The assembly cache is disabled so the trace is identical whether or not
the process already ran a pipeline, and the seed is fixed so every
virtual quantity is deterministic.

The chaos knobs turn the same smoke into a checkpoint/resume drill (the
CI chaos job):

* ``--checkpoint-dir DIR`` enables the durable checkpoint store;
* ``--kill-after-stage NAME`` kills the run after that stage (exit 75,
  the sysexits ``EX_TEMPFAIL``) — rerunning with the same checkpoint
  directory resumes bit-identically;
* ``--preempt-at T`` (repeatable) injects a spot reclaim ``T`` virtual
  seconds into the assembly fan-out, with ``--max-unit-restarts`` giving
  units the budget to survive it;
* ``--expect-checkpoint-hits N`` asserts the run replayed at least N
  unit outcomes (resume actually resumed).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.rnnotator import (
    PipelineConfig,
    PipelineKilled,
    RnnotatorPipeline,
)
from repro.core.schemes import MatchingScheme
from repro.obs import Tracer
from repro.obs.export import write_jsonl
from repro.seq.datasets import tiny_dataset

#: Exit code of a deliberately killed run (sysexits.h EX_TEMPFAIL: a
#: rerun may succeed — which is the whole point of the checkpoint).
KILLED_EXIT_CODE = 75


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke",
        description="Run a traced smoke pipeline and write its JSONL trace.",
    )
    parser.add_argument("--out", required=True, help="trace output path")
    parser.add_argument(
        "--executor",
        default="process",
        choices=("serial", "thread", "process"),
        help="workload-execution backend (default: process)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="pool size for pool backends"
    )
    parser.add_argument(
        "--resource-cadence",
        type=float,
        default=0.01,
        help="seconds between in-workload RSS/CPU samples (0 = endpoints)",
    )
    parser.add_argument("--seed", type=int, default=1, help="dataset seed")
    parser.add_argument(
        "--scheme",
        default="S2",
        choices=[s.value for s in MatchingScheme],
        help="pilot-VM matching scheme (default: S2)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="durable checkpoint store directory (default: off)",
    )
    parser.add_argument(
        "--kill-after-stage",
        default=None,
        metavar="STAGE",
        help="kill the run after this stage completes (exits "
        f"{KILLED_EXIT_CODE}; rerun with the same --checkpoint-dir "
        "to resume)",
    )
    parser.add_argument(
        "--preempt-at",
        type=float,
        action="append",
        default=[],
        metavar="SECONDS",
        help="inject a spot reclaim this many virtual seconds into the "
        "assembly fan-out (repeatable)",
    )
    parser.add_argument(
        "--max-unit-restarts",
        type=int,
        default=0,
        help="restart budget for assembly units (default: 0)",
    )
    parser.add_argument(
        "--expect-checkpoint-hits",
        type=int,
        default=None,
        metavar="N",
        help="fail unless the run replayed at least N checkpointed units",
    )
    args = parser.parse_args(argv)

    tracer = Tracer()
    config = PipelineConfig(
        kmer_list=(35, 41),
        executor=args.executor,
        executor_workers=args.workers,
        assembly_cache=False,
        resource_cadence=args.resource_cadence,
        scheme=MatchingScheme.parse(args.scheme),
        checkpoint_dir=args.checkpoint_dir,
        abort_after_stage=args.kill_after_stage,
        preempt_at=tuple(args.preempt_at),
        unit_max_restarts=args.max_unit_restarts,
    )
    try:
        result = RnnotatorPipeline(tracer=tracer).run(
            tiny_dataset(seed=args.seed), config
        )
    except PipelineKilled as exc:
        path = write_jsonl(tracer, args.out)
        print(f"traced smoke killed as requested: {exc} -> {path}")
        return KILLED_EXIT_CODE

    path = write_jsonl(tracer, args.out)
    worker_spans = sum(
        1 for s in tracer.spans if s.process.startswith("worker-")
    )
    def counter(name: str) -> int:
        c = tracer.metrics.counters.get(name)
        return int(c.value) if c is not None else 0

    hits = counter("checkpoint_hits")
    chaos = ""
    if args.checkpoint_dir is not None or args.preempt_at:
        stats = result.checkpoint_stats or {}
        chaos = (
            f", checkpoint hits {hits} / puts {stats.get('unit_puts', 0)}"
            f", preemptions {counter('vms_preempted')}"
        )
    print(
        f"traced smoke ok: TTC {result.total_ttc:.0f} s, "
        f"{len(tracer.spans)} spans ({worker_spans} from workers), "
        f"{len(tracer.events)} events{chaos} -> {path}"
    )
    if (
        args.expect_checkpoint_hits is not None
        and hits < args.expect_checkpoint_hits
    ):
        print(
            f"ERROR: expected >= {args.expect_checkpoint_hits} checkpoint "
            f"hits, saw {hits} — the resume did not resume",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
