"""Virtual-time critical-path analysis over JSONL traces.

Reconstructs which spans actually bound a pipeline run.  The trace is a
set of spans on the shared virtual clock; the critical path is found by
a backward sweep from the run's end: at every instant we ask "which span
was the run waiting on just before t?", credit the interval back to that
span's start, and repeat from there.  The resulting segments tile
``[run start, run end]`` exactly, so the path total equals the pipeline
end-to-end virtual TTC by construction.

Every other span gets a *slack*: how much longer it could have run
before it would have delayed the run (the distance from its end to the
end of the critical segment covering that instant).  ``what_if``
re-prices the path under "span family X becomes f times as long/short"
queries so speedup work can be targeted before it is built.

CLI::

    python -m repro.obs.critpath trace.jsonl --top 8
    python -m repro.obs.critpath trace.jsonl --what-if 'exec:ray_*=0.5'
    python -m repro.obs.critpath trace.jsonl --json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Iterable, Sequence

from .export import load_jsonl
from .spans import pipeline_span, spans_of, v_duration

#: Virtual-time comparison tolerance.  Virtual timestamps are sums of a
#: few hundred float advances, so exact equality is too strict while
#: anything near a real span duration (>= milliseconds) is far coarser.
EPS = 1e-6

#: When several spans are simultaneously "the thing being waited on",
#: prefer the most specific description of the work.  A unit executing
#: inside a stage inside a pilot is reported as the unit, not the stage.
_CATEGORY_RANK = {
    "unit": 0,
    "workload": 1,
    "mapreduce": 2,
    "sge": 3,
    "executor": 4,
    "agent": 5,
    "phase": 6,
    "stage": 7,
    "scheduler": 8,
    "pilot": 9,
    "cloud": 10,
}
_DEFAULT_RANK = 20

#: Span categories that never carry the run on their own: the pipeline
#: root covers everything by definition, and bookkeeping spans
#: (state transitions, resource samples, the zero-virtual-width overlap
#: marker, the host-side spectrum build whose spans advance no virtual
#: time) describe the run rather than advance it.
_EXCLUDED_CATEGORIES = {
    "pipeline", "resource", "state", "events", "overlap", "spectrum",
}


@dataclass(frozen=True)
class Segment:
    """One tile of the critical path: ``span`` bound the run on
    ``[v_start, v_end]``.  ``span is None`` marks an idle gap where no
    traced span was active (e.g. untraced clock advances)."""

    v_start: float
    v_end: float
    span: dict | None = None

    @property
    def duration(self) -> float:
        return self.v_end - self.v_start

    @property
    def name(self) -> str:
        return self.span["name"] if self.span is not None else "(idle)"

    @property
    def category(self) -> str:
        return self.span["cat"] if self.span is not None else "idle"


@dataclass
class CriticalPath:
    """The backward-sweep result: chronological segments tiling
    ``[v_start, v_end]``."""

    v_start: float
    v_end: float
    segments: list[Segment] = field(default_factory=list)

    @property
    def total(self) -> float:
        """Total virtual duration.  Computed as the hull ``end - start``
        (the same subtraction that defines the pipeline TTC), which the
        segments tile exactly."""
        return self.v_end - self.v_start

    def by_category(self) -> dict[str, float]:
        """category -> virtual seconds on the path, largest first."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.category] = out.get(seg.category, 0.0) + seg.duration
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def by_name(self) -> dict[str, float]:
        """span name -> virtual seconds on the path, largest first."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.name] = out.get(seg.name, 0.0) + seg.duration
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def slack(self, span: dict) -> float:
        """How much later ``span`` could have finished without delaying
        the run: distance from its end to the end of the critical
        segment covering that instant.  On-path spans get 0."""
        v1 = span.get("v1")
        if v1 is None:
            return 0.0
        covering = [
            seg.v_end - v1
            for seg in self.segments
            if seg.v_start - EPS <= v1 <= seg.v_end + EPS
        ]
        if not covering:
            return max(0.0, self.v_end - v1)
        return max(0.0, min(covering))

    def summary(self, top: int = 5) -> dict:
        """Compact rollup for the run ledger."""
        return {
            "total_virtual_s": self.total,
            "n_segments": len(self.segments),
            "by_category": {
                k: round(v, 6) for k, v in self.by_category().items()
            },
            "top": [
                {"name": name, "virtual_s": round(secs, 6)}
                for name, secs in list(self.by_name().items())[:top]
            ],
        }


def _eligible(records: Iterable[dict]) -> list[dict]:
    out = []
    for s in spans_of(records):
        if s["cat"] in _EXCLUDED_CATEGORIES:
            continue
        if s["v0"] is None or s["v1"] is None:
            continue  # worker-real-time-only spans carry no virtual clock
        if s["v1"] - s["v0"] <= EPS:
            continue  # instantaneous markers cannot bound the run
        out.append(s)
    return out


def _pick(candidates: list[dict], t: float) -> dict:
    """The span the run was waiting on just before instant ``t``.

    Preference order: spans that *end* at t (they released the run),
    then latest start (the most recent dependency), then the most
    specific category, then the shortest span (tightest description)."""
    return min(
        candidates,
        key=lambda s: (
            abs(s["v1"] - t) > EPS,  # enders first
            -s["v0"],
            _CATEGORY_RANK.get(s["cat"], _DEFAULT_RANK),
            s["v1"] - s["v0"],
            s["id"],
        ),
    )


def compute_critical_path(records: Sequence[dict]) -> CriticalPath:
    """Backward sweep from the run's end to its start.

    The run interval comes from the ``pipeline`` root span when present,
    else from the hull of all eligible spans.
    """
    eligible = _eligible(records)
    root = pipeline_span(records)
    if root is not None and root["v0"] is not None and root["v1"] is not None:
        start, end = root["v0"], root["v1"]
    elif eligible:
        start = min(s["v0"] for s in eligible)
        end = max(s["v1"] for s in eligible)
    else:
        raise ValueError("trace contains no spans with virtual time")

    segments: list[Segment] = []
    t = end
    while t > start + EPS:
        active = [
            s for s in eligible if s["v0"] < t - EPS and s["v1"] >= t - EPS
        ]
        if active:
            chosen = _pick(active, t)
            t_next = max(chosen["v0"], start)
            segments.append(Segment(t_next, t, chosen))
        else:
            # Idle gap: back up to the latest span end before t.
            prior = [s["v1"] for s in eligible if s["v1"] < t - EPS]
            t_next = max([p for p in prior if p >= start], default=start)
            segments.append(Segment(t_next, t, None))
        t = t_next
    segments.reverse()
    return CriticalPath(start, end, segments)


@dataclass(frozen=True)
class WhatIf:
    """Result of re-pricing the path under scale queries."""

    baseline_s: float
    projected_s: float
    matched_segments: int
    matched_s: float

    @property
    def delta_s(self) -> float:
        return self.projected_s - self.baseline_s


def parse_what_if(spec: str) -> tuple[str, float]:
    """Parse a ``PATTERN=FACTOR`` query, e.g. ``exec:ray_*=0.5``."""
    pattern, sep, factor = spec.rpartition("=")
    if not sep or not pattern:
        raise ValueError(f"what-if query must be PATTERN=FACTOR, got {spec!r}")
    return pattern, float(factor)


def _matches(seg: Segment, pattern: str) -> bool:
    if pattern.startswith("cat:"):
        return fnmatchcase(seg.category, pattern[4:])
    return fnmatchcase(seg.name, pattern)


def what_if(
    path: CriticalPath, queries: Sequence[tuple[str, float]]
) -> WhatIf:
    """Scale every path segment matching a query by its factor (first
    matching query wins) and re-total.

    This is first-order: it re-prices the *recorded* path rather than
    re-scheduling the run, so a large shrink that would promote some
    other span onto the path reports a lower bound on the new TTC.
    """
    projected = 0.0
    matched = 0
    matched_s = 0.0
    for seg in path.segments:
        factor = next(
            (f for pat, f in queries if _matches(seg, pat)), None
        )
        if factor is None:
            projected += seg.duration
        else:
            matched += 1
            matched_s += seg.duration
            projected += seg.duration * factor
    return WhatIf(path.total, projected, matched, matched_s)


def format_path(path: CriticalPath, top: int = 10) -> str:
    lines = []
    lines.append("== critical path (virtual time) ==")
    lines.append(
        f"total {path.total:.3f}s over {len(path.segments)} segments"
    )
    lines.append("")
    lines.append(
        f"{'from':>12} {'to':>12} {'secs':>10} {'share':>7}  span"
    )
    for seg in path.segments:
        share = seg.duration / path.total if path.total else 0.0
        lines.append(
            f"{seg.v_start:>12.3f} {seg.v_end:>12.3f}"
            f" {seg.duration:>10.3f} {share:>6.1%}"
            f"  {seg.name} [{seg.category}]"
        )
    lines.append("")
    lines.append("== by span, largest first ==")
    for name, secs in list(path.by_name().items())[:top]:
        share = secs / path.total if path.total else 0.0
        lines.append(f"  {secs:>10.3f}s {share:>6.1%}  {name}")
    lines.append("")
    lines.append("== by category ==")
    for cat, secs in path.by_category().items():
        share = secs / path.total if path.total else 0.0
        lines.append(f"  {secs:>10.3f}s {share:>6.1%}  {cat}")
    return "\n".join(lines)


def format_slack(
    records: Sequence[dict], path: CriticalPath, top: int = 10
) -> str:
    rows = []
    for span in _eligible(records):
        s = path.slack(span)
        if s > EPS:
            rows.append((s, span))
    rows.sort(key=lambda r: -r[0])
    lines = ["== largest slack (off-path spans) =="]
    if not rows:
        lines.append("  (none — every span is on the critical path)")
    for s, span in rows[:top]:
        lines.append(
            f"  {s:>10.3f}s slack"
            f"  {span['name']} [{span['cat']}]"
            f" dur={v_duration(span):.3f}s"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.critpath",
        description="Critical-path analysis of a JSONL trace.",
    )
    parser.add_argument("trace", help="JSONL trace file")
    parser.add_argument(
        "--top", type=int, default=10, help="rows in rollup tables"
    )
    parser.add_argument(
        "--what-if",
        action="append",
        default=[],
        metavar="PATTERN=FACTOR",
        help=(
            "re-price path segments whose span name (or cat:CATEGORY) "
            "matches PATTERN by FACTOR; repeatable"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)

    records = load_jsonl(args.trace)
    try:
        path = compute_critical_path(records)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    queries = [parse_what_if(q) for q in args.what_if]
    projection = what_if(path, queries) if queries else None

    # Self-check: the path must account for the whole run.
    ttc = None
    root = pipeline_span(records)
    if root is not None and root["v0"] is not None:
        ttc = root["v1"] - root["v0"]
    ok = ttc is None or abs(path.total - ttc) <= EPS

    if args.json:
        payload = {
            "total_virtual_s": path.total,
            "pipeline_ttc_s": ttc,
            "matches_pipeline_ttc": ok,
            "segments": [
                {
                    "v_start": seg.v_start,
                    "v_end": seg.v_end,
                    "duration_s": seg.duration,
                    "name": seg.name,
                    "category": seg.category,
                }
                for seg in path.segments
            ],
            "by_category": path.by_category(),
            "by_name": path.by_name(),
        }
        if projection is not None:
            payload["what_if"] = {
                "queries": [
                    {"pattern": p, "factor": f} for p, f in queries
                ],
                "baseline_s": projection.baseline_s,
                "projected_s": projection.projected_s,
                "delta_s": projection.delta_s,
                "matched_segments": projection.matched_segments,
                "matched_s": projection.matched_s,
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_path(path, top=args.top))
        print()
        print(format_slack(records, path, top=args.top))
        if ttc is not None:
            verdict = "matches" if ok else "DOES NOT MATCH"
            print()
            print(
                f"path total {path.total:.6f}s {verdict} "
                f"pipeline TTC {ttc:.6f}s"
            )
        if projection is not None:
            print()
            print("== what-if ==")
            for pat, f in queries:
                print(f"  scale {pat!r} by {f:g}")
            print(
                f"  projected TTC {projection.projected_s:.3f}s"
                f" (baseline {projection.baseline_s:.3f}s,"
                f" delta {projection.delta_s:+.3f}s,"
                f" {projection.matched_segments} segments"
                f" / {projection.matched_s:.3f}s matched)"
            )

    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
