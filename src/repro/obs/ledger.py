"""Append-only on-disk run ledger with a regression gate.

One JSON line per pipeline run: config fingerprint, store digest, stage
virtual/real durations, counters, cost rollup, alert rollup, and a
critical-path summary — everything needed to answer "did this change
make the pipeline slower, more expensive, or noisier?" without
re-running history.  CI
appends its smoke run on every build and gates the latest record
against the median of the preceding comparable window, thresholded like
:meth:`repro.obs.diff.TraceDiff.violations`.

The file is deliberately boring: newline-delimited JSON, append-only,
no index.  A torn final line (the writer died mid-append) is skipped on
read, never a crash — the ledger must survive exactly the failures it
exists to document.

CLI::

    python -m repro.obs.ledger append trace.jsonl --ledger runs.jsonl
    python -m repro.obs.ledger list --ledger runs.jsonl
    python -m repro.obs.ledger show --ledger runs.jsonl --index -1
    python -m repro.obs.ledger compare --ledger runs.jsonl -a -2 -b -1
    python -m repro.obs.ledger check --ledger runs.jsonl --v-rel 0.05

Exit codes for ``check``: 0 clean, 1 threshold regression, 2 the ledger
cannot be gated (missing/empty/unreadable).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from dataclasses import dataclass
from typing import Sequence

from .attribution import attribute_costs, planner_violations
from .critpath import compute_critical_path
from .export import load_jsonl
from .spans import metrics_of, pipeline_span, stage_times

SCHEMA_VERSION = 1


@dataclass
class LedgerReadResult:
    """Parsed ledger contents plus how many lines had to be skipped."""

    records: list[dict]
    skipped: int


class RunLedger:
    """Append-only JSONL ledger of pipeline runs."""

    def __init__(self, path: str) -> None:
        self.path = path

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def read(self) -> LedgerReadResult:
        """All parseable records, in append order.

        Undecodable lines — a torn final line from a writer that died
        mid-append, or bit rot anywhere — are skipped and counted, not
        raised: corruption of one record must not take out the history.
        """
        records: list[dict] = []
        skipped = 0
        if not os.path.exists(self.path):
            return LedgerReadResult(records, skipped)
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1
                    continue
                if isinstance(rec, dict):
                    records.append(rec)
                else:
                    skipped += 1
        return LedgerReadResult(records, skipped)


def build_record(
    trace_records: Sequence[dict], run_id: str | None = None
) -> dict:
    """Distill one run's trace into a ledger record.

    Contains no wall-clock timestamp on purpose: identical runs produce
    identical records, which keeps CI ledger artifacts diffable.
    """
    root = pipeline_span(trace_records)
    if root is None:
        raise ValueError("trace has no pipeline span; cannot build a record")
    attrs = root["attrs"]
    path = compute_critical_path(trace_records)

    stages = {
        name: {"virtual_s": round(v, 6), "real_s": round(r, 6)}
        for name, (v, r) in stage_times(trace_records).items()
    }
    try:
        cost = attribute_costs(trace_records)
        cost_rollup = {
            "total_usd": round(cost.total_usd, 6),
            "by_bucket_usd": {
                k: round(v, 6) for k, v in cost.by_bucket.items()
            },
            "n_vms": len(cost.vms),
        }
    except ValueError:
        cost_rollup = {"total_usd": 0.0, "by_bucket_usd": {}, "n_vms": 0}

    planner = None
    if attrs.get("planner_ttc_s") is not None:
        _, gates = planner_violations(trace_records)
        planner = {
            g.name: {
                "predicted": g.predicted,
                "actual": g.actual,
                "rel_err": round(g.rel_err, 6),
            }
            for g in gates
        }

    spectrum_spans = [
        s
        for s in trace_records
        if s.get("type") == "span" and s.get("name") == "spectrum.build"
    ]
    spectrum_build_s = (
        round(sum(s["r1"] - s["r0"] for s in spectrum_spans), 6)
        if spectrum_spans
        else None
    )

    alert_events = [
        r
        for r in trace_records
        if r.get("type") == "event" and r.get("cat") == "alert"
    ]
    alerts = {
        "total": len(alert_events),
        "by_severity": {},
        "by_rule": {},
    }
    for alert_event in alert_events:
        alert_attrs = alert_event.get("attrs", {})
        sev = alert_attrs.get("severity", "warning")
        rule = alert_attrs.get("rule", "?")
        alerts["by_severity"][sev] = alerts["by_severity"].get(sev, 0) + 1
        alerts["by_rule"][rule] = alerts["by_rule"].get(rule, 0) + 1

    counters = metrics_of(trace_records).get("counters", {})
    record = {
        "schema": SCHEMA_VERSION,
        "run_id": run_id,
        "dataset": attrs.get("dataset"),
        "config_fingerprint": attrs.get("config_fingerprint"),
        "store_digest": attrs.get("store_digest"),
        "scheme": attrs.get("scheme"),
        "workflow": attrs.get("workflow"),
        "assemblers": attrs.get("assemblers"),
        "ttc_s": root["v1"] - root["v0"],
        "real_s": round(root["r1"] - root["r0"], 6),
        "spectrum_build_s": spectrum_build_s,
        "stages": stages,
        "counters": counters,
        "cost": cost_rollup,
        "critical_path": path.summary(),
        "planner": planner,
        "alerts": alerts,
    }
    return record


def _comparable(a: dict, b: dict) -> bool:
    return (
        a.get("dataset") == b.get("dataset")
        and a.get("config_fingerprint") == b.get("config_fingerprint")
    )


@dataclass(frozen=True)
class Regression:
    """One blown threshold in the latest run vs its baseline window."""

    quantity: str
    baseline: float
    latest: float
    rel_err: float
    tolerance: float

    def describe(self) -> str:
        return (
            f"{self.quantity}: baseline {self.baseline:.3f} -> "
            f"latest {self.latest:.3f} "
            f"({self.rel_err:+.2%}, tol {self.tolerance:.0%})"
        )


def check_regressions(
    records: Sequence[dict],
    window: int = 5,
    v_rel: float = 0.05,
    cost_rel: float = 0.25,
    build_rel: float = 1.0,
) -> tuple[list[Regression], str]:
    """Gate the latest record against the median of its baseline window.

    The baseline is the median over up to ``window`` immediately
    preceding records with the same dataset + config fingerprint —
    median, not mean, so one historic outlier cannot shift the gate.
    Returns ``(regressions, note)``; an empty baseline is a note, not a
    failure (a fresh ledger must not fail CI).  ``build_rel`` gates the
    host-side ``spectrum_build_s`` — real wall seconds on shared CI
    hosts, hence the deliberately loose default (a 2x blowup fails, run
    jitter does not).
    """
    if not records:
        raise ValueError("ledger is empty; nothing to check")
    latest = records[-1]
    baseline_pool = [
        r for r in records[:-1] if _comparable(r, latest)
    ][-window:]
    if not baseline_pool:
        return [], (
            "no comparable baseline records "
            "(first run at this dataset/config) — nothing to gate"
        )

    def median_of(get) -> float | None:
        vals = [v for v in (get(r) for r in baseline_pool) if v is not None]
        return statistics.median(vals) if vals else None

    regressions: list[Regression] = []

    def gate(quantity: str, baseline, latest_v, tol: float) -> None:
        if baseline is None or latest_v is None:
            return
        if baseline == 0:
            if latest_v != 0:
                regressions.append(
                    Regression(quantity, baseline, latest_v, 1.0, tol)
                )
            return
        rel = (latest_v - baseline) / baseline
        # One-sided: only slower/more expensive is a regression.
        if rel > tol:
            regressions.append(
                Regression(quantity, baseline, latest_v, rel, tol)
            )

    gate(
        "ttc_s",
        median_of(lambda r: r.get("ttc_s")),
        latest.get("ttc_s"),
        v_rel,
    )
    gate(
        "cost.total_usd",
        median_of(lambda r: r.get("cost", {}).get("total_usd")),
        latest.get("cost", {}).get("total_usd"),
        cost_rel,
    )
    gate(
        "spectrum_build_s",
        median_of(lambda r: r.get("spectrum_build_s")),
        latest.get("spectrum_build_s"),
        build_rel,
    )
    for stage in latest.get("stages", {}):
        gate(
            f"stages.{stage}.virtual_s",
            median_of(
                lambda r, s=stage: r.get("stages", {})
                .get(s, {})
                .get("virtual_s")
            ),
            latest["stages"][stage].get("virtual_s"),
            v_rel,
        )
    # Alert regressions gate at zero tolerance: any severity firing more
    # often than its baseline median is a regression (records predating
    # the alert engine count as zero — alerts are opt-in, so a sudden
    # first firing at an established dataset/config is exactly the
    # signal this gate exists for).
    for severity in ("critical", "warning", "info"):
        gate(
            f"alerts.{severity}",
            median_of(
                lambda r, s=severity: (r.get("alerts") or {})
                .get("by_severity", {})
                .get(s, 0)
            ),
            (latest.get("alerts") or {})
            .get("by_severity", {})
            .get(severity, 0),
            0.0,
        )
    note = (
        f"gated against the median of {len(baseline_pool)} "
        f"comparable baseline record(s)"
    )
    return regressions, note


def _resolve_index(n: int, index: int) -> int:
    i = index if index >= 0 else n + index
    if not 0 <= i < n:
        raise IndexError(f"record index {index} out of range (n={n})")
    return i


def _summary_line(i: int, rec: dict) -> str:
    planner = rec.get("planner") or {}
    ttc_err = planner.get("ttc_s", {}).get("rel_err")
    return (
        f"[{i}] {rec.get('dataset')}"
        f" cfg={str(rec.get('config_fingerprint'))[:8]}"
        f" ttc={rec.get('ttc_s', 0.0):.1f}s"
        f" cost=${rec.get('cost', {}).get('total_usd', 0.0):.2f}"
        + (
            f" planner-err={ttc_err:.2%}"
            if ttc_err is not None
            else ""
        )
        + (
            f" alerts={(rec.get('alerts') or {}).get('total')}"
            if (rec.get("alerts") or {}).get("total")
            else ""
        )
        + (f" run_id={rec['run_id']}" if rec.get("run_id") else "")
    )


def compare_records(a: dict, b: dict) -> str:
    lines = ["== ledger compare =="]
    if not _comparable(a, b):
        lines.append(
            "note: records differ in dataset/config fingerprint — "
            "deltas below cross configurations"
        )

    def delta(name: str, va, vb) -> None:
        if va is None or vb is None:
            return
        rel = f" ({(vb - va) / va:+.2%})" if va else ""
        lines.append(f"  {name:<32} {va:>12.3f} -> {vb:>12.3f}{rel}")

    delta("ttc_s", a.get("ttc_s"), b.get("ttc_s"))
    delta(
        "spectrum_build_s",
        a.get("spectrum_build_s"),
        b.get("spectrum_build_s"),
    )
    delta(
        "cost.total_usd",
        a.get("cost", {}).get("total_usd"),
        b.get("cost", {}).get("total_usd"),
    )
    for stage in sorted(
        set(a.get("stages", {})) | set(b.get("stages", {}))
    ):
        delta(
            f"stages.{stage}.virtual_s",
            a.get("stages", {}).get(stage, {}).get("virtual_s"),
            b.get("stages", {}).get(stage, {}).get("virtual_s"),
        )
    ca, cb = a.get("counters", {}), b.get("counters", {})
    changed = {
        k for k in set(ca) | set(cb) if ca.get(k, 0) != cb.get(k, 0)
    }
    for k in sorted(changed):
        lines.append(
            f"  counters.{k:<23} {ca.get(k, 0):>12} -> {cb.get(k, 0):>12}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.ledger",
        description="Append-only pipeline-run ledger.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_append = sub.add_parser("append", help="distill a trace and append")
    p_append.add_argument("trace", help="JSONL trace file")
    p_append.add_argument("--ledger", required=True)
    p_append.add_argument("--run-id", default=None)

    p_list = sub.add_parser("list", help="one summary line per record")
    p_list.add_argument("--ledger", required=True)
    p_list.add_argument("--json", action="store_true")

    p_show = sub.add_parser("show", help="dump one record")
    p_show.add_argument("--ledger", required=True)
    p_show.add_argument(
        "--index", type=int, default=-1, help="record index (negatives ok)"
    )

    p_cmp = sub.add_parser("compare", help="delta two records")
    p_cmp.add_argument("--ledger", required=True)
    p_cmp.add_argument("-a", type=int, default=-2, help="baseline index")
    p_cmp.add_argument("-b", type=int, default=-1, help="candidate index")

    p_check = sub.add_parser(
        "check", help="gate the latest record vs its baseline window"
    )
    p_check.add_argument("--ledger", required=True)
    p_check.add_argument("--window", type=int, default=5)
    p_check.add_argument("--v-rel", type=float, default=0.05)
    p_check.add_argument("--cost-rel", type=float, default=0.25)
    p_check.add_argument("--build-rel", type=float, default=1.0)
    p_check.add_argument("--json", action="store_true")

    args = parser.parse_args(argv)
    ledger = RunLedger(args.ledger)

    if args.cmd == "append":
        trace = load_jsonl(args.trace)
        try:
            record = build_record(trace, run_id=args.run_id)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        ledger.append(record)
        result = ledger.read()
        print(_summary_line(len(result.records) - 1, record))
        return 0

    result = ledger.read()
    if result.skipped:
        print(
            f"note: skipped {result.skipped} unparseable ledger line(s)",
            file=sys.stderr,
        )

    if args.cmd == "list":
        if args.json:
            print(json.dumps(result.records, indent=2, sort_keys=True))
        else:
            if not result.records:
                print("(empty ledger)")
            for i, rec in enumerate(result.records):
                print(_summary_line(i, rec))
        return 0

    if args.cmd == "show":
        try:
            i = _resolve_index(len(result.records), args.index)
        except IndexError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(result.records[i], indent=2, sort_keys=True))
        return 0

    if args.cmd == "compare":
        try:
            ia = _resolve_index(len(result.records), args.a)
            ib = _resolve_index(len(result.records), args.b)
        except IndexError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(compare_records(result.records[ia], result.records[ib]))
        return 0

    # check
    try:
        regressions, note = check_regressions(
            result.records,
            window=args.window,
            v_rel=args.v_rel,
            cost_rel=args.cost_rel,
            build_rel=args.build_rel,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(
            json.dumps(
                {
                    "note": note,
                    "regressions": [
                        {
                            "quantity": r.quantity,
                            "baseline": r.baseline,
                            "latest": r.latest,
                            "rel_err": r.rel_err,
                            "tolerance": r.tolerance,
                        }
                        for r in regressions
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"ledger check: {note}")
        for r in regressions:
            print(f"  REGRESSION: {r.describe()}")
        if not regressions:
            print("  ok — no regressions")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
