"""Span/event tracing on two clocks at once.

Every record carries **virtual time** (the :class:`~repro.cloud.clock.SimClock`
the simulation charges TTCs and dollars on) *and* **real host time**
(``time.perf_counter``) — the dual-timestamp model the run reports are
built on.  Virtual time answers the paper's questions (where do the
stage TTCs go?); real time answers the reproduction's own (where does a
bench session's wall-clock go?).

The tracer is process-wide but explicitly injectable:

* :func:`get_tracer` returns the current tracer — a :class:`NullTracer`
  by default, whose every operation is a no-op, so instrumented code
  costs nothing when tracing is off;
* :func:`set_tracer` / :func:`use_tracer` install a real
  :class:`Tracer` (``use_tracer`` is the scoped form tests and the
  pipeline use).

The tracer never reads the wall clock to *drive* anything and never
touches the virtual clock at all: tracing on or off, every virtual
quantity in the system is bit-identical (enforced by
``tests/core/test_trace_parity.py``).

Instrumentation inside workloads is visible under **every** executor
backend.  The serial backend records inline into the ambient tracer; the
thread and process backends propagate a picklable
:class:`~repro.obs.context.SpanContext` with each workload, the worker
records into a thread-locally installed
:class:`~repro.obs.context.BufferingTracer` (installed via
:func:`set_thread_tracer`, which :func:`get_tracer` consults before the
process-wide tracer), and the collect path merges the shipped records
back: re-parented under the dispatching span, real timestamps aligned
into the parent's ``perf_counter`` domain via a wall-clock handshake,
one ``worker-<pid>`` track per worker process, metric deltas folded into
the parent registry.  The pilot-layer seams — state transitions, SGE
jobs, stage boundaries — are always recorded on the main thread
regardless of backend.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.metrics import Metrics

_log = logging.getLogger("repro.obs")

#: Default process/thread track names for records emitted outside any span.
MAIN_TRACK = "main"


class TraceSink:
    """Receives trace records *as they happen* (the streaming bus).

    A sink attached via :meth:`Tracer.add_sink` is handed one dict per
    occurrence, in emission order:

    * ``{"type": "span_open", ...}``  when a ``span()`` body is entered
      (same keys as the close record, minus the end timestamps);
    * ``{"type": "span", ...}``       when a span closes (the archival
      JSONL schema, bit-identical to what ``write_jsonl`` stores);
    * ``{"type": "event", ...}``      for point events;
    * ``{"type": "metric", ...}``     for metric deltas
      (``kind`` counter/gauge/histogram, ``name``, ``value``, ``r``);
    * ``{"type": "metrics", "data": snapshot}`` once, from
      :meth:`close` of sinks that archive final state.

    ``emit`` may be called from any thread (heartbeat monitors and pool
    callbacks run off the main thread); implementations must lock their
    own state.  A raising sink is detached rather than allowed to take
    the run down — telemetry must never fail the pipeline.
    """

    def emit(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """End of stream; flush/teardown.  Default: nothing."""


@dataclass(frozen=True)
class EventRecord:
    """A point event: something happened at one instant."""

    name: str
    category: str = ""
    v_time: float | None = None  # virtual seconds (None: no clock bound)
    r_time: float = 0.0  # real perf_counter seconds
    process: str = MAIN_TRACK
    thread: str = MAIN_TRACK
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "type": "event",
            "name": self.name,
            "cat": self.category,
            "process": self.process,
            "thread": self.thread,
            "v": self.v_time,
            "r": self.r_time,
            "attrs": self.attrs,
        }


@dataclass(frozen=True)
class SpanRecord:
    """A completed span: something happened over an interval."""

    name: str
    category: str = ""
    v_start: float | None = None
    v_end: float | None = None
    r_start: float = 0.0
    r_end: float = 0.0
    process: str = MAIN_TRACK
    thread: str = MAIN_TRACK
    span_id: int = 0
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def v_duration(self) -> float:
        """Virtual seconds covered (0 when no clock was bound)."""
        if self.v_start is None or self.v_end is None:
            return 0.0
        return self.v_end - self.v_start

    @property
    def r_duration(self) -> float:
        return self.r_end - self.r_start

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "process": self.process,
            "thread": self.thread,
            "v0": self.v_start,
            "v1": self.v_end,
            "r0": self.r_start,
            "r1": self.r_end,
            "id": self.span_id,
            "parent": self.parent_id,
            "attrs": self.attrs,
        }


class SpanHandle:
    """The open span yielded by :meth:`Tracer.span`; lets the body attach
    attributes discovered mid-flight (``sp.set(n_contigs=17)``)."""

    __slots__ = ("process", "thread", "span_id", "extra")

    def __init__(self, process: str, thread: str, span_id: int) -> None:
        self.process = process
        self.thread = thread
        self.span_id = span_id
        self.extra: dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        self.extra.update(attrs)


class Tracer:
    """Records spans, point events and metrics on the dual clocks.

    ``clock`` is anything with a ``.now`` float attribute (duck-typed so
    this module stays import-free of the cloud layer); bind the run's
    :class:`SimClock` with :meth:`bind_clock` to get virtual timestamps —
    unbound, records carry ``None`` virtual times and only the real clock.
    """

    enabled: bool = True

    def __init__(self, clock: Any | None = None) -> None:
        self.clock = clock
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self.metrics = Metrics()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._sinks: list[TraceSink] = []

    # -- wiring ------------------------------------------------------------

    def bind_clock(self, clock: Any) -> None:
        """Attach the virtual clock whose ``.now`` timestamps records."""
        self.clock = clock

    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Attach a live :class:`TraceSink`; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        """Detach ``sink`` (no-op when it is not attached)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def close_sinks(self) -> None:
        """Detach and :meth:`~TraceSink.close` every attached sink."""
        sinks, self._sinks = self._sinks, []
        for sink in sinks:
            sink.close()

    def _emit(self, record: dict) -> None:
        """Fan a record out to the attached sinks.  A sink that raises is
        detached: losing telemetry beats failing the run."""
        for sink in list(self._sinks):
            try:
                sink.emit(record)
            except Exception:
                self.remove_sink(sink)
                _log.warning(
                    "trace sink %r raised and was detached", sink, exc_info=True
                )

    def _vnow(self) -> float | None:
        clock = self.clock
        return clock.now if clock is not None else None

    def _stack(self) -> list[SpanHandle]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _track(
        self, process: str | None, thread: str | None
    ) -> tuple[str, str, int | None]:
        """Resolve (process, thread, parent span id), inheriting the
        enclosing span's tracks when not given explicitly."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        proc = process if process is not None else (
            parent.process if parent else MAIN_TRACK
        )
        thr = thread if thread is not None else (
            parent.thread if parent else MAIN_TRACK
        )
        return proc, thr, parent.span_id if parent else None

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        process: str | None = None,
        thread: str | None = None,
        **attrs: Any,
    ) -> Iterator[SpanHandle]:
        """Open a nested span covering the ``with`` body on both clocks."""
        proc, thr, parent_id = self._track(process, thread)
        handle = SpanHandle(proc, thr, next(self._ids))
        stack = self._stack()
        stack.append(handle)
        v0 = self._vnow()
        r0 = time.perf_counter()
        if self._sinks:
            self._emit(
                {
                    "type": "span_open",
                    "name": name,
                    "cat": category,
                    "process": proc,
                    "thread": thr,
                    "v": v0,
                    "r": r0,
                    "id": handle.span_id,
                    "parent": parent_id,
                    "attrs": attrs,
                }
            )
        try:
            yield handle
        finally:
            r1 = time.perf_counter()
            v1 = self._vnow()
            stack.pop()
            self.record_span(
                SpanRecord(
                    name=name,
                    category=category,
                    v_start=v0,
                    v_end=v1,
                    r_start=r0,
                    r_end=r1,
                    process=proc,
                    thread=thr,
                    span_id=handle.span_id,
                    parent_id=parent_id,
                    attrs={**attrs, **handle.extra},
                )
            )

    def add_span(
        self,
        name: str,
        v_start: float | None,
        v_end: float | None,
        category: str = "",
        process: str | None = None,
        thread: str | None = None,
        r_start: float | None = None,
        r_end: float | None = None,
        **attrs: Any,
    ) -> None:
        """Record a span retroactively from explicit timestamps — the form
        event-driven code uses (an SGE job's virtual start/finish are only
        known once its completion event fires)."""
        proc, thr, parent_id = self._track(process, thread)
        r_now = time.perf_counter()
        self.record_span(
            SpanRecord(
                name=name,
                category=category,
                v_start=v_start,
                v_end=v_end,
                r_start=r_now if r_start is None else r_start,
                r_end=r_now if r_end is None else r_end,
                process=proc,
                thread=thr,
                span_id=next(self._ids),
                parent_id=parent_id,
                attrs=attrs,
            )
        )

    def event(
        self,
        name: str,
        category: str = "",
        process: str | None = None,
        thread: str | None = None,
        v: float | None = None,
        **attrs: Any,
    ) -> None:
        """Record a point event (``v`` overrides the bound clock's now)."""
        proc, thr, _ = self._track(process, thread)
        self.record_event(
            EventRecord(
                name=name,
                category=category,
                v_time=self._vnow() if v is None else v,
                r_time=time.perf_counter(),
                process=proc,
                thread=thr,
                attrs=attrs,
            )
        )

    def record_span(self, record: SpanRecord) -> None:
        """Append a finished :class:`SpanRecord` and stream it to the
        sinks — the single chokepoint every span (inline, retroactive,
        merged-from-worker) goes through."""
        self.spans.append(record)
        if self._sinks:
            self._emit(record.to_dict())

    def record_event(self, record: EventRecord) -> None:
        """Append an :class:`EventRecord` and stream it (see
        :meth:`record_span`)."""
        self.events.append(record)
        if self._sinks:
            self._emit(record.to_dict())

    # -- metric conveniences ------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)
        if self._sinks:
            self._emit_delta("counter", name, amount)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)
        if self._sinks:
            self._emit_delta("gauge", name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)
        if self._sinks:
            self._emit_delta("histogram", name, value)

    def _emit_delta(self, kind: str, name: str, value: float) -> None:
        self._emit(
            {
                "type": "metric",
                "kind": kind,
                "name": name,
                "value": value,
                "r": time.perf_counter(),
            }
        )

    # -- views ---------------------------------------------------------------

    def records(self) -> list[dict]:
        """All spans and events as dicts, ordered by real timestamp."""
        out = [s.to_dict() for s in self.spans] + [e.to_dict() for e in self.events]
        out.sort(key=lambda d: d.get("r0", d.get("r", 0.0)))
        return out


class _NullSpanContext:
    """Reusable no-op context manager for :meth:`NullTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> SpanHandle:
        return _NULL_HANDLE

    def __exit__(self, *exc_info) -> bool:
        return False


class _NullHandle(SpanHandle):
    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


_NULL_HANDLE = _NullHandle(MAIN_TRACK, MAIN_TRACK, 0)
_NULL_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """The default tracer: every operation is a no-op.

    Instrumented code may call it unconditionally; nothing is recorded,
    allocated or timed, which is what keeps tracing zero-cost when
    disabled.
    """

    enabled = False

    def bind_clock(self, clock: Any) -> None:
        pass

    def add_sink(self, sink: TraceSink) -> TraceSink:
        # Zero-cost promise: a NullTracer never records, so it never
        # streams either.  The sink is returned unattached.
        return sink

    def span(self, name, category="", process=None, thread=None, **attrs):
        return _NULL_CONTEXT

    def add_span(self, *args, **kwargs) -> None:
        pass

    def record_span(self, record: SpanRecord) -> None:
        pass

    def record_event(self, record: EventRecord) -> None:
        pass

    def event(self, *args, **kwargs) -> None:
        pass

    def count(self, name: str, amount: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


_DEFAULT = NullTracer()
_current: Tracer = _DEFAULT
_thread_local = threading.local()


def get_tracer() -> Tracer:
    """The active tracer: a thread-local override when one is installed
    (executor workers buffering for a remote parent), else the
    process-wide tracer (a no-op :class:`NullTracer` by default)."""
    override = getattr(_thread_local, "tracer", None)
    return override if override is not None else _current


def set_thread_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` for the *current thread only* (``None`` removes
    the override); returns the previous override.  This is how
    ``run_workload`` scopes a worker-side buffering tracer to one
    workload without touching the process-wide tracer other threads —
    including, under the thread backend, the main thread — record into.
    """
    previous = getattr(_thread_local, "tracer", None)
    _thread_local.tracer = tracer
    return previous


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` (``None`` restores the no-op default); returns
    the previously installed tracer so callers can restore it."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else _DEFAULT
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None) -> Iterator[Tracer]:
    """Scoped :func:`set_tracer`: install for the ``with`` body, then
    restore whatever was installed before."""
    previous = set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)
