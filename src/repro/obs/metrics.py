"""Metric primitives: counters, gauges and histograms in a registry.

The tracer feeds these from the same instrumentation points that emit
spans and events; they answer the "how many / how much" questions (units
restarted, dollars billed, workload wall-seconds) that a raw event
stream makes awkward.  Everything is plain in-memory state — the
exporters snapshot it into the trace file.

Registries also know how to **merge**: a worker-side tracer starts from
a fresh registry, so everything it accumulates is a delta, and
:meth:`Metrics.merge` folds those deltas into the parent — counters add,
histograms concatenate observations, and gauges keep whichever value was
set latest on the real clock (each :meth:`Gauge.set` stamps
``perf_counter``; cross-process merges shift worker stamps into the
parent clock domain first).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count (events, dollars, bytes)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold in another counter's total (a delta from a fresh registry)."""
        self.inc(other.value)


@dataclass
class Gauge:
    """A point-in-time value (VMs running, free slots).

    ``updated_r`` is the real (``perf_counter``) timestamp of the last
    ``set``; merges use it to keep the *most recent* observation rather
    than whichever side merged last.
    """

    name: str
    value: float | None = None
    updated_r: float | None = None

    def set(self, value: float, r_time: float | None = None) -> None:
        self.value = value
        self.updated_r = time.perf_counter() if r_time is None else r_time

    def merge(self, other: "Gauge") -> None:
        """Keep the value set latest on the real clock (never-set loses;
        on an exact tie the incoming value wins, matching "other is the
        newer registry" in the merge direction convention)."""
        if other.value is None:
            return
        if self.value is None or (other.updated_r or 0.0) >= (
            self.updated_r or 0.0
        ):
            self.value = other.value
            self.updated_r = other.updated_r


@dataclass
class Histogram:
    """A distribution of observations (workload wall-seconds, span sizes)."""

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def stddev(self) -> float:
        """Population standard deviation (0 with < 2 observations)."""
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self.values) / len(self.values)
        )

    def summary(self) -> dict:
        """One JSON-ready dict of the distribution's summary stats —
        what the exporters and the report render instead of the raw
        concatenated observation list."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }

    def merge(self, other: "Histogram") -> None:
        """Concatenate another histogram's observations."""
        self.values.extend(other.values)


@dataclass
class Metrics:
    """Get-or-create registry for the three metric kinds."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def merge(self, other: "Metrics", on_delta=None) -> None:
        """Fold another registry's deltas into this one (see module
        docstring for the per-kind semantics).

        ``on_delta(kind, name, value)``, when given, is invoked once per
        folded quantity so a streaming consumer sees merged worker
        metrics the same way it sees parent-side increments: counters
        report the folded delta, gauges the incoming value *iff* it won
        the latest-wins race, histograms one call per observation."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
            if on_delta is not None and counter.value:
                on_delta("counter", name, counter.value)
        for name, gauge in other.gauges.items():
            mine = self.gauge(name)
            before = (mine.value, mine.updated_r)
            mine.merge(gauge)
            if on_delta is not None and (mine.value, mine.updated_r) != before:
                on_delta("gauge", name, mine.value)
        for name, histogram in other.histograms.items():
            self.histogram(name).merge(histogram)
            if on_delta is not None:
                for value in histogram.values:
                    on_delta("histogram", name, value)

    def snapshot(self) -> dict:
        """JSON-ready view of every metric (written into trace files)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }
