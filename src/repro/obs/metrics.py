"""Metric primitives: counters, gauges and histograms in a registry.

The tracer feeds these from the same instrumentation points that emit
spans and events; they answer the "how many / how much" questions (units
restarted, dollars billed, workload wall-seconds) that a raw event
stream makes awkward.  Everything is plain in-memory state — the
exporters snapshot it into the trace file.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count (events, dollars, bytes)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (VMs running, free slots)."""

    name: str
    value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """A distribution of observations (workload wall-seconds, span sizes)."""

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]


@dataclass
class Metrics:
    """Get-or-create registry for the three metric kinds."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def snapshot(self) -> dict:
        """JSON-ready view of every metric (written into trace files)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean,
                    "min": h.min,
                    "max": h.max,
                    "p50": h.percentile(50),
                    "p95": h.percentile(95),
                }
                for n, h in sorted(self.histograms.items())
            },
        }
