"""Multi-k, multi-assembler assembly fan-out.

Builds one compute unit per (assembler, k) pair — the paper's sample run
submits "the total 6 jobs, corresponding to two k-mer assemblies for each
assembler" to SGE — and provides the workload closures that run the real
assemblers on the pre-processed reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assembly.base import AssemblyParams
from repro.assembly.contigs import AssemblyResult
from repro.assembly.registry import get_assembler
from repro.cloud.instances import get_instance_type
from repro.core.scaling import paper_usage
from repro.core.memory import task_memory_bytes
from repro.core.planner import AssemblyPlan
from repro.pilot.description import UnitDescription
from repro.seq.datasets import DatasetSpec
from repro.seq.fastq import FastqRecord


def make_assembly_workload(
    assembler_name: str,
    reads: list[FastqRecord],
    params: AssemblyParams,
    n_ranks: int,
    dataset=None,
):
    """Closure executing one real assembly; returns (result, usage).

    When ``dataset`` is given the usage is extrapolated to paper scale
    with the per-phase factors of :mod:`repro.core.scaling` (the unit is
    then submitted with ``scale=1``)."""

    def work():
        assembler = get_assembler(assembler_name)
        if assembler_name in ("ray", "abyss", "contrail"):
            result = assembler.assemble(reads, params, n_ranks=n_ranks)
        else:
            result = assembler.assemble(reads, params)
        usage = result.usage if dataset is None else paper_usage(
            result.usage, dataset
        )
        return result, usage

    return work


def assembly_unit_descriptions(
    plan: AssemblyPlan,
    spec: DatasetSpec,
    reads: list[FastqRecord],
    dataset,
    min_count: int = 2,
    min_contig_length: int = 100,
    input_bytes: int | None = None,
) -> list[UnitDescription]:
    """One UnitDescription per (assembler, k) job in the plan.

    ``dataset`` provides the paper-scale extrapolation factors; workloads
    hand back already-extrapolated usage, so units carry ``scale=1``.
    """
    itype = get_instance_type(plan.instance_type)
    if input_bytes is None:
        input_bytes = spec.preprocessed_bytes
    descs = []
    for assembler, k, nodes in plan.jobs():
        params = AssemblyParams(
            k=k,
            min_count=min_count,
            min_contig_length=max(min_contig_length, k),
        )
        cores = nodes * itype.vcpus
        descs.append(
            UnitDescription(
                name=f"{assembler}_k{k}",
                work=make_assembly_workload(
                    assembler, reads, params, cores, dataset=dataset
                ),
                cores=cores,
                memory_bytes=task_memory_bytes(spec, "assembly", n_nodes=1),
                scale=1.0,
                stage="transcript-assembly",
                input_bytes=input_bytes,
                tags={"assembler": assembler, "k": k, "nodes": nodes},
            )
        )
    return descs


def collect_assembly_results(units) -> dict[tuple[str, int], AssemblyResult]:
    """Map finished assembly units back to (assembler, k) keys."""
    out: dict[tuple[str, int], AssemblyResult] = {}
    for u in units:
        if u.result is not None:
            key = (u.description.tags["assembler"], u.description.tags["k"])
            out[key] = u.result
    return out
