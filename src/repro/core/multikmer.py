"""Multi-k, multi-assembler assembly fan-out.

Builds one compute unit per (assembler, k) pair — the paper's sample run
submits "the total 6 jobs, corresponding to two k-mer assemblies for each
assembler" to SGE — and provides the workload closures that run the real
assemblers on the pre-processed reads.

The fan-out follows an encode-once discipline: the reads are encoded one
time into a shared :class:`~repro.seq.readstore.ReadStore` and every
workload carries only a cheap store reference — O(1) to pickle under the
process backend (a shared-memory handle), zero per-unit copying, and one
shared code array feeding every per-k extraction.  A content-addressed
:class:`~repro.core.assembly_cache.AssemblyCache` keyed by the store
digest short-circuits byte-identical re-runs (VM reuse, restarts,
repeated sweeps) with bit-identical results and virtual TTCs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assembly.base import AssemblyParams, assemble_encoded
from repro.assembly.contigs import AssemblyResult
from repro.assembly.registry import get_assembler
from repro.cloud.instances import get_instance_type
from repro.core.assembly_cache import get_assembly_cache
from repro.core.scaling import paper_usage_from_scales
from repro.core.memory import task_memory_bytes
from repro.core.planner import AssemblyPlan
from repro.obs import get_tracer
from repro.pilot.description import UnitDescription
from repro.seq.datasets import DatasetSpec
from repro.seq.fastq import FastqRecord
from repro.seq.readstore import ReadStore

#: Assemblers taking an ``n_ranks`` argument (distributed implementations).
DISTRIBUTED_ASSEMBLERS = frozenset({"ray", "abyss", "contrail"})


@dataclass(frozen=True)
class AssemblyWorkload:
    """One real assembly as a picklable workload callable.

    A module-level dataclass (rather than a nested closure) so the
    process-pool executor backend can ship it to a worker and pickle the
    ``(AssemblyResult, ResourceUsage)`` outcome back.  When the scale
    ratios are set, the measured usage is extrapolated to paper scale
    with the per-phase factors of :mod:`repro.core.scaling` (the unit is
    then submitted with ``scale=1``).

    Exactly one of ``store``/``reads`` is set.  ``store`` is the
    encode-once path: the workload pickles to a constant-size
    shared-memory handle regardless of read count, and (unless
    ``use_cache`` is off) consults the content-addressed assembly cache
    before running.  ``reads`` is the legacy self-contained record tuple,
    kept for old callers and as the old-path baseline in benchmarks.
    """

    assembler_name: str
    params: AssemblyParams
    n_ranks: int
    store: ReadStore | None = None
    reads: tuple[FastqRecord, ...] | None = None
    read_scale: float | None = None
    graph_scale: float | None = None
    use_cache: bool = True

    def __post_init__(self) -> None:
        if (self.store is None) == (self.reads is None):
            raise ValueError("exactly one of store/reads must be set")

    def cache_key(self):
        """Content address of this workload, or None when uncacheable."""
        if self.store is None or not self.use_cache:
            return None
        return (
            self.store.digest,
            self.assembler_name,
            self.params,
            self.n_ranks,
        )

    def _assemble(self) -> AssemblyResult:
        assembler = get_assembler(self.assembler_name)
        kwargs = (
            {"n_ranks": self.n_ranks}
            if self.assembler_name in DISTRIBUTED_ASSEMBLERS
            else {}
        )
        if self.store is not None:
            return assemble_encoded(assembler, self.store, self.params, **kwargs)
        return assembler.assemble(list(self.reads), self.params, **kwargs)

    def record_result(self, result: AssemblyResult) -> None:
        """Insert a collected *raw* result into the active cache.

        Called by :func:`collect_assembly_results` on the parent side so
        results computed in pool workers (whose in-worker cache inserts
        never cross the process boundary) become hits for later sweeps.
        """
        key = self.cache_key()
        if key is None:
            return
        cache = get_assembly_cache()
        if cache is not None:
            cache.put(key, result)

    def __call__(self):
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "assembly_workload",
                category="workload",
                assembler=self.assembler_name,
                k=self.params.k,
            ):
                return self._execute(tracer)
        return self._execute(tracer)

    def _execute(self, tracer):
        key = self.cache_key()
        cache = get_assembly_cache() if key is not None else None
        result = cache.get(key) if cache is not None else None
        if cache is not None and tracer.enabled:
            outcome = "hit" if result is not None else "miss"
            tracer.count(f"assembly_cache.{outcome}")
            tracer.event(
                "assembly_cache.lookup",
                category="cache",
                assembler=self.assembler_name,
                k=self.params.k,
                n_ranks=self.n_ranks,
                outcome=outcome,
            )
        if result is None:
            result = self._assemble()
            if cache is not None:
                cache.put(key, result)
        usage = result.usage
        if self.read_scale is not None and self.graph_scale is not None:
            usage = paper_usage_from_scales(
                usage, self.read_scale, self.graph_scale
            )
        return result, usage


def make_assembly_workload(
    assembler_name: str,
    reads: "ReadStore | list[FastqRecord]",
    params: AssemblyParams,
    n_ranks: int,
    dataset=None,
    use_cache: bool = True,
) -> AssemblyWorkload:
    """Workload executing one real assembly; returns (result, usage).

    ``reads`` is ideally an already-built (shared) :class:`ReadStore`;
    a record list is encoded once here.  When ``dataset`` is given, only
    its two extrapolation ratios are captured — the workload stays cheap
    to pickle."""

    store = (
        reads if isinstance(reads, ReadStore) else ReadStore.from_reads(reads)
    )
    return AssemblyWorkload(
        assembler_name=assembler_name,
        params=params,
        n_ranks=n_ranks,
        store=store,
        read_scale=None if dataset is None else dataset.read_scale,
        graph_scale=None if dataset is None else dataset.scale,
        use_cache=use_cache,
    )


def assembly_unit_descriptions(
    plan: AssemblyPlan,
    spec: DatasetSpec,
    reads: "ReadStore | list[FastqRecord]",
    dataset,
    min_count: int = 2,
    min_contig_length: int = 100,
    input_bytes: int | None = None,
    use_cache: bool = True,
    max_restarts: int = 0,
) -> list[UnitDescription]:
    """One UnitDescription per (assembler, k) job in the plan.

    ``dataset`` provides the paper-scale extrapolation factors; workloads
    hand back already-extrapolated usage, so units carry ``scale=1``.
    The reads are encoded exactly once — every unit's workload shares the
    same :class:`ReadStore`.

    Every unit carries a ``checkpoint_key`` — the same content address
    the assembly cache uses, ``(store digest, assembler, params,
    ranks)`` — so runs with a durable checkpoint store resume the
    fan-out bit-identically.  ``max_restarts`` lets callers survive
    transient failures (spot preemption) by retrying.
    """
    store = (
        reads if isinstance(reads, ReadStore) else ReadStore.from_reads(reads)
    )
    itype = get_instance_type(plan.instance_type)
    if input_bytes is None:
        input_bytes = spec.preprocessed_bytes
    descs = []
    for assembler, k, nodes in plan.jobs():
        params = AssemblyParams(
            k=k,
            min_count=min_count,
            min_contig_length=max(min_contig_length, k),
        )
        cores = nodes * itype.vcpus
        descs.append(
            UnitDescription(
                name=f"{assembler}_k{k}",
                work=make_assembly_workload(
                    assembler,
                    store,
                    params,
                    cores,
                    dataset=dataset,
                    use_cache=use_cache,
                ),
                cores=cores,
                memory_bytes=task_memory_bytes(spec, "assembly", n_nodes=1),
                scale=1.0,
                stage="transcript-assembly",
                input_bytes=input_bytes,
                max_restarts=max_restarts,
                checkpoint_key=(store.digest, assembler, params, cores),
                tags={"assembler": assembler, "k": k, "nodes": nodes},
            )
        )
    return descs


def collect_assembly_results(units) -> dict[tuple[str, int], AssemblyResult]:
    """Map finished assembly units back to (assembler, k) keys.

    Also records each collected raw result into the assembly cache (see
    :meth:`AssemblyWorkload.record_result`) so results computed inside
    pool workers are available as parent-side hits for later sweeps.
    """
    out: dict[tuple[str, int], AssemblyResult] = {}
    for u in units:
        if u.result is not None:
            work = u.description.work
            if isinstance(work, AssemblyWorkload):
                work.record_result(u.result)
            key = (u.description.tags["assembler"], u.description.tags["k"])
            out[key] = u.result
    return out
