"""Multi-k, multi-assembler assembly fan-out.

Builds one compute unit per (assembler, k) pair — the paper's sample run
submits "the total 6 jobs, corresponding to two k-mer assemblies for each
assembler" to SGE — and provides the workload closures that run the real
assemblers on the pre-processed reads.

The fan-out follows an encode-once discipline: the reads are encoded one
time into a shared :class:`~repro.seq.readstore.ReadStore` and every
workload carries only a cheap store reference — O(1) to pickle under the
process backend (a shared-memory handle), zero per-unit copying, and one
shared code array feeding every per-k extraction.  A content-addressed
:class:`~repro.core.assembly_cache.AssemblyCache` keyed by the store
digest short-circuits byte-identical re-runs (VM reuse, restarts,
repeated sweeps) with bit-identical results and virtual TTCs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assembly.base import AssemblyParams, assemble_encoded
from repro.assembly.contigs import AssemblyResult
from repro.assembly.registry import get_assembler
from repro.assembly.sweep import KmerSpectrum, get_kmer_table_cache
from repro.assembly.trinity import TRINITY_K
from repro.cloud.instances import get_instance_type
from repro.core.assembly_cache import get_assembly_cache
from repro.core.scaling import paper_usage_from_scales
from repro.core.memory import task_memory_bytes
from repro.core.planner import AssemblyPlan
from repro.obs import get_tracer
from repro.pilot.description import UnitDescription
from repro.seq.datasets import DatasetSpec
from repro.seq.fastq import FastqRecord
from repro.seq.readstore import ReadStore

#: Assemblers taking an ``n_ranks`` argument (distributed implementations).
DISTRIBUTED_ASSEMBLERS = frozenset({"ray", "abyss", "contrail"})


@dataclass(frozen=True)
class AssemblyWorkload:
    """One real assembly as a picklable workload callable.

    A module-level dataclass (rather than a nested closure) so the
    process-pool executor backend can ship it to a worker and pickle the
    ``(AssemblyResult, ResourceUsage)`` outcome back.  When the scale
    ratios are set, the measured usage is extrapolated to paper scale
    with the per-phase factors of :mod:`repro.core.scaling` (the unit is
    then submitted with ``scale=1``).

    Exactly one of ``store``/``reads`` is set.  ``store`` is the
    encode-once path: the workload pickles to a constant-size
    shared-memory handle regardless of read count, and (unless
    ``use_cache`` is off) consults the content-addressed assembly cache
    before running.  ``reads`` is the legacy self-contained record tuple,
    kept for old callers and as the old-path baseline in benchmarks.

    ``spectra`` carries the count-once fused extraction of
    :mod:`repro.assembly.sweep`: shared :class:`KmerSpectrum` objects
    (O(1) to pickle, like the store) from which the assembler's matching
    k is served instead of re-extracted.  Resolution goes through the
    process-wide :class:`~repro.assembly.sweep.KmerTableCache`, so
    same-(store, k) workloads in one process share a single spectrum and
    its derived tables/partitions.  Spectra never change results — only
    wall time — so they are not part of the cache key.
    """

    assembler_name: str
    params: AssemblyParams
    n_ranks: int
    store: ReadStore | None = None
    reads: tuple[FastqRecord, ...] | None = None
    read_scale: float | None = None
    graph_scale: float | None = None
    use_cache: bool = True
    spectra: tuple[KmerSpectrum, ...] = ()

    def __post_init__(self) -> None:
        if (self.store is None) == (self.reads is None):
            raise ValueError("exactly one of store/reads must be set")

    def cache_key(self):
        """Content address of this workload, or None when uncacheable."""
        if self.store is None or not self.use_cache:
            return None
        return (
            self.store.digest,
            self.assembler_name,
            self.params,
            self.n_ranks,
        )

    def _resolve_spectrum(self) -> "KmerSpectrum | None":
        """This workload's spectrum (trinity always wants k=25), resolved
        through the process-wide table cache for cross-unit sharing."""
        if not self.spectra or self.store is None:
            return None
        want_k = TRINITY_K if self.assembler_name == "trinity" else self.params.k
        for spectrum in self.spectra:
            if (
                spectrum.k == want_k
                and spectrum.store_digest == self.store.digest
                and not spectrum.closed
            ):
                cache = get_kmer_table_cache()
                return cache.resolve(spectrum) if cache is not None else spectrum
        return None

    def _assemble(self) -> AssemblyResult:
        assembler = get_assembler(self.assembler_name)
        kwargs = (
            {"n_ranks": self.n_ranks}
            if self.assembler_name in DISTRIBUTED_ASSEMBLERS
            else {}
        )
        if self.store is not None:
            spectrum = self._resolve_spectrum()
            if spectrum is not None:
                kwargs["spectrum"] = spectrum
            return assemble_encoded(assembler, self.store, self.params, **kwargs)
        return assembler.assemble(list(self.reads), self.params, **kwargs)

    def record_result(self, result: AssemblyResult) -> None:
        """Insert a collected *raw* result into the active cache.

        Called by :func:`collect_assembly_results` on the parent side so
        results computed in pool workers (whose in-worker cache inserts
        never cross the process boundary) become hits for later sweeps.
        """
        key = self.cache_key()
        if key is None:
            return
        cache = get_assembly_cache()
        if cache is not None:
            inserted = cache.put(key, result)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.count("assembly_cache.put")
                tracer.event(
                    "assembly_cache.put",
                    category="cache",
                    assembler=self.assembler_name,
                    k=self.params.k,
                    n_ranks=self.n_ranks,
                    outcome="inserted" if inserted else "kept",
                )

    def __call__(self):
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "assembly_workload",
                category="workload",
                assembler=self.assembler_name,
                k=self.params.k,
            ):
                return self._execute(tracer)
        return self._execute(tracer)

    def _execute(self, tracer):
        key = self.cache_key()
        cache = get_assembly_cache() if key is not None else None
        result = cache.get(key) if cache is not None else None
        if cache is not None and tracer.enabled:
            outcome = "hit" if result is not None else "miss"
            tracer.count(f"assembly_cache.{outcome}")
            tracer.event(
                "assembly_cache.lookup",
                category="cache",
                assembler=self.assembler_name,
                k=self.params.k,
                n_ranks=self.n_ranks,
                outcome=outcome,
            )
        if result is None:
            result = self._assemble()
            if cache is not None:
                cache.put(key, result)
        usage = result.usage
        if self.read_scale is not None and self.graph_scale is not None:
            usage = paper_usage_from_scales(
                usage, self.read_scale, self.graph_scale
            )
        return result, usage


def make_assembly_workload(
    assembler_name: str,
    reads: "ReadStore | list[FastqRecord]",
    params: AssemblyParams,
    n_ranks: int,
    dataset=None,
    use_cache: bool = True,
    spectra: tuple[KmerSpectrum, ...] = (),
) -> AssemblyWorkload:
    """Workload executing one real assembly; returns (result, usage).

    ``reads`` is ideally an already-built (shared) :class:`ReadStore`;
    a record list is encoded once here.  When ``dataset`` is given, only
    its two extrapolation ratios are captured — the workload stays cheap
    to pickle.  ``spectra`` optionally carries count-once
    :class:`~repro.assembly.sweep.KmerSpectrum` objects; the one matching
    the assembler's k (if any) serves extraction."""

    store = (
        reads if isinstance(reads, ReadStore) else ReadStore.from_reads(reads)
    )
    return AssemblyWorkload(
        assembler_name=assembler_name,
        params=params,
        n_ranks=n_ranks,
        store=store,
        read_scale=None if dataset is None else dataset.read_scale,
        graph_scale=None if dataset is None else dataset.scale,
        use_cache=use_cache,
        spectra=tuple(spectra),
    )


def assembly_unit_descriptions(
    plan: AssemblyPlan,
    spec: DatasetSpec,
    reads: "ReadStore | list[FastqRecord]",
    dataset,
    min_count: int = 2,
    min_contig_length: int = 100,
    input_bytes: int | None = None,
    use_cache: bool = True,
    max_restarts: int = 0,
    spectra: tuple[KmerSpectrum, ...] = (),
) -> list[UnitDescription]:
    """One UnitDescription per (assembler, k) job in the plan.

    ``dataset`` provides the paper-scale extrapolation factors; workloads
    hand back already-extrapolated usage, so units carry ``scale=1``.
    The reads are encoded exactly once — every unit's workload shares the
    same :class:`ReadStore`.  ``spectra`` (see :func:`build_spectra`)
    additionally extracts/counts k-mers exactly once per k: each unit's
    workload receives only the spectrum matching its job's k, so
    spectra for other k values are never pickled to that unit's worker.

    Every unit carries a ``checkpoint_key`` — the same content address
    the assembly cache uses, ``(store digest, assembler, params,
    ranks)`` — so runs with a durable checkpoint store resume the
    fan-out bit-identically.  ``max_restarts`` lets callers survive
    transient failures (spot preemption) by retrying.
    """
    store = (
        reads if isinstance(reads, ReadStore) else ReadStore.from_reads(reads)
    )
    itype = get_instance_type(plan.instance_type)
    if input_bytes is None:
        input_bytes = spec.preprocessed_bytes
    descs = []
    for assembler, k, nodes in plan.jobs():
        params = AssemblyParams(
            k=k,
            min_count=min_count,
            min_contig_length=max(min_contig_length, k),
        )
        cores = nodes * itype.vcpus
        want_k = TRINITY_K if assembler == "trinity" else k
        job_spectra = tuple(
            sp
            for sp in spectra
            if sp.k == want_k and sp.store_digest == store.digest
        )
        descs.append(
            UnitDescription(
                name=f"{assembler}_k{k}",
                work=make_assembly_workload(
                    assembler,
                    store,
                    params,
                    cores,
                    dataset=dataset,
                    use_cache=use_cache,
                    spectra=job_spectra,
                ),
                cores=cores,
                memory_bytes=task_memory_bytes(spec, "assembly", n_nodes=1),
                scale=1.0,
                stage="transcript-assembly",
                input_bytes=input_bytes,
                max_restarts=max_restarts,
                checkpoint_key=(store.digest, assembler, params, cores),
                tags={"assembler": assembler, "k": k, "nodes": nodes},
            )
        )
    return descs


def collect_assembly_results(units) -> dict[tuple[str, int], AssemblyResult]:
    """Map finished assembly units back to (assembler, k) keys.

    Also records each collected raw result into the assembly cache (see
    :meth:`AssemblyWorkload.record_result`) so results computed inside
    pool workers are available as parent-side hits for later sweeps.

    Raises :class:`ValueError` when two finished units map to the same
    ``(assembler, k)`` key — a silent overwrite here would drop one
    unit's contigs and usage from the merge without any signal.
    """
    out: dict[tuple[str, int], AssemblyResult] = {}
    for u in units:
        if u.result is not None:
            work = u.description.work
            if isinstance(work, AssemblyWorkload):
                work.record_result(u.result)
            key = (u.description.tags["assembler"], u.description.tags["k"])
            if key in out:
                raise ValueError(
                    f"duplicate assembly result for {key!r}: unit "
                    f"{u.description.name!r} collides with an earlier unit"
                )
            out[key] = u.result
    return out
