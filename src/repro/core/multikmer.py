"""Multi-k, multi-assembler assembly fan-out.

Builds one compute unit per (assembler, k) pair — the paper's sample run
submits "the total 6 jobs, corresponding to two k-mer assemblies for each
assembler" to SGE — and provides the workload closures that run the real
assemblers on the pre-processed reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.assembly.base import AssemblyParams
from repro.assembly.contigs import AssemblyResult
from repro.assembly.registry import get_assembler
from repro.cloud.instances import get_instance_type
from repro.core.scaling import paper_usage_from_scales
from repro.core.memory import task_memory_bytes
from repro.core.planner import AssemblyPlan
from repro.pilot.description import UnitDescription
from repro.seq.datasets import DatasetSpec
from repro.seq.fastq import FastqRecord

#: Assemblers taking an ``n_ranks`` argument (distributed implementations).
DISTRIBUTED_ASSEMBLERS = frozenset({"ray", "abyss", "contrail"})


@dataclass(frozen=True)
class AssemblyWorkload:
    """One real assembly as a picklable workload callable.

    A module-level dataclass (rather than a nested closure) so the
    process-pool executor backend can ship it to a worker and pickle the
    ``(AssemblyResult, ResourceUsage)`` outcome back.  When the scale
    ratios are set, the measured usage is extrapolated to paper scale
    with the per-phase factors of :mod:`repro.core.scaling` (the unit is
    then submitted with ``scale=1``).
    """

    assembler_name: str
    reads: tuple[FastqRecord, ...]
    params: AssemblyParams
    n_ranks: int
    read_scale: float | None = None
    graph_scale: float | None = None

    def __call__(self):
        assembler = get_assembler(self.assembler_name)
        reads = list(self.reads)
        if self.assembler_name in DISTRIBUTED_ASSEMBLERS:
            result = assembler.assemble(reads, self.params, n_ranks=self.n_ranks)
        else:
            result = assembler.assemble(reads, self.params)
        usage = result.usage
        if self.read_scale is not None and self.graph_scale is not None:
            usage = paper_usage_from_scales(
                usage, self.read_scale, self.graph_scale
            )
        return result, usage


def make_assembly_workload(
    assembler_name: str,
    reads: list[FastqRecord],
    params: AssemblyParams,
    n_ranks: int,
    dataset=None,
) -> AssemblyWorkload:
    """Workload executing one real assembly; returns (result, usage).

    When ``dataset`` is given, only its two extrapolation ratios are
    captured — the workload stays cheap to pickle."""

    return AssemblyWorkload(
        assembler_name=assembler_name,
        reads=tuple(reads),
        params=params,
        n_ranks=n_ranks,
        read_scale=None if dataset is None else dataset.read_scale,
        graph_scale=None if dataset is None else dataset.scale,
    )


def assembly_unit_descriptions(
    plan: AssemblyPlan,
    spec: DatasetSpec,
    reads: list[FastqRecord],
    dataset,
    min_count: int = 2,
    min_contig_length: int = 100,
    input_bytes: int | None = None,
) -> list[UnitDescription]:
    """One UnitDescription per (assembler, k) job in the plan.

    ``dataset`` provides the paper-scale extrapolation factors; workloads
    hand back already-extrapolated usage, so units carry ``scale=1``.
    """
    itype = get_instance_type(plan.instance_type)
    if input_bytes is None:
        input_bytes = spec.preprocessed_bytes
    descs = []
    for assembler, k, nodes in plan.jobs():
        params = AssemblyParams(
            k=k,
            min_count=min_count,
            min_contig_length=max(min_contig_length, k),
        )
        cores = nodes * itype.vcpus
        descs.append(
            UnitDescription(
                name=f"{assembler}_k{k}",
                work=make_assembly_workload(
                    assembler, reads, params, cores, dataset=dataset
                ),
                cores=cores,
                memory_bytes=task_memory_bytes(spec, "assembly", n_nodes=1),
                scale=1.0,
                stage="transcript-assembly",
                input_bytes=input_bytes,
                tags={"assembler": assembler, "k": k, "nodes": nodes},
            )
        )
    return descs


def collect_assembly_results(units) -> dict[tuple[str, int], AssemblyResult]:
    """Map finished assembly units back to (assembler, k) keys."""
    out: dict[tuple[str, int], AssemblyResult] = {}
    for u in units:
        if u.result is not None:
            key = (u.description.tags["assembler"], u.description.tags["k"])
            out[key] = u.result
    return out
