"""Paper-scale task memory model — the arithmetic behind Table IV.

Estimates the single-node resident footprint of each pipeline task on the
*unscaled* (paper-size) data, using the paper's own anchors:

* pre-processing: ~1.5x the FASTQ volume (Table II: 3.8 GB -> "<= 15 GB";
  26.2 GB -> "~40 GB"), dominated by the deduplication hash;
* transcript assembly: ~1.2x the raw input volume for the k-mer table on
  one node (this is what makes "the P. crispa data set ... already too
  large to use c3.2xlarge" — §III.E);
* post-processing / quantification: proportional to the (much smaller)
  assembled contig volume.

Distributed assemblers divide the assembly footprint across nodes, which
is precisely the paper's motivation for them.
"""

from __future__ import annotations

from repro.seq.datasets import DatasetSpec

PREPROCESS_FACTOR = 1.5
ASSEMBLY_FACTOR = 1.2
POSTPROCESS_FACTOR = 0.3

TASKS = ("preprocess", "assembly", "postprocess")


def task_memory_bytes(
    spec: DatasetSpec, task: str, n_nodes: int = 1
) -> int:
    """Estimated per-node memory a task needs at paper scale."""
    if task == "preprocess":
        # Not distributed in the current pipeline (future work, §V).
        return int(spec.fastq_bytes * PREPROCESS_FACTOR)
    if task == "assembly":
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return int(spec.fastq_bytes * ASSEMBLY_FACTOR / n_nodes)
    if task == "postprocess":
        return int(spec.preprocessed_bytes * POSTPROCESS_FACTOR)
    raise ValueError(f"unknown task {task!r}; expected one of {TASKS}")


def fits_instance(
    spec: DatasetSpec,
    task: str,
    instance_memory_bytes: int,
    n_nodes: int = 1,
) -> bool:
    """Table IV's O/X decision for one (task, dataset, instance) cell."""
    return task_memory_bytes(spec, task, n_nodes) <= instance_memory_bytes
