"""Content-addressed cache of assembly results.

S2 VM reuse, pilot restart loops and repeated benchmark/MAMP sweeps all
re-run assemblies over byte-identical inputs.  Every in-tree assembler
is deterministic — the same encoded reads, parameters and rank count
always produce the same contigs *and* the same measured
:class:`~repro.parallel.usage.ResourceUsage` — so re-running one is pure
redundancy.  This cache keys raw results by

``(ReadStore.digest, assembler name, AssemblyParams, n_ranks)``

— any change to the reads' bases/qualities/ids, to any parameter, or to
the rank count changes the key and misses.  Cached values are the *raw*
(unextrapolated) :class:`~repro.assembly.contigs.AssemblyResult`;
:class:`~repro.core.multikmer.AssemblyWorkload` re-applies paper-scale
extrapolation per call, so a hit is observably identical to a re-run:
the cost model prices the same usage record and the virtual TTC stays
bit-identical.  Hits surface as ``assembly_cache.hit`` counters/events
on the active :mod:`repro.obs` tracer.

Both ``get`` and ``put`` copy the mutable result shells (contig list,
usage phases, stats dict), so callers can never poison a cached entry.

Process-pool note: workers forked from the parent inherit the current
cache contents copy-on-write, but their inserts stay in the worker.
:func:`repro.core.multikmer.collect_assembly_results` therefore records
collected results into the parent's cache, and because pools are created
lazily per executor, later fan-outs fork workers that already see them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Hashable, Iterator

from repro.assembly.contigs import AssemblyResult
from repro.parallel.usage import ResourceUsage

CacheKey = tuple[str, str, Hashable, int]


def _copy_result(result: AssemblyResult) -> AssemblyResult:
    """Defensive copy: AssemblyResult and ResourceUsage are mutable
    shells around immutable contents (Contig and PhaseUsage are frozen)."""
    usage = result.usage
    return AssemblyResult(
        assembler=result.assembler,
        k=result.k,
        contigs=list(result.contigs),
        usage=ResourceUsage(
            phases=list(usage.phases),
            peak_rank_memory_bytes=usage.peak_rank_memory_bytes,
            n_ranks=usage.n_ranks,
        ),
        stats=dict(result.stats),
    )


class AssemblyCache:
    """Thread-safe LRU cache of raw assembly results."""

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, AssemblyResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: CacheKey) -> AssemblyResult | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return _copy_result(entry)

    def put(self, key: CacheKey, result: AssemblyResult) -> bool:
        """Insert a raw result; an existing entry is kept (first write
        wins — results for one key are identical by determinism).
        Returns True when the result was inserted, False when kept."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return False
            self._entries[key] = _copy_result(result)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries


#: Process-wide default: on by default — hits are bit-identical to
#: re-runs, so sharing across pipeline runs in one process is safe.
_DEFAULT_CACHE = AssemblyCache()
_current: AssemblyCache | None = _DEFAULT_CACHE


def get_assembly_cache() -> AssemblyCache | None:
    """The active cache, or None when caching is disabled."""
    return _current


def set_assembly_cache(cache: AssemblyCache | None) -> AssemblyCache | None:
    """Install ``cache`` (None disables); returns the previous one."""
    global _current
    previous = _current
    _current = cache
    return previous


@contextmanager
def use_assembly_cache(cache: AssemblyCache | None) -> Iterator[AssemblyCache | None]:
    """Scoped :func:`set_assembly_cache` (None disables within the scope)."""
    previous = set_assembly_cache(cache)
    try:
        yield cache
    finally:
        set_assembly_cache(previous)
