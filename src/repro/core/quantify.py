"""Quantification: gene expression levels from reads vs assembled transcripts.

Rnnotator's final stage maps the (pre-processed) reads back onto the
assembled transcripts and reports per-transcript read counts and
normalized expression.  A k-mer pseudo-alignment (kallisto-style voting,
which is also how modern RNA-seq quantifiers work) replaces the short-read
aligner: each read votes for the transcript owning the plurality of its
k-mers; ties and conflicted reads stay unassigned.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.assembly.contigs import Contig
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.seq.fastq import FastqRecord

PSEUDO_K = 25


@dataclass
class QuantificationResult:
    transcript_ids: list[str]
    counts: np.ndarray  # reads per transcript
    tpm: np.ndarray
    usage: ResourceUsage
    assigned_reads: int = 0
    unassigned_reads: int = 0

    @property
    def assignment_rate(self) -> float:
        total = self.assigned_reads + self.unassigned_reads
        return self.assigned_reads / total if total else 0.0

    def as_table(self) -> list[tuple[str, int, float]]:
        return [
            (tid, int(c), float(t))
            for tid, c, t in zip(self.transcript_ids, self.counts, self.tpm)
        ]


def _index_transcripts(
    transcripts: list[Contig], k: int
) -> dict[str, list[int]]:
    index: dict[str, list[int]] = {}
    for tid, t in enumerate(transcripts):
        seq = t.seq
        for i in range(0, len(seq) - k + 1):
            index.setdefault(seq[i : i + k], []).append(tid)
    return index


def quantify(
    reads: list[FastqRecord],
    transcripts: list[Contig],
    k: int = PSEUDO_K,
    n_threads: int = 8,
) -> QuantificationResult:
    """Pseudo-align ``reads`` against ``transcripts`` and count."""
    if not transcripts:
        raise ValueError("no transcripts to quantify against")
    usage = ResourceUsage(n_ranks=1)
    index = _index_transcripts(transcripts, k)

    from repro.seq.alphabet import reverse_complement

    counts = np.zeros(len(transcripts), dtype=np.int64)
    assigned = 0
    unassigned = 0
    work = 0
    for rec in reads:
        votes: Counter = Counter()
        for seq in (rec.seq, reverse_complement(rec.seq)):
            for i in range(0, len(seq) - k + 1, 4):
                work += 1
                for tid in index.get(seq[i : i + k], ()):
                    votes[tid] += 1
        if not votes:
            unassigned += 1
            continue
        best, best_n = votes.most_common(1)[0]
        runners = [t for t, n in votes.items() if n == best_n]
        if len(runners) > 1:
            best = min(runners)  # deterministic tie break
        counts[best] += 1
        assigned += 1

    lengths = np.array([len(t) for t in transcripts], dtype=np.float64)
    rate = counts / np.maximum(lengths - k + 1, 1.0)
    tpm = rate / rate.sum() * 1e6 if rate.sum() > 0 else np.zeros_like(rate)

    usage.add_phase(
        PhaseUsage(
            name="quantify",
            kind="quantify",
            critical_compute=work / max(n_threads, 1),
            total_compute=float(work),
        )
    )
    usage.peak_rank_memory_bytes = sum(len(t) for t in transcripts) * 12
    return QuantificationResult(
        transcript_ids=[t.contig_id for t in transcripts],
        counts=counts,
        tpm=tpm,
        usage=usage,
        assigned_reads=assigned,
        unassigned_reads=unassigned,
    )
