"""Workflow patterns (paper Fig. 2).

Three execution patterns, distinguished by task-resource mapping and by
when that mapping is decided:

* **conventional** — every pilot runs on one fixed system, stages execute
  back-to-back (the original Rnnotator/HPC mode);
* **distributed static** — multiple pilots over distributed resources,
  but pilot sizing and task binding are fixed before the run starts;
* **distributed dynamic** — pilot configuration for each stage is decided
  just before that stage starts, using runtime information published in
  the backend state store (the number of k-mer jobs, memory estimates,
  current VM pool).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class WorkflowPattern(enum.Enum):
    CONVENTIONAL = "conventional"
    DISTRIBUTED_STATIC = "static"
    DISTRIBUTED_DYNAMIC = "dynamic"

    @property
    def is_distributed(self) -> bool:
        return self is not WorkflowPattern.CONVENTIONAL

    @property
    def decides_at_runtime(self) -> bool:
        return self is WorkflowPattern.DISTRIBUTED_DYNAMIC

    @classmethod
    def parse(cls, value: "WorkflowPattern | str") -> "WorkflowPattern":
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value or member.name == value.upper():
                return member
        raise ValueError(f"unknown workflow pattern {value!r}")


@dataclass(frozen=True)
class StageReport:
    """Timing/placement record of one pipeline stage.

    ``started_at``/``finished_at`` are virtual-clock times;
    ``real_seconds`` is the host wall-clock the stage's workloads
    actually took — the figure a parallel executor backend shrinks while
    the virtual TTC stays identical.
    """

    name: str
    pilot: str
    started_at: float
    finished_at: float
    n_nodes: int
    instance_type: str
    notes: str = ""
    real_seconds: float = 0.0

    @property
    def ttc(self) -> float:
        return self.finished_at - self.started_at


#: The Rnnotator stage sequence (Fig. 1) and the pilot that runs each.
STAGES = (
    ("pre-processing", "P_A"),
    ("transcript-assembly", "P_B"),
    ("post-processing", "P_C"),
    ("quantification", "P_C"),
)


def describe_pattern(pattern: WorkflowPattern) -> str:
    """One-line description used by reports and the quickstart example."""
    return {
        WorkflowPattern.CONVENTIONAL: (
            "all pilots on a single fixed resource, stages back-to-back"
        ),
        WorkflowPattern.DISTRIBUTED_STATIC: (
            "pilots over distributed resources with a pre-defined mapping"
        ),
        WorkflowPattern.DISTRIBUTED_DYNAMIC: (
            "pilot sizing decided per stage from runtime information"
        ),
    }[pattern]
