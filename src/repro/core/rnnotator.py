"""The end-to-end pilot-based Rnnotator pipeline.

``RnnotatorPipeline.run`` executes the full workflow of the paper on the
simulated cloud: data staging, pilot P_A (pre-processing), pilot P_B
(multi-k multi-assembler transcript assembly), pilot P_C
(post-processing + quantification) — under either pilot-VM matching
scheme (S1/S2) and any of the three workflow patterns, reporting
per-stage TTC and the run's dollar cost exactly like §IV.C's sample run.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace

from repro.assembly.contigs import AssemblyResult, Contig
from repro.assembly.sweep import (
    KmerSpectrum,
    build_spectra,
    get_kmer_table_cache,
    submit_spectra_build,
)
from repro.assembly.trinity import TRINITY_K
from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.cluster import Cluster, build_cluster
from repro.cloud.ec2 import EC2Region
from repro.cloud.instances import cheapest_with_memory, get_instance_type
from repro.cloud.spot import SpotPreemptor
from repro.cloud.storage import TransferModel
from repro.core import multikmer
from repro.core.checkpoint import CheckpointStore
from repro.core.memory import task_memory_bytes
from repro.core.planner import (
    AssemblyPlan,
    plan_assembly,
    predict_run,
    predict_spectrum_build,
    select_kmer_list,
)
from repro.core.preprocess import (
    PreprocessParams,
    PreprocessResult,
    PreprocessWorkload,
    preprocess,
)
from repro.core.merge import MergeResult, merge_contigs
from repro.core.quantify import QuantificationResult, quantify
from repro.core.schemes import MatchingScheme
from repro.core.workflow import StageReport, WorkflowPattern
from repro.obs import Tracer, get_tracer, use_tracer
from repro.obs.alerts import AlertEngine, parse_rule
from repro.parallel.costmodel import CostModel
from repro.parallel.executor import (
    DelayedWorkload,
    ProcessExecutor,
    WorkloadExecutor,
    make_executor,
)
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.elastic import ElasticPool
from repro.pilot.manager import PilotManager, UnitFailureError, UnitManager
from repro.pilot.scheduler import MemoryAwareScheduler, SchedulingError
from repro.pilot.states import UnitState
from repro.seq.datasets import Dataset
from repro.seq.readstore import ReadStore


class PipelineError(RuntimeError):
    """A stage failed terminally (e.g. OOM under a static workflow)."""


class PipelineKilled(PipelineError):
    """The run was killed mid-pipeline (``abort_after_stage``): the
    simulated analogue of the driver process dying.  Checkpoints written
    up to the kill point survive; a rerun with the same
    ``checkpoint_dir`` resumes bit-identically."""


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of one pipeline run."""

    assemblers: tuple[str, ...] = ("ray",)
    scheme: MatchingScheme = MatchingScheme.S2
    workflow: WorkflowPattern = WorkflowPattern.DISTRIBUTED_DYNAMIC
    instance_type: str | None = None  # None -> planner chooses (dynamic)
    mpi_nodes_per_job: int = 1
    contrail_nodes_per_job: int = 16
    max_nodes: int = 64
    min_count: int = 2
    min_contig_length: int = 100
    kmer_list: tuple[int, ...] | None = None  # None -> data-dependent
    preprocess_params: PreprocessParams = field(default_factory=PreprocessParams)
    #: Workload-execution backend for the assembly fan-out: "serial",
    #: "thread", "process", or a WorkloadExecutor instance.  The single-
    #: unit stages (pre/post-processing, quantification) always run
    #: serially: their workloads are closures over pipeline state.
    executor: str | WorkloadExecutor = "serial"
    executor_workers: int | None = None
    #: Consult the content-addressed assembly cache for the fan-out
    #: (bit-identical hits; see repro.core.assembly_cache).  Off only for
    #: benchmarking the uncached path.
    assembly_cache: bool = True
    #: Count-once multi-k fusion (see repro.assembly.sweep): extract and
    #: count k-mers exactly once per (store, k) across the whole fan-out
    #: and serve every assembler from the shared spectra.  Results,
    #: usage and virtual TTCs are bit-identical either way; off only for
    #: benchmarking the per-job re-extraction path.
    fused_extraction: bool = True
    #: Shard count for the parallel spectrum build (pool backends only;
    #: see repro.assembly.sweep.submit_spectra_build).  None derives it
    #: from the executor's worker count — a configuration value, so the
    #: traced span structure stays deterministic across hosts.  Results
    #: are bit-identical for any shard count.
    spectrum_shards: int | None = None
    #: Radix-bucket count of the sharded build's merge (power of two).
    spectrum_buckets: int = 16
    #: Seconds between RSS/CPU samples taken *inside* fan-out workloads
    #: running on a pool backend (shipped back in the worker trace and
    #: exported as Perfetto counter tracks).  0 keeps only the
    #: span-endpoint snapshots; ignored when tracing is off.
    resource_cadence: float = 0.0
    #: Directory of the durable checkpoint store (None = no
    #: checkpointing).  A rerun pointed at the same directory with the
    #: same dataset and config replays completed units bit-identically
    #: — same contigs, usage and virtual TTCs (see repro.core.checkpoint).
    checkpoint_dir: str | None = None
    #: Restart budget for the assembly fan-out units; >0 lets the
    #: restart machinery survive transient (preemption) failures.
    unit_max_restarts: int = 0
    #: Consecutive no-progress restart rounds before a unit manager
    #: declares livelock (forwarded to every UnitManager).
    max_restart_rounds: int = 10
    #: Failure injection: virtual-seconds offsets from the start of the
    #: assembly fan-out at which the cloud reclaims one worker VM of
    #: P_B's cluster (spot preemption; the head node is protected).
    preempt_at: tuple[float, ...] = ()
    #: Failure injection: raise :class:`PipelineKilled` right after the
    #: named stage completes — the simulated driver kill the CI chaos
    #: job uses to exercise checkpoint/resume.
    abort_after_stage: str | None = None
    #: Declarative SLO/alert rules (see :mod:`repro.obs.alerts`): compact
    #: specs (``"heartbeat_timeout:30:critical"``) or
    #: :class:`~repro.obs.alerts.AlertRule` instances.  Non-empty with
    #: tracing on, an :class:`~repro.obs.alerts.AlertEngine` rides the
    #: run as a live sink; firings become ``alert`` events in the trace
    #: and a summary on the pipeline span.  () = no engine.
    alert_rules: tuple = ()
    #: Real seconds between per-unit ``unit.heartbeat`` events while
    #: workloads are in flight (0 = off).  Purely real-clock telemetry:
    #: results and virtual TTCs are bit-identical either way.
    heartbeat_cadence: float = 0.0
    #: Chaos: real-sleep this many seconds inside every fan-out workload
    #: whose unit name contains ``straggle_unit`` — the straggler drill
    #: (heartbeats see the delay; no virtual quantity changes).
    straggle_unit: str | None = None
    straggle_seconds: float = 0.0

    def fingerprint(self) -> str:
        """Stable digest of the result-determining knobs.

        Two runs with equal fingerprints on the same dataset are
        comparable (the run ledger's regression check refuses to compare
        across differing fingerprints).  Execution-mechanics knobs that
        cannot change results — executor backend, caching, checkpoint
        directory, failure injection — are deliberately excluded.
        """
        key = repr(
            (
                self.assemblers,
                self.scheme.value,
                self.workflow.value,
                self.instance_type,
                self.mpi_nodes_per_job,
                self.contrail_nodes_per_job,
                self.max_nodes,
                self.min_count,
                self.min_contig_length,
                self.kmer_list,
                self.preprocess_params,
            )
        )
        return hashlib.sha256(key.encode()).hexdigest()[:16]

    def __post_init__(self) -> None:
        if not self.assemblers:
            raise ValueError("need at least one assembler")
        if self.workflow is WorkflowPattern.CONVENTIONAL and (
            not self.scheme.reuses_vms
        ):
            raise ValueError(
                "the conventional pattern implies VM reuse (S2/S3)"
            )
        if isinstance(self.executor, str):
            make_executor(self.executor)  # validate the name early
        if self.unit_max_restarts < 0:
            raise ValueError("unit_max_restarts must be >= 0")
        if self.spectrum_shards is not None and self.spectrum_shards < 1:
            raise ValueError("spectrum_shards must be None or >= 1")
        if self.spectrum_buckets < 1 or (
            self.spectrum_buckets & (self.spectrum_buckets - 1)
        ):
            raise ValueError(
                f"spectrum_buckets must be a power of two, "
                f"got {self.spectrum_buckets}"
            )
        if self.max_restart_rounds < 1:
            raise ValueError("max_restart_rounds must be >= 1")
        if any(dt < 0 for dt in self.preempt_at):
            raise ValueError("preempt_at offsets must be >= 0")
        if self.heartbeat_cadence < 0:
            raise ValueError("heartbeat_cadence must be >= 0")
        if self.straggle_seconds < 0:
            raise ValueError("straggle_seconds must be >= 0")
        for rule in self.alert_rules:
            parse_rule(rule)  # validate specs early


@dataclass
class PipelineResult:
    """Everything a run produced, plus its timing and cost."""

    config: PipelineConfig
    stages: list[StageReport]
    preprocess: PreprocessResult
    kmer_list: tuple[int, ...]
    plan: AssemblyPlan
    assemblies: dict[tuple[str, int], AssemblyResult]
    merge: MergeResult
    quantification: QuantificationResult
    total_ttc: float
    total_cost: float
    transfer_seconds: float
    #: Checkpoint store traffic when ``config.checkpoint_dir`` was set
    #: (keys: unit_hits/unit_misses/unit_puts/stages_recorded); ``None``
    #: otherwise.  ``unit_hits > 0`` means this run resumed prior work.
    checkpoint_stats: dict | None = None

    @property
    def transcripts(self) -> list[Contig]:
        return self.merge.transcripts

    def stage_ttc(self, name: str) -> float:
        for s in self.stages:
            if s.name == name:
                return s.ttc
        raise KeyError(name)

    def summary(self) -> str:
        lines = [
            f"pipeline: {'+'.join(self.config.assemblers)} | "
            f"scheme={self.config.scheme.value} "
            f"workflow={self.config.workflow.value}",
            f"k-mer list: {list(self.kmer_list)}",
        ]
        for s in self.stages:
            lines.append(
                f"  {s.name:22s} {s.ttc:9.0f} s  on {s.n_nodes:3d} x "
                f"{s.instance_type} ({s.pilot}) {s.notes}"
            )
        lines.append(
            f"TOTAL: {self.total_ttc:.0f} s "
            f"({self.total_ttc / 3600:.2f} h), cost {self.total_cost:.2f} USD"
        )
        real = sum(s.real_seconds for s in self.stages)
        if real:
            lines.append(f"real host time across stages: {real:.2f} s")
        return "\n".join(lines)


def _trace_stage(report: StageReport) -> None:
    """Mirror a finished :class:`StageReport` as a ``category="stage"``
    span whose virtual interval equals the report's exactly (the report
    CLI cross-checks ``v1 - v0`` against ``StageReport.ttc``)."""
    tracer = get_tracer()
    if not tracer.enabled:
        return
    r1 = time.perf_counter()
    tracer.add_span(
        f"stage:{report.name}",
        v_start=report.started_at,
        v_end=report.finished_at,
        category="stage",
        process=report.pilot if report.pilot != "-" else None,
        r_start=r1 - report.real_seconds,
        r_end=r1,
        stage=report.name,
        pilot=report.pilot,
        n_nodes=report.n_nodes,
        instance_type=report.instance_type,
        notes=report.notes,
    )


class RnnotatorPipeline:
    """Driver for the full pipeline on a fresh simulated region.

    Passing a :class:`~repro.obs.Tracer` installs it process-wide for the
    duration of :meth:`run` (via :func:`~repro.obs.use_tracer`) and binds
    it to the run's virtual clock, so every instrumented layer underneath
    — event queue, pilots, scheduler, EC2, SGE, assembler phases —
    records into it.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.tracer = tracer
        #: Alerts fired by the most recent run's engine (empty without
        #: ``alert_rules``); the smoke CLI reads this for its assertions.
        self.last_alerts: list = []
        self._alert_engine: AlertEngine | None = None

    # -- public API --------------------------------------------------------

    def run(self, dataset: Dataset, config: PipelineConfig | None = None) -> PipelineResult:
        if self.tracer is not None:
            with use_tracer(self.tracer):
                return self._run(dataset, config)
        return self._run(dataset, config)

    def run_many(
        self,
        datasets: list[Dataset],
        config: PipelineConfig | None = None,
        overlap: bool = True,
    ) -> list[PipelineResult]:
        """Run several datasets back-to-back with cross-run stage overlap.

        All runs share one executor backend.  With ``overlap`` on and a
        backend whose ``supports_overlap`` holds (thread/process pools),
        dataset ``i+1``'s pre-processing is submitted to the pool while
        dataset ``i``'s assembly fan-out is still in flight
        (:class:`~repro.core.preprocess.PreprocessWorkload`), and run
        ``i+1`` consumes the prefetched outcome instead of recomputing.
        Pre-processing is deterministic, so every run's results, usage
        and virtual TTCs are bit-identical to sequential :meth:`run`
        calls; only real wall time shrinks.  Each consuming run records
        a ``preprocess.prefetch`` span whose *real* interval is the
        worker-side execution window — trace evidence that stage i+1's
        preprocessing overlapped stage i's assembly.
        """
        if self.tracer is not None:
            with use_tracer(self.tracer):
                return self._run_many(datasets, config, overlap)
        return self._run_many(datasets, config, overlap)

    def _run_many(
        self,
        datasets: list[Dataset],
        config: PipelineConfig | None,
        overlap: bool,
    ) -> list[PipelineResult]:
        config = config or PipelineConfig()
        executor = make_executor(config.executor, config.executor_workers)
        # The runs share the executor instance; _run only closes
        # backends it constructed itself (string specs), so the pool —
        # and any prefetch in flight on it — survives across runs.
        shared = replace(config, executor=executor)
        own_backend = isinstance(config.executor, str)
        can_overlap = overlap and executor.supports_overlap
        pending: list = [None]  # prefetch handle for the next dataset
        results: list[PipelineResult] = []
        try:
            for i, dataset in enumerate(datasets):
                prepared, pending[0] = pending[0], None
                hook = None
                if can_overlap and i + 1 < len(datasets):
                    nxt = datasets[i + 1]

                    def hook(nxt=nxt):
                        work = PreprocessWorkload(
                            reads=tuple(nxt.run.all_reads()),
                            params=shared.preprocess_params,
                        )
                        pending[0] = executor.submit(work)

                results.append(
                    self._run(
                        dataset,
                        shared,
                        prepared_pre=prepared,
                        on_assembly_inflight=hook,
                    )
                )
        finally:
            if own_backend:
                executor.shutdown()
        return results

    def _run(
        self,
        dataset: Dataset,
        config: PipelineConfig | None,
        prepared_pre=None,
        on_assembly_inflight=None,
    ) -> PipelineResult:
        """Attach the alert engine (when configured) around the real run
        body, detaching it whatever happens — run_many reuses one tracer
        across runs and must not accumulate stale sinks."""
        config = config or PipelineConfig()
        tracer = get_tracer()
        engine: AlertEngine | None = None
        if tracer.enabled and config.alert_rules:
            engine = AlertEngine(config.alert_rules, tracer=tracer)
            tracer.add_sink(engine)
        self._alert_engine = engine
        try:
            return self._run_inner(
                dataset, config, prepared_pre, on_assembly_inflight
            )
        finally:
            self._alert_engine = None
            if engine is not None:
                engine.finalize()
                tracer.remove_sink(engine)
                self.last_alerts = list(engine.alerts)

    def _run_inner(
        self,
        dataset: Dataset,
        config: PipelineConfig,
        prepared_pre=None,
        on_assembly_inflight=None,
    ) -> PipelineResult:
        spec = dataset.spec

        r_run0 = time.perf_counter()
        clock = SimClock()
        get_tracer().bind_clock(clock)
        events = EventQueue(clock)
        region = EC2Region(clock)
        db = StateStore(clock)
        transfers = TransferModel(clock)
        pm = PilotManager(region, events, db)
        stages: list[StageReport] = []

        all_reads = dataset.run.all_reads()

        # ---- durable checkpointing ----------------------------------------
        # Unit outcomes are keyed by content (ReadStore digests and
        # assembly params); stage markers additionally carry a config
        # fingerprint so a changed knob invalidates them.
        ckpt: CheckpointStore | None = None
        run_key = None
        if config.checkpoint_dir is not None:
            ckpt = CheckpointStore(config.checkpoint_dir)
            raw_store = ReadStore.from_reads(all_reads)
            raw_digest = raw_store.digest
            raw_store.close()
            run_key = (
                raw_digest,
                config.assemblers,
                config.scheme.value,
                config.workflow.value,
                config.instance_type,
                config.mpi_nodes_per_job,
                config.contrail_nodes_per_job,
                config.max_nodes,
                config.min_count,
                config.min_contig_length,
                config.kmer_list,
                config.preprocess_params,
            )

        def checkpoint_stage(report: StageReport) -> None:
            if ckpt is not None:
                ckpt.put_stage(
                    (run_key, report.name),
                    {"name": report.name, "ttc": report.ttc,
                     "notes": report.notes},
                )

        def maybe_abort(stage_name: str) -> None:
            if config.abort_after_stage == stage_name:
                raise PipelineKilled(
                    f"simulated kill after stage {stage_name!r} "
                    f"(checkpoints: {config.checkpoint_dir})"
                )

        # ---- choose the P_A instance type ---------------------------------
        pre_mem = task_memory_bytes(spec, "preprocess")
        if config.instance_type is not None:
            pa_itype = config.instance_type
        elif config.workflow.decides_at_runtime:
            pa_itype = cheapest_with_memory(pre_mem, min_vcpus=8).name
        else:
            pa_itype = "c3.2xlarge"  # the static default of the paper

        # ---- stage 0: stage data in --------------------------------------
        t0 = clock.now
        transfers.upload(spec.fastq_bytes, dst="head")
        stages.append(
            StageReport(
                name="stage-in",
                pilot="-",
                started_at=t0,
                finished_at=clock.now,
                n_nodes=0,
                instance_type="-",
                notes=f"{spec.fastq_bytes / 1024**3:.1f} GB over WAN",
            )
        )
        _trace_stage(stages[-1])
        checkpoint_stage(stages[-1])
        maybe_abort("stage-in")

        # ---- pilot P_A: pre-processing ------------------------------------
        shared_cluster: Cluster | None = None
        pa = pm.submit(PilotDescription("P_A", pa_itype, n_nodes=1))
        if config.scheme.reuses_vms:
            shared_cluster = build_cluster(
                region, events, pa_itype, 1, name="shared"
            )
            pm.launch_on(pa, shared_cluster)
        else:
            pm.launch(pa)

        um = UnitManager(
            db,
            events,
            scheduler=MemoryAwareScheduler(),
            cost_model=self.cost_model,
            checkpoint=ckpt,
            max_restart_rounds=config.max_restart_rounds,
            heartbeat_cadence=config.heartbeat_cadence,
        )
        um.add_pilot(pa)

        def pre_work():
            if prepared_pre is not None:
                outcome = prepared_pre.outcome()
                if outcome.ok:
                    result, pr0, pr1 = outcome.result
                    tracer = get_tracer()
                    if tracer.enabled:
                        # The span's *real* interval is the worker-side
                        # execution window — it overlaps the previous
                        # run's assembly stage, which is the whole point.
                        # Virtually it is instantaneous: the prefetch
                        # changes no virtual quantity.
                        vnow = clock.now
                        tracer.add_span(
                            "preprocess.prefetch",
                            v_start=vnow,
                            v_end=vnow,
                            category="overlap",
                            r_start=pr0,
                            r_end=pr1,
                            stage="pre-processing",
                        )
                    return result, outcome.usage
                # A failed prefetch is only a lost optimization: fall
                # through and compute inline, bit-identically.
            result = preprocess(all_reads, config.preprocess_params)
            return result, result.usage

        t0 = clock.now
        w0 = time.perf_counter()
        (pre_unit,) = um.submit_units(
            [
                UnitDescription(
                    name="preprocess",
                    work=pre_work,
                    cores=8,
                    memory_bytes=pre_mem,
                    scale=dataset.read_scale,
                    stage="pre-processing",
                    input_bytes=spec.fastq_bytes,
                    output_bytes=spec.preprocessed_bytes,
                    checkpoint_key=None
                    if ckpt is None
                    else (
                        "stage:preprocess",
                        raw_digest,
                        config.preprocess_params,
                    ),
                )
            ]
        )
        try:
            um.run([pre_unit])
        except (SchedulingError, UnitFailureError) as exc:
            raise PipelineError(
                f"pre-processing failed on {pa_itype}: {exc} "
                "(a dynamic workflow would have chosen a larger instance)"
            ) from exc
        if pre_unit.state is not UnitState.DONE:
            raise PipelineError(
                f"pre-processing failed on {pa_itype}: {pre_unit.error} "
                "(a dynamic workflow would have chosen a larger instance)"
            )
        pre: PreprocessResult = pre_unit.result
        stages.append(
            StageReport(
                name="pre-processing",
                pilot=pa.pilot_id,
                started_at=t0,
                finished_at=clock.now,
                n_nodes=1,
                instance_type=pa_itype,
                notes=f"{pre.output_reads}/{pre.input_reads} reads kept",
                real_seconds=time.perf_counter() - w0,
            )
        )
        _trace_stage(stages[-1])
        checkpoint_stage(stages[-1])
        maybe_abort("pre-processing")

        # ---- plan the assembly stage (the dynamic decision) ---------------
        kmer_list = config.kmer_list or select_kmer_list(pre.modal_read_length)

        # The assembly fan-out is where task-level parallelism lives: its
        # workloads are picklable AssemblyWorkload callables, so any
        # executor backend (thread/process pool) can spread them over
        # the host's cores.  Created before planning so the sharded
        # spectrum build below can ride the pool while the parent plans
        # and provisions.
        assembly_executor = make_executor(
            config.executor, config.executor_workers
        )
        # Encode the pre-processed reads exactly once; every fan-out unit
        # shares this store (and, under the process backend, attaches to
        # its shared-memory segment instead of unpickling record tuples).
        store = ReadStore.from_reads(pre.reads)
        store_digest = store.digest
        spectra: tuple[KmerSpectrum, ...] = ()
        umb: UnitManager | None = None
        try:
            # Count-once fusion: one fused pass extracts and counts every
            # k the fan-out needs (trinity always consumes k=25); each
            # unit is served from the spectrum matching its job's k.
            build_ks: tuple[int, ...] = ()
            pending_build = None
            if config.fused_extraction:
                build_ks = tuple(
                    sorted(
                        {
                            TRINITY_K if a == "trinity" else int(k)
                            for a in config.assemblers
                            for k in kmer_list
                        }
                    )
                )
            if build_ks and assembly_executor.supports_overlap:
                # Sharded build, submitted *now*: the shard workers race
                # the planning, pilot provisioning and cluster growth
                # below on the real clock, and the merge at collect time
                # is bit-identical to the serial build.
                pending_build = submit_spectra_build(
                    store,
                    build_ks,
                    assembly_executor,
                    n_shards=config.spectrum_shards,
                    n_buckets=config.spectrum_buckets,
                )

            pb_itype = pa_itype if config.scheme.reuses_vms else (
                config.instance_type or pa_itype
            )
            plan = plan_assembly(
                spec,
                kmer_list,
                config.assemblers,
                pb_itype,
                mpi_nodes_per_job=config.mpi_nodes_per_job,
                contrail_nodes_per_job=config.contrail_nodes_per_job,
                max_nodes=config.max_nodes,
            )
            # Price the rest of the run up front from spec + plan alone;
            # the prediction rides on the pipeline span so trace analytics
            # (repro.obs.attribution) can gate predicted-vs-actual
            # TTC/cost.
            prediction = predict_run(
                spec,
                plan,
                pre.modal_read_length,
                reuses_vms=config.scheme.reuses_vms,
                pa_instance_type=pa_itype,
                cost_model=self.cost_model,
                wan_bandwidth=transfers.wan_bandwidth,
                lan_bandwidth=transfers.lan_bandwidth,
                provision_seconds=region.provision_seconds,
            )
            tracer = get_tracer()
            if tracer.enabled:
                # Stream the prediction *now*, not only on the pipeline
                # span at teardown: budget burn-rate rules and the live
                # monitor's ETA need planned cost/TTC while the meter is
                # still running.
                tracer.event(
                    "planner.prediction",
                    category="planner",
                    ttc_s=prediction.ttc_s,
                    cost_usd=prediction.cost_usd,
                    assembly_jobs=plan.n_jobs,
                    n_nodes=plan.n_nodes,
                    instance_type=plan.instance_type,
                )

            # ---- pilot P_B: transcript assembly ----------------------------
            pb = pm.submit(
                PilotDescription("P_B", pb_itype, n_nodes=plan.n_nodes)
            )
            if config.scheme.reuses_vms:
                if shared_cluster.n_nodes < plan.n_nodes:
                    shared_cluster.grow(
                        region, plan.n_nodes - shared_cluster.n_nodes
                    )
                pm.launch_on(pb, shared_cluster)
            else:
                pm.finish(pa)  # S1: P_A's VM dies once its data is handed over
                pm.launch(pb)
                transfers.copy(
                    spec.preprocessed_bytes, src="P_A", dst="P_B"
                )

            # ---- failure injection + S3 elasticity for the fan-out ---------
            preemptor: SpotPreemptor | None = None
            if config.preempt_at:
                preemptor = SpotPreemptor(
                    region,
                    events,
                    cluster=pb.cluster,
                    protect={pb.cluster.head.vm_id},
                )
                preemptor.arm_in(config.preempt_at)
            elastic: ElasticPool | None = None
            if config.scheme.elastic:
                elastic = ElasticPool(
                    region,
                    events,
                    cluster=pb.cluster,
                    pilot=pb,
                    min_nodes=1,
                    max_nodes=config.max_nodes,
                )
                if preemptor is not None:
                    preemptor.on_preempt.append(elastic.on_preempt)

            umb = UnitManager(
                db,
                events,
                scheduler=MemoryAwareScheduler(),
                cost_model=self.cost_model,
                executor=assembly_executor,
                resource_cadence=config.resource_cadence,
                checkpoint=ckpt,
                elastic=elastic,
                max_restart_rounds=config.max_restart_rounds,
                heartbeat_cadence=config.heartbeat_cadence,
            )
            umb.add_pilot(pb)

            if build_ks:
                build_prediction = predict_spectrum_build(
                    spec,
                    build_ks,
                    pre.modal_read_length,
                    n_shards=(
                        pending_build.n_shards
                        if pending_build is not None
                        else 1
                    ),
                )
                build_attrs = {
                    "planner_serial_s": build_prediction.serial_s,
                    "planner_sharded_s": build_prediction.sharded_s,
                }
                if pending_build is not None:
                    # Everything since submit — planning, P_B provisioning,
                    # cluster growth, manager setup — ran while the shard
                    # workers extracted; collect merges their sorted runs.
                    spectra = pending_build.collect(span_attrs=build_attrs)
                else:
                    spectra = build_spectra(
                        store, build_ks, span_attrs=build_attrs
                    )
                # Register parent-side so every workload resolve — in this
                # process or a forked pool worker — is a hit; counters stay
                # deterministic regardless of unit-to-worker assignment.
                table_cache = get_kmer_table_cache()
                if table_cache is not None:
                    spectra = tuple(table_cache.resolve(sp) for sp in spectra)
                if isinstance(assembly_executor, ProcessExecutor):
                    # Move every spectrum into shared memory BEFORE the
                    # pool's first fan-out submit: with the sharded build
                    # the pool already forked at shard submission, so
                    # workers attach these later segments on demand
                    # (_attach_untracked suppresses their tracker
                    # registration either way); without it, forked workers
                    # find the live segments in the inherited attach
                    # registry.  Both keep the (process-wide) resource
                    # tracker's bookkeeping balanced.
                    for sp in spectra:
                        sp.share()
            descs = multikmer.assembly_unit_descriptions(
                plan,
                spec,
                store,
                dataset,
                min_count=config.min_count,
                min_contig_length=config.min_contig_length,
                use_cache=config.assembly_cache,
                max_restarts=config.unit_max_restarts,
                spectra=spectra,
            )
            if config.straggle_unit and config.straggle_seconds > 0:
                # The straggler drill: delay matching workloads in real
                # time only (virtual usage untouched).
                descs = [
                    replace(
                        d,
                        work=DelayedWorkload(d.work, config.straggle_seconds),
                    )
                    if config.straggle_unit in d.name
                    else d
                    for d in descs
                ]
            t0 = clock.now
            w0 = time.perf_counter()
            units = umb.submit_units(descs)
            if on_assembly_inflight is not None:
                # Cross-run overlap hook: the next dataset's pre-processing
                # goes onto the shared pool here, racing the fan-out below.
                on_assembly_inflight()
            try:
                umb.run(units)
            except UnitFailureError as exc:
                raise PipelineError(
                    f"assembly jobs failed: "
                    f"{[(u.description.name, u.error) for u in exc.units]}"
                ) from exc
        finally:
            if isinstance(config.executor, str):
                # The pipeline owns backends it created; umb.close() shuts
                # the executor down, or do it directly when a failure
                # predates the unit manager.
                if umb is not None:
                    umb.close()
                else:
                    assembly_executor.shutdown()
            for sp in spectra:
                sp.close()  # unlinks shared spectrum segments, if any
            store.close()  # unlinks the shared segment iff one was created
        failed = [u for u in units if u.state is not UnitState.DONE]
        if failed:
            raise PipelineError(
                f"assembly jobs failed: "
                f"{[(u.description.name, u.error) for u in failed]}"
            )
        assemblies = multikmer.collect_assembly_results(units)
        stages.append(
            StageReport(
                name="transcript-assembly",
                pilot=pb.pilot_id,
                started_at=t0,
                finished_at=clock.now,
                n_nodes=plan.n_nodes,
                instance_type=pb_itype,
                notes=f"{plan.n_jobs} jobs "
                f"({'+'.join(config.assemblers)}, k={list(kmer_list)})",
                real_seconds=time.perf_counter() - w0,
            )
        )
        _trace_stage(stages[-1])
        checkpoint_stage(stages[-1])
        maybe_abort("transcript-assembly")

        # ---- pilot P_C: post-processing + quantification -------------------
        pc_itype = pb_itype
        pc = pm.submit(PilotDescription("P_C", pc_itype, n_nodes=1))
        if config.scheme.reuses_vms:
            pm.finish(pb)
            if elastic is not None:
                elastic.shrink_idle()
            shared_cluster.shrink_to(region, 1)
            pm.launch_on(pc, shared_cluster)
        else:
            pm.finish(pb)
            pm.launch(pc)
            contig_bytes = int(
                sum(r.total_bp for r in assemblies.values())
                / max(dataset.read_scale, 1e-9)
            )
            transfers.copy(contig_bytes, src="P_B", dst="P_C")

        umc = UnitManager(
            db,
            events,
            scheduler=MemoryAwareScheduler(),
            cost_model=self.cost_model,
            checkpoint=ckpt,
            max_restart_rounds=config.max_restart_rounds,
            heartbeat_cadence=config.heartbeat_cadence,
        )
        umc.add_pilot(pc)
        # The merge output is a pure function of the fan-out results, so
        # its content address is the ordered tuple of their keys; the
        # quantification additionally depends on the pre-processed reads.
        fanout_keys = tuple(d.checkpoint_key for d in descs)
        merge_key = (
            None if ckpt is None else ("stage:merge", fanout_keys)
        )
        quant_key = (
            None
            if ckpt is None
            else ("stage:quantify", store.digest, fanout_keys)
        )

        def merge_work():
            result = merge_contigs(
                [r.contigs for r in assemblies.values()]
            )
            return result, result.usage

        t0 = clock.now
        w0 = time.perf_counter()
        (merge_unit,) = umc.submit_units(
            [
                UnitDescription(
                    name="postprocess-merge",
                    work=merge_work,
                    cores=8,
                    memory_bytes=task_memory_bytes(spec, "postprocess"),
                    scale=dataset.read_scale,
                    stage="post-processing",
                    checkpoint_key=merge_key,
                )
            ]
        )
        try:
            umc.run([merge_unit])
        except UnitFailureError as exc:
            raise PipelineError(
                f"post-processing failed: {merge_unit.error}"
            ) from exc
        if merge_unit.state is not UnitState.DONE:
            raise PipelineError(f"post-processing failed: {merge_unit.error}")
        merged: MergeResult = merge_unit.result
        stages.append(
            StageReport(
                name="post-processing",
                pilot=pc.pilot_id,
                started_at=t0,
                finished_at=clock.now,
                n_nodes=1,
                instance_type=pc_itype,
                notes=f"{merged.input_contigs} -> {merged.output_contigs} contigs",
                real_seconds=time.perf_counter() - w0,
            )
        )
        _trace_stage(stages[-1])
        checkpoint_stage(stages[-1])
        maybe_abort("post-processing")

        def quant_work():
            result = quantify(pre.reads, merged.transcripts)
            return result, result.usage

        t0 = clock.now
        w0 = time.perf_counter()
        (quant_unit,) = umc.submit_units(
            [
                UnitDescription(
                    name="quantification",
                    work=quant_work,
                    cores=8,
                    memory_bytes=task_memory_bytes(spec, "postprocess"),
                    scale=dataset.read_scale,
                    stage="quantification",
                    checkpoint_key=quant_key,
                )
            ]
        )
        try:
            umc.run([quant_unit])
        except UnitFailureError as exc:
            raise PipelineError(
                f"quantification failed: {quant_unit.error}"
            ) from exc
        if quant_unit.state is not UnitState.DONE:
            raise PipelineError(f"quantification failed: {quant_unit.error}")
        quantification: QuantificationResult = quant_unit.result
        stages.append(
            StageReport(
                name="quantification",
                pilot=pc.pilot_id,
                started_at=t0,
                finished_at=clock.now,
                n_nodes=1,
                instance_type=pc_itype,
                notes=f"{quantification.assignment_rate:.0%} reads assigned",
                real_seconds=time.perf_counter() - w0,
            )
        )
        _trace_stage(stages[-1])
        checkpoint_stage(stages[-1])
        maybe_abort("quantification")

        # ---- teardown -------------------------------------------------------
        pm.finish(pc)
        region.terminate_all()

        tracer = get_tracer()
        if tracer.enabled:
            alert_attrs = {}
            engine = self._alert_engine
            if engine is not None:
                # Rules that only resolve at teardown (cache hit-rate
                # floors, final budget check) must fire before the root
                # span stamps the summary; finalize is idempotent.
                engine.finalize()
                counts = engine.summary()
                alert_attrs = {
                    "alerts_total": sum(counts.values()),
                    "alerts_critical": counts.get("critical", 0),
                    "alerts_warning": counts.get("warning", 0),
                    "alerts_info": counts.get("info", 0),
                }
            tracer.add_span(
                "pipeline",
                v_start=0.0,
                v_end=clock.now,
                category="pipeline",
                r_start=r_run0,
                r_end=time.perf_counter(),
                dataset=spec.name,
                assemblers="+".join(config.assemblers),
                scheme=config.scheme.value,
                workflow=config.workflow.value,
                total_cost_usd=region.total_cost,
                config_fingerprint=config.fingerprint(),
                store_digest=store_digest,
                kmer_list=list(kmer_list),
                n_nodes=plan.n_nodes,
                instance_type=plan.instance_type,
                planner_ttc_s=prediction.ttc_s,
                planner_cost_usd=prediction.cost_usd,
                planner_stages=prediction.as_dict()["stages"],
                **alert_attrs,
            )

        return PipelineResult(
            config=config,
            stages=stages,
            preprocess=pre,
            kmer_list=tuple(kmer_list),
            plan=plan,
            assemblies=assemblies,
            merge=merged,
            quantification=quantification,
            total_ttc=clock.now,
            total_cost=region.total_cost,
            transfer_seconds=transfers.total_seconds,
            checkpoint_stats=(
                None
                if ckpt is None
                else {
                    "unit_hits": ckpt.stats.hits,
                    "unit_misses": ckpt.stats.misses,
                    "unit_puts": ckpt.stats.puts,
                    "stages_recorded": ckpt.stage_count(),
                }
            ),
        )
