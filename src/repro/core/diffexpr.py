"""Differential gene expression (Rnnotator's optional last step).

Given per-transcript counts for two conditions, computes log2 fold
changes and an exact-test p-value per transcript.  The test is the
classic two-Poisson conditional binomial exact test (as in early
edgeR/DESeq practice): conditional on the total count of a transcript,
the condition-1 share is Binomial(n, p0) under the null, where p0
accounts for library-size differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class DiffExprRow:
    transcript_id: str
    count_a: int
    count_b: int
    log2_fold_change: float
    p_value: float
    significant: bool


@dataclass
class DiffExprResult:
    rows: list[DiffExprRow]
    alpha: float

    @property
    def n_significant(self) -> int:
        return sum(r.significant for r in self.rows)

    def significant_rows(self) -> list[DiffExprRow]:
        return [r for r in self.rows if r.significant]


def differential_expression(
    transcript_ids: list[str],
    counts_a: np.ndarray,
    counts_b: np.ndarray,
    alpha: float = 0.05,
) -> DiffExprResult:
    """Exact-test DE between two conditions with BH correction."""
    counts_a = np.asarray(counts_a, dtype=np.int64)
    counts_b = np.asarray(counts_b, dtype=np.int64)
    if not (len(transcript_ids) == len(counts_a) == len(counts_b)):
        raise ValueError("ids and count vectors must align")
    if (counts_a < 0).any() or (counts_b < 0).any():
        raise ValueError("counts must be non-negative")
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")

    lib_a = max(int(counts_a.sum()), 1)
    lib_b = max(int(counts_b.sum()), 1)
    p0 = lib_a / (lib_a + lib_b)

    pvals = np.ones(len(transcript_ids))
    lfc = np.zeros(len(transcript_ids))
    for i, (a, b) in enumerate(zip(counts_a, counts_b)):
        total = int(a + b)
        # pseudocount-normalized fold change
        lfc[i] = np.log2(((a + 0.5) / lib_a) / ((b + 0.5) / lib_b))
        if total == 0:
            continue
        pvals[i] = stats.binomtest(int(a), total, p0).pvalue

    # Benjamini-Hochberg.
    m = len(pvals)
    order = np.argsort(pvals)
    adjusted = np.empty(m)
    prev = 1.0
    for rank_idx in range(m - 1, -1, -1):
        i = order[rank_idx]
        val = min(prev, pvals[i] * m / (rank_idx + 1))
        adjusted[i] = val
        prev = val

    rows = [
        DiffExprRow(
            transcript_id=tid,
            count_a=int(a),
            count_b=int(b),
            log2_fold_change=float(l),
            p_value=float(p),
            significant=bool(q <= alpha),
        )
        for tid, a, b, l, p, q in zip(
            transcript_ids, counts_a, counts_b, lfc, pvals, adjusted
        )
    ]
    return DiffExprResult(rows=rows, alpha=alpha)
