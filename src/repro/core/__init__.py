"""The paper's contribution: the pilot-based Rnnotator pipeline.

The four Rnnotator stages (Fig. 1) re-architected on pilots:

1. **pre-processing** (:mod:`preprocess`) — read QC, deduplication,
   adapter/N handling and data-dependent k-mer list selection,
2. **transcript assembly** (:mod:`multikmer`) — multi-k, multi-assembler
   jobs fanned out over the pilot's cluster,
3. **post-processing** (:mod:`merge`) — VMATCH/Minimus2-style contig
   merging across k values and assemblers, and
4. **quantification** (:mod:`quantify`) with optional **differential
   expression** (:mod:`diffexpr`).

The orchestration layer adds the paper's cloud machinery: the three
workflow patterns of Fig. 2 (:mod:`workflow`), the S1/S2 pilot-VM
matching schemes of Fig. 5 (:mod:`schemes`), the dynamic planner that
sizes pilots from pre-processing output (:mod:`planner`), the
paper-scale memory model behind Table IV (:mod:`memory`), and the
end-to-end driver (:mod:`rnnotator`).
"""

from repro.core.diffexpr import DiffExprResult, differential_expression
from repro.core.memory import task_memory_bytes
from repro.core.merge import MergeResult, merge_contigs
from repro.core.planner import AssemblyPlan, plan_assembly, select_kmer_list
from repro.core.preprocess import PreprocessParams, PreprocessResult, preprocess
from repro.core.quantify import QuantificationResult, quantify
from repro.core.rnnotator import PipelineConfig, PipelineResult, RnnotatorPipeline
from repro.core.schemes import MatchingScheme
from repro.core.workflow import WorkflowPattern

__all__ = [
    "preprocess",
    "PreprocessParams",
    "PreprocessResult",
    "merge_contigs",
    "MergeResult",
    "quantify",
    "QuantificationResult",
    "differential_expression",
    "DiffExprResult",
    "select_kmer_list",
    "plan_assembly",
    "AssemblyPlan",
    "task_memory_bytes",
    "MatchingScheme",
    "WorkflowPattern",
    "RnnotatorPipeline",
    "PipelineConfig",
    "PipelineResult",
]
