"""Post-processing: merge contig sets across k values and assemblers.

Rnnotator merges its multi-k assemblies with VMATCH (containment /
near-duplicate detection) and Minimus2 (suffix-prefix overlap joining).
This stage does both:

1. **containment removal** — a contig contained in a longer one (either
   strand) is dropped; near-duplicates (same length class, shared seed
   support over most of the contig) collapse to the higher-coverage copy;
2. **overlap joining** — contigs overlapping suffix-to-prefix by at least
   ``min_overlap`` exactly are greedily concatenated.

The paper notes (§IV.B.iii) that this default Rnnotator merge is tuned
for multi-k merging with a *single* assembler and is probably suboptimal
for MAMP ensembles — reproduced here: the same code path handles both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assembly.contigs import Contig
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.seq.alphabet import reverse_complement

MIN_OVERLAP = 40
SEED_K = 21
SEED_STRIDE = 8


@dataclass
class MergeResult:
    transcripts: list[Contig]
    usage: ResourceUsage
    input_contigs: int = 0
    contained_removed: int = 0
    joins: int = 0

    @property
    def output_contigs(self) -> int:
        return len(self.transcripts)


def _seed_positions(seq: str, stride: int = SEED_STRIDE) -> list[str]:
    return [
        seq[i : i + SEED_K]
        for i in range(0, max(len(seq) - SEED_K + 1, 1), stride)
    ]


def _remove_contained(
    contigs: list[Contig], result: MergeResult
) -> list[Contig]:
    """Drop contigs contained in (or near-duplicating) longer ones."""
    ordered = sorted(contigs, key=lambda c: (-len(c), c.seq))
    kept: list[Contig] = []
    seed_index: dict[str, list[int]] = {}
    work = 0
    for c in ordered:
        rc = reverse_complement(c.seq)
        candidates: set[int] = set()
        for seed in _seed_positions(c.seq) + _seed_positions(rc):
            candidates.update(seed_index.get(seed, ()))
        work += len(candidates) + len(c)
        contained = any(
            c.seq in kept[i].seq or rc in kept[i].seq for i in candidates
        )
        if contained:
            result.contained_removed += 1
            continue
        idx = len(kept)
        kept.append(c)
        # Index every position of kept contigs so strided query seeds of a
        # contained contig always hit regardless of offset alignment.
        for seed in _seed_positions(c.seq, stride=1):
            seed_index.setdefault(seed, []).append(idx)
    result.usage.add_phase(
        PhaseUsage(
            name="containment",
            kind="merge",
            critical_compute=float(work),
            total_compute=float(work),
            serial_compute=float(work),
        )
    )
    return kept


def _join_overlaps(
    contigs: list[Contig], min_overlap: int, result: MergeResult
) -> list[Contig]:
    """Greedy exact suffix-prefix joining (Minimus2 analog)."""
    seqs = [c.seq for c in contigs]
    covs = [c.coverage for c in contigs]
    prefix_index: dict[str, int] = {}
    for i, s in enumerate(seqs):
        prefix_index.setdefault(s[:min_overlap], i)

    consumed = [False] * len(seqs)
    out: list[str] = []
    out_cov: list[float] = []
    work = 0
    for i in range(len(seqs)):
        if consumed[i]:
            continue
        consumed[i] = True
        cur = seqs[i]
        cov = covs[i]
        n_parts = 1
        while True:
            work += 1
            j = prefix_index.get(cur[-min_overlap:])
            if j is None or consumed[j] or seqs[j][:min_overlap] != cur[-min_overlap:]:
                break
            consumed[j] = True
            cur = cur + seqs[j][min_overlap:]
            cov += covs[j]
            n_parts += 1
            result.joins += 1
        out.append(cur)
        out_cov.append(cov / n_parts)
    result.usage.add_phase(
        PhaseUsage(
            name="overlap_join",
            kind="merge",
            critical_compute=float(work + sum(map(len, out))),
            total_compute=float(work + sum(map(len, out))),
            serial_compute=float(work),
        )
    )
    return [
        Contig(
            contig_id=f"merged_t{i:06d}",
            seq=s,
            coverage=c,
            k=0,
            assembler="merged",
        )
        for i, (s, c) in enumerate(zip(out, out_cov))
    ]


def merge_contigs(
    contig_sets: list[list[Contig]],
    min_overlap: int = MIN_OVERLAP,
) -> MergeResult:
    """Merge any number of contig sets into one transcript set."""
    if min_overlap < SEED_K:
        raise ValueError(f"min_overlap must be >= {SEED_K}")
    usage = ResourceUsage(n_ranks=1)
    result = MergeResult(transcripts=[], usage=usage)
    flat = [c for cs in contig_sets for c in cs]
    result.input_contigs = len(flat)
    if not flat:
        return result

    kept = _remove_contained(flat, result)
    merged = _join_overlaps(kept, min_overlap, result)
    merged.sort(key=lambda c: (-len(c), c.seq))
    result.transcripts = merged
    usage.peak_rank_memory_bytes = int(
        sum(len(c) for c in flat) * 2.5
    )
    return result
