"""Pilot-VM matching schemes S1 and S2 (paper Fig. 5).

On-demand clouds make the user responsible for starting and stopping
VMs, so the pipeline must decide how pilot lifetimes map onto VM
lifetimes:

* **S1 — coupled**: every pilot starts with freshly provisioned VMs sized
  for its stage and terminates them when it finishes.  Optimal instance
  choice per stage, but pays provisioning and inter-pilot data transfer
  on every boundary.
* **S2 — decoupled (reuse)**: one VM pool is created up front and reused
  by successive pilots (grown/shrunk as needed).  No transfer or re-boot
  overheads — the sample run's "the same VM serves for all three pilots"
  — but the pool's instance type must satisfy the most demanding stage
  (P. crispa's pre-processing forces the expensive r3.2xlarge to stick
  around for the whole run).
* **S3 — elastic reused pool**: S2's reuse, plus mid-run elasticity — an
  :class:`~repro.pilot.elastic.ElasticPool` controller grows the pool
  when SGE queue depth outstrips free slots (the signature of spot
  preemption pressure) and shrinks idle workers back between stages.
  The natural scheme for running the fan-out on preemptible instances.
"""

from __future__ import annotations

import enum


class MatchingScheme(enum.Enum):
    S1 = "S1"
    S2 = "S2"
    S3 = "S3"

    @property
    def couples_vm_lifetime(self) -> bool:
        return self is MatchingScheme.S1

    @property
    def reuses_vms(self) -> bool:
        return self in (MatchingScheme.S2, MatchingScheme.S3)

    @property
    def elastic(self) -> bool:
        return self is MatchingScheme.S3

    @property
    def pays_interstage_transfer(self) -> bool:
        return self is MatchingScheme.S1

    @classmethod
    def parse(cls, value: "MatchingScheme | str") -> "MatchingScheme":
        if isinstance(value, cls):
            return value
        try:
            return cls[value.upper()]
        except KeyError:
            raise ValueError(f"unknown matching scheme {value!r}") from None
