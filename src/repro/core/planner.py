"""Dynamic planning: turn pre-processing output into pilot sizing.

Two decisions the paper highlights (§III.E, §IV.C):

* the **k-mer list** depends on the post-trim read length and is unknown
  until pre-processing finishes — B. glumae (50 bp) gets
  k = 35..47 step 2, P. crispa (100 bp) gets k = 51..63 step 4;
* the **pilot P_B fleet size** follows from the job mix: one node per MPI
  k-mer job (the paper's benchmarks show no significant gain beyond one
  node per MPI job) plus a 16-node block per Contrail job (what it takes
  Contrail to match MPI TTCs), all bounded by budget, with MPI jobs
  widened when a single node cannot hold the k-mer table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.cluster import DEFAULT_SETUP_SECONDS
from repro.cloud.ec2 import DEFAULT_PROVISION_SECONDS
from repro.cloud.instances import InstanceType, get_instance_type
from repro.cloud.storage import DEFAULT_LAN_BANDWIDTH, DEFAULT_WAN_BANDWIDTH
from repro.core.memory import task_memory_bytes
from repro.parallel.costmodel import CostModel
from repro.seq.datasets import DatasetSpec


def select_kmer_list(read_length: int) -> tuple[int, ...]:
    """The data-dependent k-mer list (reproduces Table II's two lists).

    Short-read data (<= 60 bp) sweeps odd k from 35 up to ~95% of the
    read length in steps of 2; longer reads use a sparser sweep, 51..63
    step 4 (denser sampling there adds cost without assembly benefit).
    """
    if read_length < 38:
        raise ValueError(f"reads of length {read_length} are too short to assemble")
    if read_length <= 60:
        k_max = min(47, read_length)
        if k_max % 2 == 0:
            k_max -= 1
        return tuple(range(35, k_max + 1, 2))
    return tuple(range(51, 64, 4))


@dataclass(frozen=True)
class AssemblyPlan:
    """Sizing of the assembly stage (pilot P_B)."""

    kmer_list: tuple[int, ...]
    assemblers: tuple[str, ...]
    mpi_nodes_per_job: int
    contrail_nodes_per_job: int
    n_nodes: int
    instance_type: str

    @property
    def n_jobs(self) -> int:
        return len(self.kmer_list) * len(self.assemblers)

    def jobs(self) -> list[tuple[str, int, int]]:
        """(assembler, k, nodes) for every assembly job."""
        out = []
        for a in self.assemblers:
            nodes = (
                self.contrail_nodes_per_job
                if a == "contrail"
                else self.mpi_nodes_per_job
            )
            for k in self.kmer_list:
                out.append((a, k, min(nodes, self.n_nodes)))
        return out


def plan_assembly(
    spec: DatasetSpec,
    kmer_list: tuple[int, ...],
    assemblers: tuple[str, ...],
    instance_type: str,
    mpi_nodes_per_job: int = 1,
    contrail_nodes_per_job: int = 16,
    max_nodes: int = 64,
) -> AssemblyPlan:
    """Size pilot P_B for the given job mix.

    MPI jobs are widened beyond ``mpi_nodes_per_job`` when the per-node
    k-mer table would not fit the instance memory (aggregate distributed
    memory is the whole point of the MPI assemblers).
    """
    if not kmer_list or not assemblers:
        raise ValueError("need at least one k and one assembler")
    itype = get_instance_type(instance_type)

    # Widen MPI jobs until the assembly footprint fits per node.
    need = mpi_nodes_per_job
    while (
        task_memory_bytes(spec, "assembly", n_nodes=need) > itype.memory_bytes
        and need < max_nodes
    ):
        need += 1
    mpi_nodes = need

    n_mpi_jobs = len(kmer_list) * sum(1 for a in assemblers if a != "contrail")
    n_contrail_jobs = len(kmer_list) * sum(1 for a in assemblers if a == "contrail")
    wanted = n_mpi_jobs * mpi_nodes + n_contrail_jobs * contrail_nodes_per_job
    n_nodes = max(mpi_nodes, min(wanted, max_nodes))

    return AssemblyPlan(
        kmer_list=tuple(kmer_list),
        assemblers=tuple(assemblers),
        mpi_nodes_per_job=mpi_nodes,
        contrail_nodes_per_job=min(contrail_nodes_per_job, n_nodes),
        n_nodes=n_nodes,
        instance_type=instance_type,
    )


# ---------------------------------------------------------------------------
# Run prediction (ROADMAP item 5: a planner validated against traces).
#
# The predictor prices a run *before* it happens from nothing but the
# dataset spec, the assembly plan and the post-trim read length, using
# the same physical cost model the simulator itself prices with.  Stage
# work is expressed per k-mer *window* — a read of post-trim length L
# contributes (L - k + 1) windows at k — and the per-window coefficients
# below are calibrated once against the workload generators' measured
# phase usage (messages dominate the MPI assemblers: ~one point-to-point
# message per window).  repro.obs.attribution compares these predictions
# against the critical-path actuals from the run's own trace and gates
# on the relative error.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AssemblerCoefficients:
    """Per-window work coefficients of one assembler's job.

    ``*_work_per_window`` values are total work units per window across
    all ranks (divide by ranks for the per-rank critical path);
    ``messages_per_window`` is the total point-to-point message count.
    """

    kmer_work_per_window: float = 1.72
    graph_work_per_window: float = 0.52
    walk_work_per_window: float = 0.88
    messages_per_window: float = 0.97
    comm_bytes_per_window: float = 26.0
    collective_phases: int = 5
    mr_jobs: int = 0


#: Calibrated against the measured phase usage of each workload
#: generator on the B. glumae analog.  Single-node assemblers do the
#: same aggregate work without MPI messaging; Contrail pays Hadoop job
#: startup instead.
ASSEMBLER_COEFFICIENTS: dict[str, AssemblerCoefficients] = {
    "ray": AssemblerCoefficients(),
    "abyss": AssemblerCoefficients(),
    "velvet": AssemblerCoefficients(
        messages_per_window=0.0, comm_bytes_per_window=0.0,
        collective_phases=0,
    ),
    "trinity": AssemblerCoefficients(
        messages_per_window=0.0, comm_bytes_per_window=0.0,
        collective_phases=0,
    ),
    "contrail": AssemblerCoefficients(
        messages_per_window=0.0, comm_bytes_per_window=0.0,
        collective_phases=0, mr_jobs=4,
    ),
}

#: Pre-processing threads (UnitDescription cores for the QC unit).
_PREPROCESS_THREADS = 8
#: Contig bases produced per assembly job, as a fraction of input bases
#: (assemblies condense reads ~25-50x; calibrated on the analog runs).
_CONTIG_BP_FRACTION_PER_JOB = 0.021
#: Pseudoalignment operations per read during quantification.
_QUANT_OPS_PER_READ = 1.27


#: Host-side fused-extraction throughput: k-mer windows packed, masked,
#: canonicalized and counted per real second by the parent process
#: (calibrated on the Fig. 4 analog workload; real seconds, not virtual
#: — the spectrum build never touches the virtual clock).
_SPECTRUM_WINDOWS_PER_SECOND = 6.0e6
#: Fraction of the serial build that stays on the parent under the
#: sharded scheme (per-bucket merge + occurrence-stream reassembly).
_SPECTRUM_MERGE_FRACTION = 0.35


@dataclass(frozen=True)
class SpectrumBuildPrediction:
    """Predicted real host seconds of the count-once spectrum build."""

    serial_s: float
    sharded_s: float
    n_shards: int

    @property
    def speedup(self) -> float:
        return self.serial_s / self.sharded_s if self.sharded_s else 1.0


def predict_spectrum_build(
    spec: DatasetSpec,
    kmer_list,
    modal_read_length: int,
    n_shards: int = 1,
) -> SpectrumBuildPrediction:
    """Price the host-side spectrum build for planning/attribution.

    Serial cost is total windows over the calibrated throughput; the
    sharded cost keeps the merge fraction on the parent and divides the
    rest across shards (Amdahl form).  Both are *real* seconds — the
    build runs on the parent host while the cluster provisions, so the
    planner can decide whether the sharded build hides entirely inside
    the provisioning window.
    """
    windows = sum(
        spec.n_reads * max(1, modal_read_length - k + 1) for k in kmer_list
    )
    serial = windows / _SPECTRUM_WINDOWS_PER_SECOND
    shards = max(1, int(n_shards))
    sharded = serial * (
        _SPECTRUM_MERGE_FRACTION + (1.0 - _SPECTRUM_MERGE_FRACTION) / shards
    )
    return SpectrumBuildPrediction(
        serial_s=serial, sharded_s=sharded, n_shards=shards
    )


@dataclass(frozen=True)
class StagePrediction:
    """Predicted virtual seconds of one pipeline stage (or overhead)."""

    name: str
    seconds: float


@dataclass(frozen=True)
class RunPrediction:
    """Predicted end-to-end TTC and cost of a planned run."""

    stages: tuple[StagePrediction, ...]
    ttc_s: float
    cost_usd: float
    vm_hours: int

    def stage_seconds(self, name: str) -> float:
        for s in self.stages:
            if s.name == name:
                return s.seconds
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "ttc_s": self.ttc_s,
            "cost_usd": self.cost_usd,
            "vm_hours": self.vm_hours,
            "stages": {s.name: round(s.seconds, 6) for s in self.stages},
        }


def _predict_job_seconds(
    assembler: str,
    k: int,
    nodes: int,
    spec: DatasetSpec,
    modal_read_length: int,
    itype: InstanceType,
    cm: CostModel,
) -> float:
    """Predicted virtual seconds of one assembly job."""
    co = ASSEMBLER_COEFFICIENTS.get(assembler, AssemblerCoefficients())
    windows = spec.n_reads * max(1, modal_read_length - k + 1)
    ranks = nodes * itype.vcpus
    f = itype.compute_factor
    t = co.kmer_work_per_window * windows / (ranks * cm.rate("kmer") * f)
    t += co.graph_work_per_window * windows / (ranks * cm.rate("graph") * f)
    t += co.walk_work_per_window * windows / (ranks * cm.rate("walk") * f)
    t += co.messages_per_window * windows * cm.message_latency
    if nodes > 1 and co.comm_bytes_per_window:
        off_node = (nodes - 1) / nodes
        t += (
            co.comm_bytes_per_window * windows * off_node
            / (itype.network_bandwidth * nodes)
        )
    if co.collective_phases:
        t += (
            co.collective_phases
            * cm.collective_latency
            * max(1.0, math.log2(ranks))
        )
    t += co.mr_jobs * cm.mr_job_overhead
    t += spec.preprocessed_bytes / (cm.rate("io") * nodes)
    return t


def predict_run(
    spec: DatasetSpec,
    plan: AssemblyPlan,
    modal_read_length: int,
    *,
    reuses_vms: bool = True,
    pa_instance_type: str | None = None,
    cost_model: CostModel | None = None,
    wan_bandwidth: float = DEFAULT_WAN_BANDWIDTH,
    lan_bandwidth: float = DEFAULT_LAN_BANDWIDTH,
    provision_seconds: float = DEFAULT_PROVISION_SECONDS,
    setup_seconds: float = DEFAULT_SETUP_SECONDS,
) -> RunPrediction:
    """Predict a planned run's virtual TTC and on-demand dollar cost.

    ``reuses_vms`` selects the matching scheme's overhead structure: S2
    builds one shared cluster and grows it for the fan-out; S1 builds a
    fresh cluster per pilot and pays LAN hand-overs between them.
    """
    cm = cost_model or CostModel()
    itype = get_instance_type(plan.instance_type)
    pa_itype = get_instance_type(pa_instance_type or plan.instance_type)
    input_bases = spec.n_reads * spec.read_length

    stage_in = spec.fastq_bytes / wan_bandwidth

    pre = input_bases / (
        _PREPROCESS_THREADS * cm.rate("preprocess") * pa_itype.compute_factor
    )
    pre += (spec.fastq_bytes + spec.preprocessed_bytes) / cm.rate("io")

    jobs = plan.jobs()
    assembly = max(
        _predict_job_seconds(a, k, n, spec, modal_read_length, itype, cm)
        for a, k, n in jobs
    )

    contig_bytes = _CONTIG_BP_FRACTION_PER_JOB * input_bases * len(jobs)
    merge = contig_bytes / (cm.rate("merge") * itype.compute_factor)
    quant = (
        _QUANT_OPS_PER_READ * spec.n_reads
        / (cm.rate("quantify") * itype.compute_factor)
    )

    stages = [StagePrediction("stage-in", stage_in)]
    if reuses_vms:
        # S2: one shared cluster built before pre-processing, grown
        # (provision only, no re-setup) for the fan-out.
        overhead_pre = provision_seconds + setup_seconds
        overhead_asm = provision_seconds if plan.n_nodes > 1 else 0.0
        stages += [
            StagePrediction("cluster-setup", overhead_pre),
            StagePrediction("pre-processing", pre),
            StagePrediction("cluster-grow", overhead_asm),
            StagePrediction("transcript-assembly", assembly),
            StagePrediction("post-processing", merge),
            StagePrediction("quantification", quant),
        ]
        ttc = sum(s.seconds for s in stages)
        head_hours = math.ceil((ttc - stage_in) / 3600.0)
        worker_hours = (
            math.ceil((provision_seconds + assembly) / 3600.0)
            if plan.n_nodes > 1
            else 0
        )
        vm_hours = head_hours + (plan.n_nodes - 1) * worker_hours
        cost = (
            head_hours * pa_itype.price_per_hour
            + (plan.n_nodes - 1) * worker_hours * itype.price_per_hour
        )
    else:
        # S1: a fresh cluster per pilot, LAN hand-overs in between.
        copy_pre = spec.preprocessed_bytes / lan_bandwidth
        copy_contigs = contig_bytes / lan_bandwidth
        cluster = provision_seconds + setup_seconds
        stages += [
            StagePrediction("cluster-setup", 3 * cluster),
            StagePrediction("data-handover", copy_pre + copy_contigs),
            StagePrediction("pre-processing", pre),
            StagePrediction("transcript-assembly", assembly),
            StagePrediction("post-processing", merge),
            StagePrediction("quantification", quant),
        ]
        ttc = sum(s.seconds for s in stages)
        pa_hours = math.ceil((cluster + pre) / 3600.0)
        pb_hours = math.ceil((cluster + copy_pre + assembly) / 3600.0)
        pc_hours = math.ceil(
            (cluster + copy_contigs + merge + quant) / 3600.0
        )
        vm_hours = pa_hours + plan.n_nodes * pb_hours + pc_hours
        cost = (
            pa_hours * pa_itype.price_per_hour
            + plan.n_nodes * pb_hours * itype.price_per_hour
            + pc_hours * itype.price_per_hour
        )

    return RunPrediction(
        stages=tuple(stages),
        ttc_s=ttc,
        cost_usd=cost,
        vm_hours=vm_hours,
    )
