"""Dynamic planning: turn pre-processing output into pilot sizing.

Two decisions the paper highlights (§III.E, §IV.C):

* the **k-mer list** depends on the post-trim read length and is unknown
  until pre-processing finishes — B. glumae (50 bp) gets
  k = 35..47 step 2, P. crispa (100 bp) gets k = 51..63 step 4;
* the **pilot P_B fleet size** follows from the job mix: one node per MPI
  k-mer job (the paper's benchmarks show no significant gain beyond one
  node per MPI job) plus a 16-node block per Contrail job (what it takes
  Contrail to match MPI TTCs), all bounded by budget, with MPI jobs
  widened when a single node cannot hold the k-mer table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.instances import InstanceType, get_instance_type
from repro.core.memory import task_memory_bytes
from repro.seq.datasets import DatasetSpec


def select_kmer_list(read_length: int) -> tuple[int, ...]:
    """The data-dependent k-mer list (reproduces Table II's two lists).

    Short-read data (<= 60 bp) sweeps odd k from 35 up to ~95% of the
    read length in steps of 2; longer reads use a sparser sweep, 51..63
    step 4 (denser sampling there adds cost without assembly benefit).
    """
    if read_length < 38:
        raise ValueError(f"reads of length {read_length} are too short to assemble")
    if read_length <= 60:
        k_max = min(47, read_length)
        if k_max % 2 == 0:
            k_max -= 1
        return tuple(range(35, k_max + 1, 2))
    return tuple(range(51, 64, 4))


@dataclass(frozen=True)
class AssemblyPlan:
    """Sizing of the assembly stage (pilot P_B)."""

    kmer_list: tuple[int, ...]
    assemblers: tuple[str, ...]
    mpi_nodes_per_job: int
    contrail_nodes_per_job: int
    n_nodes: int
    instance_type: str

    @property
    def n_jobs(self) -> int:
        return len(self.kmer_list) * len(self.assemblers)

    def jobs(self) -> list[tuple[str, int, int]]:
        """(assembler, k, nodes) for every assembly job."""
        out = []
        for a in self.assemblers:
            nodes = (
                self.contrail_nodes_per_job
                if a == "contrail"
                else self.mpi_nodes_per_job
            )
            for k in self.kmer_list:
                out.append((a, k, min(nodes, self.n_nodes)))
        return out


def plan_assembly(
    spec: DatasetSpec,
    kmer_list: tuple[int, ...],
    assemblers: tuple[str, ...],
    instance_type: str,
    mpi_nodes_per_job: int = 1,
    contrail_nodes_per_job: int = 16,
    max_nodes: int = 64,
) -> AssemblyPlan:
    """Size pilot P_B for the given job mix.

    MPI jobs are widened beyond ``mpi_nodes_per_job`` when the per-node
    k-mer table would not fit the instance memory (aggregate distributed
    memory is the whole point of the MPI assemblers).
    """
    if not kmer_list or not assemblers:
        raise ValueError("need at least one k and one assembler")
    itype = get_instance_type(instance_type)

    # Widen MPI jobs until the assembly footprint fits per node.
    need = mpi_nodes_per_job
    while (
        task_memory_bytes(spec, "assembly", n_nodes=need) > itype.memory_bytes
        and need < max_nodes
    ):
        need += 1
    mpi_nodes = need

    n_mpi_jobs = len(kmer_list) * sum(1 for a in assemblers if a != "contrail")
    n_contrail_jobs = len(kmer_list) * sum(1 for a in assemblers if a == "contrail")
    wanted = n_mpi_jobs * mpi_nodes + n_contrail_jobs * contrail_nodes_per_job
    n_nodes = max(mpi_nodes, min(wanted, max_nodes))

    return AssemblyPlan(
        kmer_list=tuple(kmer_list),
        assemblers=tuple(assemblers),
        mpi_nodes_per_job=mpi_nodes,
        contrail_nodes_per_job=min(contrail_nodes_per_job, n_nodes),
        n_nodes=n_nodes,
        instance_type=instance_type,
    )
