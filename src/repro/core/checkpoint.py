"""Durable checkpoint/resume store for pipeline runs.

A pipeline killed mid-run (spot reclaim of the submit host, an operator
``kill -9``, a crashed driver) must be resumable without redoing work —
and the resumed run must be *bit-identical* to an uninterrupted one:
same contigs, same usage records, same virtual TTCs.  The store here
makes that possible by durably recording two kinds of outcomes:

* **unit records** — the full workload outcome of a DONE compute unit
  (raw result, *pre-scaling* measured usage, real wall seconds, and the
  buffered worker trace), keyed by the unit's content address.  For
  assembly units that key is ``(ReadStore digest, assembler, params,
  sweep k·ranks)`` — the same address the in-memory
  :class:`~repro.core.assembly_cache.AssemblyCache` uses — so a digest
  change (different reads, different preprocessing) invalidates the
  record automatically by never matching it.
* **stage records** — small per-stage completion markers keyed by
  ``(input digest, config fingerprint, stage name)``, used for resume
  reporting ("3 of 5 stages were already complete").

On resume the pilot agent replays a hit *through the regular execution
path* (executor dispatch, SGE pricing on the virtual clock, trace
emission), substituting only the real computation — which is what makes
the replay bit-identical AND structurally indistinguishable in traces.

Durability model: records are single pickle files written atomically
(tmp + fsync + ``os.replace``), so a kill at any instant leaves either
the complete record or nothing.  Unreadable or version-skewed files are
treated as misses and discarded.  Writes are first-one-wins.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Bump when the record layout changes; older files become misses.
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    pass


def checkpoint_key_id(key: Any) -> str:
    """Stable filename-safe id of a checkpoint key.

    Keys are plain tuples of strings/numbers/frozen dataclasses with
    deterministic ``repr``; the id is a SHA-256 of that repr.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:40]


@dataclass
class UnitCheckpoint:
    """The durable outcome of one DONE compute unit.

    ``usage`` is the *raw measured* usage (before the agent's 1/scale
    extrapolation): replay re-runs the identical pricing path, so the
    virtual TTC of a replayed unit equals the original's exactly.
    """

    result: Any
    usage: Any
    wall_seconds: float = 0.0
    worker_trace: Any = None


@dataclass
class CheckpointStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0


class CheckpointStore:
    """One directory of durable unit/stage records."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self._dirs = {
            "units": self.root / "units",
            "stages": self.root / "stages",
        }
        for d in self._dirs.values():
            d.mkdir(parents=True, exist_ok=True)
        self.stats = CheckpointStats()

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.root)!r})"

    # -- unit records ------------------------------------------------------

    def get_unit(self, key: Any) -> UnitCheckpoint | None:
        record = self._load("units", key)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put_unit(self, key: Any, record: UnitCheckpoint) -> bool:
        """Durably record a unit outcome; first write wins."""
        written = self._dump("units", key, record)
        if written:
            self.stats.puts += 1
        return written

    # -- stage records -----------------------------------------------------

    def get_stage(self, key: Any) -> Any | None:
        return self._load("stages", key)

    def put_stage(self, key: Any, payload: Any) -> bool:
        return self._dump("stages", key, payload)

    def stage_count(self) -> int:
        return sum(1 for _ in self._dirs["stages"].glob("*.pkl"))

    def unit_count(self) -> int:
        return sum(1 for _ in self._dirs["units"].glob("*.pkl"))

    # -- internals ---------------------------------------------------------

    def _path(self, kind: str, key: Any) -> Path:
        return self._dirs[kind] / f"{checkpoint_key_id(key)}.pkl"

    def _load(self, kind: str, key: Any):
        path = self._path(kind, key)
        try:
            with open(path, "rb") as f:
                envelope = pickle.load(f)
        except FileNotFoundError:
            return None
        except Exception:
            # Torn/corrupt/unpicklable file: a miss, and removed so the
            # fresh record can land.
            path.unlink(missing_ok=True)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("format") != FORMAT_VERSION
            or envelope.get("key") != repr(key)
        ):
            # Version skew or a (vanishingly unlikely) digest collision.
            path.unlink(missing_ok=True)
            return None
        return envelope["record"]

    def _dump(self, kind: str, key: Any, record: Any) -> bool:
        path = self._path(kind, key)
        if path.exists():
            return False
        envelope = {
            "format": FORMAT_VERSION,
            "key": repr(key),
            "record": record,
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as f:
                pickle.dump(envelope, f, protocol=pickle.HIGHEST_PROTOCOL)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except Exception as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(f"cannot write checkpoint {path}: {exc}")
        return True
