"""Pre-processing: Rnnotator's read QC stage.

Steps (matching Rnnotator's defaults): quality trimming from the 3' end,
adapter clipping, rejection of reads containing uncalled bases, exact
deduplication (single-end; pair-aware for paired data), and a minimum
post-trim length filter.  The stage also computes the **k-mer list** for
the assembly stage — the data-dependent quantity that makes the workflow
dynamic ("the number of k-mer calculations required is not known until
the end of the pre-processing step", §III.E).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.seq.fastq import FastqRecord
from repro.seq.reads import ADAPTER


@dataclass(frozen=True)
class PreprocessParams:
    quality_threshold: int = 13
    min_length: int = 35
    drop_n: bool = True
    dedup: bool = True
    clip_adapters: bool = True
    n_threads: int = 8


@dataclass
class PreprocessResult:
    """Cleaned reads plus stage statistics and measured usage."""

    reads: list[FastqRecord]
    usage: ResourceUsage
    input_reads: int = 0
    trimmed: int = 0
    dropped_n: int = 0
    dropped_short: int = 0
    dropped_duplicate: int = 0
    adapters_clipped: int = 0
    input_bases: int = 0
    output_bases: int = 0

    @property
    def output_reads(self) -> int:
        return len(self.reads)

    @property
    def survival_rate(self) -> float:
        return self.output_reads / self.input_reads if self.input_reads else 0.0

    @property
    def modal_read_length(self) -> int:
        if not self.reads:
            return 0
        lengths = np.array([len(r) for r in self.reads])
        values, counts = np.unique(lengths, return_counts=True)
        return int(values[counts.argmax()])

    @property
    def reduction_factor(self) -> float:
        """Output/input base volume — Table II's large post-preprocessing
        shrink (3.8 GB -> 175 MB for B. glumae) comes mostly from dedup."""
        return self.output_bases / self.input_bases if self.input_bases else 0.0


@dataclass(frozen=True)
class PreprocessWorkload:
    """Picklable QC workload for cross-run stage overlap.

    :meth:`RnnotatorPipeline.run_many` submits one of these to the
    shared executor while the *previous* dataset's assembly fan-out is
    still in flight, then hands the pending handle to the next run,
    whose pre-processing unit consumes the already-computed outcome
    instead of recomputing it.  ``preprocess`` is deterministic, so the
    prefetched result and usage are bit-identical to an inline run —
    only real wall time changes.

    The body runs under a thread-locally installed
    :class:`~repro.obs.NullTracer`: prefetch executes at a
    nondeterministic real moment relative to the in-flight run, and
    nothing it might record may leak into that run's trace.  Its real
    interval is returned alongside the result (``perf_counter`` stamps
    taken in the worker) so the consuming run can emit a
    ``preprocess.prefetch`` span proving the overlap.
    """

    reads: tuple[FastqRecord, ...]
    params: PreprocessParams

    def __call__(
        self,
    ) -> tuple[tuple[PreprocessResult, float, float], ResourceUsage]:
        from repro.obs import NullTracer, set_thread_tracer

        previous = set_thread_tracer(NullTracer())
        try:
            r0 = time.perf_counter()
            result = preprocess(list(self.reads), self.params)
            r1 = time.perf_counter()
        finally:
            set_thread_tracer(previous)
        return (result, r0, r1), result.usage


def _trim_read(
    rec: FastqRecord, params: PreprocessParams
) -> tuple[str, bool, bool]:
    """Returns (trimmed sequence, was_trimmed, adapter_clipped)."""
    seq = rec.seq
    clipped = False
    if params.clip_adapters:
        idx = seq.find(ADAPTER)
        if idx >= 0:
            seq = seq[:idx]
            clipped = True
    phred = rec.phred()[: len(seq)]
    end = len(seq)
    while end > 0 and phred[end - 1] < params.quality_threshold:
        end -= 1
    return seq[:end], end < len(rec.seq), clipped


def preprocess(
    reads: list[FastqRecord],
    params: PreprocessParams | None = None,
) -> PreprocessResult:
    """Run the QC stage over ``reads`` (mates included, interleaved)."""
    params = params or PreprocessParams()
    usage = ResourceUsage(n_ranks=1)

    out: list[FastqRecord] = []
    seen: set[str] = set()
    res = PreprocessResult(reads=out, usage=usage)
    res.input_reads = len(reads)

    for rec in reads:
        res.input_bases += len(rec)
        seq, was_trimmed, clipped = _trim_read(rec, params)
        if clipped:
            res.adapters_clipped += 1
        if was_trimmed or clipped:
            res.trimmed += 1
        if params.drop_n and "N" in seq:
            res.dropped_n += 1
            continue
        if len(seq) < params.min_length:
            res.dropped_short += 1
            continue
        if params.dedup:
            if seq in seen:
                res.dropped_duplicate += 1
                continue
            seen.add(seq)
        out.append(FastqRecord(id=rec.id, seq=seq, qual=rec.qual[: len(seq)]))
        res.output_bases += len(seq)

    usage.add_phase(
        PhaseUsage(
            name="preprocess",
            kind="preprocess",
            critical_compute=res.input_bases / max(params.n_threads, 1),
            total_compute=float(res.input_bases),
        )
    )
    # Peak footprint: the dedup hash holds every unique read sequence.
    usage.peak_rank_memory_bytes = int(res.output_bases * 1.6) + 64 * len(out)
    return res
