"""Paper-scale extrapolation of measured usage.

Work measured at simulation scale extrapolates differently by phase:

* **read-bound** phases (k-mer extraction/counting, QC, quantification,
  the MapReduce ``kmer_count`` job) grow linearly with the number of
  reads — scaled by ``1 / dataset.read_scale``;
* **graph-bound** phases (unitig walking, graph simplification,
  Contrail's pair/merge compression rounds, master merges) grow with the
  de Bruijn graph, which saturates toward the transcriptome's k-mer
  content — scaled by ``1 / dataset.scale`` (the genome scale factor).

Naive read-linear scaling would overstate walk/probe work by the
coverage ratio; this split keeps both Table III calibration and the
P. crispa predictions in the physical regime.  Memory extrapolates with
the graph factor when a graph-bound phase exists (the k-mer table is the
largest resident structure) and the read factor otherwise.
"""

from __future__ import annotations

from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.seq.datasets import Dataset

READ_BOUND_KINDS = frozenset({"kmer", "preprocess", "quantify", "io", "generic"})
GRAPH_BOUND_KINDS = frozenset({"graph", "walk", "merge"})


def phase_is_graph_bound(phase: PhaseUsage) -> bool:
    if phase.kind in GRAPH_BOUND_KINDS:
        return True
    if phase.kind == "mr_job":
        # Contrail: the initial counting job is read-bound; the
        # compression rounds operate on graph-node records.
        return not phase.name.startswith("kmer")
    return False


def paper_usage_from_scales(
    usage: ResourceUsage, read_scale: float, graph_scale: float
) -> ResourceUsage:
    """Extrapolate a usage record given the two scale ratios directly.

    ``read_scale`` and ``graph_scale`` are the simulated/paper ratios
    (``Dataset.read_scale`` and ``Dataset.scale``).  Split out from
    :func:`paper_usage` so picklable workloads can carry two floats to a
    process-pool worker instead of the whole data set.
    """
    read_factor = 1.0 / read_scale
    graph_factor = 1.0 / graph_scale

    def factor(phase: PhaseUsage) -> float:
        return graph_factor if phase_is_graph_bound(phase) else read_factor

    has_graph = any(phase_is_graph_bound(p) for p in usage.phases)
    return usage.scaled_by(
        factor, memory_factor=graph_factor if has_graph else read_factor
    )


def paper_usage(usage: ResourceUsage, dataset: Dataset) -> ResourceUsage:
    """Extrapolate a simulation-scale usage record to paper scale."""
    return paper_usage_from_scales(usage, dataset.read_scale, dataset.scale)
