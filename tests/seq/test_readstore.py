"""ReadStore: encode-once layout, extraction parity, shared-memory
lifecycle (create/attach/close/unlink, double-close, leak-freedom)."""

import pickle
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context, shared_memory

import numpy as np
import pytest

from repro.assembly.kmers import (
    canonical_kmers_store_packed,
    canonical_kmers_varlen_packed,
)
from repro.seq import alphabet
from repro.seq.fastq import FastqRecord
from repro.seq.readstore import ReadStore, ReadStoreHandle


def _mk(seqs, ids=None, quals=None):
    return [
        FastqRecord(
            id=(ids[i] if ids else f"r{i}"),
            seq=s,
            qual=(quals[i] if quals else "I" * len(s)),
        )
        for i, s in enumerate(seqs)
    ]


READS = _mk(
    ["ACGTACGTACGT", "TTTTGGGGCCCC", "ACGNNNTGCA", "AC", "GGGCCCAAATTT"],
    quals=["IIIIIIIIIIII", "!!!!IIII####", "ABCDEFGHIJ", "##", "IIIIIIIII###"],
)


class TestLayout:
    def test_roundtrip_records(self):
        store = ReadStore.from_reads(READS)
        assert store.records() == READS

    def test_shapes_and_lengths(self):
        store = ReadStore.from_reads(READS)
        assert store.n_reads == len(READS) == len(store)
        assert store.n_bases == sum(len(r) for r in READS)
        assert store.lengths.tolist() == [len(r) for r in READS]
        # one separator per read, including the trailing one
        assert store.codes.size == store.n_bases + store.n_reads
        assert store.quals.size == store.codes.size

    def test_per_read_accessors(self):
        store = ReadStore.from_reads(READS)
        for i, r in enumerate(READS):
            assert store.seq(i) == r.seq
            assert store.read_id(i) == r.id
            np.testing.assert_array_equal(
                store.read_codes(i), alphabet.encode(r.seq)
            )
            np.testing.assert_array_equal(store.phred(i), r.phred())

    def test_separators_are_n(self):
        store = ReadStore.from_reads(READS)
        seps = store.codes[store.offsets[1:] - 1]
        assert (seps == alphabet.N).all()

    def test_contains_n_excludes_separators(self):
        assert not ReadStore.from_reads(_mk(["ACGT", "GGCC"])).contains_n()
        assert ReadStore.from_reads(_mk(["ACGT", "GGNC"])).contains_n()

    def test_empty_store(self):
        store = ReadStore.from_reads([])
        assert store.n_reads == 0 and store.n_bases == 0
        assert store.records() == []
        assert canonical_kmers_store_packed(store, 5).shape[0] == 0

    def test_arrays_read_only(self):
        store = ReadStore.from_reads(READS)
        with pytest.raises(ValueError):
            store.codes[0] = 1


class TestExtractionParity:
    @pytest.mark.parametrize("k", [3, 5, 11, 33])
    def test_full_store_matches_varlen(self, reads_single, k):
        reads = reads_single[:300]
        store = ReadStore.from_reads(reads)
        np.testing.assert_array_equal(
            canonical_kmers_store_packed(store, k),
            canonical_kmers_varlen_packed([r.seq for r in reads], k),
        )

    @pytest.mark.parametrize("p", [1, 3, 8])
    def test_striped_subset_matches_slicing(self, reads_single, p):
        reads = reads_single[:200]
        store = ReadStore.from_reads(reads)
        for r in range(p):
            stripe = np.arange(r, store.n_reads, p, dtype=np.int64)
            np.testing.assert_array_equal(
                canonical_kmers_store_packed(store, 21, indices=stripe),
                canonical_kmers_varlen_packed(
                    [x.seq for x in reads[r::p]], 21
                ),
            )

    def test_short_and_n_reads_contribute_nothing(self):
        store = ReadStore.from_reads(READS)
        got = canonical_kmers_store_packed(store, 11)
        want = canonical_kmers_varlen_packed([r.seq for r in READS], 11)
        np.testing.assert_array_equal(got, want)

    def test_subset_codes_empty(self):
        store = ReadStore.from_reads(READS)
        assert store.subset_codes(np.array([], dtype=np.int64)).size == 0


class TestDigest:
    def test_content_addressed(self):
        a = ReadStore.from_reads(READS)
        b = ReadStore.from_reads(list(READS))
        assert a.digest == b.digest and a == b and hash(a) == hash(b)

    def test_sensitive_to_base_qual_id_and_order(self):
        base = ReadStore.from_reads(_mk(["ACGT", "GGCC"])).digest
        assert ReadStore.from_reads(_mk(["ACGA", "GGCC"])).digest != base
        assert (
            ReadStore.from_reads(
                _mk(["ACGT", "GGCC"], quals=["III!", "IIII"])
            ).digest
            != base
        )
        assert (
            ReadStore.from_reads(_mk(["ACGT", "GGCC"], ids=["x", "y"])).digest
            != base
        )
        assert ReadStore.from_reads(_mk(["GGCC", "ACGT"])).digest != base


def _attach_fresh(handle):
    """Attach through the real shared-memory path (module-level so the
    fork pool can pickle it by reference; the inherited attach cache is
    cleared first, otherwise the fork child would reuse the parent's
    in-process store object and test nothing)."""
    from repro.seq import readstore

    readstore._ATTACHED.clear()
    store = ReadStore.attach(handle)
    return store.n_reads, store.digest, store.seq(0), store.read_id(0)


class TestSharedMemoryLifecycle:
    def test_share_is_idempotent_and_zero_copy_semantics_hold(self):
        store = ReadStore.from_reads(READS)
        handle = store.share()
        assert isinstance(handle, ReadStoreHandle)
        assert store.share() == handle  # same segment, same handle
        assert store.shared and store.owns_shm
        assert store.records() == READS  # views rebound onto the segment
        store.close()

    def test_pickle_roundtrip_returns_live_store(self):
        store = ReadStore.from_reads(READS)
        clone = pickle.loads(pickle.dumps(store))
        # in-process unpickle resolves through the attach cache
        assert clone is store
        store.close()

    def test_pickled_size_is_o1_in_read_count(self, reads_single):
        stores = [
            ReadStore.from_reads(reads_single[:n]) for n in (50, 2000)
        ]
        sizes = [len(pickle.dumps(s)) for s in stores]
        # O(1): a 40x read-count increase moves the pickle by at most a
        # few varint bytes, and the whole thing stays handle-sized.
        assert abs(sizes[1] - sizes[0]) <= 16 and max(sizes) < 512
        for s in stores:
            s.close()

    def test_attach_across_processes(self):
        store = ReadStore.from_reads(READS)
        handle = store.share()
        ctx = get_context("fork")
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            n_reads, digest, seq0, id0 = pool.submit(
                _attach_fresh, handle
            ).result()
        assert n_reads == store.n_reads
        assert digest == store.digest
        assert seq0 == READS[0].seq and id0 == READS[0].id
        store.close()

    def test_close_unlinks_owner_segment(self):
        store = ReadStore.from_reads(READS)
        name = store.share().shm_name
        store.close()
        assert store.closed
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_double_close_is_safe(self):
        store = ReadStore.from_reads(READS)
        store.share()
        store.close()
        store.close()  # must not raise
        ReadStore.from_reads(READS).close()  # never-shared: no-op
        with pytest.raises(ValueError):
            _ = store.codes

    def test_attacher_close_does_not_unlink(self):
        owner = ReadStore.from_reads(READS)
        handle = owner.share()
        from repro.seq import readstore

        readstore._ATTACHED.clear()  # force a real second attachment
        attacher = ReadStore.attach(handle)
        assert attacher is not owner and not attacher.owns_shm
        assert attacher.records() == READS
        attacher.close()
        # the owner's segment must survive the attacher's close
        assert owner.records() == READS
        owner.close()

    def test_gc_backstop_unlinks(self):
        store = ReadStore.from_reads(READS)
        name = store.share().shm_name
        del store  # no explicit close: the finalizer must clean up
        import gc

        gc.collect()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_no_dangling_segments_after_executor_shutdown(self, reads_single):
        """A fan-out through the process backend leaves /dev/shm clean."""
        from repro.assembly.base import AssemblyParams
        from repro.core.multikmer import make_assembly_workload
        from repro.parallel.executor import ProcessExecutor

        store = ReadStore.from_reads(reads_single[:120])
        work = make_assembly_workload(
            "velvet", store, AssemblyParams(k=31), n_ranks=1
        )
        ex = ProcessExecutor(max_workers=1)
        outcome = ex.submit(work).outcome()
        ex.shutdown()
        assert outcome.ok
        name = store.handle().shm_name
        store.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
