"""Tests for synthetic genome generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq.alphabet import gc_content, is_valid_codes, reverse_complement, decode
from repro.seq.genome import Exon, Gene, GenomeSpec, synthesize_genome


def small_spec(**kw):
    defaults = dict(name="t", size_bp=60_000, n_genes=30, seed=1)
    defaults.update(kw)
    return GenomeSpec(**defaults)


class TestExonGene:
    def test_exon_validation(self):
        with pytest.raises(ValueError):
            Exon(5, 5)
        with pytest.raises(ValueError):
            Exon(-1, 3)
        assert len(Exon(2, 10)) == 8

    def test_gene_validation_strand(self):
        with pytest.raises(ValueError):
            Gene("g", 0, 10, 0, (Exon(0, 10),))

    def test_gene_validation_overlapping_exons(self):
        with pytest.raises(ValueError):
            Gene("g", 0, 100, 1, (Exon(0, 50), Exon(40, 90)))

    def test_gene_validation_exon_past_locus(self):
        with pytest.raises(ValueError):
            Gene("g", 0, 10, 1, (Exon(0, 20),))

    def test_gene_lengths(self):
        g = Gene("g", 100, 300, 1, (Exon(0, 50), Exon(100, 200)))
        assert g.locus_length == 200
        assert g.mrna_length == 150


class TestSynthesize:
    def test_basic_properties(self):
        genome = synthesize_genome(small_spec())
        assert len(genome) == 60_000
        assert len(genome.genes) == 30
        assert is_valid_codes(genome.sequence)

    def test_genes_sorted_non_overlapping(self):
        genome = synthesize_genome(small_spec())
        prev_end = 0
        for g in genome.genes:
            assert g.start >= prev_end
            assert g.end <= len(genome)
            prev_end = g.end

    def test_gc_content(self):
        genome = synthesize_genome(small_spec(gc=0.68, size_bp=100_000))
        assert gc_content(genome.sequence) == pytest.approx(0.68, abs=0.02)

    def test_deterministic(self):
        g1 = synthesize_genome(small_spec(seed=5))
        g2 = synthesize_genome(small_spec(seed=5))
        assert (g1.sequence == g2.sequence).all()
        assert g1.genes == g2.genes

    def test_seed_changes_output(self):
        g1 = synthesize_genome(small_spec(seed=5))
        g2 = synthesize_genome(small_spec(seed=6))
        assert not (g1.sequence == g2.sequence).all()

    def test_does_not_fit_raises(self):
        with pytest.raises(ValueError):
            synthesize_genome(small_spec(size_bp=5_000, n_genes=30))

    def test_zero_genes(self):
        genome = synthesize_genome(small_spec(n_genes=0))
        assert genome.genes == []

    def test_minus_strand_mrna_is_revcomp(self):
        genome = synthesize_genome(small_spec())
        minus = [g for g in genome.genes if g.strand == -1 and len(g.exons) == 1]
        assert minus, "expected at least one single-exon minus-strand gene"
        g = minus[0]
        locus = decode(genome.sequence[g.start : g.end])
        assert genome.gene_sequence_str(g) == reverse_complement(locus)

    def test_plus_strand_single_exon_mrna_matches_locus(self):
        genome = synthesize_genome(small_spec())
        plus = [g for g in genome.genes if g.strand == 1 and len(g.exons) == 1]
        assert plus
        g = plus[0]
        assert genome.gene_sequence_str(g) == decode(
            genome.sequence[g.start : g.end][: g.mrna_length]
        )

    def test_introns_create_multi_exon_genes(self):
        genome = synthesize_genome(
            small_spec(intron_rate=3.0, size_bp=120_000, mean_gene_length=1500)
        )
        multi = [g for g in genome.genes if len(g.exons) > 1]
        assert multi, "intron_rate=3.0 should produce multi-exon genes"
        for g in multi:
            assert g.mrna_length < g.locus_length

    def test_no_introns_when_rate_zero(self):
        genome = synthesize_genome(small_spec(intron_rate=0.0))
        assert all(len(g.exons) == 1 for g in genome.genes)
        assert all(g.mrna_length == g.locus_length for g in genome.genes)

    def test_operons_group_adjacent_genes_same_strand(self):
        genome = synthesize_genome(
            small_spec(operon_fraction=0.8, n_genes=60, size_bp=120_000)
        )
        by_operon: dict[str, list] = {}
        for g in genome.genes:
            if g.operon_id:
                by_operon.setdefault(g.operon_id, []).append(g)
        multi = [gs for gs in by_operon.values() if len(gs) >= 2]
        assert multi, "expected multi-gene operons at operon_fraction=0.8"
        for genes in multi:
            strands = {g.strand for g in genes}
            assert len(strands) == 1, "operon genes must share strand"

    def test_gene_min_length_respected(self):
        genome = synthesize_genome(small_spec(min_gene_length=300))
        assert all(g.mrna_length >= 300 for g in genome.genes)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GenomeSpec(name="x", size_bp=0, n_genes=1)
        with pytest.raises(ValueError):
            GenomeSpec(name="x", size_bp=100, n_genes=1, mean_gene_length=10,
                       min_gene_length=50)

    @settings(max_examples=15, deadline=None)
    @given(
        n_genes=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=1000),
        intron_rate=st.floats(min_value=0.0, max_value=3.0),
    )
    def test_generation_invariants(self, n_genes, seed, intron_rate):
        spec = GenomeSpec(
            name="p", size_bp=90_000, n_genes=n_genes, seed=seed,
            intron_rate=intron_rate,
        )
        genome = synthesize_genome(spec)
        assert len(genome) == spec.size_bp
        assert len(genome.genes) == n_genes
        prev = 0
        for g in genome.genes:
            assert prev <= g.start < g.end <= spec.size_bp
            prev = g.end
            mrna = genome.gene_sequence(g)
            assert mrna.shape[0] == g.mrna_length
            assert is_valid_codes(mrna)
