"""Tests for the paper's data-set analogs (Table II)."""

import pytest

from repro.seq.datasets import (
    B_GLUMAE,
    P_CRISPA,
    GB,
    generate_dataset,
    tiny_dataset,
)


class TestSpecs:
    def test_table2_bglumae_constants(self):
        assert B_GLUMAE.genome_size_bp == 6_700_000
        assert B_GLUMAE.n_protein_genes == 5_223
        assert B_GLUMAE.read_length == 50
        assert B_GLUMAE.n_reads == 16_263_310
        assert not B_GLUMAE.paired
        assert B_GLUMAE.kmer_list == (35, 37, 39, 41, 43, 45, 47)
        assert B_GLUMAE.organism_type == "bacteria"

    def test_table2_pcrispa_constants(self):
        assert P_CRISPA.genome_size_bp == 34_500_000
        assert P_CRISPA.n_protein_genes == 13_617
        assert P_CRISPA.read_length == 100
        assert P_CRISPA.paired
        assert P_CRISPA.kmer_list == (51, 55, 59, 63)
        assert P_CRISPA.total_read_records == 2 * 54_168_576

    def test_data_sizes_match_paper(self):
        assert B_GLUMAE.fastq_bytes == pytest.approx(3.8 * GB, rel=0.01)
        assert P_CRISPA.fastq_bytes == pytest.approx(26.2 * GB, rel=0.01)
        assert P_CRISPA.preprocess_memory_bytes == 40 * GB

    def test_pcrispa_has_introns_bglumae_operons(self):
        assert P_CRISPA.intron_rate > 0
        assert B_GLUMAE.operon_fraction > 0
        assert B_GLUMAE.intron_rate == 0


class TestGeneration:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            generate_dataset(B_GLUMAE, scale=0.0)
        with pytest.raises(ValueError):
            generate_dataset(B_GLUMAE, scale=1.5)

    def test_tiny_single_end(self):
        ds = tiny_dataset(paired=False, seed=0)
        assert not ds.spec.paired
        assert ds.run.spec.read_length == 50
        assert not ds.run.mates
        assert len(ds.genome.genes) >= 5

    def test_tiny_paired_end(self):
        ds = tiny_dataset(paired=True, seed=0)
        assert ds.spec.paired
        assert ds.run.spec.read_length == 100
        assert len(ds.run.mates) == len(ds.run.reads)

    def test_coverage_preserved_across_scales(self):
        # Reads and transcriptome scale together, so coverage is stable.
        d1 = generate_dataset(B_GLUMAE, scale=0.001, seed=1)
        d2 = generate_dataset(B_GLUMAE, scale=0.002, seed=1)
        cov1 = d1.run.total_bases / max(d1.transcriptome.total_bp, 1)
        cov2 = d2.run.total_bases / max(d2.transcriptome.total_bp, 1)
        assert cov1 == pytest.approx(cov2, rel=0.5)

    def test_coverage_boost(self):
        d1 = generate_dataset(B_GLUMAE, scale=0.001, seed=1)
        d2 = generate_dataset(B_GLUMAE, scale=0.001, seed=1, coverage_boost=2.0)
        assert d2.run.n_fragments == pytest.approx(2 * d1.run.n_fragments, rel=0.01)

    def test_paper_scale_extrapolation(self):
        ds = generate_dataset(B_GLUMAE, scale=0.001, seed=0)
        assert ds.paper_scale_bytes(1000) == 1_000_000
        assert ds.sim_fastq_bytes > 0

    def test_deterministic(self):
        a = generate_dataset(B_GLUMAE, scale=0.001, seed=3)
        b = generate_dataset(B_GLUMAE, scale=0.001, seed=3)
        assert [r.seq for r in a.run.reads[:20]] == [r.seq for r in b.run.reads[:20]]
