"""Tests for FASTA/FASTQ parsing and writing."""

import io

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seq.fasta import (
    FastaRecord,
    fasta_string,
    read_fasta,
    write_fasta,
)
from repro.seq.fastq import (
    FastqRecord,
    fastq_bytes_estimate,
    fastq_string,
    phred_to_ascii,
    read_fastq,
    write_fastq,
)


class TestFasta:
    def test_roundtrip_string(self):
        recs = [
            FastaRecord("a", "ACGT", "first record"),
            FastaRecord("b", "GGGCCC" * 30),
        ]
        text = fasta_string(recs)
        back = read_fasta(io.StringIO(text))
        assert back == recs

    def test_wrapping(self):
        text = fasta_string([FastaRecord("x", "A" * 150)], width=70)
        lines = text.strip().split("\n")
        assert lines[0] == ">x"
        assert [len(l) for l in lines[1:]] == [70, 70, 10]

    def test_no_wrapping(self):
        text = fasta_string([FastaRecord("x", "A" * 150)], width=0)
        assert text == ">x\n" + "A" * 150 + "\n"

    def test_multiline_sequence_joined(self):
        back = read_fasta(io.StringIO(">s desc here\nACG\nTTT\n\nGG\n"))
        assert back == [FastaRecord("s", "ACGTTTGG", "desc here")]

    def test_lowercase_uppercased(self):
        back = read_fasta(io.StringIO(">s\nacgt\n"))
        assert back[0].seq == "ACGT"

    def test_empty_file(self):
        assert read_fasta(io.StringIO("")) == []

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError):
            read_fasta(io.StringIO("ACGT\n>s\nACGT\n"))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "x.fa"
        recs = [FastaRecord("r1", "ACGTACGT")]
        assert write_fasta(recs, path) == 1
        assert read_fasta(path) == recs

    def test_header_property(self):
        assert FastaRecord("id1", "A", "desc").header == "id1 desc"
        assert FastaRecord("id1", "A").header == "id1"

    def test_len(self):
        assert len(FastaRecord("x", "ACGT")) == 4

    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abc123", min_size=1, max_size=10),
                st.text(alphabet="ACGTN", max_size=200),
            ),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, pairs):
        recs = [FastaRecord(f"r{i}_{rid}", seq) for i, (rid, seq) in enumerate(pairs)]
        assert read_fasta(io.StringIO(fasta_string(recs))) == recs


class TestFastq:
    def test_roundtrip(self):
        recs = [FastqRecord("r1", "ACGT", "IIII"), FastqRecord("r2", "GG", "!!")]
        back = read_fastq(io.StringIO(fastq_string(recs)))
        assert back == recs

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FastqRecord("r", "ACGT", "II")

    def test_phred_decode(self):
        rec = FastqRecord("r", "AC", "!I")
        assert rec.phred().tolist() == [0, 40]

    def test_phred_to_ascii_clipping(self):
        s = phred_to_ascii(np.array([-5, 0, 41, 100]))
        assert s[0] == "!"  # clipped up to 0
        assert s[1] == "!"
        assert ord(s[3]) - 33 == 60  # clipped down to 60

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("r1\nACGT\n+\nIIII\n"))

    def test_bad_separator_rejected(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("@r1\nACGT\nIIII\nIIII\n"))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("@r1\nACGT\n+\nII"))

    def test_empty(self):
        assert read_fastq(io.StringIO("")) == []

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "x.fq"
        recs = [FastqRecord("a", "ACGTN", "IIII#")]
        assert write_fastq(recs, path) == 1
        assert read_fastq(path) == recs

    def test_id_stops_at_whitespace(self):
        back = read_fastq(io.StringIO("@r1 extra stuff\nAC\n+\nII\n"))
        assert back[0].id == "r1"

    def test_bytes_estimate_scales(self):
        single = fastq_bytes_estimate(1000, 50, paired=False)
        paired = fastq_bytes_estimate(1000, 50, paired=True)
        assert paired == 2 * single
        assert fastq_bytes_estimate(2000, 50) == 2 * single

    def test_bytes_estimate_magnitude(self):
        # B. glumae: 16.26M 50bp single-end reads ~= 3.8 GB FASTQ (Table II).
        est = fastq_bytes_estimate(16_263_310, 50)
        assert 1.5e9 < est < 5e9

    @given(st.lists(st.text(alphabet="ACGTN", min_size=1, max_size=80), max_size=20))
    def test_roundtrip_property(self, seqs):
        recs = [
            FastqRecord(f"r{i}", s, phred_to_ascii(np.full(len(s), 30)))
            for i, s in enumerate(seqs)
        ]
        assert read_fastq(io.StringIO(fastq_string(recs))) == recs
