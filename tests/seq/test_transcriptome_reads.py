"""Tests for transcriptome construction and RNA-seq read simulation."""

import numpy as np
import pytest

from repro.seq import transcriptome as tx
from repro.seq.alphabet import encode, decode, reverse_complement
from repro.seq.genome import GenomeSpec, synthesize_genome
from repro.seq.reads import ADAPTER, ReadSimSpec, ReadSimulator
from repro.seq.transcriptome import Transcript, Transcriptome, expression_profile


@pytest.fixture(scope="module")
def genome():
    return synthesize_genome(GenomeSpec(name="g", size_bp=80_000, n_genes=40, seed=3))


@pytest.fixture(scope="module")
def txome(genome):
    return tx.from_genome(genome, np.random.default_rng(0))


class TestExpressionProfile:
    def test_normalized(self):
        p = expression_profile(100, np.random.default_rng(0))
        assert p.sum() == pytest.approx(1.0)
        assert (p > 0).all()

    def test_empty(self):
        assert expression_profile(0, np.random.default_rng(0)).shape == (0,)

    def test_skew_increases_with_sigma(self):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        flat = expression_profile(1000, rng1, sigma=0.1)
        skewed = expression_profile(1000, rng2, sigma=2.5)
        assert skewed.max() > flat.max()


class TestTranscriptome:
    def test_from_genome_subset(self, genome, txome):
        assert 0 < len(txome) <= len(genome.genes)
        assert txome.abundances().sum() == pytest.approx(1.0)

    def test_transcript_sequences_match_genes(self, genome):
        t = tx.from_genome(genome, np.random.default_rng(1), expressed_fraction=1.0)
        gene_seqs = {genome.gene_sequence_str(g) for g in genome.genes}
        for tr in t:
            assert tr.seq in gene_seqs

    def test_sampling_weights_favor_long_abundant(self):
        t = Transcriptome(
            "x",
            [
                Transcript("a", encode("A" * 100), 0.5),
                Transcript("b", encode("C" * 1000), 0.5),
            ],
        )
        w = t.read_sampling_weights()
        assert w.sum() == pytest.approx(1.0)
        assert w[1] > w[0]

    def test_empty_weights_raise(self):
        t = Transcriptome("x", [Transcript("a", encode("ACGT"), 0.0)])
        with pytest.raises(ValueError):
            t.read_sampling_weights()

    def test_expressed_fraction_validation(self, genome):
        with pytest.raises(ValueError):
            tx.from_genome(genome, np.random.default_rng(0), expressed_fraction=0.0)

    def test_total_bp(self):
        t = Transcriptome("x", [Transcript("a", encode("ACGT"), 1.0)])
        assert t.total_bp == 4


class TestReadSimulator:
    def test_single_end_run(self, txome):
        spec = ReadSimSpec(read_length=50, n_reads=500, paired=False, seed=1)
        run = ReadSimulator(txome, spec).run()
        assert len(run.reads) == 500
        assert not run.mates
        assert all(len(r) == 50 for r in run.reads)
        assert len(run.origins) == 500

    def test_paired_end_run(self, txome):
        spec = ReadSimSpec(read_length=100, n_reads=300, paired=True, seed=1)
        run = ReadSimulator(txome, spec).run()
        assert len(run.reads) == len(run.mates) == 300
        assert all(r.id.endswith("/1") for r in run.reads)
        assert all(r.id.endswith("/2") for r in run.mates)
        assert len(run.all_reads()) == 600

    def test_reads_trace_to_origin(self, txome):
        spec = ReadSimSpec(
            read_length=50, n_reads=200, seed=2,
            error_rate_start=0.0, error_rate_end=0.0, n_rate=0.0,
            duplicate_fraction=0.0,
        )
        run = ReadSimulator(txome, spec).run()
        for rec, origin in zip(run.reads[:50], run.origins[:50]):
            t = txome.transcripts[origin.transcript_index]
            frag = t.seq[origin.offset : origin.offset + origin.length]
            if origin.strand == -1:
                frag = reverse_complement(frag)
            # Error-free read 1 is a prefix of its fragment (adapter-padded
            # only when the fragment is shorter than the read).
            if len(frag) >= 50:
                assert rec.seq == frag[:50]

    def test_error_rate_nonzero(self, txome):
        spec = ReadSimSpec(
            read_length=50, n_reads=300, seed=3,
            error_rate_start=0.1, error_rate_end=0.1, n_rate=0.0,
            duplicate_fraction=0.0,
        )
        run = ReadSimulator(txome, spec).run()
        mismatches = 0
        total = 0
        for rec, origin in zip(run.reads, run.origins):
            t = txome.transcripts[origin.transcript_index]
            frag = t.seq[origin.offset : origin.offset + origin.length]
            if origin.strand == -1:
                frag = reverse_complement(frag)
            if len(frag) < 50:
                continue
            mismatches += sum(a != b for a, b in zip(rec.seq, frag[:50]))
            total += 50
        assert total > 0
        assert 0.05 < mismatches / total < 0.15

    def test_n_bases_injected(self, txome):
        spec = ReadSimSpec(read_length=50, n_reads=400, n_rate=0.05, seed=4)
        run = ReadSimulator(txome, spec).run()
        n_frac = sum(r.seq.count("N") for r in run.reads) / (400 * 50)
        assert 0.02 < n_frac < 0.1

    def test_duplicates_present(self, txome):
        spec = ReadSimSpec(
            read_length=50, n_reads=1000, duplicate_fraction=0.2, seed=5
        )
        run = ReadSimulator(txome, spec).run()
        assert len(run.reads) == 1000
        seqs = [r.seq for r in run.reads]
        assert len(set(seqs)) < len(seqs)

    def test_quality_ramp_decreases(self, txome):
        spec = ReadSimSpec(read_length=100, n_reads=50, seed=6)
        run = ReadSimulator(txome, spec).run()
        ph = np.mean([r.phred() for r in run.reads], axis=0)
        assert ph[:10].mean() > ph[-10:].mean()

    def test_adapter_on_short_fragments(self, txome):
        spec = ReadSimSpec(
            read_length=100, n_reads=500, fragment_mean=60, fragment_sd=10,
            seed=7, error_rate_start=0.0, error_rate_end=0.0, n_rate=0.0,
        )
        run = ReadSimulator(txome, spec).run()
        with_adapter = [r for r in run.reads if ADAPTER in r.seq]
        assert with_adapter, "short fragments must show adapter read-through"

    def test_deterministic(self, txome):
        spec = ReadSimSpec(read_length=50, n_reads=100, seed=9)
        r1 = ReadSimulator(txome, spec).run()
        r2 = ReadSimulator(txome, spec).run()
        assert [x.seq for x in r1.reads] == [x.seq for x in r2.reads]

    def test_empty_transcriptome_rejected(self):
        with pytest.raises(ValueError):
            ReadSimulator(Transcriptome("e", []), ReadSimSpec())

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ReadSimSpec(read_length=5)
        with pytest.raises(ValueError):
            ReadSimSpec(paired=True, read_length=100, fragment_mean=50)
        with pytest.raises(ValueError):
            ReadSimSpec(n_reads=-1)

    def test_total_bases(self, txome):
        spec = ReadSimSpec(read_length=50, n_reads=100, seed=0)
        run = ReadSimulator(txome, spec).run()
        assert run.total_bases == 100 * 50
