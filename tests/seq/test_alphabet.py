"""Unit and property tests for repro.seq.alphabet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seq import alphabet
from repro.seq.alphabet import (
    A,
    C,
    G,
    N,
    T,
    complement,
    decode,
    encode,
    fraction_n,
    gc_content,
    is_valid_codes,
    random_dna,
    reverse_complement,
)

dna_strings = st.text(alphabet="ACGTN", max_size=300)
dna_strings_nonempty = st.text(alphabet="ACGT", min_size=1, max_size=300)


class TestEncodeDecode:
    def test_encode_basic(self):
        assert encode("ACGTN").tolist() == [A, C, G, T, N]

    def test_encode_lowercase(self):
        assert encode("acgtn").tolist() == [A, C, G, T, N]

    def test_encode_unknown_maps_to_n(self):
        assert encode("XYZ-").tolist() == [N, N, N, N]

    def test_encode_empty(self):
        assert encode("").shape == (0,)

    def test_encode_bytes_input(self):
        assert encode(b"ACGT").tolist() == [A, C, G, T]

    def test_decode_basic(self):
        assert decode(np.array([A, C, G, T, N], dtype=np.uint8)) == "ACGTN"

    def test_decode_empty(self):
        assert decode(np.array([], dtype=np.uint8)) == ""

    def test_decode_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            decode(np.array([0, 9], dtype=np.uint8))

    @given(dna_strings)
    def test_roundtrip(self, s):
        assert decode(encode(s)) == s


class TestComplement:
    def test_complement_pairs(self):
        assert decode(complement(encode("ACGTN"))) == "TGCAN"

    def test_reverse_complement_str(self):
        assert reverse_complement("AACGTT") == "AACGTT"
        assert reverse_complement("ATGC") == "GCAT"
        assert reverse_complement("ANT") == "ANT"

    def test_reverse_complement_array_returns_array(self):
        out = reverse_complement(encode("ACGT"))
        assert isinstance(out, np.ndarray)
        assert decode(out) == "ACGT"

    @given(dna_strings)
    def test_revcomp_involution(self, s):
        assert reverse_complement(reverse_complement(s)) == s

    @given(dna_strings_nonempty)
    def test_revcomp_preserves_length_and_alphabet(self, s):
        rc = reverse_complement(s)
        assert len(rc) == len(s)
        assert set(rc) <= set("ACGT")

    @given(dna_strings_nonempty, dna_strings_nonempty)
    def test_revcomp_antihomomorphism(self, a, b):
        # rc(a + b) == rc(b) + rc(a)
        assert reverse_complement(a + b) == reverse_complement(
            b
        ) + reverse_complement(a)


class TestGC:
    def test_gc_half(self):
        assert gc_content("ACGT") == pytest.approx(0.5)

    def test_gc_all(self):
        assert gc_content("GGCC") == pytest.approx(1.0)

    def test_gc_ignores_n(self):
        assert gc_content("GN") == pytest.approx(1.0)

    def test_gc_empty_and_all_n(self):
        assert gc_content("") == 0.0
        assert gc_content("NNN") == 0.0

    def test_fraction_n(self):
        assert fraction_n("ANNA") == pytest.approx(0.5)
        assert fraction_n("") == 0.0

    @given(dna_strings)
    def test_gc_bounds(self, s):
        assert 0.0 <= gc_content(s) <= 1.0

    @given(dna_strings)
    def test_gc_revcomp_invariant(self, s):
        # G+C count is preserved under reverse complement.
        assert gc_content(s) == pytest.approx(gc_content(reverse_complement(s)))


class TestRandomDNA:
    def test_length_and_validity(self):
        rng = np.random.default_rng(0)
        seq = random_dna(1000, rng, gc=0.6)
        assert seq.shape == (1000,)
        assert is_valid_codes(seq)
        assert not (seq == N).any()

    def test_gc_target_respected(self):
        rng = np.random.default_rng(1)
        seq = random_dna(50_000, rng, gc=0.7)
        assert gc_content(seq) == pytest.approx(0.7, abs=0.02)

    def test_invalid_gc_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_dna(10, rng, gc=1.5)

    def test_deterministic_for_seed(self):
        a = random_dna(100, np.random.default_rng(7))
        b = random_dna(100, np.random.default_rng(7))
        assert (a == b).all()

    def test_zero_length(self):
        assert random_dna(0, np.random.default_rng(0)).shape == (0,)


class TestValidity:
    def test_valid_empty(self):
        assert is_valid_codes(np.array([], dtype=np.uint8))

    def test_invalid_detected(self):
        assert not is_valid_codes(np.array([0, 1, 7], dtype=np.uint8))

    def test_all_codes_valid(self):
        assert is_valid_codes(np.arange(5, dtype=np.uint8))

    def test_module_constants(self):
        assert alphabet.BASES == "ACGTN"
        assert (A, C, G, T, N) == (0, 1, 2, 3, 4)
