"""Tracing must observe the run, never perturb it.

Runs the quickstart-scale pipeline twice — default (NullTracer) and with
a real tracer injected — and asserts every virtual quantity is
bit-identical; then cross-checks the trace itself: per-stage virtual
TTCs recovered by the report module equal the pipeline's ``StageReport``
values exactly, and the Chrome export is structurally loadable.
"""

import json

import pytest

from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.obs import Tracer, chrome_trace, load_jsonl, write_jsonl
from repro.obs.report import build_report, stage_ttcs

CONFIG = dict(assemblers=("ray",), kmer_list=(35, 41))


@pytest.fixture(scope="module")
def traced(ds_single):
    tracer = Tracer()
    result = RnnotatorPipeline(tracer=tracer).run(
        ds_single, PipelineConfig(**CONFIG)
    )
    return result, tracer


@pytest.fixture(scope="module")
def untraced(ds_single):
    return RnnotatorPipeline().run(ds_single, PipelineConfig(**CONFIG))


class TestParity:
    def test_contigs_identical(self, traced, untraced):
        traced_result, _ = traced
        assert [t.seq for t in traced_result.transcripts] == [
            t.seq for t in untraced.transcripts
        ]

    def test_stage_ttcs_identical(self, traced, untraced):
        traced_result, _ = traced
        assert [
            (s.name, s.started_at, s.finished_at) for s in traced_result.stages
        ] == [(s.name, s.started_at, s.finished_at) for s in untraced.stages]

    def test_totals_identical(self, traced, untraced):
        traced_result, _ = traced
        assert traced_result.total_ttc == untraced.total_ttc
        assert traced_result.total_cost == untraced.total_cost
        assert traced_result.transfer_seconds == untraced.transfer_seconds

    def test_usage_identical(self, traced, untraced):
        traced_result, _ = traced
        for key in traced_result.assemblies:
            a = traced_result.assemblies[key]
            b = untraced.assemblies[key]
            assert a.usage.phases == b.usage.phases
            assert (
                a.usage.peak_rank_memory_bytes == b.usage.peak_rank_memory_bytes
            )

    def test_quantification_identical(self, traced, untraced):
        traced_result, _ = traced
        assert (
            traced_result.quantification.assigned_reads
            == untraced.quantification.assigned_reads
        )

    def test_tracer_restored_after_run(self, traced):
        from repro.obs import NullTracer, get_tracer

        assert isinstance(get_tracer(), NullTracer)


class TestTraceContent:
    def test_report_stage_ttcs_equal_stage_reports_exactly(self, traced):
        result, tracer = traced
        from_trace = stage_ttcs(tracer.records())
        from_reports = {s.name: s.ttc for s in result.stages}
        assert from_trace == from_reports  # exact float equality

    def test_expected_layers_recorded(self, traced):
        _, tracer = traced
        span_cats = {s.category for s in tracer.spans}
        event_names = {e.name for e in tracer.events}
        assert {"stage", "pipeline", "cloud", "unit", "agent"} <= span_cats
        assert {"pilot.state", "unit.state", "schedule.place", "eq.fire",
                "phase", "executor.dispatch"} <= event_names

    def test_pilot_tracks_present(self, traced):
        result, tracer = traced
        processes = {s.process for s in tracer.spans}
        for stage in result.stages:
            if stage.pilot != "-":
                assert stage.pilot in processes

    def test_metrics_counted(self, traced):
        result, tracer = traced
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["units_done"] == len(result.stages) - 1 + 1
        assert snap["counters"]["vms_launched"] >= 1
        assert snap["counters"]["billed_usd"] == pytest.approx(
            result.total_cost
        )

    def test_chrome_trace_loadable(self, traced, tmp_path):
        _, tracer = traced
        doc = json.loads(json.dumps(chrome_trace(tracer)))
        events = doc["traceEvents"]
        assert events
        phs = {e["ph"] for e in events}
        assert {"M", "X"} <= phs
        for e in events:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["dur"] >= 0

    def test_jsonl_roundtrip_and_report_renders(self, traced, tmp_path):
        result, tracer = traced
        path = write_jsonl(tracer, tmp_path / "run.jsonl")
        records = load_jsonl(path)
        report = build_report(records)
        assert "per-stage timings" in report
        assert "transcript-assembly" in report
        # the report quotes the same TTCs the pipeline reports
        assert stage_ttcs(records) == {s.name: s.ttc for s in result.stages}


@pytest.fixture(scope="module")
def live_traced(ds_single, tmp_path_factory):
    """The same run with the full live stack attached: a collector sink,
    a streaming JSONL sink, heartbeats and an armed rules engine."""
    from repro.obs.live import CollectorSink, JsonlStreamSink

    tracer = Tracer()
    collector = tracer.add_sink(CollectorSink())
    stream_path = tmp_path_factory.mktemp("live") / "live.jsonl"
    sink = tracer.add_sink(JsonlStreamSink(stream_path, tracer=tracer))
    pipeline = RnnotatorPipeline(tracer=tracer)
    result = pipeline.run(
        ds_single,
        PipelineConfig(
            **CONFIG,
            heartbeat_cadence=0.02,
            alert_rules=("straggler", "budget_burn:10"),
        ),
    )
    sink.close()
    return result, tracer, collector, stream_path, pipeline


class TestStreamingParity:
    """Attaching live telemetry must not perturb a single virtual bit."""

    def test_contigs_identical_with_live_sinks(self, live_traced, untraced):
        result, *_ = live_traced
        assert [t.seq for t in result.transcripts] == [
            t.seq for t in untraced.transcripts
        ]

    def test_totals_identical_with_live_sinks(self, live_traced, untraced):
        result, *_ = live_traced
        assert result.total_ttc == untraced.total_ttc
        assert result.total_cost == untraced.total_cost

    def test_stage_ttcs_identical_with_live_sinks(self, live_traced, untraced):
        result, *_ = live_traced
        assert [
            (s.name, s.started_at, s.finished_at) for s in result.stages
        ] == [(s.name, s.started_at, s.finished_at) for s in untraced.stages]

    def test_usage_identical_with_live_sinks(self, live_traced, untraced):
        result, *_ = live_traced
        for key in result.assemblies:
            assert (
                result.assemblies[key].usage.phases
                == untraced.assemblies[key].usage.phases
            )

    def test_stream_carries_every_archival_record(self, live_traced):
        _, tracer, collector, _, _ = live_traced
        streamed_spans = [
            r for r in collector.records if r["type"] == "span"
        ]
        streamed_events = [
            r for r in collector.records if r["type"] == "event"
        ]
        # every archived span/event (worker merges included) streamed
        assert len(streamed_spans) == len(tracer.spans)
        assert len(streamed_events) == len(tracer.events)
        assert {r["process"] for r in streamed_spans} == {
            s.process for s in tracer.spans
        }

    def test_heartbeats_streamed(self, live_traced):
        _, tracer, collector, _, _ = live_traced
        beats = [
            r
            for r in collector.records
            if r["type"] == "event" and r["name"] == "unit.heartbeat"
        ]
        assert beats, "no heartbeat reached the stream"
        assert all(r["attrs"]["elapsed_r"] >= 0 for r in beats)

    def test_monitor_live_equals_posthoc(self, live_traced, tmp_path):
        from repro.obs.monitor import final_summary, replay

        _, tracer, _, stream_path, _ = live_traced
        stream_records = load_jsonl(stream_path)
        archive_path = write_jsonl(tracer, tmp_path / "archive.jsonl")
        archive_records = load_jsonl(archive_path)
        live_view = final_summary(replay(stream_records))
        posthoc_view = final_summary(replay(archive_records))
        assert "COMPLETE" in live_view
        assert live_view == posthoc_view  # byte-for-byte

    def test_pipeline_span_carries_alert_summary(self, live_traced):
        from repro.obs.spans import pipeline_span

        _, tracer, _, _, _ = live_traced
        attrs = pipeline_span(tracer.records())["attrs"]
        assert attrs["alerts_total"] == (
            attrs["alerts_critical"]
            + attrs["alerts_warning"]
            + attrs["alerts_info"]
        )

    def test_last_alerts_exposed_on_pipeline(self, live_traced):
        *_, pipeline = live_traced
        # a healthy quickstart run trips neither straggler nor a 10x
        # budget blowout — but the engine ran and recorded that fact
        assert pipeline.last_alerts == []


class TestTraceAnalytics:
    """The analytics layer closed against a real pipeline run."""

    def test_critical_path_total_equals_pipeline_ttc_exactly(self, traced):
        from repro.obs import compute_critical_path

        result, tracer = traced
        path = compute_critical_path(tracer.records())
        assert path.total == result.total_ttc  # bit-for-bit

    def test_attribution_total_equals_billed_cost(self, traced):
        import pytest as _pytest

        from repro.obs import attribute_costs

        result, tracer = traced
        attr = attribute_costs(tracer.records())
        assert attr.total_usd == _pytest.approx(result.total_cost)
        assert sum(attr.by_bucket.values()) == _pytest.approx(
            result.total_cost
        )
        assert attr.billed_usd == _pytest.approx(result.total_cost)

    def test_planner_gate_passes_on_real_run(self, traced):
        from repro.obs.attribution import planner_violations

        _, tracer = traced
        structural, gates = planner_violations(tracer.records())
        assert structural == []
        assert gates and all(g.ok for g in gates)

    def test_ledger_record_from_real_run(self, traced):
        from repro.obs import build_record

        result, tracer = traced
        rec = build_record(tracer.records(), run_id="parity")
        assert rec["ttc_s"] == result.total_ttc
        assert rec["critical_path"]["total_virtual_s"] == result.total_ttc
        assert rec["config_fingerprint"]
        assert rec["store_digest"]
        assert rec["planner"]["ttc_s"]["rel_err"] <= 0.10

    def test_pipeline_span_carries_prediction_and_fingerprint(self, traced):
        from repro.obs.spans import pipeline_span

        _, tracer = traced
        root = pipeline_span(tracer.records())
        attrs = root["attrs"]
        assert attrs["planner_ttc_s"] > 0
        assert attrs["planner_cost_usd"] > 0
        assert len(attrs["config_fingerprint"]) == 16
        assert attrs["planner_stages"]
