"""Tracing must observe the run, never perturb it.

Runs the quickstart-scale pipeline twice — default (NullTracer) and with
a real tracer injected — and asserts every virtual quantity is
bit-identical; then cross-checks the trace itself: per-stage virtual
TTCs recovered by the report module equal the pipeline's ``StageReport``
values exactly, and the Chrome export is structurally loadable.
"""

import json

import pytest

from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.obs import Tracer, chrome_trace, load_jsonl, write_jsonl
from repro.obs.report import build_report, stage_ttcs

CONFIG = dict(assemblers=("ray",), kmer_list=(35, 41))


@pytest.fixture(scope="module")
def traced(ds_single):
    tracer = Tracer()
    result = RnnotatorPipeline(tracer=tracer).run(
        ds_single, PipelineConfig(**CONFIG)
    )
    return result, tracer


@pytest.fixture(scope="module")
def untraced(ds_single):
    return RnnotatorPipeline().run(ds_single, PipelineConfig(**CONFIG))


class TestParity:
    def test_contigs_identical(self, traced, untraced):
        traced_result, _ = traced
        assert [t.seq for t in traced_result.transcripts] == [
            t.seq for t in untraced.transcripts
        ]

    def test_stage_ttcs_identical(self, traced, untraced):
        traced_result, _ = traced
        assert [
            (s.name, s.started_at, s.finished_at) for s in traced_result.stages
        ] == [(s.name, s.started_at, s.finished_at) for s in untraced.stages]

    def test_totals_identical(self, traced, untraced):
        traced_result, _ = traced
        assert traced_result.total_ttc == untraced.total_ttc
        assert traced_result.total_cost == untraced.total_cost
        assert traced_result.transfer_seconds == untraced.transfer_seconds

    def test_usage_identical(self, traced, untraced):
        traced_result, _ = traced
        for key in traced_result.assemblies:
            a = traced_result.assemblies[key]
            b = untraced.assemblies[key]
            assert a.usage.phases == b.usage.phases
            assert (
                a.usage.peak_rank_memory_bytes == b.usage.peak_rank_memory_bytes
            )

    def test_quantification_identical(self, traced, untraced):
        traced_result, _ = traced
        assert (
            traced_result.quantification.assigned_reads
            == untraced.quantification.assigned_reads
        )

    def test_tracer_restored_after_run(self, traced):
        from repro.obs import NullTracer, get_tracer

        assert isinstance(get_tracer(), NullTracer)


class TestTraceContent:
    def test_report_stage_ttcs_equal_stage_reports_exactly(self, traced):
        result, tracer = traced
        from_trace = stage_ttcs(tracer.records())
        from_reports = {s.name: s.ttc for s in result.stages}
        assert from_trace == from_reports  # exact float equality

    def test_expected_layers_recorded(self, traced):
        _, tracer = traced
        span_cats = {s.category for s in tracer.spans}
        event_names = {e.name for e in tracer.events}
        assert {"stage", "pipeline", "cloud", "unit", "agent"} <= span_cats
        assert {"pilot.state", "unit.state", "schedule.place", "eq.fire",
                "phase", "executor.dispatch"} <= event_names

    def test_pilot_tracks_present(self, traced):
        result, tracer = traced
        processes = {s.process for s in tracer.spans}
        for stage in result.stages:
            if stage.pilot != "-":
                assert stage.pilot in processes

    def test_metrics_counted(self, traced):
        result, tracer = traced
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["units_done"] == len(result.stages) - 1 + 1
        assert snap["counters"]["vms_launched"] >= 1
        assert snap["counters"]["billed_usd"] == pytest.approx(
            result.total_cost
        )

    def test_chrome_trace_loadable(self, traced, tmp_path):
        _, tracer = traced
        doc = json.loads(json.dumps(chrome_trace(tracer)))
        events = doc["traceEvents"]
        assert events
        phs = {e["ph"] for e in events}
        assert {"M", "X"} <= phs
        for e in events:
            assert {"name", "ph", "pid", "tid"} <= set(e)
            if e["ph"] == "X":
                assert e["dur"] >= 0

    def test_jsonl_roundtrip_and_report_renders(self, traced, tmp_path):
        result, tracer = traced
        path = write_jsonl(tracer, tmp_path / "run.jsonl")
        records = load_jsonl(path)
        report = build_report(records)
        assert "per-stage timings" in report
        assert "transcript-assembly" in report
        # the report quotes the same TTCs the pipeline reports
        assert stage_ttcs(records) == {s.name: s.ttc for s in result.stages}


class TestTraceAnalytics:
    """The analytics layer closed against a real pipeline run."""

    def test_critical_path_total_equals_pipeline_ttc_exactly(self, traced):
        from repro.obs import compute_critical_path

        result, tracer = traced
        path = compute_critical_path(tracer.records())
        assert path.total == result.total_ttc  # bit-for-bit

    def test_attribution_total_equals_billed_cost(self, traced):
        import pytest as _pytest

        from repro.obs import attribute_costs

        result, tracer = traced
        attr = attribute_costs(tracer.records())
        assert attr.total_usd == _pytest.approx(result.total_cost)
        assert sum(attr.by_bucket.values()) == _pytest.approx(
            result.total_cost
        )
        assert attr.billed_usd == _pytest.approx(result.total_cost)

    def test_planner_gate_passes_on_real_run(self, traced):
        from repro.obs.attribution import planner_violations

        _, tracer = traced
        structural, gates = planner_violations(tracer.records())
        assert structural == []
        assert gates and all(g.ok for g in gates)

    def test_ledger_record_from_real_run(self, traced):
        from repro.obs import build_record

        result, tracer = traced
        rec = build_record(tracer.records(), run_id="parity")
        assert rec["ttc_s"] == result.total_ttc
        assert rec["critical_path"]["total_virtual_s"] == result.total_ttc
        assert rec["config_fingerprint"]
        assert rec["store_digest"]
        assert rec["planner"]["ttc_s"]["rel_err"] <= 0.10

    def test_pipeline_span_carries_prediction_and_fingerprint(self, traced):
        from repro.obs.spans import pipeline_span

        _, tracer = traced
        root = pipeline_span(tracer.records())
        attrs = root["attrs"]
        assert attrs["planner_ttc_s"] > 0
        assert attrs["planner_cost_usd"] > 0
        assert len(attrs["config_fingerprint"]) == 16
        assert attrs["planner_stages"]
