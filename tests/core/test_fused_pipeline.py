"""Count-once fusion and cross-stage overlap at the pipeline level.

The contract under test: ``fused_extraction`` and ``run_many`` overlap
change *only* real wall time.  Contigs, stats, usage, virtual TTCs and
dollar costs are bit-identical to the unfused / sequential paths, on
the serial and process backends alike.
"""

from types import SimpleNamespace

import pytest

from repro.assembly.base import AssemblyParams
from repro.assembly.sweep import (
    KmerTableCache,
    build_spectra,
    use_kmer_table_cache,
)
from repro.assembly.trinity import TRINITY_K
from repro.core.assembly_cache import AssemblyCache, use_assembly_cache
from repro.core.multikmer import (
    AssemblyWorkload,
    assembly_unit_descriptions,
    collect_assembly_results,
)
from repro.core.planner import plan_assembly
from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.obs import Tracer, use_tracer
from repro.seq.datasets import tiny_dataset
from repro.seq.readstore import ReadStore


def _fingerprint(res):
    return (
        {
            key: (
                [c.seq for c in r.contigs],
                r.stats,
                tuple(r.usage.phases),
                r.usage.peak_rank_memory_bytes,
                r.usage.n_ranks,
            )
            for key, r in res.assemblies.items()
        },
        [(s.name, s.ttc) for s in res.stages],
        res.total_ttc,
        res.total_cost,
        [c.seq for c in res.transcripts],
    )


def _run(dataset, fused, executor="serial", tracer=None):
    config = PipelineConfig(
        assemblers=("ray", "abyss", "velvet", "trinity"),
        kmer_list=(25, 31),
        executor=executor,
        fused_extraction=fused,
    )
    with use_assembly_cache(AssemblyCache()), use_kmer_table_cache(
        KmerTableCache()
    ):
        return RnnotatorPipeline(tracer=tracer).run(dataset, config)


class TestFusedPipelineParity:
    @pytest.fixture(scope="class")
    def dataset(self):
        return tiny_dataset(seed=0)

    @pytest.fixture(scope="class")
    def baseline(self, dataset):
        return _fingerprint(_run(dataset, fused=False))

    def test_serial_backend_bit_identical(self, dataset, baseline):
        assert _fingerprint(_run(dataset, fused=True)) == baseline

    def test_process_backend_bit_identical(self, dataset, baseline):
        assert (
            _fingerprint(_run(dataset, fused=True, executor="process"))
            == baseline
        )

    def test_fusion_counters_surface(self, dataset):
        tracer = Tracer()
        _run(dataset, fused=True, tracer=tracer)
        counters = tracer.metrics.snapshot()["counters"]
        # 4 assemblers x 2 k + trinity's fixed 25 -> per-(digest, k)
        # misses, everything else hits.
        assert counters["kmer_table.miss"] >= 1
        assert counters["kmer_table.hit"] >= 1
        assert counters["kmer_table.bytes"] > 0
        assert counters["assembly_cache.put"] >= 1


class TestRunManyOverlap:
    def test_overlap_bit_identical_and_really_overlaps(self):
        datasets = [tiny_dataset(seed=0), tiny_dataset(seed=7)]
        config = PipelineConfig(
            assemblers=("ray", "velvet"), kmer_list=(25,), executor="thread"
        )
        tracer = Tracer()
        with use_assembly_cache(None):
            results = RnnotatorPipeline(tracer=tracer).run_many(
                datasets, config
            )
        with use_assembly_cache(None):
            sequential = [
                RnnotatorPipeline().run(d, config) for d in datasets
            ]
        for got, want in zip(results, sequential):
            assert _fingerprint(got) == _fingerprint(want)

        # The trace must prove the overlap: run 2's pre-processing
        # executed (real clock) inside run 1's assembly stage.
        prefetch = [s for s in tracer.spans if s.name == "preprocess.prefetch"]
        assert len(prefetch) == 1
        assembly_1 = next(
            s for s in tracer.spans if s.name == "stage:transcript-assembly"
        )
        p = prefetch[0]
        assert p.r_start < assembly_1.r_end
        assert p.r_end > assembly_1.r_start
        # Virtually the prefetch is a zero-width marker: it must never
        # move a virtual quantity.
        assert p.v_start == p.v_end

    def test_serial_backend_skips_overlap(self):
        datasets = [tiny_dataset(seed=0), tiny_dataset(seed=7)]
        config = PipelineConfig(assemblers=("velvet",), kmer_list=(25,))
        tracer = Tracer()
        with use_assembly_cache(None):
            results = RnnotatorPipeline(tracer=tracer).run_many(
                datasets, config
            )
        assert len(results) == 2
        assert not [
            s for s in tracer.spans if s.name == "preprocess.prefetch"
        ]

    def test_overlap_flag_off(self):
        datasets = [tiny_dataset(seed=0), tiny_dataset(seed=7)]
        config = PipelineConfig(
            assemblers=("velvet",), kmer_list=(25,), executor="thread"
        )
        tracer = Tracer()
        with use_assembly_cache(None):
            RnnotatorPipeline(tracer=tracer).run_many(
                datasets, config, overlap=False
            )
        assert not [
            s for s in tracer.spans if s.name == "preprocess.prefetch"
        ]


class TestWorkloadSpectrumWiring:
    def test_unit_descriptions_select_matching_spectrum(self):
        ds = tiny_dataset(seed=0)
        reads = ds.run.all_reads()[:300]
        store = ReadStore.from_reads(reads)
        spec = ds.spec
        plan = plan_assembly(
            spec, (25, 31), ("ray", "trinity"), "c3.2xlarge"
        )
        spectra = build_spectra(store, [TRINITY_K, 25, 31])
        try:
            descs = assembly_unit_descriptions(
                plan, spec, store, ds, spectra=spectra
            )
            for d in descs:
                work = d.work
                assert isinstance(work, AssemblyWorkload)
                want_k = (
                    TRINITY_K
                    if work.assembler_name == "trinity"
                    else work.params.k
                )
                assert [sp.k for sp in work.spectra] == [want_k]
                resolved = work._resolve_spectrum()
                assert resolved is not None and resolved.k == want_k
        finally:
            for sp in spectra:
                sp.close()
            store.close()

    def test_resolve_spectrum_routes_through_cache(self):
        reads = tiny_dataset(seed=0).run.all_reads()[:200]
        store = ReadStore.from_reads(reads)
        spectra = build_spectra(store, [25])
        try:
            work = AssemblyWorkload(
                assembler_name="velvet",
                params=AssemblyParams(k=25),
                n_ranks=1,
                store=store,
                spectra=spectra,
            )
            cache = KmerTableCache()
            with use_kmer_table_cache(cache):
                first = work._resolve_spectrum()
                second = work._resolve_spectrum()
            assert first is spectra[0] and second is spectra[0]
            assert (cache.hits, cache.misses) == (1, 1)
            # A closed spectrum is never handed to an assembler.
            spectra[0].share()
            spectra[0].close()
            assert work._resolve_spectrum() is None
        finally:
            for sp in spectra:
                sp.close()
            store.close()


class TestCollectDuplicateKeys:
    def _unit(self, name, assembler, k, result="res"):
        return SimpleNamespace(
            result=result,
            description=SimpleNamespace(
                name=name,
                work=None,
                tags={"assembler": assembler, "k": k},
            ),
        )

    def test_duplicate_key_raises(self):
        units = [
            self._unit("ray_k25", "ray", 25),
            self._unit("ray_k25_again", "ray", 25),
        ]
        with pytest.raises(ValueError, match="duplicate assembly result"):
            collect_assembly_results(units)

    def test_distinct_keys_collect(self):
        units = [
            self._unit("ray_k25", "ray", 25, result="a"),
            self._unit("ray_k31", "ray", 31, result="b"),
            self._unit("velvet_k25", "velvet", 25, result="c"),
        ]
        out = collect_assembly_results(units)
        assert out == {
            ("ray", 25): "a",
            ("ray", 31): "b",
            ("velvet", 25): "c",
        }


class TestCachePutCounting:
    def test_collect_counts_parent_side_puts(self):
        reads = tiny_dataset(seed=0).run.all_reads()[:200]
        store = ReadStore.from_reads(reads)
        try:
            work = AssemblyWorkload(
                assembler_name="velvet",
                params=AssemblyParams(k=25),
                n_ranks=1,
                store=store,
            )
            with use_assembly_cache(None):
                result, _usage = work._execute(Tracer())
            tracer = Tracer()
            with use_assembly_cache(AssemblyCache()), use_tracer(tracer):
                work.record_result(result)  # inserted
                work.record_result(result)  # kept (first write wins)
            counters = tracer.metrics.snapshot()["counters"]
            assert counters["assembly_cache.put"] == 2
            outcomes = [
                e.attrs["outcome"]
                for e in tracer.events
                if e.name == "assembly_cache.put"
            ]
            assert outcomes == ["inserted", "kept"]
        finally:
            store.close()
