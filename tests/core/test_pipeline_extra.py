"""Extra end-to-end pipeline paths: S1 on paired data, Contrail in the
pipeline, dedicated k-mer-count accounting, quantification consistency."""

import pytest

from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.core.schemes import MatchingScheme
from repro.core.workflow import WorkflowPattern
from repro.pilot.states import UnitState


class TestPairedS1Dynamic:
    @pytest.fixture(scope="class")
    def result(self, ds_paired):
        return RnnotatorPipeline().run(
            ds_paired,
            PipelineConfig(
                assemblers=("abyss",),
                kmer_list=(51, 55),
                scheme=MatchingScheme.S1,
                workflow=WorkflowPattern.DISTRIBUTED_DYNAMIC,
            ),
        )

    def test_runs_to_completion(self, result):
        assert len(result.transcripts) > 0
        assert result.total_cost > 0

    def test_dynamic_chose_r3_for_paired_footprint(self, result):
        assert result.stages[1].instance_type == "r3.2xlarge"

    def test_s1_transfers_between_pilots(self, result):
        # WAN upload + P_A->P_B staging + P_B->P_C staging
        assert result.transfer_seconds > result.stages[0].ttc

    def test_kmer_list_override_respected(self, result):
        assert result.kmer_list == (51, 55)
        assert set(k for _, k in result.assemblies) == {51, 55}


class TestContrailInPipeline:
    def test_contrail_only_pipeline(self, ds_single):
        result = RnnotatorPipeline().run(
            ds_single,
            PipelineConfig(
                assemblers=("contrail",),
                kmer_list=(35,),
                contrail_nodes_per_job=2,
            ),
        )
        assert ("contrail", 35) in result.assemblies
        # MapReduce job chain ran (many jobs, priced with overhead).
        assert result.assemblies[("contrail", 35)].stats["mr_jobs"] >= 5
        assert len(result.transcripts) > 0

    def test_contrail_gets_preprocessed_reads(self, ds_single):
        """The pipeline feeds Contrail pre-processed (N-free) reads, so
        the N-failure cannot trigger inside the pipeline."""
        result = RnnotatorPipeline().run(
            ds_single,
            PipelineConfig(assemblers=("contrail",), kmer_list=(35,),
                           contrail_nodes_per_job=2),
        )
        assert all("N" not in r.seq for r in result.preprocess.reads)


class TestQuantificationConsistency:
    def test_assigned_leq_input(self, ds_single):
        result = RnnotatorPipeline().run(
            ds_single, PipelineConfig(assemblers=("ray",), kmer_list=(35,))
        )
        q = result.quantification
        assert q.assigned_reads + q.unassigned_reads == len(
            result.preprocess.reads
        )
        assert q.counts.sum() == q.assigned_reads
        if q.counts.sum() > 0:
            assert q.tpm.sum() == pytest.approx(1e6)

    def test_merge_reduces_multi_k_redundancy(self, ds_single):
        result = RnnotatorPipeline().run(
            ds_single,
            PipelineConfig(assemblers=("ray",), kmer_list=(35, 37, 39)),
        )
        total_in = sum(len(r.contigs) for r in result.assemblies.values())
        assert result.merge.input_contigs == total_in
        # multi-k assemblies of the same loci collapse substantially
        assert result.merge.output_contigs < total_in
