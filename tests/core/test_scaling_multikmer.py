"""Tests for paper-scale extrapolation and the multi-k unit fan-out."""

import pytest

from repro.core import multikmer
from repro.core.planner import plan_assembly
from repro.core.scaling import paper_usage, phase_is_graph_bound
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.pilot.states import UnitState
from repro.seq.datasets import B_GLUMAE, tiny_dataset


class TestPhaseClassification:
    def test_read_bound_kinds(self):
        for kind in ("kmer", "preprocess", "quantify", "generic"):
            assert not phase_is_graph_bound(PhaseUsage("x", kind))

    def test_graph_bound_kinds(self):
        for kind in ("graph", "walk", "merge"):
            assert phase_is_graph_bound(PhaseUsage("x", kind))

    def test_mr_split_by_job_name(self):
        assert not phase_is_graph_bound(PhaseUsage("kmer_count", "mr_job"))
        assert phase_is_graph_bound(PhaseUsage("pair_3", "mr_job"))
        assert phase_is_graph_bound(PhaseUsage("merge_3", "mr_job"))


class TestPaperUsage:
    def make_dataset(self):
        return tiny_dataset(seed=2)

    def test_read_bound_scales_by_read_scale(self):
        ds = self.make_dataset()
        u = ResourceUsage(n_ranks=4)
        u.add_phase(PhaseUsage("count", "kmer", critical_compute=100.0))
        scaled = paper_usage(u, ds)
        assert scaled.phases[0].critical_compute == pytest.approx(
            100.0 / ds.read_scale
        )

    def test_graph_bound_scales_by_genome_scale(self):
        ds = self.make_dataset()
        u = ResourceUsage(n_ranks=4)
        u.add_phase(PhaseUsage("walk", "walk", critical_compute=100.0))
        scaled = paper_usage(u, ds)
        assert scaled.phases[0].critical_compute == pytest.approx(
            100.0 / ds.scale
        )

    def test_graph_factor_smaller_than_read_factor_when_boosted(self):
        boosted = tiny_dataset(seed=2, coverage_boost=0.5)
        assert 1 / boosted.scale < 1 / boosted.read_scale

    def test_memory_uses_graph_factor_when_graph_phase_exists(self):
        ds = self.make_dataset()
        u = ResourceUsage(n_ranks=4)
        u.add_phase(PhaseUsage("count", "kmer", critical_compute=1.0))
        u.add_phase(PhaseUsage("walk", "walk", critical_compute=1.0))
        u.peak_rank_memory_bytes = 1000
        scaled = paper_usage(u, ds)
        assert scaled.peak_rank_memory_bytes == pytest.approx(
            1000 / ds.scale, rel=0.01
        )

    def test_scaled_by_validation(self):
        u = ResourceUsage()
        u.add_phase(PhaseUsage("x", "kmer", critical_compute=1.0))
        with pytest.raises(ValueError):
            u.scaled_by(lambda p: 0.0)


class TestMultikmer:
    def test_unit_descriptions_cover_plan(self):
        ds = tiny_dataset(seed=1)
        plan = plan_assembly(
            B_GLUMAE, (35, 41), ("ray", "contrail"), "c3.2xlarge",
            contrail_nodes_per_job=2,
        )
        descs = multikmer.assembly_unit_descriptions(
            plan, B_GLUMAE, ds.run.all_reads()[:500], ds
        )
        assert len(descs) == 4
        names = {d.name for d in descs}
        assert names == {"ray_k35", "ray_k41", "contrail_k35", "contrail_k41"}
        for d in descs:
            assert d.stage == "transcript-assembly"
            assert d.scale == 1.0
            assert d.memory_bytes > 0
            assert d.cores >= 8

    def test_workload_executes_and_extrapolates(self):
        ds = tiny_dataset(seed=1)
        from repro.assembly.base import AssemblyParams

        work = multikmer.make_assembly_workload(
            "velvet", ds.run.all_reads(), AssemblyParams(k=31), 8, dataset=ds
        )
        result, usage = work()
        assert result.assembler == "velvet"
        # extrapolated usage is much larger than the sim-scale measurement
        assert usage.critical_compute > result.usage.critical_compute

    def test_collect_results(self):
        class FakeUnit:
            def __init__(self, name, asm, k, result):
                from repro.pilot.description import UnitDescription

                self.result = result
                self.description = UnitDescription(
                    name=name, work=lambda: None, tags={"assembler": asm, "k": k}
                )

        out = multikmer.collect_assembly_results(
            [FakeUnit("a", "ray", 35, "R1"), FakeUnit("b", "ray", 41, None)]
        )
        assert out == {("ray", 35): "R1"}
