"""Content-addressed AssemblyCache: semantics, key sensitivity, workload
integration, trace visibility, and the O(1)-pickle workload regression."""

import pickle

import pytest

from repro.assembly.base import AssemblyParams
from repro.core.assembly_cache import (
    AssemblyCache,
    get_assembly_cache,
    set_assembly_cache,
    use_assembly_cache,
)
from repro.core.multikmer import (
    AssemblyWorkload,
    collect_assembly_results,
    make_assembly_workload,
)
from repro.obs import Tracer, use_tracer
from repro.seq.readstore import ReadStore


@pytest.fixture
def store(reads_single):
    s = ReadStore.from_reads(reads_single[:800])
    yield s
    s.close()


@pytest.fixture
def fresh_cache():
    cache = AssemblyCache()
    previous = set_assembly_cache(cache)
    yield cache
    set_assembly_cache(previous)


def _work(store, assembler="velvet", k=21, n_ranks=1, **kw):
    return AssemblyWorkload(
        assembler_name=assembler,
        params=AssemblyParams(k=k),
        n_ranks=n_ranks,
        store=store,
        **kw,
    )


class TestCacheSemantics:
    def test_hit_miss_counters_and_len(self, store, fresh_cache):
        work = _work(store)
        key = work.cache_key()
        assert fresh_cache.get(key) is None
        assert (fresh_cache.hits, fresh_cache.misses) == (0, 1)
        result, _ = work()
        assert key in fresh_cache and len(fresh_cache) == 1
        assert fresh_cache.get(key) is not None
        assert fresh_cache.hits == 1

    def test_defensive_copies_both_ways(self, store, fresh_cache):
        work = _work(store)
        result, _ = work()
        # mutating what the caller got must not poison the cache ...
        result.contigs.clear()
        result.stats["poisoned"] = True
        cached = fresh_cache.get(work.cache_key())
        assert cached.contigs and "poisoned" not in cached.stats
        # ... and mutating what was put must not either (put copies too)
        cached.usage.phases.clear()
        again = fresh_cache.get(work.cache_key())
        assert again.usage.phases

    def test_first_write_wins(self, fresh_cache, store):
        work = _work(store)
        result, _ = work()
        other = _copy_with_marker(result)
        fresh_cache.put(work.cache_key(), other)
        assert "marker" not in fresh_cache.get(work.cache_key()).stats

    def test_lru_eviction(self):
        cache = AssemblyCache(max_entries=2)
        results = {}
        for name in ("a", "b", "c"):
            results[name] = _dummy_result(name)
            cache.put(("d", name, 31, 1), results[name])
        assert len(cache) == 2
        assert ("d", "a", 31, 1) not in cache  # oldest evicted
        assert ("d", "c", 31, 1) in cache

    def test_clear_resets_counters(self, fresh_cache, store):
        work = _work(store)
        work()
        fresh_cache.get(work.cache_key())
        fresh_cache.clear()
        assert len(fresh_cache) == 0
        assert (fresh_cache.hits, fresh_cache.misses) == (0, 0)

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            AssemblyCache(max_entries=0)


class TestKeySensitivity:
    def test_key_components(self, store, reads_single):
        base = _work(store).cache_key()
        assert _work(store, k=25).cache_key() != base
        assert _work(store, n_ranks=4).cache_key() != base
        assert _work(store, assembler="ray").cache_key() != base
        other = ReadStore.from_reads(reads_single[:801])
        try:
            assert _work(other).cache_key() != base
        finally:
            other.close()
        # same content, fresh store object → same key
        clone = ReadStore.from_reads(reads_single[:800])
        try:
            assert _work(clone).cache_key() == base
        finally:
            clone.close()

    def test_uncacheable_workloads(self, store, reads_single):
        assert _work(store, use_cache=False).cache_key() is None
        legacy = AssemblyWorkload(
            assembler_name="velvet",
            params=AssemblyParams(k=31),
            n_ranks=1,
            reads=tuple(reads_single[:20]),
        )
        assert legacy.cache_key() is None

    def test_exactly_one_input_form(self, store, reads_single):
        with pytest.raises(ValueError):
            AssemblyWorkload(
                assembler_name="velvet",
                params=AssemblyParams(k=31),
                n_ranks=1,
            )
        with pytest.raises(ValueError):
            AssemblyWorkload(
                assembler_name="velvet",
                params=AssemblyParams(k=31),
                n_ranks=1,
                store=store,
                reads=tuple(reads_single[:5]),
            )


class TestWorkloadIntegration:
    def test_second_call_hits_and_is_bit_identical(self, store, fresh_cache):
        work = _work(store, read_scale=8.0, graph_scale=3.0)
        r1, u1 = work()
        assert fresh_cache.hits == 0
        r2, u2 = work()
        assert fresh_cache.hits == 1
        assert r2.contigs == r1.contigs
        assert r2.stats == r1.stats
        # extrapolation re-applied on the hit → same virtual quantities
        assert u2 == u1
        assert u2.phases == u1.phases

    def test_disable_via_none(self, store, fresh_cache):
        with use_assembly_cache(None):
            assert get_assembly_cache() is None
            work = _work(store)
            work()
            work()
        assert get_assembly_cache() is fresh_cache
        assert len(fresh_cache) == 0 and fresh_cache.hits == 0

    def test_tracer_sees_miss_then_hit(self, store, fresh_cache):
        tracer = Tracer()
        work = _work(store)
        with use_tracer(tracer):
            work()
            work()
        lookups = [e for e in tracer.events if e.name == "assembly_cache.lookup"]
        assert [e.attrs["outcome"] for e in lookups] == ["miss", "hit"]
        assert lookups[0].attrs["assembler"] == "velvet"
        assert tracer.metrics.counter("assembly_cache.miss").value == 1
        assert tracer.metrics.counter("assembly_cache.hit").value == 1
        spans = [s for s in tracer.spans if s.name == "assembly_workload"]
        assert len(spans) == 2

    def test_collect_populates_parent_cache(self, store, fresh_cache):
        """collect_assembly_results records raw results so worker-computed
        outcomes become parent-side hits."""

        class _Unit:
            def __init__(self, work, result):
                self.result = result

                class _Desc:
                    pass

                self.description = _Desc()
                self.description.work = work
                self.description.tags = {
                    "assembler": work.assembler_name,
                    "k": work.params.k,
                }

        work = _work(store)
        with use_assembly_cache(None):
            result, _ = work()  # computed with no cache in play
        assert len(fresh_cache) == 0
        out = collect_assembly_results([_Unit(work, result)])
        assert out[("velvet", 21)] is result
        assert work.cache_key() in fresh_cache
        _, u = work()
        assert fresh_cache.hits == 1


class TestWorkloadPickleSize:
    def test_pickled_workload_is_o1_in_read_count(self, reads_single):
        """Satellite regression: the workload must not embed the reads."""
        sizes = []
        stores = []
        for n in (50, 2000):
            s = ReadStore.from_reads(reads_single[:n])
            stores.append(s)
            w = make_assembly_workload("velvet", s, AssemblyParams(k=31), 1)
            sizes.append(
                len(pickle.dumps(w, protocol=pickle.HIGHEST_PROTOCOL))
            )
        for s in stores:
            s.close()
        assert abs(sizes[1] - sizes[0]) <= 16
        assert max(sizes) < 2048

    def test_legacy_reads_workload_scales_linearly(self, reads_single):
        """The old path really did ship the reads — documents the contrast."""
        sizes = []
        for n in (50, 2000):
            w = AssemblyWorkload(
                assembler_name="velvet",
                params=AssemblyParams(k=31),
                n_ranks=1,
                reads=tuple(reads_single[:n]),
            )
            sizes.append(
                len(pickle.dumps(w, protocol=pickle.HIGHEST_PROTOCOL))
            )
        assert sizes[1] > sizes[0] * 10


def _dummy_result(name):
    from repro.assembly.contigs import AssemblyResult
    from repro.parallel.usage import ResourceUsage

    return AssemblyResult(
        assembler=name, k=31, contigs=[], usage=ResourceUsage(), stats={}
    )


def _copy_with_marker(result):
    from repro.assembly.contigs import AssemblyResult

    return AssemblyResult(
        assembler=result.assembler,
        k=result.k,
        contigs=list(result.contigs),
        usage=result.usage,
        stats={**result.stats, "marker": True},
    )
