"""Acceptance: distributed tracing across process-pool workers.

Runs the quickstart-scale pipeline once on the process backend with a
real tracer and a resource-sampling cadence, then asserts the merged
trace has everything the cross-worker observability layer promises:
worker spans on per-pid tracks, real timestamps aligned into the parent
clock domain, RSS/CPU samples, worker metric deltas folded into the
parent registry, a Chrome export with worker process rows and counter
tracks — and that two identical-seed runs diff with zero virtual drift.
"""

import json
import time

import pytest

from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.obs import Tracer, chrome_trace, worker_track, write_jsonl
from repro.obs.diff import diff_traces

CONFIG = dict(
    kmer_list=(35, 41),
    executor="process",
    executor_workers=2,
    assembly_cache=False,
    resource_cadence=0.01,
)


@pytest.fixture(scope="module")
def traced(ds_single):
    tracer = Tracer()
    r_before = time.perf_counter()
    result = RnnotatorPipeline(tracer=tracer).run(
        ds_single, PipelineConfig(**CONFIG)
    )
    r_after = time.perf_counter()
    return result, tracer, (r_before, r_after)


def worker_spans(tracer):
    return [s for s in tracer.spans if s.process.startswith("worker-")]


class TestMergedTrace:
    def test_worker_spans_on_per_pid_tracks(self, traced):
        _, tracer, _ = traced
        spans = worker_spans(tracer)
        assert spans, "no worker spans were merged back"
        assert {s.name for s in spans} >= {"workload"}
        pids = {s.attrs.get("pid") for s in spans if "pid" in s.attrs}
        assert all(
            s.process == worker_track(pid)
            for pid in pids
            for s in spans
            if s.attrs.get("pid") == pid
        )

    def test_reparented_under_parent_spans(self, traced):
        _, tracer, _ = traced
        parent_ids = {s.span_id for s in tracer.spans}
        for s in worker_spans(tracer):
            assert s.parent_id in parent_ids

    def test_span_ids_unique_after_merge(self, traced):
        _, tracer, _ = traced
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids))

    def test_real_timestamps_aligned_into_parent_domain(self, traced):
        _, tracer, (r_before, r_after) = traced
        for s in worker_spans(tracer):
            assert s.r_start <= s.r_end
            assert r_before - 0.1 <= s.r_start
            assert s.r_end <= r_after + 0.1

    def test_worker_spans_real_clock_only(self, traced):
        _, tracer, _ = traced
        for s in worker_spans(tracer):
            assert s.v_start is None and s.v_end is None

    def test_resource_samples_recorded(self, traced):
        _, tracer, _ = traced
        samples = [
            e
            for e in tracer.events
            if e.category == "resource"
            and e.process.startswith("worker-")
        ]
        assert samples
        for e in samples:
            assert e.attrs["rss_bytes"] > 0
            assert e.attrs["cpu_seconds"] >= 0.0

    def test_worker_metric_deltas_folded(self, traced):
        _, tracer, _ = traced
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["worker_workloads"] >= 1
        assert snap["counters"]["worker_records_merged"] > 0

    def test_merge_events_announce_each_worker_trace(self, traced):
        _, tracer, _ = traced
        merges = [e for e in tracer.events if e.name == "worker_trace.merged"]
        assert merges
        assert all(e.attrs["records"] > 0 for e in merges)


class TestExports:
    def test_chrome_real_clock_has_worker_rows_and_counters(self, traced):
        _, tracer, _ = traced
        doc = json.loads(json.dumps(chrome_trace(tracer, clock="real")))
        events = doc["traceEvents"]
        process_names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert any(n.startswith("worker-") for n in process_names)
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in counters} >= {"rss_mb", "cpu_s"}
        assert all(e["args"]["value"] >= 0 for e in counters)

    def test_jsonl_roundtrip_keeps_worker_records(self, traced, tmp_path):
        from repro.obs import load_jsonl

        _, tracer, _ = traced
        records = load_jsonl(write_jsonl(tracer, tmp_path / "t.jsonl"))
        assert any(
            r.get("process", "").startswith("worker-") for r in records
        )


class TestDeterminism:
    def test_identical_seed_runs_have_zero_virtual_drift(
        self, traced, ds_single, tmp_path
    ):
        _, tracer_a, _ = traced
        tracer_b = Tracer()
        RnnotatorPipeline(tracer=tracer_b).run(
            ds_single, PipelineConfig(**CONFIG)
        )
        a = write_jsonl(tracer_a, tmp_path / "a.jsonl")
        b = write_jsonl(tracer_b, tmp_path / "b.jsonl")
        from repro.obs import load_jsonl

        diff = diff_traces(load_jsonl(a), load_jsonl(b))
        assert diff.total_v_rel == 0.0
        assert diff.max_stage_v_rel == 0.0
