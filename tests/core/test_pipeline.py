"""End-to-end pipeline integration tests."""

import pytest

from repro.core.rnnotator import (
    PipelineConfig,
    PipelineError,
    PipelineResult,
    RnnotatorPipeline,
)
from repro.core.schemes import MatchingScheme
from repro.core.workflow import WorkflowPattern
from repro.evaluation.detonate import evaluate


@pytest.fixture(scope="module")
def s2_result(ds_single) -> PipelineResult:
    return RnnotatorPipeline().run(
        ds_single,
        PipelineConfig(assemblers=("ray",), kmer_list=(35, 41)),
    )


class TestEndToEnd:
    def test_all_stages_present(self, s2_result):
        names = [s.name for s in s2_result.stages]
        assert names == [
            "stage-in", "pre-processing", "transcript-assembly",
            "post-processing", "quantification",
        ]

    def test_monotone_stage_times(self, s2_result):
        for a, b in zip(s2_result.stages, s2_result.stages[1:]):
            assert b.started_at >= a.finished_at - 1e-6

    def test_produces_transcripts(self, s2_result, ds_single):
        assert len(s2_result.transcripts) > 5
        scores = evaluate(s2_result.transcripts, ds_single.transcriptome)
        assert scores.precision > 0.9

    def test_assemblies_keyed_by_job(self, s2_result):
        assert set(s2_result.assemblies) == {("ray", 35), ("ray", 41)}

    def test_cost_positive_and_ttc_consistent(self, s2_result):
        assert s2_result.total_cost > 0
        assert s2_result.total_ttc >= sum(
            0.0 for _ in s2_result.stages
        )
        assert s2_result.total_ttc >= s2_result.stages[-1].finished_at - 1e-6

    def test_quantification_ran(self, s2_result):
        assert s2_result.quantification.assigned_reads > 0

    def test_summary_text(self, s2_result):
        text = s2_result.summary()
        assert "TOTAL" in text and "USD" in text

    def test_stage_ttc_accessor(self, s2_result):
        assert s2_result.stage_ttc("transcript-assembly") > 0
        with pytest.raises(KeyError):
            s2_result.stage_ttc("nonexistent")


class TestSchemesComparison:
    def test_s1_pays_transfer_and_reprovisioning(self, ds_single):
        cfg = dict(assemblers=("ray",), kmer_list=(35,))
        s2 = RnnotatorPipeline().run(
            ds_single, PipelineConfig(scheme=MatchingScheme.S2, **cfg)
        )
        s1 = RnnotatorPipeline().run(
            ds_single, PipelineConfig(scheme=MatchingScheme.S1, **cfg)
        )
        assert s1.transfer_seconds > s2.transfer_seconds
        assert s1.total_ttc > s2.total_ttc
        # identical functional output
        assert [t.seq for t in s1.transcripts] == [
            t.seq for t in s2.transcripts
        ]

    def test_conventional_requires_s2(self):
        with pytest.raises(ValueError):
            PipelineConfig(
                workflow=WorkflowPattern.CONVENTIONAL,
                scheme=MatchingScheme.S1,
            )


class TestDynamicVsStatic:
    def test_dynamic_picks_instance_by_memory(self, ds_paired):
        """The paired (P. crispa-like) spec declares a 40 GB preprocessing
        footprint: the dynamic workflow must select r3.2xlarge."""
        res = RnnotatorPipeline().run(
            ds_paired,
            PipelineConfig(
                assemblers=("ray",), kmer_list=(51,),
                workflow=WorkflowPattern.DISTRIBUTED_DYNAMIC,
            ),
        )
        assert res.stages[1].instance_type == "r3.2xlarge"

    def test_static_on_small_instance_fails(self, ds_paired):
        """A static workflow pinned to c3.2xlarge OOMs in pre-processing —
        the failure mode the paper's dynamic scheme avoids."""
        with pytest.raises(PipelineError, match="pre-processing failed"):
            RnnotatorPipeline().run(
                ds_paired,
                PipelineConfig(
                    assemblers=("ray",), kmer_list=(51,),
                    workflow=WorkflowPattern.DISTRIBUTED_STATIC,
                    instance_type="c3.2xlarge",
                ),
            )

    def test_explicit_instance_respected(self, ds_single):
        res = RnnotatorPipeline().run(
            ds_single,
            PipelineConfig(
                assemblers=("ray",), kmer_list=(35,),
                instance_type="r3.2xlarge",
            ),
        )
        assert all(
            s.instance_type == "r3.2xlarge"
            for s in res.stages
            if s.instance_type != "-"
        )


class TestMultiAssembler:
    def test_mamp_run(self, ds_single):
        res = RnnotatorPipeline().run(
            ds_single,
            PipelineConfig(
                assemblers=("ray", "abyss", "contrail"),
                kmer_list=(35, 41),
                contrail_nodes_per_job=4,
            ),
        )
        assert len(res.assemblies) == 6
        assert res.plan.n_jobs == 6
        assert len(res.transcripts) > 5

    def test_data_dependent_kmer_list(self, ds_single):
        res = RnnotatorPipeline().run(
            ds_single, PipelineConfig(assemblers=("ray",))
        )
        # 50 bp reads, post-trim modal length ~47 -> 35..47 step 2
        assert res.kmer_list[0] == 35
        assert len(res.kmer_list) >= 5
