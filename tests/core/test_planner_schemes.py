"""Tests for k-mer selection, assembly planning, schemes, workflow, memory."""

import pytest

from repro.cloud.instances import GiB, get_instance_type
from repro.core.memory import fits_instance, task_memory_bytes
from repro.core.planner import plan_assembly, select_kmer_list
from repro.core.schemes import MatchingScheme
from repro.core.workflow import STAGES, WorkflowPattern, describe_pattern
from repro.seq.datasets import B_GLUMAE, P_CRISPA


class TestKmerSelection:
    def test_bglumae_list(self):
        # 50 bp single-end reads -> the paper's 7-value list (Table II).
        assert select_kmer_list(50) == (35, 37, 39, 41, 43, 45, 47)

    def test_pcrispa_list(self):
        # 100 bp paired reads -> the paper's 4-value list.
        assert select_kmer_list(100) == (51, 55, 59, 63)

    def test_trimmed_reads_shrink_list(self):
        ks = select_kmer_list(42)
        assert ks[0] == 35
        assert ks[-1] <= 41
        assert len(ks) < 7

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            select_kmer_list(30)

    def test_all_odd(self):
        for L in (40, 50, 60, 76, 100, 150):
            assert all(k % 2 == 1 for k in select_kmer_list(L))


class TestMemoryModel:
    def test_preprocess_anchors(self):
        """Table II anchors: B. glumae <= 15 GB, P. crispa ~= 40 GB."""
        bg = task_memory_bytes(B_GLUMAE, "preprocess")
        pc = task_memory_bytes(P_CRISPA, "preprocess")
        assert bg <= 15 * GiB
        assert pc == pytest.approx(40 * GiB, rel=0.05)

    def test_assembly_divides_over_nodes(self):
        one = task_memory_bytes(P_CRISPA, "assembly", n_nodes=1)
        four = task_memory_bytes(P_CRISPA, "assembly", n_nodes=4)
        assert four == pytest.approx(one / 4, rel=0.01)

    def test_table4_cells(self):
        c3 = get_instance_type("c3.2xlarge").memory_bytes
        r3 = get_instance_type("r3.2xlarge").memory_bytes
        # B. glumae: everything fits both types.
        for task in ("preprocess", "assembly", "postprocess"):
            assert fits_instance(B_GLUMAE, task, c3)
            assert fits_instance(B_GLUMAE, task, r3)
        # P. crispa: pre-processing and single-node assembly need r3.
        assert not fits_instance(P_CRISPA, "preprocess", c3)
        assert fits_instance(P_CRISPA, "preprocess", r3)
        assert not fits_instance(P_CRISPA, "assembly", c3)
        assert fits_instance(P_CRISPA, "assembly", r3)
        # post-processing fits everywhere.
        assert fits_instance(P_CRISPA, "postprocess", c3)

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            task_memory_bytes(B_GLUMAE, "alignment")


class TestPlanner:
    def test_sample_run_shape(self):
        """§IV.C: 3 assemblers x 2 k-mers -> 4 MPI nodes + 2x16 Contrail
        nodes = 36."""
        plan = plan_assembly(
            B_GLUMAE, (41, 47), ("ray", "abyss", "contrail"), "c3.2xlarge"
        )
        assert plan.n_jobs == 6
        assert plan.n_nodes == 36
        assert plan.mpi_nodes_per_job == 1

    def test_mpi_jobs_widen_for_memory(self):
        # P. crispa on c3.2xlarge: 31.4 GB table cannot fit one 16 GB node.
        plan = plan_assembly(P_CRISPA, (51,), ("ray",), "c3.2xlarge")
        assert plan.mpi_nodes_per_job >= 2

    def test_mpi_jobs_fit_r3_single_node(self):
        plan = plan_assembly(P_CRISPA, (51,), ("ray",), "r3.2xlarge")
        assert plan.mpi_nodes_per_job == 1

    def test_max_nodes_cap(self):
        plan = plan_assembly(
            B_GLUMAE, (35, 37, 39, 41, 43, 45, 47),
            ("ray", "abyss", "contrail"), "c3.2xlarge", max_nodes=20,
        )
        assert plan.n_nodes == 20
        assert all(nodes <= 20 for _, _, nodes in plan.jobs())

    def test_jobs_enumeration(self):
        plan = plan_assembly(B_GLUMAE, (35, 41), ("ray", "contrail"),
                             "c3.2xlarge")
        jobs = plan.jobs()
        assert len(jobs) == 4
        assert ("ray", 35, 1) in jobs
        assert ("contrail", 41, 16) in jobs

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_assembly(B_GLUMAE, (), ("ray",), "c3.2xlarge")
        with pytest.raises(ValueError):
            plan_assembly(B_GLUMAE, (35,), (), "c3.2xlarge")


class TestSchemesWorkflow:
    def test_scheme_properties(self):
        assert MatchingScheme.S1.couples_vm_lifetime
        assert MatchingScheme.S1.pays_interstage_transfer
        assert MatchingScheme.S2.reuses_vms
        assert not MatchingScheme.S2.pays_interstage_transfer
        assert MatchingScheme.S3.reuses_vms
        assert MatchingScheme.S3.elastic
        assert not MatchingScheme.S2.elastic
        assert not MatchingScheme.S3.couples_vm_lifetime

    def test_scheme_parse(self):
        assert MatchingScheme.parse("s1") is MatchingScheme.S1
        assert MatchingScheme.parse(MatchingScheme.S2) is MatchingScheme.S2
        assert MatchingScheme.parse("s3") is MatchingScheme.S3
        with pytest.raises(ValueError):
            MatchingScheme.parse("s4")

    def test_pattern_properties(self):
        assert not WorkflowPattern.CONVENTIONAL.is_distributed
        assert WorkflowPattern.DISTRIBUTED_STATIC.is_distributed
        assert WorkflowPattern.DISTRIBUTED_DYNAMIC.decides_at_runtime
        assert not WorkflowPattern.DISTRIBUTED_STATIC.decides_at_runtime

    def test_pattern_parse(self):
        assert WorkflowPattern.parse("dynamic") is WorkflowPattern.DISTRIBUTED_DYNAMIC
        assert WorkflowPattern.parse("conventional") is WorkflowPattern.CONVENTIONAL
        with pytest.raises(ValueError):
            WorkflowPattern.parse("chaotic")

    def test_stage_sequence(self):
        names = [s for s, _ in STAGES]
        assert names == [
            "pre-processing", "transcript-assembly", "post-processing",
            "quantification",
        ]

    def test_descriptions_exist(self):
        for p in WorkflowPattern:
            assert len(describe_pattern(p)) > 10
