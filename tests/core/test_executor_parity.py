"""Executor-backend parity: serial, thread and process pools must give
bit-identical assembly results and virtual TTCs for the same fan-out.

The executor backend only changes *where and when* the real Python
workloads run on the host; everything priced on the virtual clock is
derived from the deterministic measured usage, so all three backends
must agree exactly.  Also covers picklability of
:class:`repro.core.multikmer.AssemblyWorkload` (the process backend
round-trips it and its results through pickle).
"""

import pickle

import pytest

from repro.assembly.base import AssemblyParams
from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.ec2 import EC2Region
from repro.core.multikmer import AssemblyWorkload, make_assembly_workload
from repro.core.preprocess import preprocess
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.manager import PilotManager, UnitManager
from repro.pilot.scheduler import RoundRobinScheduler
from repro.pilot.states import UnitState

JOBS = [("ray", 31), ("ray", 37), ("velvet", 31), ("velvet", 37)]


@pytest.fixture(scope="module")
def pre_reads(ds_single):
    return preprocess(ds_single.run.all_reads()).reads


def fanout_descs(pre_reads, ds):
    descs = []
    for name, k in JOBS:
        work = make_assembly_workload(
            name,
            pre_reads,
            AssemblyParams(k=k, min_contig_length=100),
            n_ranks=8,
            dataset=ds,
        )
        descs.append(
            UnitDescription(
                name=f"{name}_k{k}",
                work=work,
                cores=8,
                scale=1.0,
                stage="transcript-assembly",
                tags={"assembler": name, "k": k},
            )
        )
    return descs


def run_fanout(pre_reads, ds, executor):
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    db = StateStore(clock)
    pm = PilotManager(region, events, db)
    pilot = pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", 4)))
    um = UnitManager(
        db, events, scheduler=RoundRobinScheduler(), executor=executor
    )
    um.add_pilot(pilot)
    units = um.submit_units(fanout_descs(pre_reads, ds))
    um.run(units)
    um.close()
    assert all(u.state is UnitState.DONE for u in units)
    return units, clock.now


class TestWorkloadPicklability:
    def test_assembly_workload_roundtrips(self, pre_reads, ds_single):
        work = make_assembly_workload(
            "velvet", pre_reads, AssemblyParams(k=31), n_ranks=1,
            dataset=ds_single,
        )
        assert isinstance(work, AssemblyWorkload)
        clone = pickle.loads(pickle.dumps(work))
        assert clone == work

    def test_pickled_workload_gives_identical_output(self, pre_reads, ds_single):
        work = make_assembly_workload(
            "velvet", pre_reads, AssemblyParams(k=31), n_ranks=1,
            dataset=ds_single,
        )
        clone = pickle.loads(pickle.dumps(work))
        result, usage = work()
        result2, usage2 = clone()
        assert result.contigs == result2.contigs
        assert usage == usage2


class TestBackendParity:
    @pytest.fixture(scope="class")
    def serial_run(self, pre_reads, ds_single):
        return run_fanout(pre_reads, ds_single, "serial")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_identical_to_serial(self, backend, serial_run, pre_reads, ds_single):
        base_units, base_now = serial_run
        units, now = run_fanout(pre_reads, ds_single, backend)
        assert now == base_now  # same total virtual time
        for u, b in zip(units, base_units):
            assert u.description.name == b.description.name
            # bit-identical assembly outputs ...
            assert u.result.contigs == b.result.contigs
            assert u.result.stats == b.result.stats
            # ... identical extrapolated usage and virtual timeline.
            assert u.usage == b.usage
            assert u.started_at == b.started_at
            assert u.finished_at == b.finished_at
            assert u.ttc == b.ttc
            # real wall-time was recorded by every backend
            assert u.real_seconds is not None and u.real_seconds > 0

    def test_serial_run_is_deterministic(self, serial_run, pre_reads, ds_single):
        base_units, base_now = serial_run
        units, now = run_fanout(pre_reads, ds_single, "serial")
        assert now == base_now
        for u, b in zip(units, base_units):
            assert u.result.contigs == b.result.contigs
            assert u.ttc == b.ttc
