"""Tests for contig merging, quantification and differential expression."""

import numpy as np
import pytest

from repro.assembly.contigs import Contig
from repro.core.diffexpr import differential_expression
from repro.core.merge import merge_contigs
from repro.core.quantify import quantify
from repro.seq.alphabet import decode, random_dna, reverse_complement
from repro.seq.fastq import FastqRecord


def contig(seq, cid="c", cov=10.0):
    return Contig(cid, seq, cov, 31, "test")


def random_seq(length, seed):
    return decode(random_dna(length, np.random.default_rng(seed)))


class TestMerge:
    def test_containment_removed(self):
        long = random_seq(400, 1)
        short = long[100:250]
        res = merge_contigs([[contig(long, "a"), contig(short, "b")]])
        assert res.output_contigs == 1
        assert res.contained_removed == 1
        assert res.transcripts[0].seq == long

    def test_revcomp_containment_removed(self):
        long = random_seq(400, 2)
        short = reverse_complement(long[100:250])
        res = merge_contigs([[contig(long, "a"), contig(short, "b")]])
        assert res.output_contigs == 1

    def test_overlap_joined(self):
        full = random_seq(500, 3)
        a, b = full[:300], full[260:]  # 40 bp exact overlap
        res = merge_contigs([[contig(a, "a"), contig(b, "b")]])
        assert res.joins == 1
        assert res.output_contigs == 1
        assert res.transcripts[0].seq == full

    def test_disjoint_contigs_kept(self):
        res = merge_contigs(
            [[contig(random_seq(300, 4), "a"), contig(random_seq(300, 5), "b")]]
        )
        assert res.output_contigs == 2
        assert res.joins == 0

    def test_multi_set_merge(self):
        full = random_seq(500, 6)
        set1 = [contig(full[:300], "k35")]
        set2 = [contig(full[260:], "k41"), contig(full[50:200], "k41b")]
        res = merge_contigs([set1, set2])
        assert res.input_contigs == 3
        assert res.output_contigs == 1
        assert res.transcripts[0].seq == full

    def test_empty(self):
        res = merge_contigs([])
        assert res.output_contigs == 0
        res2 = merge_contigs([[], []])
        assert res2.output_contigs == 0

    def test_min_overlap_validation(self):
        with pytest.raises(ValueError):
            merge_contigs([[]], min_overlap=10)

    def test_usage_is_serial(self):
        res = merge_contigs([[contig(random_seq(300, 7))]])
        assert res.usage.serial_compute > 0

    def test_output_sorted_longest_first(self):
        res = merge_contigs(
            [[contig(random_seq(200, 8), "s"), contig(random_seq(400, 9), "l")]]
        )
        lengths = [len(t) for t in res.transcripts]
        assert lengths == sorted(lengths, reverse=True)

    def test_merge_idempotent(self):
        """Merging the merge output changes nothing further."""
        full = random_seq(500, 10)
        first = merge_contigs(
            [[contig(full[:300], "a"), contig(full[260:], "b")]]
        )
        second = merge_contigs([first.transcripts])
        assert [t.seq for t in second.transcripts] == [
            t.seq for t in first.transcripts
        ]


class TestQuantify:
    def make_reads(self, seq, n, rid_prefix, L=50):
        rng = np.random.default_rng(42)
        out = []
        for i in range(n):
            start = int(rng.integers(0, len(seq) - L + 1))
            out.append(
                FastqRecord(f"{rid_prefix}{i}", seq[start : start + L], "I" * L)
            )
        return out

    def test_counts_proportional_to_reads(self):
        t1, t2 = random_seq(500, 11), random_seq(500, 12)
        reads = self.make_reads(t1, 90, "a") + self.make_reads(t2, 10, "b")
        res = quantify(reads, [contig(t1, "t1"), contig(t2, "t2")])
        assert res.assignment_rate > 0.95
        assert res.counts[0] > 5 * res.counts[1]

    def test_tpm_normalized(self):
        t1, t2 = random_seq(500, 13), random_seq(500, 14)
        reads = self.make_reads(t1, 50, "a") + self.make_reads(t2, 50, "b")
        res = quantify(reads, [contig(t1, "t1"), contig(t2, "t2")])
        assert res.tpm.sum() == pytest.approx(1e6)

    def test_reverse_strand_reads_assigned(self):
        t1 = random_seq(500, 15)
        reads = [
            FastqRecord("r", reverse_complement(t1[100:150]), "I" * 50)
        ]
        res = quantify(reads, [contig(t1, "t1")])
        assert res.assigned_reads == 1

    def test_unrelated_reads_unassigned(self):
        t1 = random_seq(500, 16)
        junk = self.make_reads(random_seq(500, 17), 10, "j")
        res = quantify(junk, [contig(t1, "t1")])
        assert res.unassigned_reads == 10

    def test_no_transcripts_rejected(self):
        with pytest.raises(ValueError):
            quantify([], [])

    def test_table(self):
        t1 = random_seq(300, 18)
        res = quantify(self.make_reads(t1, 5, "a"), [contig(t1, "t1")])
        table = res.as_table()
        assert table[0][0] == "t1"
        assert table[0][1] == 5


class TestDiffExpr:
    def test_obvious_de_detected(self):
        rng = np.random.default_rng(0)
        n = 50
        a = rng.poisson(100, n)
        b = rng.poisson(100, n)
        a[0], b[0] = 1000, 50  # strongly DE transcript
        res = differential_expression([f"t{i}" for i in range(n)], a, b)
        row = res.rows[0]
        assert row.significant
        assert row.log2_fold_change > 2

    def test_null_mostly_insignificant(self):
        rng = np.random.default_rng(1)
        n = 100
        a = rng.poisson(50, n)
        b = rng.poisson(50, n)
        res = differential_expression([f"t{i}" for i in range(n)], a, b)
        assert res.n_significant <= 5  # BH at alpha=0.05 under the null

    def test_library_size_correction(self):
        """2x library depth alone must not look like DE."""
        n = 60
        a = np.full(n, 200)
        b = np.full(n, 100)
        res = differential_expression([f"t{i}" for i in range(n)], a, b)
        assert res.n_significant == 0
        assert all(abs(r.log2_fold_change) < 0.1 for r in res.rows)

    def test_zero_counts_handled(self):
        res = differential_expression(["t0"], np.array([0]), np.array([0]))
        assert res.rows[0].p_value == 1.0
        assert not res.rows[0].significant

    def test_validation(self):
        with pytest.raises(ValueError):
            differential_expression(["a"], np.array([1, 2]), np.array([1]))
        with pytest.raises(ValueError):
            differential_expression(["a"], np.array([-1]), np.array([1]))
        with pytest.raises(ValueError):
            differential_expression(["a"], np.array([1]), np.array([1]), alpha=2)

    def test_significant_rows_accessor(self):
        # Many flat transcripts keep library sizes comparable so the DE
        # transcript stands out after normalization.
        ids = ["up"] + [f"flat{i}" for i in range(20)]
        a = np.array([1000] + [100] * 20)
        b = np.array([10] + [100] * 20)
        res = differential_expression(ids, a, b)
        sig = res.significant_rows()
        assert "up" in [r.transcript_id for r in sig]
