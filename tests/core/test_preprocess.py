"""Tests for the pre-processing stage."""

import numpy as np
import pytest

from repro.core.preprocess import PreprocessParams, PreprocessResult, preprocess
from repro.seq.fastq import FastqRecord, phred_to_ascii
from repro.seq.reads import ADAPTER


def rec(seq, quals=None, rid="r"):
    if quals is None:
        quals = "I" * len(seq)
    return FastqRecord(rid, seq, quals)


class TestTrimming:
    def test_low_quality_tail_trimmed(self):
        q = phred_to_ascii(np.array([30] * 40 + [5] * 10))
        out = preprocess([rec("A" * 25 + "C" * 25, q)])
        assert len(out.reads) == 1
        assert len(out.reads[0]) == 40
        assert out.trimmed == 1

    def test_high_quality_untouched(self):
        out = preprocess([rec("ACGT" * 15)])
        assert len(out.reads[0]) == 60
        assert out.trimmed == 0

    def test_adapter_clipped(self):
        seq = "ACGTACGTGG" * 4 + ADAPTER + "TTTT"
        out = preprocess([rec(seq)])
        assert out.adapters_clipped == 1
        assert out.reads[0].seq == "ACGTACGTGG" * 4

    def test_adapter_clipping_disabled(self):
        seq = "ACGTACGTGG" * 4 + ADAPTER + "TTTT"
        out = preprocess([rec(seq)], PreprocessParams(clip_adapters=False))
        assert out.adapters_clipped == 0
        assert len(out.reads[0]) == len(seq)


class TestFilters:
    def test_n_reads_dropped(self):
        out = preprocess([rec("ACGTN" + "ACGTA" * 10)])
        assert out.dropped_n == 1
        assert out.reads == []

    def test_n_filter_disabled(self):
        out = preprocess([rec("ACGTN" + "ACGTA" * 10)], PreprocessParams(drop_n=False))
        assert out.dropped_n == 0
        assert len(out.reads) == 1

    def test_short_reads_dropped(self):
        out = preprocess([rec("ACGTACGT")])
        assert out.dropped_short == 1

    def test_exact_duplicates_removed(self):
        reads = [rec("ACGTACGTGG" * 5, rid=f"r{i}") for i in range(4)]
        out = preprocess(reads)
        assert len(out.reads) == 1
        assert out.dropped_duplicate == 3

    def test_dedup_disabled(self):
        reads = [rec("ACGTACGTGG" * 5, rid=f"r{i}") for i in range(4)]
        out = preprocess(reads, PreprocessParams(dedup=False))
        assert len(out.reads) == 4


class TestStats:
    def test_counts_add_up(self, reads_single):
        out = preprocess(reads_single)
        assert (
            out.output_reads
            + out.dropped_n
            + out.dropped_short
            + out.dropped_duplicate
            == out.input_reads
        )

    def test_survival_and_reduction(self, reads_single):
        out = preprocess(reads_single)
        assert 0.5 < out.survival_rate < 1.0
        assert 0.0 < out.reduction_factor < 1.0

    def test_modal_length(self, reads_single):
        out = preprocess(reads_single)
        assert 38 <= out.modal_read_length <= 50

    def test_usage_recorded(self, reads_single):
        out = preprocess(reads_single)
        assert out.usage.phases[0].kind == "preprocess"
        assert out.usage.peak_rank_memory_bytes > 0

    def test_empty_input(self):
        out = preprocess([])
        assert out.input_reads == 0
        assert out.survival_rate == 0.0
        assert out.modal_read_length == 0

    def test_output_reads_have_consistent_quals(self, reads_single):
        out = preprocess(reads_single)
        for r in out.reads[:100]:
            assert len(r.seq) == len(r.qual)
