"""Durable checkpoint/resume: store semantics and end-to-end parity.

The headline property (ISSUE): a pipeline killed mid-run and re-run
against the same checkpoint directory produces results bit-identical to
an uninterrupted run — same contigs, same usage, same virtual TTCs and
cost — because replayed units travel the identical dispatch/SGE/pricing
path with only the computation substituted.
"""

import pickle

import pytest

from repro.core.checkpoint import (
    FORMAT_VERSION,
    CheckpointStore,
    UnitCheckpoint,
    checkpoint_key_id,
)
from repro.core.rnnotator import (
    PipelineConfig,
    PipelineError,
    PipelineKilled,
    RnnotatorPipeline,
)
from repro.core.schemes import MatchingScheme
from repro.obs import Tracer, use_tracer

CONFIG = dict(assemblers=("ray",), kmer_list=(35, 41))


class TestCheckpointStore:
    def test_roundtrip_and_stats(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = ("digest", "ray", 35)
        assert store.get_unit(key) is None
        record = UnitCheckpoint(result={"x": 1}, usage="usage", wall_seconds=2.5)
        assert store.put_unit(key, record) is True
        got = store.get_unit(key)
        assert got.result == {"x": 1}
        assert got.usage == "usage"
        assert got.wall_seconds == 2.5
        assert (store.stats.hits, store.stats.misses, store.stats.puts) == (
            1, 1, 1,
        )
        assert store.unit_count() == 1

    def test_first_write_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = ("k",)
        assert store.put_unit(key, UnitCheckpoint(result="first", usage=None))
        assert not store.put_unit(
            key, UnitCheckpoint(result="second", usage=None)
        )
        assert store.get_unit(key).result == "first"

    def test_reopen_persists(self, tmp_path):
        CheckpointStore(tmp_path).put_unit(
            ("k",), UnitCheckpoint(result=42, usage=None)
        )
        assert CheckpointStore(tmp_path).get_unit(("k",)).result == 42

    def test_corrupt_file_is_a_miss_and_removed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = ("k",)
        store.put_unit(key, UnitCheckpoint(result=1, usage=None))
        path = store._path("units", key)
        path.write_bytes(b"\x00garbage")
        assert store.get_unit(key) is None
        assert not path.exists()
        # ... and the slot is free for a fresh record.
        assert store.put_unit(key, UnitCheckpoint(result=2, usage=None))
        assert store.get_unit(key).result == 2

    def test_truncated_file_is_a_miss(self, tmp_path):
        """A torn write (killed mid-write without the atomic rename)
        must read as a miss, not crash the resume."""
        store = CheckpointStore(tmp_path)
        key = ("k",)
        store.put_unit(key, UnitCheckpoint(result=1, usage=None))
        path = store._path("units", key)
        path.write_bytes(path.read_bytes()[:10])
        assert store.get_unit(key) is None

    def test_version_skew_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = ("k",)
        path = store._path("units", key)
        path.write_bytes(
            pickle.dumps(
                {"format": FORMAT_VERSION + 1, "key": repr(key), "record": 1}
            )
        )
        assert store.get_unit(key) is None
        assert not path.exists()

    def test_key_repr_mismatch_is_a_miss(self, tmp_path):
        """A (vanishingly unlikely) digest collision must not replay the
        wrong unit's outcome."""
        store = CheckpointStore(tmp_path)
        key = ("k",)
        path = store._path("units", key)
        path.write_bytes(
            pickle.dumps(
                {"format": FORMAT_VERSION, "key": repr(("other",)),
                 "record": UnitCheckpoint(result=1, usage=None)}
            )
        )
        assert store.get_unit(key) is None

    def test_stage_records(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.get_stage(("run", "stage-in")) is None
        store.put_stage(("run", "stage-in"), {"ttc": 1.0})
        assert store.get_stage(("run", "stage-in")) == {"ttc": 1.0}
        assert store.stage_count() == 1

    def test_key_id_stable_and_distinct(self):
        a = checkpoint_key_id(("digest", "ray", 35))
        assert a == checkpoint_key_id(("digest", "ray", 35))
        assert a != checkpoint_key_id(("digest", "ray", 41))
        assert len(a) == 40


class TestKillAndResume:
    def test_resume_is_bit_identical(self, ds_single, tmp_path):
        baseline = RnnotatorPipeline().run(ds_single, PipelineConfig(**CONFIG))

        ckdir = str(tmp_path / "ck")
        chaos_cfg = PipelineConfig(
            checkpoint_dir=ckdir,
            abort_after_stage="transcript-assembly",
            **CONFIG,
        )
        with pytest.raises(PipelineKilled):
            RnnotatorPipeline().run(ds_single, chaos_cfg)

        resumed = RnnotatorPipeline().run(
            ds_single, PipelineConfig(checkpoint_dir=ckdir, **CONFIG)
        )

        # It actually resumed: preprocess + the two fan-out units replay.
        assert resumed.checkpoint_stats["unit_hits"] == 3
        assert resumed.checkpoint_stats["unit_puts"] >= 2  # merge + quant

        # Bit-identical functional output ...
        assert [t.seq for t in resumed.transcripts] == [
            t.seq for t in baseline.transcripts
        ]
        # ... virtual timing and cost ...
        assert resumed.total_ttc == baseline.total_ttc
        assert resumed.total_cost == baseline.total_cost
        assert [
            (s.name, s.started_at, s.finished_at) for s in resumed.stages
        ] == [
            (s.name, s.started_at, s.finished_at) for s in baseline.stages
        ]
        # ... and usage records.
        for key in baseline.assemblies:
            assert (
                resumed.assemblies[key].usage.phases
                == baseline.assemblies[key].usage.phases
            )

    def test_kill_at_earlier_stage_resumes_too(self, ds_single, tmp_path):
        ckdir = str(tmp_path / "ck")
        with pytest.raises(PipelineKilled):
            RnnotatorPipeline().run(
                ds_single,
                PipelineConfig(
                    checkpoint_dir=ckdir,
                    abort_after_stage="pre-processing",
                    **CONFIG,
                ),
            )
        resumed = RnnotatorPipeline().run(
            ds_single, PipelineConfig(checkpoint_dir=ckdir, **CONFIG)
        )
        assert resumed.checkpoint_stats["unit_hits"] == 1  # preprocess only
        assert len(resumed.transcripts) > 5

    def test_unknown_abort_stage_never_fires(self, ds_single, tmp_path):
        res = RnnotatorPipeline().run(
            ds_single,
            PipelineConfig(
                checkpoint_dir=str(tmp_path / "ck"),
                abort_after_stage="no-such-stage",
                **CONFIG,
            ),
        )
        assert len(res.transcripts) > 5


class TestPreemptionEndToEnd:
    def test_s3_recovers_from_preemption_with_identical_output(
        self, ds_single
    ):
        baseline = RnnotatorPipeline().run(ds_single, PipelineConfig(**CONFIG))
        tracer = Tracer()
        chaos = RnnotatorPipeline(tracer=tracer).run(
            ds_single,
            PipelineConfig(
                scheme=MatchingScheme.S3,
                unit_max_restarts=2,
                preempt_at=(1.0,),
                **CONFIG,
            ),
        )
        assert tracer.metrics.counters["vms_preempted"].value == 1
        assert tracer.metrics.counters["units_preempted"].value >= 1
        assert tracer.metrics.counters["units_restarted"].value >= 1
        assert [t.seq for t in chaos.transcripts] == [
            t.seq for t in baseline.transcripts
        ]

    def test_preemption_without_restart_budget_fails_loudly(self, ds_single):
        """The original bug surfaced here as a silently truncated
        assembly set; now the run fails with an explicit error."""
        with pytest.raises(PipelineError, match="assembly jobs failed"):
            RnnotatorPipeline().run(
                ds_single,
                PipelineConfig(
                    unit_max_restarts=0,
                    preempt_at=(1.0,),
                    **CONFIG,
                ),
            )

    def test_preempt_plus_checkpoint_compose(self, ds_single, tmp_path):
        """A preempted unit's retry replays the checkpoint its first
        completion never wrote — but a previously *completed* unit's
        checkpoint survives preemption chaos on a later resume."""
        ckdir = str(tmp_path / "ck")
        baseline = RnnotatorPipeline().run(ds_single, PipelineConfig(**CONFIG))
        chaos = RnnotatorPipeline().run(
            ds_single,
            PipelineConfig(
                checkpoint_dir=ckdir,
                scheme=MatchingScheme.S3,
                unit_max_restarts=2,
                preempt_at=(1.0,),
                **CONFIG,
            ),
        )
        assert [t.seq for t in chaos.transcripts] == [
            t.seq for t in baseline.transcripts
        ]
        assert chaos.checkpoint_stats["unit_puts"] == 5


class TestConfigValidation:
    def test_negative_restarts_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(unit_max_restarts=-1)

    def test_zero_restart_rounds_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(max_restart_rounds=0)

    def test_negative_preempt_offset_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(preempt_at=(-1.0,))
