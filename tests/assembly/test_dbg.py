"""Tests for the de Bruijn graph and unitig extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.dbg import KmerTable, build_kmer_table, extract_unitigs
from repro.assembly.kmers import canonical_kmers, kmer_counts
from repro.seq.alphabet import encode, reverse_complement


def table_from(seq: str, k: int) -> KmerTable:
    return build_kmer_table(k, kmer_counts(canonical_kmers(encode(seq), k)))


class TestKmerTable:
    def test_membership_is_strand_blind(self):
        t = table_from("ACGTTTAA", 4)
        assert bytes(encode("ACGT")) in t
        # reverse complement of any stored k-mer is also "in" the table
        assert bytes(encode(reverse_complement("ACGT"))) in t

    def test_coverage(self):
        t = table_from("AAAAA", 3)  # AAA x3
        assert t.coverage(bytes(encode("AAA"))) == 3
        assert t.coverage(bytes(encode("TTT"))) == 3  # canonical form
        assert t.coverage(bytes(encode("CCC"))) == 0

    def test_drop_below(self):
        t = table_from("AAAAACGT", 3)
        removed = t.drop_below(2)
        assert removed > 0
        assert t.coverage(bytes(encode("AAA"))) == 3

    def test_successors_simple_path(self):
        t = table_from("ACGTA", 3)
        succ = t.successors(bytes(encode("ACG")))
        assert [bytes(s) for s in succ] == [bytes(encode("CGT"))]

    def test_predecessors_simple_path(self):
        t = table_from("ACGTA", 3)
        pred = t.predecessors(bytes(encode("CGT")))
        assert [bytes(p) for p in pred] == [bytes(encode("ACG"))]

    def test_branching_successors(self):
        # Two sequences sharing the prefix CGCTCG diverge after GCTCG.
        t = build_kmer_table(
            5,
            kmer_counts(
                np.concatenate(
                    [
                        canonical_kmers(encode("CGCTCGACTGCT"), 5),
                        canonical_kmers(encode("CGCTCGTCGCGC"), 5),
                    ]
                )
            ),
        )
        succ = t.successors(bytes(encode("GCTCG")))
        assert len(succ) == 2

    def test_memory_estimate_scales(self):
        from repro.assembly.dbg import KMER_RECORD_BYTES

        t1 = table_from("ACGTACGTAA", 5)
        assert t1.memory_bytes() == len(t1) * KMER_RECORD_BYTES


class TestUnitigExtraction:
    def test_single_path_reconstructed(self):
        seq = "CTACTGGGGCACATCGTTCCTGTTTAGAGT"
        t = table_from(seq, 5)
        unitigs, steps = extract_unitigs(t)
        assert len(unitigs) == 1
        assert unitigs[0].seq in (seq, reverse_complement(seq))
        assert steps == len(seq) - 5 + 1  # 26 k-mers

    def test_no_duplicate_unitigs(self):
        seq = "CTACTGGGGCACATCGTTCCTGTTTAGAGT"
        t = table_from(seq, 5)
        unitigs, _ = extract_unitigs(t)
        assert len(unitigs) == 1

    def test_branch_splits_unitigs(self):
        # Two sequences sharing a k-mer in the middle create a branch.
        s1 = "AACCGGTTACAGACGATA"
        s2 = "TTGGACCATACAGTTCGC"  # shares "ACAG" region differently
        rows = np.concatenate(
            [canonical_kmers(encode(s1), 5), canonical_kmers(encode(s2), 5)]
        )
        t = build_kmer_table(5, kmer_counts(rows))
        unitigs, _ = extract_unitigs(t)
        joined = {u.seq for u in unitigs}
        # every unitig must be a substring of one input (either strand)
        for u in joined:
            assert any(
                u in s or reverse_complement(u) in s for s in (s1, s2)
            ), u

    def test_coverage_recorded(self):
        t = table_from("ACGTACG", 4)
        unitigs, _ = extract_unitigs(t)
        assert all(u.coverage >= 1 for u in unitigs)

    def test_visited_shared_prevents_duplicates(self):
        seq = "CTACTGGGGCACATCGTTCCTGTTTAGAGT"
        t = table_from(seq, 5)
        visited: set[bytes] = set()
        u1, _ = extract_unitigs(t, visited=visited)
        u2, _ = extract_unitigs(t, visited=visited)
        assert len(u1) == 1
        assert u2 == []

    def test_seed_restriction(self):
        seq = "CTACTGGGGCACATCGTTCCTGTTTAGAGT"
        t = table_from(seq, 5)
        unitigs, _ = extract_unitigs(t, seeds=iter([]))
        assert unitigs == []

    def test_circular_sequence_terminates(self):
        # A circular k-mer set (every node unique in/out) must not loop.
        seq = "ACGTACGTACGTACGTACGT"
        t = table_from(seq, 5)
        unitigs, _ = extract_unitigs(t)
        assert unitigs  # terminated and produced something

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=12, max_size=80))
    def test_unitig_kmers_subset_of_input(self, seq):
        """Every unitig's k-mer set is a subset of the input k-mer set,
        and all input k-mers are covered by some unitig."""
        k = 7
        t = table_from(seq, k)
        input_kmers = set(t.counts.keys())
        unitigs, _ = extract_unitigs(t)
        out_kmers = set()
        for u in unitigs:
            rows = canonical_kmers(u.codes, k)
            out_kmers.update(bytes(r) for r in rows)
        assert out_kmers == input_kmers

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=12, max_size=80))
    def test_unitigs_are_substrings(self, seq):
        k = 7
        t = table_from(seq, k)
        unitigs, _ = extract_unitigs(t)
        for u in unitigs:
            assert u.seq in seq or reverse_complement(u.seq) in seq
