"""Integration tests across the five assemblers.

The central correctness oracle: contigs must be (near-)substrings of the
ground-truth transcripts the reads were simulated from.
"""

import pytest

from repro.assembly.abyss import AbyssAssembler
from repro.assembly.base import AssemblyParams
from repro.assembly.contrail import ContrailAssembler, ContrailInputError
from repro.assembly.ray import RayAssembler
from repro.assembly.registry import (
    ASSEMBLERS,
    TABLE1_ASSEMBLERS,
    get_assembler,
)
from repro.assembly.trinity import TrinityAssembler
from repro.assembly.velvet import VelvetAssembler
from repro.seq.alphabet import reverse_complement

PARAMS = AssemblyParams(k=31, min_contig_length=100)


def substring_fraction(contigs, transcripts) -> float:
    """Fraction of contigs that are exact substrings of some transcript."""
    if not contigs:
        return 0.0
    seqs = [t.seq for t in transcripts]
    hits = 0
    for c in contigs:
        rc = reverse_complement(c.seq)
        if any(c.seq in s or rc in s for s in seqs):
            hits += 1
    return hits / len(contigs)


@pytest.fixture(scope="module")
def velvet_result(reads_single):
    return VelvetAssembler().assemble(reads_single, PARAMS)


class TestVelvet:
    def test_produces_contigs(self, velvet_result):
        assert len(velvet_result.contigs) > 5
        assert velvet_result.total_bp > 1000

    def test_contigs_are_true_substrings(self, velvet_result, ds_single):
        frac = substring_fraction(
            velvet_result.contigs, ds_single.transcriptome.transcripts
        )
        assert frac > 0.9

    def test_min_length_respected(self, velvet_result):
        assert all(len(c) >= PARAMS.min_contig_length for c in velvet_result.contigs)

    def test_usage_has_phases(self, velvet_result):
        names = [p.name for p in velvet_result.usage.phases]
        assert names == ["kmer_count", "graph_build", "unitig_walk"]
        assert velvet_result.usage.peak_rank_memory_bytes > 0

    def test_contig_ids_unique(self, velvet_result):
        ids = [c.contig_id for c in velvet_result.contigs]
        assert len(set(ids)) == len(ids)

    def test_deterministic(self, reads_single, velvet_result):
        again = VelvetAssembler().assemble(reads_single, PARAMS)
        assert [c.seq for c in again.contigs] == [
            c.seq for c in velvet_result.contigs
        ]


class TestDistributedEquivalence:
    """Ray and ABySS walk the same k-mer spectrum as the serial reference;
    their contig sets must match it exactly (independent of rank count)."""

    @pytest.mark.parametrize("n_ranks", [1, 3, 8])
    def test_ray_matches_velvet(self, reads_single, velvet_result, n_ranks):
        res = RayAssembler().assemble(reads_single, PARAMS, n_ranks=n_ranks)
        assert sorted(c.seq for c in res.contigs) == sorted(
            c.seq for c in velvet_result.contigs
        )

    @pytest.mark.parametrize("n_ranks", [1, 4])
    def test_abyss_matches_velvet(self, reads_single, velvet_result, n_ranks):
        res = AbyssAssembler().assemble(reads_single, PARAMS, n_ranks=n_ranks)
        assert sorted(c.seq for c in res.contigs) == sorted(
            c.seq for c in velvet_result.contigs
        )


class TestRayUsage:
    def test_messages_grow_with_ranks(self, reads_single):
        u2 = RayAssembler().assemble(reads_single, PARAMS, n_ranks=2).usage
        u8 = RayAssembler().assemble(reads_single, PARAMS, n_ranks=8).usage
        assert u8.n_messages > u2.n_messages

    def test_comm_bytes_positive_multirank(self, reads_single):
        u = RayAssembler().assemble(reads_single, PARAMS, n_ranks=4).usage
        assert u.comm_bytes > 0

    def test_single_rank_no_offnode_traffic(self, reads_single):
        u = RayAssembler().assemble(reads_single, PARAMS, n_ranks=1).usage
        assert u.comm_bytes == 0

    def test_critical_path_shrinks_with_ranks(self, reads_single):
        u1 = RayAssembler().assemble(reads_single, PARAMS, n_ranks=1).usage
        u8 = RayAssembler().assemble(reads_single, PARAMS, n_ranks=8).usage
        assert u8.critical_compute < u1.critical_compute

    def test_memory_per_rank_shrinks(self, reads_single):
        u1 = RayAssembler().assemble(reads_single, PARAMS, n_ranks=1).usage
        u8 = RayAssembler().assemble(reads_single, PARAMS, n_ranks=8).usage
        assert u8.peak_rank_memory_bytes < u1.peak_rank_memory_bytes


class TestAbyssUsage:
    def test_serial_merge_constant_across_ranks(self, reads_single):
        u2 = AbyssAssembler().assemble(reads_single, PARAMS, n_ranks=2).usage
        u8 = AbyssAssembler().assemble(reads_single, PARAMS, n_ranks=8).usage
        assert u2.serial_compute == pytest.approx(u8.serial_compute, rel=0.05)
        assert u2.serial_compute > 0

    def test_fewer_messages_than_ray(self, reads_single):
        """ABySS aggregates probe traffic per round; Ray is fine-grained."""
        ua = AbyssAssembler().assemble(reads_single, PARAMS, n_ranks=4).usage
        ur = RayAssembler().assemble(reads_single, PARAMS, n_ranks=4).usage
        assert 0 < ua.n_messages < ur.n_messages


class TestContrail:
    @pytest.fixture(scope="class")
    def contrail_result(self, reads_single):
        return ContrailAssembler().assemble(reads_single, PARAMS, n_ranks=4)

    def test_produces_true_contigs(self, contrail_result, ds_single):
        assert len(contrail_result.contigs) > 5
        frac = substring_fraction(
            contrail_result.contigs, ds_single.transcriptome.transcripts
        )
        assert frac > 0.9

    def test_many_mr_jobs(self, contrail_result):
        # count + pair/merge rounds: the Hadoop job-chain signature.
        assert contrail_result.stats["mr_jobs"] >= 5
        assert contrail_result.usage.n_jobs == contrail_result.stats["mr_jobs"]

    def test_close_to_reference_assembly(self, contrail_result, velvet_result):
        """Contrail's stricter junction rule may fragment slightly, but the
        bulk of the assembly must agree with the serial reference."""
        assert contrail_result.total_bp > 0.6 * velvet_result.total_bp

    def test_fails_on_n_when_strict(self, reads_single):
        assert any("N" in r.seq for r in reads_single)
        with pytest.raises(ContrailInputError):
            ContrailAssembler().assemble(
                reads_single, PARAMS, n_ranks=2, fail_on_n=True
            )

    def test_worker_count_invariant_output(self, reads_single, contrail_result):
        res2 = ContrailAssembler().assemble(reads_single, PARAMS, n_ranks=8)
        assert sorted(c.seq for c in res2.contigs) == sorted(
            c.seq for c in contrail_result.contigs
        )


class TestTrinity:
    @pytest.fixture(scope="class")
    def trinity_result(self, reads_single):
        return TrinityAssembler().assemble(reads_single)

    def test_produces_contigs(self, trinity_result):
        assert len(trinity_result.contigs) > 5

    def test_uses_its_own_k(self, trinity_result):
        assert trinity_result.k == 25

    def test_lower_precision_than_pipeline(
        self, trinity_result, velvet_result, ds_single
    ):
        """Trinity keeps error branches -> more non-substring contigs."""
        tx = ds_single.transcriptome.transcripts
        assert substring_fraction(trinity_result.contigs, tx) <= substring_fraction(
            velvet_result.contigs, tx
        )

    def test_prepare_reads_trims(self):
        from repro.seq.fastq import FastqRecord

        rec = FastqRecord("r", "ACGT" * 10, "I" * 36 + "!!!!")
        out = TrinityAssembler().prepare_reads([rec])
        assert len(out[0]) == 36


class TestRegistry:
    def test_table1_members(self):
        assert TABLE1_ASSEMBLERS == ("ray", "abyss", "contrail")
        for name in TABLE1_ASSEMBLERS:
            info = ASSEMBLERS[name]
            assert info.scalable
            assert info.graph_type == "DBG"

    def test_table1_impls(self):
        assert ASSEMBLERS["ray"].distributed_impl == "MPI"
        assert ASSEMBLERS["abyss"].distributed_impl == "MPI"
        assert ASSEMBLERS["contrail"].distributed_impl == "Hadoop MapReduce"

    def test_get_assembler(self):
        assert get_assembler("velvet").name == "velvet"
        assert get_assembler("ray").name == "ray"

    def test_unknown_assembler(self):
        with pytest.raises(KeyError):
            get_assembler("soapdenovo")

    def test_versions_recorded(self):
        assert "2.3.1" in ASSEMBLERS["ray"].analog_of_version
        assert "1.9.0" in ASSEMBLERS["abyss"].analog_of_version
        assert "0.8.2" in ASSEMBLERS["contrail"].analog_of_version


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            AssemblyParams(k=2)
        with pytest.raises(ValueError):
            AssemblyParams(k=31, min_count=0)
        with pytest.raises(ValueError):
            AssemblyParams(k=31, min_contig_length=10)
