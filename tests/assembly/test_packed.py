"""Unit and property tests for the 2-bit packed k-mer codec.

The packed engine must be a drop-in, bit-exact replacement for the bytes
representation, so every operation is checked against the straightforward
byte-level definition: pack/unpack roundtrips, reverse complement,
canonicalization (including palindromes), key ordering, and the word
boundaries k=32/33 and the k=63 ceiling.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.assembly import packed
from repro.assembly.kmers import (
    _canonicalize,
    canonical_kmers,
    canonical_kmers_packed,
    canonical_kmers_varlen,
    canonical_kmers_varlen_packed,
    kmer_counts,
    kmer_counts_packed,
    kmer_owner,
    kmer_owner_packed,
)
from repro.seq.alphabet import encode

BOUNDARY_KS = (3, 31, 32, 33, 63)

dna = st.text(alphabet="ACGT", min_size=0, max_size=200)
dna_with_n = st.text(alphabet="ACGTN", min_size=0, max_size=200)


def _random_windows(rng, n, k):
    return rng.integers(0, 4, size=(n, k)).astype(np.uint8)


class TestCheckK:
    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            packed.check_k(2)

    def test_rejects_beyond_max(self):
        with pytest.raises(ValueError):
            packed.check_k(64)

    def test_words_for_boundary(self):
        assert packed.words_for(32) == 1
        assert packed.words_for(33) == 2
        assert packed.words_for(63) == 2


class TestRoundtrip:
    @pytest.mark.parametrize("k", BOUNDARY_KS)
    def test_pack_unpack_roundtrip(self, k):
        rng = np.random.default_rng(k)
        win = _random_windows(rng, 64, k)
        assert np.array_equal(packed.unpack(packed.pack(win), k), win)

    @pytest.mark.parametrize("k", BOUNDARY_KS)
    def test_slack_bits_are_zero(self, k):
        # Canonical form: everything below the 2k payload bits is zero,
        # so packed equality == k-mer equality.
        rng = np.random.default_rng(k + 100)
        rows = packed.pack(_random_windows(rng, 32, k))
        W = packed.words_for(k)
        slack = 64 * W - 2 * k
        if slack:
            assert not (rows[:, W - 1] & ((np.uint64(1) << np.uint64(slack)) - np.uint64(1))).any()

    def test_empty_input(self):
        empty = np.zeros((0, 33), dtype=np.uint8)
        rows = packed.pack(empty)
        assert rows.shape == (0, 2)
        assert packed.unpack(rows, 33).shape == (0, 33)

    def test_bytes_kmer_roundtrip(self):
        km = bytes(encode("ACGTACGTACGTACGTACGTACGTACGTACGTA").tolist())
        rows = packed.pack_bytes_kmer(km)
        assert packed.unpack_to_bytes(rows, len(km)) == [km]


class TestRevcompCanonical:
    @pytest.mark.parametrize("k", BOUNDARY_KS)
    def test_revcomp_matches_bytes_definition(self, k):
        rng = np.random.default_rng(k + 7)
        win = _random_windows(rng, 64, k)
        rc = (3 - win)[:, ::-1]
        got = packed.unpack(packed.revcomp(packed.pack(win), k), k)
        assert np.array_equal(got, rc)

    @pytest.mark.parametrize("k", BOUNDARY_KS)
    def test_revcomp_involution(self, k):
        rng = np.random.default_rng(k + 13)
        rows = packed.pack(_random_windows(rng, 64, k))
        assert np.array_equal(packed.revcomp(packed.revcomp(rows, k), k), rows)

    @pytest.mark.parametrize("k", BOUNDARY_KS)
    def test_canonicalize_matches_bytes_path(self, k):
        rng = np.random.default_rng(k + 23)
        win = _random_windows(rng, 128, k)
        expect = _canonicalize(win)
        got = packed.unpack(packed.canonicalize(packed.pack(win), k), k)
        assert np.array_equal(got, expect)

    @pytest.mark.parametrize("k", (4, 32, 62))
    def test_palindromes_are_fixed_points(self, k):
        # Even-length DNA palindromes equal their own revcomp; canonical
        # form must pick the forward orientation and stay stable.
        rng = np.random.default_rng(k)
        half = rng.integers(0, 4, size=(16, k // 2)).astype(np.uint8)
        win = np.concatenate([half, (3 - half)[:, ::-1]], axis=1)
        rows = packed.pack(win)
        assert np.array_equal(packed.revcomp(rows, k), rows)
        assert np.array_equal(packed.canonicalize(rows, k), rows)


class TestKeysAndOrder:
    @pytest.mark.parametrize("k", BOUNDARY_KS)
    def test_key_sort_matches_lexicographic_bytes_sort(self, k):
        rng = np.random.default_rng(k + 31)
        win = _random_windows(rng, 200, k)
        rows = packed.pack(win)
        order = np.argsort(packed.keys(rows, k), kind="stable")
        as_bytes = [bytes(r.tolist()) for r in win]
        assert [as_bytes[i] for i in order] == sorted(as_bytes)

    @pytest.mark.parametrize("k", BOUNDARY_KS)
    def test_keys_to_packed_roundtrip(self, k):
        rng = np.random.default_rng(k + 37)
        rows = packed.pack(_random_windows(rng, 50, k))
        back = packed.keys_to_packed(packed.keys(rows, k), k)
        assert np.array_equal(back, rows)

    @pytest.mark.parametrize("k", BOUNDARY_KS)
    def test_int_roundtrip(self, k):
        rng = np.random.default_rng(k + 41)
        rows = packed.pack(_random_windows(rng, 50, k))
        ints = packed.packed_to_ints(rows, k)
        assert np.array_equal(packed.ints_to_packed(ints, k), rows)

    @pytest.mark.parametrize("k", (31, 33))
    def test_extend_right_left_match_byte_shifts(self, k):
        rng = np.random.default_rng(k)
        win = _random_windows(rng, 40, k)
        rows = packed.pack(win)
        for b in range(4):
            right = np.concatenate(
                [win[:, 1:], np.full((win.shape[0], 1), b, dtype=np.uint8)], axis=1
            )
            left = np.concatenate(
                [np.full((win.shape[0], 1), b, dtype=np.uint8), win[:, :-1]], axis=1
            )
            assert np.array_equal(
                packed.unpack(packed.extend_right(rows, k, b), k), right
            )
            assert np.array_equal(
                packed.unpack(packed.extend_left(rows, k, b), k), left
            )


class TestPipelineParity:
    """The packed read->k-mer pipeline must agree with the bytes pipeline."""

    @given(dna_with_n, st.sampled_from(BOUNDARY_KS))
    def test_canonical_extraction_parity(self, seq, k):
        rows = canonical_kmers_packed(encode(seq), k)
        expect = canonical_kmers(encode(seq), k)
        assert rows.shape == (expect.shape[0], packed.words_for(k))
        assert packed.unpack_to_bytes(rows, k) == [
            bytes(r.tolist()) for r in expect
        ]

    @given(st.lists(dna_with_n, max_size=8), st.sampled_from((31, 33)))
    def test_varlen_parity(self, seqs, k):
        rows = canonical_kmers_varlen_packed(seqs, k)
        expect = canonical_kmers_varlen(seqs, k)
        assert packed.unpack_to_bytes(rows, k) == [
            bytes(r.tolist()) for r in expect
        ]

    @given(st.lists(dna, min_size=1, max_size=6), st.sampled_from((31, 63)))
    def test_counts_parity(self, seqs, k):
        brows = canonical_kmers_varlen(seqs, k)
        prows, pcounts = kmer_counts_packed(
            canonical_kmers_varlen_packed(seqs, k), k
        )
        expect = kmer_counts(brows)
        got = dict(
            zip(packed.unpack_to_bytes(prows, k), pcounts.tolist())
        )
        assert got == expect

    @given(dna, st.sampled_from((31, 33, 63)), st.sampled_from((2, 8)))
    def test_owner_parity(self, seq, k, n_ranks):
        brows = canonical_kmers(encode(seq), k)
        prows = canonical_kmers_packed(encode(seq), k)
        assert np.array_equal(
            kmer_owner_packed(prows, k, n_ranks), kmer_owner(brows, n_ranks)
        )

    def test_empty_reads(self):
        for k in BOUNDARY_KS:
            assert canonical_kmers_varlen_packed([], k).shape == (
                0,
                packed.words_for(k),
            )
            assert canonical_kmers_varlen_packed(["", "AC"], k).shape[0] == 0
            rows, counts = kmer_counts_packed(
                canonical_kmers_varlen_packed([], k), k
            )
            assert rows.shape[0] == 0 and counts.shape[0] == 0

    def test_all_n_read_yields_nothing(self):
        assert canonical_kmers_packed(encode("N" * 80), 31).shape[0] == 0
