"""Parity of the array-native assemble_encoded() path against the
record-list assemble() adapter, and of the numpy detonate k-mer path
against the historical set-based computation."""

import numpy as np
import pytest

from repro.assembly import packed as packedmod
from repro.assembly.base import AssemblyParams, assemble_encoded
from repro.assembly.contigs import Contig
from repro.assembly.kmers import canonical_kmers_varlen_packed
from repro.assembly.registry import get_assembler
from repro.core.assembly_cache import use_assembly_cache
from repro.core.multikmer import AssemblyWorkload
from repro.evaluation.detonate import KMER_METRIC_K, evaluate
from repro.seq.alphabet import decode, encode, random_dna
from repro.seq.readstore import ReadStore
from repro.seq.transcriptome import Transcript, Transcriptome

ASSEMBLERS = ["velvet", "ray", "abyss", "contrail", "trinity"]
PARAMS = AssemblyParams(k=21)


def _result_tuple(result):
    return (result.assembler, result.k, result.contigs, result.stats,
            result.usage, result.usage.phases)


@pytest.mark.parametrize("name", ASSEMBLERS)
def test_assemble_matches_assemble_encoded(name, reads_single):
    reads = reads_single[:800]
    assembler = get_assembler(name)
    store = ReadStore.from_reads(reads)
    legacy = assembler.assemble(list(reads), PARAMS)
    encoded = assembler.assemble_encoded(store, PARAMS)
    assert _result_tuple(legacy) == _result_tuple(encoded)


def test_some_assembler_produces_contigs(reads_single):
    """Guard: the parity above must not be comparing empty to empty."""
    store = ReadStore.from_reads(reads_single[:800])
    result = get_assembler("velvet").assemble_encoded(store, PARAMS)
    assert result.contigs


def test_module_dispatch_falls_back_to_records(reads_single):
    """assemble_encoded() must serve assemblers without an encoded path
    by decoding the store back to records."""

    class LegacyOnly:
        def assemble(self, reads, params, **kwargs):
            return ("legacy", len(reads), params.k, kwargs)

    store = ReadStore.from_reads(reads_single[:30])
    out = assemble_encoded(LegacyOnly(), store, PARAMS, n_ranks=3)
    assert out == ("legacy", 30, 21, {"n_ranks": 3})


@pytest.mark.parametrize("name,n_ranks", [("ray", 4), ("contrail", 2)])
def test_workload_store_vs_legacy_reads_parity(name, n_ranks, reads_single):
    """The encode-once workload and the legacy record-tuple workload
    produce identical contigs, stats and usage (hence comm bytes and,
    downstream, virtual TTCs)."""
    reads = reads_single[:600]
    common = dict(
        assembler_name=name, params=PARAMS, n_ranks=n_ranks,
        read_scale=4.0, graph_scale=2.0,
    )
    with use_assembly_cache(None):
        store = ReadStore.from_reads(reads)
        r_new, u_new = AssemblyWorkload(store=store, **common)()
        r_old, u_old = AssemblyWorkload(reads=tuple(reads), **common)()
    assert _result_tuple(r_new) == _result_tuple(r_old)
    assert u_new == u_old
    assert u_new.comm_bytes == u_old.comm_bytes


class TestDetonateKmerParity:
    def _refs(self, n=4, length=300, seed=7):
        rng = np.random.default_rng(seed)
        return [decode(random_dna(length, rng)) for _ in range(n)]

    def test_unique_keys_and_membership_match_sets(self):
        refs = self._refs()
        k = KMER_METRIC_K
        rows_a = canonical_kmers_varlen_packed(refs[:2], k)
        rows_b = canonical_kmers_varlen_packed(refs[1:], k)
        set_a = set(packedmod.key_list(rows_a, k))
        uniq_a = packedmod.unique_keys(rows_a, k)
        assert sorted(set_a) == packedmod.keys(uniq_a, k).tolist()
        probe = packedmod.unique_keys(rows_b, k)
        got = packedmod.keys_in(probe, uniq_a)
        want = np.array(
            [key in set_a for key in packedmod.key_list(probe, k)]
        )
        np.testing.assert_array_equal(got, want)
        assert got.any() and not got.all()  # overlap is partial

    def test_keys_in_empty_haystack(self):
        k = KMER_METRIC_K
        probe = packedmod.unique_keys(
            canonical_kmers_varlen_packed(self._refs(1), k), k
        )
        empty = np.empty(0, dtype=probe.dtype)
        assert not packedmod.keys_in(probe, empty).any()

    def test_scores_match_set_based_reference(self):
        """Pin evaluate()'s WKR/kc against an independent set-based
        recomputation (the pre-numpy algorithm)."""
        refs = self._refs()
        weights = [0.4, 0.3, 0.2, 0.1]
        reference = Transcriptome(
            "ref",
            [
                Transcript(f"t{i}", encode(s), w)
                for i, (s, w) in enumerate(zip(refs, weights))
            ],
        )
        contigs = [
            Contig("c0", refs[0], 10.0, 31, "test"),
            Contig("c1", refs[2][:150], 10.0, 31, "test"),
        ]
        scores = evaluate(contigs, reference, total_read_kmers=100_000)

        k = KMER_METRIC_K
        asm = set(
            packedmod.key_list(
                canonical_kmers_varlen_packed([c.seq for c in contigs], k), k
            )
        )
        num = den = 0.0
        for t, w in zip(reference.transcripts, weights):
            tk = set(
                packedmod.key_list(
                    canonical_kmers_varlen_packed([t.seq], k), k
                )
            )
            if not tk:
                continue
            num += w * len(tk & asm) / len(tk)
            den += w
        wkr = num / den
        kc = wkr - len(asm) / (2.0 * 100_000)
        assert scores.weighted_kmer_recall == round(wkr, 4)
        assert scores.kc_score == round(kc, 4)
