"""Sharded spectrum build: shard/bucket parity, overlap spans, fallback.

The sharded build must be *invisible* except for wall time: for every
``(n_shards, n_buckets)`` combination the merged :class:`KmerSpectrum`
arrays — ``distinct``, ``counts``, ``inverse``, ``read_offsets`` and
``rel_positions`` — are bit-for-bit equal to the serial fused build, the
radix-bucket merge preserves global sort order across the 1-word/2-word
packing boundary, worker failure degrades to the serial path, and the
:class:`KmerTableCache` sees the exact same hit/miss sequence either way.
"""

import random
from types import SimpleNamespace

import numpy as np
import pytest

from repro.assembly import packed as packedmod
from repro.assembly.sweep import (
    KmerTableCache,
    PendingSpectraBuild,
    SpectrumShardWorkload,
    _merge_shard_spectra,
    _shard_ranges,
    build_spectra,
    submit_spectra_build,
)
from repro.core.rnnotator import PipelineConfig
from repro.obs import Tracer, use_tracer
from repro.parallel.executor import ProcessExecutor
from repro.seq.fastq import FastqRecord
from repro.seq.readstore import ReadStore

#: k values straddling the packing word boundary: minimum k, a mid-size
#: 1-word k, the largest 1-word k, the smallest 2-word k, and MAX_K.
BOUNDARY_KS = (3, 25, 32, 33, 63)


def _random_reads(rng, n_reads, max_len=89, n_rate=0.03):
    """Random reads with Ns sprinkled in and ragged lengths (some too
    short for any k, some empty)."""
    reads = []
    for i in range(n_reads):
        length = rng.randrange(3, max_len)
        seq = "".join(
            "N" if rng.random() < n_rate else rng.choice("ACGT")
            for _ in range(length)
        )
        reads.append(FastqRecord(id=f"r{i}", seq=seq, qual="I" * length))
    return reads


def _sharded_inline(store, ks, n_shards, n_buckets):
    """Run the shard workloads in-process and merge — the exact code the
    pool executes, minus the pool."""
    parts_by_shard = []
    for lo, hi in _shard_ranges(store.n_reads, n_shards):
        (parts, _r0, _r1), _usage = SpectrumShardWorkload(
            store=store, ks=tuple(ks), reads_lo=lo, reads_hi=hi,
            n_buckets=n_buckets,
        )()
        parts_by_shard.append(parts)
    return tuple(
        _merge_shard_spectra(
            store, k, [p[k] for p in parts_by_shard], n_buckets
        )
        for k in ks
    )


def assert_spectra_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.k == w.k
        assert g.store_digest == w.store_digest
        np.testing.assert_array_equal(g.distinct, w.distinct)
        np.testing.assert_array_equal(g.counts, w.counts)
        np.testing.assert_array_equal(g.inverse, w.inverse)
        np.testing.assert_array_equal(g.read_offsets, w.read_offsets)
        np.testing.assert_array_equal(g.rel_positions, w.rel_positions)


# ---------------------------------------------------------------------------
# Tentpole property: shard/bucket decomposition is bit-identical.
# ---------------------------------------------------------------------------


class TestShardBucketParity:
    @pytest.fixture(scope="class")
    def store(self):
        store = ReadStore.from_reads(
            _random_reads(random.Random(20260809), 137)
        )
        yield store
        store.close()

    @pytest.fixture(scope="class")
    def serial(self, store):
        spectra = build_spectra(store, BOUNDARY_KS)
        yield spectra
        for sp in spectra:
            sp.close()

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
    @pytest.mark.parametrize("n_buckets", [1, 4, 16])
    def test_parity(self, store, serial, n_shards, n_buckets):
        got = _sharded_inline(store, BOUNDARY_KS, n_shards, n_buckets)
        try:
            assert_spectra_equal(got, serial)
        finally:
            for sp in got:
                sp.close()

    def test_shards_exceeding_reads(self, store, serial):
        # More shards than reads clamps to one shard per read.
        got = _sharded_inline(store, BOUNDARY_KS, 10_000, 4)
        try:
            assert_spectra_equal(got, serial)
        finally:
            for sp in got:
                sp.close()


class TestShardRanges:
    def test_partition(self):
        for n_reads in (0, 1, 5, 137):
            for n_shards in (1, 2, 3, 7, 200):
                ranges = _shard_ranges(n_reads, n_shards)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == n_reads
                for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
                    assert a1 == b0
                sizes = [hi - lo for lo, hi in ranges]
                assert max(sizes) - min(sizes) <= 1

    def test_clamped_to_reads(self):
        assert len(_shard_ranges(3, 8)) == 3
        assert _shard_ranges(0, 4) == [(0, 0)]


class TestBucketIds:
    def test_rejects_non_power_of_two(self):
        for bad in (0, 3, 6, 12):
            with pytest.raises(ValueError, match="power of two"):
                packedmod.bucket_ids(np.zeros(1, dtype=np.uint64), 25, bad)

    def test_single_bucket(self):
        keys = np.arange(10, dtype=np.uint64)
        assert packedmod.bucket_ids(keys, 25, 1).tolist() == [0] * 10

    @pytest.mark.parametrize("k", BOUNDARY_KS)
    def test_monotone_over_sorted_keys(self, k):
        # The merge invariant: bucket ids are a prefix of the sort key,
        # so they must be non-decreasing over any sorted key array.
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 4, size=(500, k), dtype=np.uint8)
        keys = np.unique(packedmod.keys(rows, k))
        for n_buckets in (1, 4, 16, 64):
            bids = packedmod.bucket_ids(keys, k, n_buckets)
            assert (np.diff(bids) >= 0).all()
            assert bids.min() >= 0 and bids.max() < n_buckets


# ---------------------------------------------------------------------------
# The real pool path, the failure fallback, and the cache regression.
# ---------------------------------------------------------------------------


class TestPoolBuild:
    def test_process_executor_parity_and_spans(self):
        store = ReadStore.from_reads(
            _random_reads(random.Random(11), 64, max_len=61)
        )
        ks = (25, 33)
        try:
            serial = build_spectra(store, ks)
            tr = Tracer()
            with use_tracer(tr), ProcessExecutor(max_workers=2) as ex:
                assert ex.supports_overlap
                got = build_spectra(store, ks, executor=ex)
            try:
                assert_spectra_equal(got, serial)
            finally:
                for sp in got:
                    sp.close()
            for sp in serial:
                sp.close()
        finally:
            store.close()
        spans = [r for r in tr.records() if r["type"] == "span"]
        builds = [s for s in spans if s["name"] == "spectrum.build"]
        assert len(builds) == 1
        assert builds[0]["attrs"]["mode"] == "sharded"
        assert builds[0]["attrs"]["n_shards"] == 2
        shard_spans = [s for s in spans if s["name"] == "spectrum.shard"]
        assert len(shard_spans) == 2
        # Shard spans advance no virtual time (critpath-invisible).
        assert all(s["v0"] == s["v1"] for s in shard_spans)
        assert len([s for s in spans if s["name"] == "spectrum.merge"]) == 2

    def test_worker_failure_falls_back_to_serial(self):
        store = ReadStore.from_reads(
            _random_reads(random.Random(13), 40, max_len=50)
        )
        ks = (25,)
        try:
            serial = build_spectra(store, ks)
            failed = SimpleNamespace(
                outcome=lambda: SimpleNamespace(
                    result=None, error=RuntimeError("shard died")
                )
            )
            fake_executor = SimpleNamespace(
                supports_overlap=True,
                max_workers=2,
                submit=lambda work, context=None: failed,
            )
            tr = Tracer()
            with use_tracer(tr):
                pending = submit_spectra_build(store, ks, fake_executor)
                assert isinstance(pending, PendingSpectraBuild)
                got = pending.collect()
            try:
                assert_spectra_equal(got, serial)
            finally:
                for sp in got:
                    sp.close()
            for sp in serial:
                sp.close()
        finally:
            store.close()
        events = [r for r in tr.records() if r["type"] == "event"]
        assert any(e["name"] == "spectrum.build_fallback" for e in events)
        builds = [
            r
            for r in tr.records()
            if r["type"] == "span" and r["name"] == "spectrum.build"
        ]
        assert len(builds) == 1 and builds[0]["attrs"]["mode"] == "serial"

    def test_submit_requires_ks_and_power_of_two_buckets(self):
        store = ReadStore.from_reads(
            _random_reads(random.Random(17), 5, max_len=30)
        )
        fake = SimpleNamespace(
            supports_overlap=True, max_workers=2, submit=lambda w, c=None: None
        )
        try:
            with pytest.raises(ValueError, match="at least one k"):
                submit_spectra_build(store, (), fake)
            with pytest.raises(ValueError, match="power of two"):
                submit_spectra_build(store, (25,), fake, n_buckets=6)
        finally:
            store.close()


class TestCacheRegression:
    def test_hit_miss_counters_unchanged_by_parallel_build(self):
        """The sharded build never consults the table cache: resolving
        its spectra produces the identical hit/miss sequence as the
        serial build's."""
        store = ReadStore.from_reads(
            _random_reads(random.Random(19), 50, max_len=60)
        )
        ks = (25, 31)
        try:
            serial_cache = KmerTableCache()
            serial = build_spectra(store, ks)
            assert (serial_cache.hits, serial_cache.misses) == (0, 0)
            for sp in serial:
                assert serial_cache.resolve(sp) is sp
                assert serial_cache.resolve(sp) is sp
            sharded_cache = KmerTableCache()
            sharded = _sharded_inline(store, ks, 3, 4)
            # The build itself must not have touched any cache.
            assert (sharded_cache.hits, sharded_cache.misses) == (0, 0)
            for sp in sharded:
                assert sharded_cache.resolve(sp) is sp
                assert sharded_cache.resolve(sp) is sp
            assert serial_cache.hits == sharded_cache.hits == len(ks)
            assert serial_cache.misses == sharded_cache.misses == len(ks)
            for sp in serial:
                sp.close()
            for sp in sharded:
                sp.close()
        finally:
            store.close()


class TestConfigValidation:
    def test_spectrum_shards_validation(self):
        PipelineConfig(spectrum_shards=None)
        PipelineConfig(spectrum_shards=4)
        with pytest.raises(ValueError, match="spectrum_shards"):
            PipelineConfig(spectrum_shards=0)

    def test_spectrum_buckets_validation(self):
        PipelineConfig(spectrum_buckets=1)
        PipelineConfig(spectrum_buckets=64)
        for bad in (0, 3, 12):
            with pytest.raises(ValueError, match="spectrum_buckets"):
                PipelineConfig(spectrum_buckets=bad)
