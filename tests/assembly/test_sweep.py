"""Count-once fused extraction: bit-exactness, sharing and caching.

The fused layer must be *invisible* except for wall time: every spectrum
quantity reconstructs the per-k extraction path bit-for-bit, the shared
segments follow the ReadStore lifecycle discipline, and the table cache
only ever hands back content-identical spectra.
"""

import os
import pickle
import random

import numpy as np
import pytest

from repro.assembly import packed as packedmod
from repro.assembly.dbg import KmerTable, build_kmer_table_packed
from repro.assembly.kmers import (
    canonical_kmers_packed,
    canonical_kmers_store_packed,
    fused_canonical_positions_packed,
)
from repro.assembly.sweep import (
    KmerSpectrum,
    KmerTableCache,
    build_spectra,
    get_kmer_table_cache,
    set_kmer_table_cache,
    use_kmer_table_cache,
)
from repro.obs import Tracer, use_tracer
from repro.seq.fastq import FastqRecord
from repro.seq.readstore import ReadStore


def _random_reads(rng, n_reads, max_len=400, n_rate=0.02):
    """Random reads with Ns sprinkled in and wildly varying lengths."""
    reads = []
    for i in range(n_reads):
        length = rng.randrange(0, max_len)
        seq = "".join(
            "N" if rng.random() < n_rate else rng.choice("ACGT")
            for _ in range(length)
        )
        reads.append(FastqRecord(id=f"r{i}", seq=seq, qual="I" * length))
    return reads


def _store(rng, n_reads=60, **kw):
    return ReadStore.from_reads(_random_reads(rng, n_reads, **kw))


# ---------------------------------------------------------------------------
# Satellite: fused/derived extraction is bit-identical to the per-k path.
# ---------------------------------------------------------------------------


class TestFusedExtractionProperty:
    # k sets deliberately span the 1-word (k<=32) / 2-word (k>32) packing
    # boundary, including deriving a 1-word k from a 2-word kmax.
    K_SETS = [
        (3, 5, 7),
        (21, 25, 31),
        (25, 32),
        (31, 33),
        (25, 33, 63),
        (32, 33),
        (63,),
        (3, 63),
    ]

    @pytest.mark.parametrize("trial", range(10))
    def test_fused_matches_per_k_extraction(self, trial):
        rng = random.Random(1000 + trial)
        store = _store(rng)
        ks = self.K_SETS[trial % len(self.K_SETS)]
        fused = fused_canonical_positions_packed(store.codes, list(ks))
        for k in ks:
            rows, positions = fused[k]
            want = canonical_kmers_store_packed(store, k)
            np.testing.assert_array_equal(rows, want)
            # Positions must point at exactly the N-free windows, in order.
            assert positions.shape[0] == rows.shape[0]
            assert bool(np.all(np.diff(positions) > 0))

    @pytest.mark.parametrize("k", [3, 4, 31, 32, 33, 62, 63])
    def test_boundary_k_on_adversarial_codes(self, k):
        # All-N reads, empty reads, reads exactly k long, homopolymers.
        reads = [
            FastqRecord(id="a", seq="N" * 80, qual="I" * 80),
            FastqRecord(id="b", seq="", qual=""),
            FastqRecord(id="c", seq="A" * k, qual="I" * k),
            FastqRecord(id="d", seq="ACGT" * 20, qual="I" * 80),
            FastqRecord(id="e", seq="G" * (k - 1), qual="I" * (k - 1)),
        ]
        store = ReadStore.from_reads(reads)
        fused = fused_canonical_positions_packed(store.codes, [k])
        rows, _ = fused[k]
        np.testing.assert_array_equal(
            rows, canonical_kmers_store_packed(store, k)
        )
        store.close()

    def test_single_read_tail_windows(self):
        # Small-k windows past the kmax main section come from the tail
        # path: a read shorter than kmax but >= k exercises it directly.
        rng = random.Random(7)
        for _ in range(20):
            store = _store(rng, n_reads=8, max_len=40)
            fused = fused_canonical_positions_packed(store.codes, [5, 33])
            for k in (5, 33):
                np.testing.assert_array_equal(
                    fused[k][0], canonical_kmers_store_packed(store, k)
                )
            store.close()


# ---------------------------------------------------------------------------
# KmerSpectrum: reconstruction invariants.
# ---------------------------------------------------------------------------


class TestKmerSpectrum:
    @pytest.fixture()
    def store(self):
        store = _store(random.Random(42), n_reads=80)
        yield store
        store.close()

    def test_spectrum_reconstructs_extraction(self, store):
        for sp in build_spectra(store, [21, 25, 33]):
            stream = canonical_kmers_packed(store.codes, sp.k)
            # Occurrence stream == the flat extraction, bit-for-bit.
            np.testing.assert_array_equal(sp.distinct[sp.inverse], stream)
            # Distinct/counts == unique_counts of the stream.
            rows, counts = packedmod.unique_counts(stream, sp.k)
            np.testing.assert_array_equal(sp.distinct, rows)
            np.testing.assert_array_equal(sp.counts, counts)
            # Per-read slices == per-read extraction.
            for i in range(store.n_reads):
                s, e = int(sp.read_offsets[i]), int(sp.read_offsets[i + 1])
                per_read = canonical_kmers_packed(store.read_codes(i), sp.k)
                np.testing.assert_array_equal(
                    sp.distinct[sp.inverse[s:e]], per_read
                )
                if e > s:
                    rel = sp.rel_positions[s:e]
                    assert int(rel.min()) >= 0
                    read_len = int(store.offsets[i + 1] - store.offsets[i])
                    assert int(rel.max()) <= read_len - sp.k

    def test_table_and_owners_match_per_k_path(self, store):
        (sp,) = build_spectra(store, [25])
        stream = canonical_kmers_packed(store.codes, 25)
        want = build_kmer_table_packed(
            25, *packedmod.unique_counts(stream, 25)
        )
        got = sp.table()
        np.testing.assert_array_equal(got.packed, want.packed)
        np.testing.assert_array_equal(got.count_array, want.count_array)
        from repro.assembly.kmers import kmer_owner_packed

        for p in (1, 3, 8):
            np.testing.assert_array_equal(
                sp.owners(p), kmer_owner_packed(sp.distinct, 25, p)
            )
        # owners() memoizes per rank count.
        assert sp.owners(3) is sp.owners(3)

    def test_share_pickle_attach_roundtrip(self, store):
        (sp,) = build_spectra(store, [25])
        payload = pickle.dumps(sp, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(payload) < 1024  # O(1) handle, not the arrays
        assert sp.shared and sp.owns_shm
        # In-process unpickle dedups to the same live object.
        assert pickle.loads(payload) is sp
        handle = sp.handle()
        assert handle.shm_name == sp.share().shm_name  # share() idempotent
        sp.close()
        assert sp.closed
        sp.close()  # double close is safe
        with pytest.raises(ValueError):
            _ = sp.distinct
        with pytest.raises(ValueError):
            sp.share()

    def test_shared_views_stay_bit_identical(self, store):
        (local,) = build_spectra(store, [21])
        distinct = local.distinct.copy()
        counts = local.counts.copy()
        inverse = local.inverse.copy()
        local.share()
        np.testing.assert_array_equal(local.distinct, distinct)
        np.testing.assert_array_equal(local.counts, counts)
        np.testing.assert_array_equal(local.inverse, inverse)
        assert not local.distinct.flags.writeable
        local.close()

    def test_build_spectra_empty_and_dedup_ks(self, store):
        assert build_spectra(store, []) == ()
        spectra = build_spectra(store, [25, 25, 21])
        assert [sp.k for sp in spectra] == [21, 25]
        for sp in spectra:
            assert sp.store_digest == store.digest


# ---------------------------------------------------------------------------
# Satellite: presorted fast paths + debug sortedness assertion.
# ---------------------------------------------------------------------------


class TestPresortedFastPath:
    def _stream(self, k=25):
        store = _store(random.Random(5), n_reads=40)
        stream = canonical_kmers_packed(store.codes, k)
        store.close()
        return stream

    def test_unique_counts_presorted_matches(self):
        stream = self._stream()
        rows, counts = packedmod.unique_counts(stream, 25)
        rows2, counts2 = packedmod.unique_counts(rows, 25, presorted=True)
        np.testing.assert_array_equal(rows, rows2)
        np.testing.assert_array_equal(counts2, np.ones_like(counts2))
        # A presorted stream with duplicates still counts correctly.
        order = np.argsort(packedmod.keys(stream, 25), kind="stable")
        srows, scounts = packedmod.unique_counts(
            stream[order], 25, presorted=True
        )
        np.testing.assert_array_equal(srows, rows)
        np.testing.assert_array_equal(scounts, counts)

    def test_from_packed_presorted_matches(self):
        stream = self._stream()
        rows, counts = packedmod.unique_counts(stream, 25)
        base = KmerTable.from_packed(25, rows, counts)
        fast = KmerTable.from_packed(25, rows, counts, presorted=True)
        np.testing.assert_array_equal(base.packed, fast.packed)
        np.testing.assert_array_equal(base.count_array, fast.count_array)

    def test_debug_flag_catches_unsorted_input(self, monkeypatch):
        stream = self._stream()
        rows, counts = packedmod.unique_counts(stream, 25)
        bad_rows, bad_counts = rows[::-1].copy(), counts[::-1].copy()
        monkeypatch.delenv(packedmod.DEBUG_SORTED_ENV, raising=False)
        assert not packedmod.debug_assert_sorted_enabled()
        # Without the flag the lie goes through (fast path trusts caller).
        KmerTable.from_packed(25, bad_rows, bad_counts, presorted=True)
        monkeypatch.setenv(packedmod.DEBUG_SORTED_ENV, "1")
        assert packedmod.debug_assert_sorted_enabled()
        with pytest.raises(AssertionError):
            KmerTable.from_packed(25, bad_rows, bad_counts, presorted=True)
        with pytest.raises(AssertionError):
            packedmod.unique_counts(bad_rows, 25, presorted=True)
        # Sorted input passes under the flag.
        KmerTable.from_packed(25, rows, counts, presorted=True)


# ---------------------------------------------------------------------------
# KmerTableCache: sharing + counters.
# ---------------------------------------------------------------------------


class TestKmerTableCache:
    def test_resolve_shares_and_counts(self):
        store = _store(random.Random(11), n_reads=30)
        (sp1,) = build_spectra(store, [25])
        (sp2,) = build_spectra(store, [25])
        tracer = Tracer()
        cache = KmerTableCache()
        with use_tracer(tracer):
            assert cache.resolve(sp1) is sp1  # miss registers
            assert cache.resolve(sp2) is sp1  # hit: same (digest, k)
        assert (cache.hits, cache.misses) == (1, 1)
        snap = tracer.metrics.snapshot()["counters"]
        assert snap["kmer_table.hit"] == 1
        assert snap["kmer_table.miss"] == 1
        assert snap["kmer_table.bytes"] == sp1.nbytes
        # A closed registrant drops out and the next resolve re-registers.
        sp1.share()
        sp1.close()
        assert cache.resolve(sp2) is sp2
        assert len(cache) == 1
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)
        sp2.close()
        store.close()

    def test_scoped_install(self):
        before = get_kmer_table_cache()
        mine = KmerTableCache(max_entries=2)
        with use_kmer_table_cache(mine):
            assert get_kmer_table_cache() is mine
            with use_kmer_table_cache(None):
                assert get_kmer_table_cache() is None
        assert get_kmer_table_cache() is before
        prev = set_kmer_table_cache(mine)
        assert set_kmer_table_cache(prev) is mine

    def test_lru_eviction(self):
        store = _store(random.Random(13), n_reads=20)
        spectra = build_spectra(store, [21, 25, 31])
        cache = KmerTableCache(max_entries=2)
        for sp in spectra:
            cache.resolve(sp)
        assert len(cache) == 2  # k=21 evicted
        assert cache.resolve(spectra[0]) is spectra[0]
        store.close()


def test_no_shm_leak_after_spectra_lifecycle():
    before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
    store = _store(random.Random(3), n_reads=20)
    spectra = build_spectra(store, [21, 33])
    for sp in spectra:
        sp.share()
        pickle.loads(pickle.dumps(sp))
    for sp in spectra:
        sp.close()
    store.close()
    if before is not None:
        leaked = set(os.listdir("/dev/shm")) - before
        assert not {n for n in leaked if n.startswith("psm_")}
