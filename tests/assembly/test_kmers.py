"""Tests for k-mer extraction, canonicalization, counting and partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assembly.kmers import (
    canonical,
    canonical_kmers,
    canonical_kmers_varlen,
    kmer_counts,
    kmer_owner,
    owner_of,
    reads_to_code_matrix,
    revcomp_kmer,
)
from repro.seq.alphabet import decode, encode, reverse_complement
from repro.seq.fastq import FastqRecord

dna = st.text(alphabet="ACGT", min_size=1, max_size=120)


def rec(seq):
    return FastqRecord("r", seq, "I" * len(seq))


class TestCodeMatrix:
    def test_basic(self):
        m = reads_to_code_matrix([rec("ACGT"), rec("TTTT")])
        assert m.shape == (2, 4)
        assert decode(m[0]) == "ACGT"

    def test_empty(self):
        assert reads_to_code_matrix([]).shape == (0, 0)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            reads_to_code_matrix([rec("ACGT"), rec("AC")])


class TestCanonicalKmers:
    def test_simple_extraction(self):
        rows = canonical_kmers(encode("ACGTA"), 3)
        assert rows.shape == (3, 3)

    def test_canonical_choice(self):
        # "TTT" canonicalizes to "AAA"
        rows = canonical_kmers(encode("TTT"), 3)
        assert decode(rows[0]) == "AAA"

    def test_palindrome_stable(self):
        # "ACGT" is its own reverse complement
        rows = canonical_kmers(encode("ACGT"), 4)
        assert decode(rows[0]) == "ACGT"

    def test_n_windows_dropped(self):
        rows = canonical_kmers(encode("ACGNACG"), 3)
        # windows covering the N (positions 1..3) are dropped
        assert rows.shape[0] == 2

    def test_too_short_sequence(self):
        assert canonical_kmers(encode("AC"), 3).shape == (0, 3)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            canonical_kmers(encode("ACGT"), 2)

    def test_matrix_input(self):
        m = reads_to_code_matrix([rec("ACGTA"), rec("GGGGG")])
        rows = canonical_kmers(m, 3)
        assert rows.shape == (6, 3)

    def test_varlen(self):
        rows = canonical_kmers_varlen(["ACGTA", "GG", "TTTT"], 3)
        assert rows.shape == (5, 3)  # 3 + 0 + 2

    def test_varlen_empty(self):
        assert canonical_kmers_varlen([], 5).shape == (0, 5)

    @given(dna)
    def test_strand_invariance(self, s):
        """The canonical k-mer multiset is identical for a sequence and
        its reverse complement — the core DBG invariant."""
        k = min(7, len(s))
        if k < 3:
            return
        fwd = canonical_kmers(encode(s), k)
        rev = canonical_kmers(encode(reverse_complement(s)), k)
        key = lambda rows: sorted(map(bytes, rows))
        assert key(fwd) == key(rev)

    @given(dna)
    def test_count_conservation(self, s):
        k = 5
        if len(s) < k:
            return
        rows = canonical_kmers(encode(s), k)
        assert rows.shape[0] == len(s) - k + 1


class TestSingleKmerOps:
    def test_revcomp_kmer(self):
        assert revcomp_kmer(bytes(encode("ACG"))) == bytes(encode("CGT"))

    def test_canonical_single(self):
        t = bytes(encode("TTT"))
        a = bytes(encode("AAA"))
        assert canonical(t) == a
        assert canonical(a) == a

    @given(dna)
    def test_canonical_idempotent(self, s):
        km = bytes(encode(s))
        assert canonical(canonical(km)) == canonical(km)

    @given(dna)
    def test_canonical_strand_symmetric(self, s):
        km = bytes(encode(s))
        assert canonical(km) == canonical(revcomp_kmer(km))


class TestCounting:
    def test_counts(self):
        rows = canonical_kmers(encode("AAAA"), 3)  # AAA twice
        counts = kmer_counts(rows)
        assert counts == {bytes(encode("AAA")): 2}

    def test_empty(self):
        assert kmer_counts(np.zeros((0, 3), dtype=np.uint8)) == {}

    @given(dna)
    def test_total_count_preserved(self, s):
        k = 4
        if len(s) < k:
            return
        rows = canonical_kmers(encode(s), k)
        counts = kmer_counts(rows)
        assert sum(counts.values()) == rows.shape[0]
        assert all(len(key) == k for key in counts)


class TestPartitioning:
    def test_owner_range(self):
        rows = canonical_kmers(encode("ACGTACGTACGTAAAGGGCCC"), 7)
        owners = kmer_owner(rows, 5)
        assert ((owners >= 0) & (owners < 5)).all()

    def test_owner_deterministic(self):
        rows = canonical_kmers(encode("ACGTACGTACGT"), 5)
        a = kmer_owner(rows, 4)
        b = kmer_owner(rows, 4)
        assert (a == b).all()

    def test_owner_of_matches_vectorized(self):
        rows = canonical_kmers(encode("ACGTACGTAAACCC"), 5)
        owners = kmer_owner(rows, 7)
        for i in range(rows.shape[0]):
            assert owner_of(bytes(rows[i]), 7) == owners[i]

    def test_single_rank(self):
        rows = canonical_kmers(encode("ACGTACGT"), 5)
        assert (kmer_owner(rows, 1) == 0).all()

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            kmer_owner(np.zeros((1, 3), dtype=np.uint8), 0)

    def test_empty(self):
        assert kmer_owner(np.zeros((0, 5), dtype=np.uint8), 3).shape == (0,)

    def test_balance(self):
        """Hash partition spreads a large random k-mer set roughly evenly."""
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 4, size=(20_000, 21)).astype(np.uint8)
        owners = kmer_owner(rows, 8)
        counts = np.bincount(owners, minlength=8)
        assert counts.min() > 0.8 * counts.mean()
        assert counts.max() < 1.2 * counts.mean()
