"""Tests for contig records, stats and graph cleanup."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.assembly.cleanup import (
    build_unitig_graph,
    clean_unitigs,
    clip_tips,
    pop_bubbles,
)
from repro.assembly.contigs import AssemblyResult, Contig, assembly_stats, n50
from repro.assembly.dbg import Unitig
from repro.parallel.usage import ResourceUsage
from repro.seq.alphabet import encode


def unitig(seq: str, cov: float) -> Unitig:
    codes = encode(seq)
    return Unitig(codes=codes, coverage=cov, n_kmers=max(len(seq) - 4, 1))


class TestN50:
    def test_empty(self):
        assert n50([]) == 0

    def test_single(self):
        assert n50([100]) == 100

    def test_classic(self):
        # total 90; half 45; cumulative 30, 55 -> N50 = 25
        assert n50([10, 20, 25, 30, 5]) == 25

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1))
    def test_n50_is_a_length(self, lengths):
        assert n50(lengths) in lengths

    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=1))
    def test_n50_at_least_median_length_mass(self, lengths):
        value = n50(lengths)
        covered = sum(l for l in lengths if l >= value)
        assert covered >= sum(lengths) / 2


class TestContig:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Contig("c", "", 1.0, 31, "x")

    def test_codes(self):
        c = Contig("c", "ACGT", 1.0, 3, "x")
        assert c.codes.tolist() == [0, 1, 2, 3]
        assert len(c) == 4

    def test_stats(self):
        contigs = [
            Contig("a", "A" * 100, 10.0, 31, "x"),
            Contig("b", "C" * 300, 20.0, 31, "x"),
        ]
        s = assembly_stats(contigs)
        assert s["n_contigs"] == 2
        assert s["total_bp"] == 400
        assert s["n50"] == 300
        assert s["max_len"] == 300
        assert s["mean_coverage"] == pytest.approx(15.0)

    def test_stats_empty(self):
        s = assembly_stats([])
        assert s["n_contigs"] == 0
        assert s["n50"] == 0

    def test_result_totals(self):
        res = AssemblyResult(
            assembler="x", k=31,
            contigs=[Contig("a", "ACGTT", 1.0, 3, "x")],
            usage=ResourceUsage(),
        )
        assert res.total_bp == 5
        assert len(res) == 1


class TestUnitigGraph:
    def test_graph_edges_one_per_unitig(self):
        us = [unitig("ACGTACGTAC", 5.0), unitig("GGGGCCCCAA", 3.0)]
        g = build_unitig_graph(us, 5)
        assert g.number_of_edges() == 2


class TestClipTips:
    def make_tip_scenario(self):
        """A long high-coverage backbone with a short low-coverage tip
        sharing the backbone's start junction."""
        backbone = "ACGGTCACTGATTGCCGTAAGGCTAGCTAA"
        tip = backbone[:4] + "TTCTG"  # shares left junction (k=5 -> j=4bp)
        return [unitig(backbone, 50.0), unitig(tip, 2.0)]

    def test_tip_removed(self):
        us = self.make_tip_scenario()
        kept, stats = clip_tips(us, k=5)
        assert stats.tips_removed == 1
        assert len(kept) == 1
        assert kept[0].coverage == 50.0

    def test_high_coverage_tip_kept(self):
        us = self.make_tip_scenario()
        us[1] = unitig(us[1].seq, 45.0)  # comparable coverage: not an error
        kept, stats = clip_tips(us, k=5)
        assert stats.tips_removed == 0
        assert len(kept) == 2

    def test_long_tip_kept(self):
        backbone = "ACGGTCACTGATTGCCGTAAGGCTAGCTAA"
        long_branch = backbone[:4] + "TTCTGAAGTCCATGCA"  # >= 2k
        us = [unitig(backbone, 50.0), unitig(long_branch, 2.0)]
        kept, stats = clip_tips(us, k=5, max_tip_length=10)
        assert stats.tips_removed == 0

    def test_isolated_contig_kept(self):
        us = [unitig("ACGGTCACTGATTGCCGTAAGG", 1.0)]
        kept, stats = clip_tips(us, k=5)
        assert len(kept) == 1
        assert stats.tips_removed == 0

    def test_empty(self):
        kept, stats = clip_tips([], k=5)
        assert kept == []


class TestPopBubbles:
    def make_bubble(self):
        """Two parallel unitigs with identical junctions, one low coverage."""
        a = "ACGGTCACTGATTGCCGTAA"
        b = a[:4] + "TTTCAGGACCCA" + a[-4:]  # same end junctions, similar len
        return [unitig(a, 40.0), unitig(b, 3.0)]

    def test_bubble_popped(self):
        us = self.make_bubble()
        kept, stats = pop_bubbles(us, k=5, length_tolerance=0.2)
        assert stats.bubbles_popped == 1
        assert len(kept) == 1
        assert kept[0].coverage == 40.0

    def test_different_lengths_not_popped(self):
        a = "ACGGTCACTGATTGCCGTAA"
        b = a[:4] + "T" * 40 + a[-4:]
        us = [unitig(a, 40.0), unitig(b, 3.0)]
        kept, stats = pop_bubbles(us, k=5, length_tolerance=0.1)
        assert stats.bubbles_popped == 0

    def test_empty(self):
        kept, stats = pop_bubbles([], k=5)
        assert kept == []


class TestCleanCombined:
    def test_clean_runs_both(self):
        us = TestClipTips().make_tip_scenario() + TestPopBubbles().make_bubble()
        kept, stats = clean_unitigs(us, k=5)
        assert stats.tips_removed >= 1
        assert len(kept) < len(us)

    def test_flags_disable(self):
        us = TestClipTips().make_tip_scenario()
        kept, stats = clean_unitigs(us, k=5, clip=False, pop=False)
        assert len(kept) == len(us)
