"""Bit-parity of the packed engine against the frozen dict/bytes engine.

The packed-integer rewrite is a pure representation change: assembled
contigs, k-mer tables, unitig walks, and every virtual-accounting
quantity (charged work, collective bytes, message counts, peak memory,
MapReduce stats) must be identical to the original implementation, which
is preserved verbatim in :mod:`repro.assembly.reference_impl`.
"""

import numpy as np
import pytest

from repro.assembly.abyss import AbyssAssembler
from repro.assembly.base import AssemblyParams
from repro.assembly.contrail import ContrailAssembler
from repro.assembly.dbg import build_kmer_table, extract_unitigs
from repro.assembly.kmers import canonical_kmers_varlen, kmer_counts
from repro.assembly.ray import RayAssembler
from repro.assembly.reference_impl import (
    legacy_build_kmer_table,
    legacy_extract_unitigs,
    reference_abyss_assemble,
    reference_kmer_count_job,
    reference_ray_assemble,
    reference_velvet_assemble,
)
from repro.assembly.velvet import VelvetAssembler
from repro.parallel.mapreduce import MapReduceEngine
from repro.seq.alphabet import decode, random_dna


def _rand_seq(rng, length: int) -> str:
    return decode(random_dna(length, rng))


def assert_results_identical(got, ref):
    """Contigs, stats and the full usage record must match bit-for-bit."""
    assert [c.seq for c in got.contigs] == [c.seq for c in ref.contigs]
    assert [c.coverage for c in got.contigs] == [
        c.coverage for c in ref.contigs
    ]
    assert got.stats == ref.stats
    assert got.usage.n_ranks == ref.usage.n_ranks
    assert got.usage.peak_rank_memory_bytes == ref.usage.peak_rank_memory_bytes
    # PhaseUsage is a frozen dataclass: == compares every accounting field
    # (critical/total/serial compute, comm_bytes, collectives, messages).
    assert got.usage.phases == ref.usage.phases


PARAMS = AssemblyParams(k=31, min_contig_length=100)


class TestAssemblerParity:
    def test_velvet(self, reads_single):
        got = VelvetAssembler().assemble(reads_single, PARAMS)
        ref = reference_velvet_assemble(reads_single, PARAMS)
        assert_results_identical(got, ref)

    @pytest.mark.parametrize("n_ranks", (2, 8))
    def test_ray(self, reads_single, n_ranks):
        got = RayAssembler().assemble(reads_single, PARAMS, n_ranks=n_ranks)
        ref = reference_ray_assemble(reads_single, PARAMS, n_ranks=n_ranks)
        assert_results_identical(got, ref)

    @pytest.mark.parametrize("n_ranks", (2, 8))
    def test_abyss(self, reads_single, n_ranks):
        got = AbyssAssembler().assemble(reads_single, PARAMS, n_ranks=n_ranks)
        ref = reference_abyss_assemble(reads_single, PARAMS, n_ranks=n_ranks)
        assert_results_identical(got, ref)

    def test_ray_k63(self, reads_single):
        params = AssemblyParams(k=63, min_contig_length=100)
        got = RayAssembler().assemble(reads_single, params, n_ranks=4)
        ref = reference_ray_assemble(reads_single, params, n_ranks=4)
        assert_results_identical(got, ref)


class TestContrailCountJobParity:
    def test_counts_and_stats(self, reads_single):
        params = AssemblyParams(k=31)
        reads = reads_single[:400]

        engine_new = MapReduceEngine(1)
        got = ContrailAssembler()._job_kmer_count(engine_new, reads, params)
        engine_ref = MapReduceEngine(1)
        ref = reference_kmer_count_job(engine_ref, reads, params)

        assert got == ref
        s_new, s_ref = engine_new.job_stats[0], engine_ref.job_stats[0]
        assert s_new.map_input_records == s_ref.map_input_records
        assert s_new.map_output_records == s_ref.map_output_records
        assert s_new.combine_output_records == s_ref.combine_output_records
        assert s_new.shuffle_bytes == s_ref.shuffle_bytes
        assert s_new.reduce_input_groups == s_ref.reduce_input_groups
        assert s_new.reduce_output_records == s_ref.reduce_output_records
        # Single-worker partition memory is also identical (with several
        # workers the deterministic int-key partitioner may distribute
        # groups differently from the PYTHONHASHSEED-randomized bytes
        # partitioner; the pricing formula itself is unchanged).
        assert engine_new.usage.peak_rank_memory_bytes == (
            engine_ref.usage.peak_rank_memory_bytes
        )


class TestWalkParity:
    """Randomized unitig-extraction parity across k and topology."""

    @pytest.mark.parametrize("k", (15, 31, 33, 63))
    def test_random_read_sets(self, k):
        rng = np.random.default_rng(k)
        for trial in range(6):
            n_src = int(rng.integers(1, 4))
            sources = [
                _rand_seq(rng, int(rng.integers(k + 1, 500)))
                for _ in range(n_src)
            ]
            reads = []
            for src in sources:
                for _ in range(30):
                    a = int(rng.integers(0, max(1, len(src) - k)))
                    reads.append(src[a : a + int(rng.integers(k, k + 70))])
            counts = kmer_counts(canonical_kmers_varlen(reads, k))
            if not counts:
                continue
            t_new = build_kmer_table(k, counts)
            t_ref = legacy_build_kmer_table(k, counts)
            got_u, got_steps = extract_unitigs(t_new)
            ref_u, ref_steps = legacy_extract_unitigs(t_ref)
            assert got_steps == ref_steps
            assert got_u == ref_u

    def test_palindromic_hairpin(self):
        # A sequence ending in its own reverse complement produces a walk
        # that folds back through canonical duplicates.
        k = 15
        rng = np.random.default_rng(99)
        stem = _rand_seq(rng, 60)
        from repro.seq.alphabet import reverse_complement

        seq = stem + reverse_complement(stem)
        counts = kmer_counts(canonical_kmers_varlen([seq] * 3, k))
        got = extract_unitigs(build_kmer_table(k, counts))
        ref = legacy_extract_unitigs(legacy_build_kmer_table(k, counts))
        assert got[1] == ref[1]
        assert got[0] == ref[0]

    def test_cycle(self):
        # A circular sequence: the walk must terminate via the
        # own-visited check, exactly like the sequential walker.
        k = 15
        rng = np.random.default_rng(7)
        core = _rand_seq(rng, 120)
        seq = core + core[: k + 5]
        counts = kmer_counts(canonical_kmers_varlen([seq] * 2, k))
        got = extract_unitigs(build_kmer_table(k, counts))
        ref = legacy_extract_unitigs(legacy_build_kmer_table(k, counts))
        assert got[1] == ref[1]
        assert got[0] == ref[0]

    def test_sharded_seed_parity(self):
        # Ray/ABySS walk per-rank seed subsets against the global table
        # with a shared visited set; order and dedup must match.
        k = 31
        rng = np.random.default_rng(3)
        src = _rand_seq(rng, 800)
        reads = [
            src[a : a + 70]
            for a in rng.integers(0, 730, size=120).tolist()
        ]
        counts = kmer_counts(canonical_kmers_varlen(reads, k))
        t_new = build_kmer_table(k, counts)
        t_ref = legacy_build_kmer_table(k, counts)
        keys = sorted(counts)
        shards = [keys[i::3] for i in range(3)]
        vis_new: set = set()
        vis_ref: set = set()
        for shard in shards:
            got = extract_unitigs(t_new, seeds=iter(shard), visited=vis_new)
            ref = legacy_extract_unitigs(t_ref, seeds=iter(shard), visited=vis_ref)
            assert got[1] == ref[1]
            assert got[0] == ref[0]
