"""Shared fixtures: small data sets reused across the test suite."""

import pytest

from repro.seq.datasets import tiny_dataset


@pytest.fixture(scope="session")
def ds_single():
    """Tiny single-end (B. glumae-like) data set."""
    return tiny_dataset(paired=False, seed=1)


@pytest.fixture(scope="session")
def ds_paired():
    """Tiny paired-end (P. crispa-like) data set."""
    return tiny_dataset(paired=True, seed=1)


@pytest.fixture(scope="session")
def reads_single(ds_single):
    return ds_single.run.all_reads()


@pytest.fixture(scope="session")
def reads_paired(ds_paired):
    return ds_paired.run.all_reads()
