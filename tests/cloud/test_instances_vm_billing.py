"""Tests for the instance catalog, VM lifecycle, billing and EC2 region."""

import pytest

from repro.cloud.billing import BillingLedger
from repro.cloud.clock import SimClock
from repro.cloud.ec2 import EC2Region
from repro.cloud.instances import (
    GiB,
    INSTANCE_TYPES,
    cheapest_with_memory,
    get_instance_type,
)
from repro.cloud.vm import VM, OutOfMemoryError, VMError, VMState


class TestCatalog:
    def test_paper_types_present(self):
        c3 = get_instance_type("c3.2xlarge")
        r3 = get_instance_type("r3.2xlarge")
        assert c3.vcpus == 8 and r3.vcpus == 8
        assert c3.price_per_hour == 0.42
        assert r3.price_per_hour == 0.70
        assert c3.memory_gb == pytest.approx(16, abs=1)
        assert r3.memory_gb == pytest.approx(61, abs=1)

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            get_instance_type("x1.32xlarge")

    def test_cheapest_with_memory_prefers_c3(self):
        # B. glumae preprocessing (<=15 GB) fits c3.2xlarge.
        t = cheapest_with_memory(15 * GiB, min_vcpus=8)
        assert t.name == "c3.2xlarge"

    def test_cheapest_with_memory_needs_r3(self):
        # P. crispa preprocessing (~40 GB) forces r3.2xlarge (§IV.C).
        t = cheapest_with_memory(40 * GiB, min_vcpus=8)
        assert t.name == "r3.2xlarge"

    def test_impossible_request(self):
        with pytest.raises(ValueError):
            cheapest_with_memory(10_000 * GiB)

    def test_all_types_valid(self):
        for t in INSTANCE_TYPES.values():
            assert t.vcpus >= 1 and t.memory_bytes > 0


def running_vm(itype="c3.2xlarge", launched=0.0):
    vm = VM("i-1", get_instance_type(itype), launched)
    vm.mark_running(launched + 90)
    return vm


class TestVM:
    def test_lifecycle(self):
        vm = VM("i-1", get_instance_type("c3.2xlarge"), 0.0)
        assert vm.state is VMState.PENDING
        vm.mark_running(90.0)
        assert vm.state is VMState.RUNNING
        vm.mark_terminated(100.0)
        assert vm.state is VMState.TERMINATED

    def test_double_start_rejected(self):
        vm = running_vm()
        with pytest.raises(VMError):
            vm.mark_running(200.0)

    def test_double_terminate_rejected(self):
        vm = running_vm()
        vm.mark_terminated(100.0)
        with pytest.raises(VMError):
            vm.mark_terminated(200.0)

    def test_memory_reserve_release(self):
        vm = running_vm()
        vm.reserve_memory(10 * GiB)
        assert vm.memory_free == 6 * GiB
        vm.release_memory(10 * GiB)
        assert vm.memory_free == 16 * GiB

    def test_oom(self):
        vm = running_vm("c3.2xlarge")
        with pytest.raises(OutOfMemoryError):
            vm.reserve_memory(40 * GiB)  # P. crispa preprocessing footprint

    def test_oom_fits_r3(self):
        vm = running_vm("r3.2xlarge")
        vm.reserve_memory(40 * GiB)  # fits the 61 GB type

    def test_reserve_on_pending_rejected(self):
        vm = VM("i-1", get_instance_type("c3.2xlarge"), 0.0)
        with pytest.raises(VMError):
            vm.reserve_memory(1)

    def test_release_unreserved_rejected(self):
        vm = running_vm()
        with pytest.raises(ValueError):
            vm.release_memory(1)

    def test_billable_seconds(self):
        vm = running_vm(launched=100.0)
        assert vm.billable_seconds(1100.0) == 1000.0
        vm.mark_terminated(600.0)
        assert vm.billable_seconds(10_000.0) == 500.0


class TestBilling:
    def test_rounds_up_to_full_hours(self):
        ledger = BillingLedger()
        vm = running_vm("c3.2xlarge")
        vm.mark_terminated(3601.0)
        line = ledger.charge_vm(vm, 3601.0)
        assert line.hours_billed == 2
        assert line.cost == pytest.approx(0.84)

    def test_exact_hour(self):
        ledger = BillingLedger()
        vm = running_vm()
        vm.mark_terminated(3600.0)
        assert ledger.charge_vm(vm, 3600.0).hours_billed == 1

    def test_sample_run_arithmetic(self):
        """§IV.C: 36 c3.2xlarge nodes; 1 lives ~2h47m (3 hours billed),
        35 live ~1h20m (2 hours billed) -> 0.42*(3 + 35*2) = $30.66;
        the paper reports $20.28, implying partial-hour proration or
        shorter lifetimes — our ledger models full-hour billing and the
        pipeline reproduces the paper's order of magnitude."""
        ledger = BillingLedger()
        head = running_vm()
        head.mark_terminated(2 * 3600 + 47 * 60)
        line = ledger.charge_vm(head, head.terminated_at)
        assert line.hours_billed == 3

    def test_total_and_by_type(self):
        ledger = BillingLedger()
        a = running_vm("c3.2xlarge")
        a.mark_terminated(1800)
        b = VM("i-2", get_instance_type("r3.2xlarge"), 0.0)
        b.mark_running(90)
        b.mark_terminated(1800)
        ledger.charge_vm(a, 1800)
        ledger.charge_vm(b, 1800)
        assert ledger.total_cost == pytest.approx(0.42 + 0.70)
        assert ledger.cost_by_type() == {
            "c3.2xlarge": pytest.approx(0.42),
            "r3.2xlarge": pytest.approx(0.70),
        }

    def test_report_contains_total(self):
        ledger = BillingLedger()
        vm = running_vm()
        vm.mark_terminated(100)
        ledger.charge_vm(vm, 100)
        assert "TOTAL" in ledger.report()


class TestEC2Region:
    def test_run_instances_provisions(self):
        region = EC2Region(SimClock())
        vms = region.run_instances("c3.2xlarge", 3)
        assert len(vms) == 3
        assert all(v.state is VMState.RUNNING for v in vms)
        assert region.clock.now == region.provision_seconds

    def test_terminate_bills(self):
        region = EC2Region(SimClock())
        (vm,) = region.run_instances("c3.2xlarge")
        region.clock.advance(1000)
        region.terminate(vm)
        assert region.total_cost == pytest.approx(0.42)

    def test_terminate_all(self):
        region = EC2Region(SimClock())
        region.run_instances("c3.2xlarge", 4)
        region.clock.advance(10)
        region.terminate_all()
        assert region.running() == []
        assert len(region.ledger.lines) == 4

    def test_invalid_count(self):
        region = EC2Region(SimClock())
        with pytest.raises(ValueError):
            region.run_instances("c3.2xlarge", 0)

    def test_unique_ids(self):
        region = EC2Region(SimClock())
        vms = region.run_instances("c3.2xlarge", 5)
        assert len({v.vm_id for v in vms}) == 5
