"""Tests for the virtual clock and event queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.clock import ClockError, EventQueue, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(100.0).now == 100.0

    def test_advance(self):
        c = SimClock()
        c.advance(5.0)
        c.advance(2.5)
        assert c.now == 7.5

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            SimClock().advance(-1)

    def test_advance_to(self):
        c = SimClock()
        c.advance_to(10.0)
        assert c.now == 10.0

    def test_advance_to_past_rejected(self):
        c = SimClock(10.0)
        with pytest.raises(ClockError):
            c.advance_to(5.0)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_monotonic(self, steps):
        c = SimClock()
        last = 0.0
        for dt in steps:
            c.advance(dt)
            assert c.now >= last
            last = c.now


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule_at(5.0, lambda: fired.append("b"))
        q.schedule_at(1.0, lambda: fired.append("a"))
        q.schedule_at(9.0, lambda: fired.append("c"))
        q.run()
        assert fired == ["a", "b", "c"]
        assert q.clock.now == 9.0

    def test_ties_fire_in_submission_order(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule_at(1.0, lambda i=i: fired.append(i))
        q.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_in(self):
        q = EventQueue()
        q.clock.advance(10.0)
        fired = []
        q.schedule_in(5.0, lambda: fired.append(q.clock.now))
        q.run()
        assert fired == [15.0]

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.clock.advance(10.0)
        with pytest.raises(ClockError):
            q.schedule_at(5.0, lambda: None)
        with pytest.raises(ClockError):
            q.schedule_in(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        q = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                q.schedule_in(1.0, lambda: chain(n + 1))

        q.schedule_at(0.0, lambda: chain(0))
        q.run()
        assert fired == [0, 1, 2, 3]
        assert q.clock.now == 3.0

    def test_run_until(self):
        q = EventQueue()
        fired = []
        q.schedule_at(1.0, lambda: fired.append(1))
        q.schedule_at(10.0, lambda: fired.append(10))
        q.run(until=5.0)
        assert fired == [1]
        assert q.clock.now == 5.0
        assert len(q) == 1

    def test_step_empty(self):
        assert EventQueue().step() is None

    def test_peek(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule_at(3.0, lambda: None)
        assert q.peek_time() == 3.0


class TestEventTags:
    def test_step_returns_explicit_tag(self):
        q = EventQueue()
        q.schedule_at(1.0, lambda: None, tag="vm.boot")
        assert q.step() == "vm.boot"
        assert q.last_tag == "vm.boot"

    def test_untagged_events_get_derived_tag(self):
        q = EventQueue()

        def provision():
            pass

        q.schedule_in(2.0, provision)
        tag = q.step()
        assert "provision" in tag

    def test_run_returns_fired_tags_in_order(self):
        q = EventQueue()
        q.schedule_at(2.0, lambda: None, tag="b")
        q.schedule_at(1.0, lambda: None, tag="a")
        q.schedule_at(9.0, lambda: None, tag="c")
        assert q.run(until=5.0) == ["a", "b"]
        assert q.run() == ["c"]

    def test_fired_events_reach_the_tracer(self):
        from repro.obs import Tracer, use_tracer

        q = EventQueue()
        q.schedule_at(4.0, lambda: None, tag="traced")
        with use_tracer(Tracer()) as tracer:
            q.run()
        fires = [e for e in tracer.events if e.name == "eq.fire"]
        assert [e.attrs["tag"] for e in fires] == ["traced"]
        assert fires[0].v_time == 4.0
