"""Tests for the SGE scheduler, the StarCluster builder and storage."""

import pytest

from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.cluster import (
    Cluster,
    ClusterError,
    build_cluster,
    cluster_from_vms,
)
from repro.cloud.ec2 import EC2Region
from repro.cloud.sge import JobState, SGEError, SGEJob, SGEScheduler
from repro.cloud.storage import TransferModel


def make_sched(nodes=None):
    q = EventQueue()
    return q, SGEScheduler(q, nodes or {"n0": 8, "n1": 8})


class TestSGE:
    def test_single_job_runs(self):
        q, s = make_sched()
        job = SGEJob("j", slots=8, duration=100.0)
        s.qsub(job)
        s.run_to_completion()
        assert job.state is JobState.DONE
        assert job.started_at == 0.0
        assert job.finished_at == 100.0

    def test_concurrent_jobs_share_cluster(self):
        q, s = make_sched()
        j1 = SGEJob("a", slots=8, duration=100.0)
        j2 = SGEJob("b", slots=8, duration=100.0)
        s.qsub(j1)
        s.qsub(j2)
        s.run_to_completion()
        # 16 slots total: both run immediately in parallel
        assert j1.finished_at == j2.finished_at == 100.0

    def test_queueing_when_full(self):
        q, s = make_sched({"n0": 8})
        j1 = SGEJob("a", slots=8, duration=100.0)
        j2 = SGEJob("b", slots=8, duration=50.0)
        s.qsub(j1)
        s.qsub(j2)
        assert j2.state is JobState.QUEUED
        s.run_to_completion()
        assert j2.started_at == 100.0
        assert j2.finished_at == 150.0
        assert j2.wait_seconds == 100.0

    def test_parallel_environment_spans_nodes(self):
        q, s = make_sched({"n0": 8, "n1": 8, "n2": 8})
        job = SGEJob("mpi", slots=20, duration=10.0)
        s.qsub(job)
        s.run_to_completion()
        assert sum(job.allocation.values()) == 20
        assert len(job.allocation) == 3

    def test_oversized_job_rejected(self):
        q, s = make_sched()
        with pytest.raises(SGEError):
            s.qsub(SGEJob("big", slots=100, duration=1.0))

    def test_zero_slot_job_rejected(self):
        q, s = make_sched()
        with pytest.raises(SGEError):
            s.qsub(SGEJob("none", slots=0, duration=1.0))

    def test_fifo_no_skip_ahead(self):
        q, s = make_sched({"n0": 8})
        j1 = SGEJob("big", slots=8, duration=100.0)
        j2 = SGEJob("bigger", slots=8, duration=10.0)
        j3 = SGEJob("small", slots=1, duration=1.0)
        for j in (j1, j2, j3):
            s.qsub(j)
        s.run_to_completion()
        # strict FIFO: small cannot jump the queue
        assert j3.started_at >= j2.finished_at

    def test_duration_callable_gets_allocation(self):
        q, s = make_sched({"n0": 8, "n1": 8})
        seen = {}

        def dur(alloc):
            seen.update(alloc)
            return 42.0

        job = SGEJob("fn", slots=10, duration=dur)
        s.qsub(job)
        s.run_to_completion()
        assert sum(seen.values()) == 10
        assert job.finished_at == 42.0

    def test_on_complete_callback(self):
        q, s = make_sched()
        done = []
        job = SGEJob("cb", slots=1, duration=5.0, on_complete=lambda j: done.append(j.name))
        s.qsub(job)
        s.run_to_completion()
        assert done == ["cb"]

    def test_qstat(self):
        q, s = make_sched({"n0": 8})
        s.qsub(SGEJob("a", slots=8, duration=10.0))
        s.qsub(SGEJob("b", slots=8, duration=10.0))
        stat = s.qstat()
        assert stat["r"] == 1 and stat["qw"] == 1
        s.run_to_completion()
        assert s.qstat()["done"] == 2

    def test_slots_restored_after_completion(self):
        q, s = make_sched()
        s.qsub(SGEJob("a", slots=16, duration=10.0))
        s.run_to_completion()
        assert s.slots_free == s.slots_total

    def test_needs_nodes(self):
        with pytest.raises(SGEError):
            SGEScheduler(EventQueue(), {})


class TestCluster:
    def make_cluster(self, n=3, itype="c3.2xlarge"):
        clock = SimClock()
        region = EC2Region(clock)
        events = EventQueue(clock)
        return region, events, build_cluster(region, events, itype, n)

    def test_build(self):
        region, events, cluster = self.make_cluster(3)
        assert cluster.n_nodes == 3
        assert cluster.total_slots == 24
        # provisioning + setup elapsed
        assert region.clock.now == pytest.approx(90 + 120)

    def test_homogeneity_enforced(self):
        clock = SimClock()
        region = EC2Region(clock)
        events = EventQueue(clock)
        a = region.run_instances("c3.2xlarge", 1)
        b = region.run_instances("r3.2xlarge", 1)
        with pytest.raises(ClusterError):
            Cluster("x", a + b, SGEScheduler(events, {"a": 8, "b": 8}), events)

    def test_machine_config(self):
        _, _, cluster = self.make_cluster(4)
        mc = cluster.machine_config()
        assert mc.n_nodes == 4 and mc.cores_per_node == 8
        mc2 = cluster.machine_config(2)
        assert mc2.n_nodes == 2
        with pytest.raises(ClusterError):
            cluster.machine_config(9)

    def test_grow(self):
        region, events, cluster = self.make_cluster(2)
        cluster.grow(region, 3)
        assert cluster.n_nodes == 5
        assert cluster.total_slots == 40

    def test_shrink(self):
        region, events, cluster = self.make_cluster(5)
        doomed = cluster.shrink_to(region, 1)
        assert len(doomed) == 4
        assert cluster.n_nodes == 1
        assert len(region.ledger.lines) == 4

    def test_shrink_busy_rejected(self):
        region, events, cluster = self.make_cluster(2)
        cluster.scheduler.qsub(SGEJob("hog", slots=16, duration=1000.0))
        with pytest.raises(ClusterError):
            cluster.shrink_to(region, 1)

    def test_cluster_from_vms(self):
        clock = SimClock()
        region = EC2Region(clock)
        events = EventQueue(clock)
        vms = region.run_instances("r3.2xlarge", 2)
        cluster = cluster_from_vms(vms, events)
        assert cluster.total_slots == 16


class TestTransferModel:
    def test_upload_matches_paper_anchor(self):
        """4.4 GB at the default WAN bandwidth ~= 3 min 35 s (§IV.C)."""
        tm = TransferModel(SimClock())
        secs = tm.upload(int(4.4 * 1024**3))
        assert secs == pytest.approx(215, rel=0.08)

    def test_copy_same_vm_free(self):
        tm = TransferModel(SimClock())
        assert tm.copy(10**9, "vm-a", "vm-a") == 0.0

    def test_copy_between_vms(self):
        tm = TransferModel(SimClock())
        secs = tm.copy(125e6, "vm-a", "vm-b")
        assert secs == pytest.approx(1.0)

    def test_clock_advances(self):
        clock = SimClock()
        tm = TransferModel(clock)
        tm.upload(tm.wan_bandwidth * 10)
        assert clock.now == pytest.approx(10.0)

    def test_log_and_totals(self):
        tm = TransferModel(SimClock())
        tm.upload(100)
        tm.download(200)
        assert tm.total_bytes == 300
        assert len(tm.log) == 2
        assert tm.total_seconds > 0

    def test_negative_rejected(self):
        tm = TransferModel(SimClock())
        with pytest.raises(ValueError):
            tm.upload(-1)
